//! MPEG2 video clips (paper Table 4 workloads).
//!
//! In contrast to MP3 audio, MPEG video decode times vary strongly
//! frame-to-frame: the paper cites a factor of three in cycles between
//! frames (refs [15, 16]) driven by the I/P/B group-of-pictures structure
//! and scene content, and arrival rates that vary between 9 and 32
//! frames/second over the wireless link.
//!
//! A synthetic [`MpegClip`] therefore carries two piecewise-constant
//! schedules — the arrival rate (network/scene changes) and the mean
//! decode rate (scene complexity) — plus a 12-frame `IBBPBBPBBPBB` GOP
//! pattern whose per-type work multipliers span the ≈3× range.
//!
//! The two evaluation clips are `football` (875 s, fast cuts, frequent
//! rate changes) and `terminator2` (1200 s, longer scenes), matching the
//! clip names and lengths of the paper's Table 4.

use crate::arrivals;
use crate::frame::{FrameRecord, MediaKind};
use crate::schedule::RateSchedule;
use crate::trace::Trace;
use simcore::rng::SimRng;
use simcore::time::SimTime;

/// The 12-frame group-of-pictures pattern `IBBPBBPBBPBB`, as relative
/// decode-work multipliers **before normalization**: I frames are the most
/// expensive, B frames the cheapest.
pub const GOP_MULTIPLIERS: [f64; 12] = [
    1.6, 0.65, 0.65, 1.0, 0.65, 0.65, 1.0, 0.65, 0.65, 1.0, 0.65, 0.65,
];

/// Relative half-width of the per-frame uniform work jitter (±15 %).
pub const FRAME_JITTER: f64 = 0.15;

/// One synthetic MPEG2 video clip.
#[derive(Debug, Clone, PartialEq)]
pub struct MpegClip {
    name: String,
    arrival_schedule: RateSchedule,
    service_schedule: RateSchedule,
}

impl MpegClip {
    /// Builds a clip from explicit schedules.
    ///
    /// # Panics
    ///
    /// Panics if the two schedules differ in total duration by more than
    /// one millisecond — arrivals and content complexity must cover the
    /// same timeline.
    #[must_use]
    pub fn new(name: &str, arrival_schedule: RateSchedule, service_schedule: RateSchedule) -> Self {
        assert!(
            (arrival_schedule.total_duration() - service_schedule.total_duration()).abs() < 1e-3,
            "arrival and service schedules must span the same duration"
        );
        MpegClip {
            name: name.to_owned(),
            arrival_schedule,
            service_schedule,
        }
    }

    /// The 875-second football clip: fast cuts, arrival rate swinging
    /// across 9–32 fr/s, scene complexity changing every 30–90 s.
    #[must_use]
    pub fn football() -> Self {
        Self::synthesize("football", 875.0, 0xF00B)
    }

    /// The 1200-second Terminator 2 clip: longer scenes, same rate ranges.
    #[must_use]
    pub fn terminator2() -> Self {
        Self::synthesize("terminator2", 1200.0, 0x7E42)
    }

    /// Procedurally generates a clip: scene lengths 30–90 s, arrival rates
    /// uniform in 9–32 fr/s, decode rates (at maximum frequency) uniform
    /// in 45–90 fr/s. The construction is deterministic in `seed`.
    #[must_use]
    pub fn synthesize(name: &str, duration_secs: f64, seed: u64) -> Self {
        assert!(
            duration_secs.is_finite() && duration_secs > 0.0,
            "duration must be positive"
        );
        let mut rng = SimRng::seed_from(seed).fork("mpeg-scenes");
        let mut arrival = Vec::new();
        let mut service = Vec::new();
        let mut remaining = duration_secs;
        while remaining > 0.0 {
            let scene = f64::min(30.0 + 60.0 * rng.next_f64(), remaining);
            arrival.push((scene, 9.0 + 23.0 * rng.next_f64()));
            service.push((scene, 45.0 + 45.0 * rng.next_f64()));
            remaining -= scene;
        }
        MpegClip::new(
            name,
            RateSchedule::new(arrival).expect("synthesized segments are valid"),
            RateSchedule::new(service).expect("synthesized segments are valid"),
        )
    }

    /// The clip name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Clip length, seconds.
    #[must_use]
    pub fn duration_secs(&self) -> f64 {
        self.arrival_schedule.total_duration()
    }

    /// The ground-truth arrival-rate schedule.
    #[must_use]
    pub fn arrival_schedule(&self) -> &RateSchedule {
        &self.arrival_schedule
    }

    /// The ground-truth decode-rate schedule (at maximum frequency).
    #[must_use]
    pub fn service_schedule(&self) -> &RateSchedule {
        &self.service_schedule
    }

    /// Generates a frame trace for this clip.
    ///
    /// Per-frame decode work at maximum frequency is
    /// `1/rate · gop_multiplier · jitter`, with the GOP multipliers
    /// normalized so the mean decode rate matches the schedule.
    #[must_use]
    pub fn generate(&self, rng: &mut SimRng) -> Trace {
        let gop_mean: f64 = GOP_MULTIPLIERS.iter().sum::<f64>() / GOP_MULTIPLIERS.len() as f64;
        let arrivals = arrivals::generate(&self.arrival_schedule, rng);
        let mut frames = Vec::with_capacity(arrivals.len());
        for (i, t) in arrivals.iter().enumerate() {
            let service_rate = self.service_schedule.rate_at(*t);
            let gop = GOP_MULTIPLIERS[i % GOP_MULTIPLIERS.len()] / gop_mean;
            let jitter = 1.0 + FRAME_JITTER * (2.0 * rng.next_f64() - 1.0);
            frames.push(FrameRecord {
                index: i as u64,
                kind: MediaKind::MpegVideo,
                arrival: SimTime::from_secs_f64(*t),
                work: gop * jitter / service_rate,
                true_arrival_rate: self.arrival_schedule.rate_at(*t),
                true_service_rate: service_rate,
            });
        }
        let end = SimTime::from_secs_f64(self.duration_secs());
        Trace::new(frames, end).expect("generated frames are sorted and valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_lengths_match_paper() {
        assert!((MpegClip::football().duration_secs() - 875.0).abs() < 1e-6);
        assert!((MpegClip::terminator2().duration_secs() - 1200.0).abs() < 1e-6);
    }

    #[test]
    fn arrival_rates_within_paper_range() {
        for clip in [MpegClip::football(), MpegClip::terminator2()] {
            for s in clip.arrival_schedule().segments() {
                assert!(
                    (9.0..=32.0).contains(&s.rate),
                    "{} rate {}",
                    clip.name(),
                    s.rate
                );
            }
        }
    }

    #[test]
    fn decode_work_spans_about_3x() {
        let clip = MpegClip::football();
        let trace = clip.generate(&mut SimRng::seed_from(1));
        // Compare frames within one scene (constant service rate): take
        // the normalized work w·rate.
        let normalized: Vec<f64> = trace
            .frames()
            .iter()
            .map(|f| f.work * f.true_service_rate)
            .collect();
        let min = normalized.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = normalized.iter().cloned().fold(0.0, f64::max);
        let span = max / min;
        assert!(
            (2.0..5.0).contains(&span),
            "frame-to-frame work span {span} should be ≈3x"
        );
    }

    #[test]
    fn gop_mean_is_normalized_out() {
        let clip = MpegClip::football();
        let trace = clip.generate(&mut SimRng::seed_from(2));
        // Mean decode time should track 1/service_rate per scene.
        let mean_norm: f64 = trace
            .frames()
            .iter()
            .map(|f| f.work * f.true_service_rate)
            .sum::<f64>()
            / trace.frames().len() as f64;
        assert!(
            (mean_norm - 1.0).abs() < 0.05,
            "mean normalized work {mean_norm}"
        );
    }

    #[test]
    fn schedules_are_ground_truth_for_frames() {
        let clip = MpegClip::terminator2();
        let trace = clip.generate(&mut SimRng::seed_from(3));
        for f in trace.frames().iter().step_by(97) {
            let t = f.arrival.as_secs_f64();
            assert_eq!(f.true_arrival_rate, clip.arrival_schedule().rate_at(t));
            assert_eq!(f.true_service_rate, clip.service_schedule().rate_at(t));
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        assert_eq!(MpegClip::football(), MpegClip::football());
        let a = MpegClip::football().generate(&mut SimRng::seed_from(4));
        let b = MpegClip::football().generate(&mut SimRng::seed_from(4));
        assert_eq!(a, b);
    }

    #[test]
    fn clips_have_multiple_scenes() {
        assert!(MpegClip::football().arrival_schedule().segments().len() > 8);
        assert!(!MpegClip::football()
            .service_schedule()
            .change_points()
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "same duration")]
    fn mismatched_schedules_panic() {
        let a = RateSchedule::constant(20.0, 10.0).unwrap();
        let s = RateSchedule::constant(60.0, 20.0).unwrap();
        let _ = MpegClip::new("bad", a, s);
    }

    #[test]
    fn frame_kind_is_video() {
        let clip = MpegClip::football();
        let trace = clip.generate(&mut SimRng::seed_from(5));
        assert!(trace
            .frames()
            .iter()
            .all(|f| f.kind == MediaKind::MpegVideo));
    }
}
