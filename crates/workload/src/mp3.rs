//! MP3 audio clips (paper Table 2).
//!
//! Six audio clips labelled A–F, each with a different bit rate and sample
//! rate, totalling 653 seconds. An MP3 frame carries 1152 samples, so the
//! frame arrival rate is `sample_rate / 1152`. The paper found "very
//! little variation on frame-by-frame basis in decoding rate within a
//! given audio clip, but the variation in decoding rate between clips can
//! be large" — so within a clip the decode time is nearly constant, and
//! the DVS opportunity comes from clip-to-clip changes, which is what the
//! change-point detector tracks through the test sequences (ACEFBD,
//! BADECF, CEDAFB of Table 3).
//!
//! The scan of Table 2 is OCR-garbled; bit rates, sample rates and decode
//! rates below are chosen to match the paper's stated ranges (arrival
//! 16–44 fr/s across sequences, large inter-clip decode-rate spread, 653 s
//! total). See `DESIGN.md`.

use crate::arrivals;
use crate::frame::{FrameRecord, MediaKind};
use crate::schedule::RateSchedule;
use crate::trace::Trace;
use crate::WorkloadError;
use simcore::rng::SimRng;
use simcore::time::SimTime;

/// Samples per MP3 frame.
pub const SAMPLES_PER_FRAME: f64 = 1152.0;

/// Relative half-width of the per-frame decode-time jitter within a clip
/// (uniform ±5 %): "very little variation on frame-by-frame basis".
pub const INTRA_CLIP_JITTER: f64 = 0.05;

/// One MP3 audio clip (a row of paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mp3Clip {
    /// Clip label A–F.
    pub label: char,
    /// Bit rate, kilobits/second.
    pub bit_rate_kbps: f64,
    /// Sample rate, kilohertz.
    pub sample_rate_khz: f64,
    /// Decode capability at the maximum CPU frequency, frames/second.
    pub decode_rate: f64,
    /// Clip length, seconds.
    pub duration_secs: f64,
}

impl Mp3Clip {
    /// The six clips of Table 2, totalling 653 seconds of audio.
    #[must_use]
    pub fn table2() -> [Mp3Clip; 6] {
        [
            Mp3Clip {
                label: 'A',
                bit_rate_kbps: 128.0,
                sample_rate_khz: 44.1,
                decode_rate: 80.0,
                duration_secs: 100.0,
            },
            Mp3Clip {
                label: 'B',
                bit_rate_kbps: 112.0,
                sample_rate_khz: 48.0,
                decode_rate: 95.0,
                duration_secs: 120.0,
            },
            Mp3Clip {
                label: 'C',
                bit_rate_kbps: 64.0,
                sample_rate_khz: 32.0,
                decode_rate: 130.0,
                duration_secs: 110.0,
            },
            Mp3Clip {
                label: 'D',
                bit_rate_kbps: 56.0,
                sample_rate_khz: 24.0,
                decode_rate: 160.0,
                duration_secs: 105.0,
            },
            Mp3Clip {
                label: 'E',
                bit_rate_kbps: 40.0,
                sample_rate_khz: 22.05,
                decode_rate: 190.0,
                duration_secs: 108.0,
            },
            Mp3Clip {
                label: 'F',
                bit_rate_kbps: 32.0,
                sample_rate_khz: 16.0,
                decode_rate: 215.0,
                duration_secs: 110.0,
            },
        ]
    }

    /// Looks up a Table 2 clip by its label.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::UnknownClip`] for labels outside A–F.
    pub fn by_label(label: char) -> Result<Mp3Clip, WorkloadError> {
        Self::table2()
            .into_iter()
            .find(|c| c.label == label.to_ascii_uppercase())
            .ok_or(WorkloadError::UnknownClip { label })
    }

    /// Frame arrival rate: `sample_rate / 1152`, frames/second.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        self.sample_rate_khz * 1000.0 / SAMPLES_PER_FRAME
    }

    /// Mean decode time per frame at the maximum CPU frequency, seconds.
    #[must_use]
    pub fn mean_decode_time(&self) -> f64 {
        1.0 / self.decode_rate
    }

    /// Generates a trace of this clip alone.
    #[must_use]
    pub fn generate(&self, rng: &mut SimRng) -> Trace {
        sequence_trace(&[*self], rng)
    }
}

/// Generates the trace of an MP3 listening sequence such as `"ACEFBD"`:
/// clips play back-to-back, so both the arrival rate and the decode rate
/// step at every clip boundary.
///
/// # Errors
///
/// Returns an error if `labels` is empty or contains an unknown label.
pub fn sequence(labels: &str, rng: &mut SimRng) -> Result<Trace, WorkloadError> {
    if labels.is_empty() {
        return Err(WorkloadError::Empty { name: "labels" });
    }
    let clips: Result<Vec<Mp3Clip>, WorkloadError> =
        labels.chars().map(Mp3Clip::by_label).collect();
    Ok(sequence_trace(&clips?, rng))
}

fn sequence_trace(clips: &[Mp3Clip], rng: &mut SimRng) -> Trace {
    let schedule = RateSchedule::new(
        clips
            .iter()
            .map(|c| (c.duration_secs, c.arrival_rate()))
            .collect(),
    )
    .expect("table2 clips have valid rates and durations");
    let arrivals = arrivals::generate(&schedule, rng);
    let mut frames = Vec::with_capacity(arrivals.len());
    for (i, t) in arrivals.iter().enumerate() {
        let clip = clip_at(clips, *t);
        // Nearly constant decode time within a clip: uniform ±5 % jitter.
        let jitter = 1.0 + INTRA_CLIP_JITTER * (2.0 * rng.next_f64() - 1.0);
        frames.push(FrameRecord {
            index: i as u64,
            kind: MediaKind::Mp3Audio,
            arrival: SimTime::from_secs_f64(*t),
            work: clip.mean_decode_time() * jitter,
            true_arrival_rate: clip.arrival_rate(),
            true_service_rate: clip.decode_rate,
        });
    }
    let end = SimTime::from_secs_f64(schedule.total_duration());
    Trace::new(frames, end).expect("generated frames are sorted and valid")
}

fn clip_at(clips: &[Mp3Clip], t: f64) -> &Mp3Clip {
    let mut elapsed = 0.0;
    for c in clips {
        elapsed += c.duration_secs;
        if t < elapsed {
            return c;
        }
    }
    clips.last().expect("at least one clip")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals_653_seconds() {
        let total: f64 = Mp3Clip::table2().iter().map(|c| c.duration_secs).sum();
        assert!((total - 653.0).abs() < 1e-9);
    }

    #[test]
    fn arrival_rates_span_paper_range() {
        let rates: Vec<f64> = Mp3Clip::table2().iter().map(|c| c.arrival_rate()).collect();
        let lo = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rates.iter().cloned().fold(0.0, f64::max);
        // Paper: "the frame arrival rate varied between 16 and 44 frames/sec".
        assert!((13.0..17.0).contains(&lo), "lowest {lo}");
        assert!((38.0..45.0).contains(&hi), "highest {hi}");
    }

    #[test]
    fn decode_rates_vary_widely_between_clips() {
        let clips = Mp3Clip::table2();
        let min = clips
            .iter()
            .map(|c| c.decode_rate)
            .fold(f64::INFINITY, f64::min);
        let max = clips.iter().map(|c| c.decode_rate).fold(0.0, f64::max);
        assert!(max / min > 2.0, "inter-clip spread {min}..{max}");
    }

    #[test]
    fn by_label_is_case_insensitive_and_validates() {
        assert_eq!(Mp3Clip::by_label('a').unwrap().label, 'A');
        assert_eq!(Mp3Clip::by_label('F').unwrap().label, 'F');
        assert!(Mp3Clip::by_label('G').is_err());
    }

    #[test]
    fn generated_clip_matches_nominal_rates() {
        let clip = Mp3Clip::by_label('C').unwrap();
        let trace = clip.generate(&mut SimRng::seed_from(21));
        let rate = trace.mean_arrival_rate();
        assert!(
            (rate - clip.arrival_rate()).abs() / clip.arrival_rate() < 0.1,
            "arrival rate {rate} vs {}",
            clip.arrival_rate()
        );
        // Decode times cluster tightly around the clip mean.
        let works = trace.decode_works();
        let mean = works.iter().sum::<f64>() / works.len() as f64;
        assert!((mean - clip.mean_decode_time()).abs() / clip.mean_decode_time() < 0.02);
        for w in &works {
            let rel = (w - clip.mean_decode_time()).abs() / clip.mean_decode_time();
            assert!(
                rel <= INTRA_CLIP_JITTER + 1e-9,
                "jitter bound violated: {rel}"
            );
        }
    }

    #[test]
    fn sequence_steps_rates_at_boundaries() {
        let trace = sequence("AF", &mut SimRng::seed_from(5)).unwrap();
        let a = Mp3Clip::by_label('A').unwrap();
        let f = Mp3Clip::by_label('F').unwrap();
        let in_a: Vec<_> = trace
            .frames()
            .iter()
            .filter(|fr| fr.arrival.as_secs_f64() < a.duration_secs)
            .collect();
        let in_f: Vec<_> = trace
            .frames()
            .iter()
            .filter(|fr| fr.arrival.as_secs_f64() >= a.duration_secs)
            .collect();
        assert!(in_a.iter().all(|fr| fr.true_service_rate == a.decode_rate));
        assert!(in_f.iter().all(|fr| fr.true_service_rate == f.decode_rate));
        assert!(!in_a.is_empty() && !in_f.is_empty());
        let total = a.duration_secs + f.duration_secs;
        assert!((trace.duration_secs() - total).abs() < 1e-9);
    }

    #[test]
    fn sequence_validates_input() {
        assert!(sequence("", &mut SimRng::seed_from(0)).is_err());
        assert!(sequence("AXE", &mut SimRng::seed_from(0)).is_err());
    }

    #[test]
    fn paper_sequences_have_653_seconds() {
        for labels in ["ACEFBD", "BADECF", "CEDAFB"] {
            let trace = sequence(labels, &mut SimRng::seed_from(9)).unwrap();
            assert!((trace.duration_secs() - 653.0).abs() < 1e-9, "{labels}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = sequence("ACE", &mut SimRng::seed_from(3)).unwrap();
        let b = sequence("ACE", &mut SimRng::seed_from(3)).unwrap();
        assert_eq!(a, b);
    }
}
