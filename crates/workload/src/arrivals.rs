//! Arrival-time generation from rate schedules.
//!
//! Within each segment of a [`RateSchedule`] arrivals are Poisson: the
//! paper measured SmartBadge frame interarrival times and found them well
//! approximated by exponential distributions (Figure 6). Segment
//! boundaries are handled through the memoryless property: when a sampled
//! gap crosses a boundary, the process restarts at the boundary with the
//! new rate, which yields an exact piecewise-Poisson process.
//!
//! For the Figure 6 fit-quality experiment, [`generate_jittered`] adds a
//! wireless-network packetization floor to each gap, producing a process
//! that is only *approximately* exponential — fitting a single exponential
//! to it reproduces the paper's ≈8 % average CDF error.

use crate::schedule::RateSchedule;
use simcore::dist::Exponential;
use simcore::rng::SimRng;

/// Unit-rate exponential draws are pre-drawn this many at a time through
/// [`Exponential::fill`] (the batched-`ln` path). Big enough to amortize
/// the batching, small enough that a short schedule does not over-draw
/// from the scout by much.
const GAP_BLOCK: usize = 256;

/// Arrival times (seconds from schedule start) of a piecewise-Poisson
/// process following `schedule`.
///
/// The process stops at the end of the schedule.
#[must_use]
pub fn generate(schedule: &RateSchedule, rng: &mut SimRng) -> Vec<f64> {
    generate_with_floor(schedule, 0.0, rng)
}

/// Like [`generate`], but each interarrival gap is `floor + Exp(λ')`
/// where `λ'` is chosen so the segment's *mean* rate is preserved:
/// `1/λ = floor + 1/λ'`.
///
/// A non-zero floor models the minimum packet spacing of the wireless
/// link. The resulting process has the same rate but is not exactly
/// exponential — the ingredient of the Figure 6 experiment.
///
/// # Panics
///
/// Panics if `floor` is negative, not finite, or is ≥ the mean gap of any
/// segment (which would make the residual exponential rate non-positive).
#[must_use]
pub fn generate_with_floor(schedule: &RateSchedule, floor: f64, rng: &mut SimRng) -> Vec<f64> {
    assert!(
        floor.is_finite() && floor >= 0.0,
        "floor must be finite and >= 0"
    );
    let total = schedule.total_duration();
    let mut arrivals = Vec::with_capacity(schedule.expected_events() as usize + 16);
    // Gap sampling is blocked: a scout clone of the caller's RNG pre-draws
    // unit-rate exponentials `-ln(1 - u)` in batches of GAP_BLOCK through
    // the batched-`ln` path. Each per-event gap is then `floor + e / λ'`,
    // bit-identical to the scalar `floor + -(1 - u).ln() / λ'` it
    // replaces: the unit-rate `fill` arm negates without dividing, the
    // `ln` kernel matches libm bit for bit, and `(-a)/λ' == -(a/λ')`
    // exactly in IEEE-754. The draws carry no rate, so the buffer
    // survives segment-boundary rate changes. The caller's RNG is
    // advanced past exactly the consumed draws afterwards (one `next_u64`
    // per draw), so downstream sampling sites — clip jitter is drawn from
    // this same stream — see the state the scalar loop would have left.
    let unit = Exponential::new(1.0).expect("rate 1.0 is a valid exponential rate");
    let mut scout = rng.clone();
    let mut block = [0.0f64; GAP_BLOCK];
    let mut pos = GAP_BLOCK; // empty; filled on first draw
    let mut consumed: u64 = 0;
    let mut t = 0.0;
    loop {
        let rate = schedule.rate_at(f64::min(t, total * (1.0 - 1e-12)));
        let mean_gap = 1.0 / rate;
        assert!(
            floor < mean_gap,
            "floor {floor} must be below the mean gap {mean_gap}"
        );
        let residual_rate = 1.0 / (mean_gap - floor);
        if pos == GAP_BLOCK {
            unit.fill(&mut scout, &mut block);
            pos = 0;
        }
        let gap = floor + block[pos] / residual_rate;
        pos += 1;
        consumed += 1;
        let candidate = t + gap;
        // Memoryless restart at segment boundaries: if the gap crosses into
        // a segment with a different rate, restart sampling at the boundary.
        let boundary = next_boundary(schedule, t);
        if candidate > boundary && boundary < total {
            t = boundary;
            continue;
        }
        if candidate >= total {
            break;
        }
        t = candidate;
        arrivals.push(t);
    }
    for _ in 0..consumed {
        rng.next_u64();
    }
    arrivals
}

/// Convenience alias for the paper's Figure 6 jitter model: a 12 ms
/// packetization/contention floor per frame, sized so a fitted single
/// exponential shows the paper's ≈8 % average CDF error while remaining
/// "approximately exponential".
#[must_use]
pub fn generate_jittered(schedule: &RateSchedule, rng: &mut SimRng) -> Vec<f64> {
    generate_with_floor(schedule, 0.012, rng)
}

fn next_boundary(schedule: &RateSchedule, t: f64) -> f64 {
    let mut elapsed = 0.0;
    for s in schedule.segments() {
        elapsed += s.duration;
        if t < elapsed {
            return elapsed;
        }
    }
    elapsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_respected_per_segment() {
        let sched = RateSchedule::new(vec![(100.0, 10.0), (100.0, 60.0)]).unwrap();
        let mut rng = SimRng::seed_from(42);
        let arrivals = generate(&sched, &mut rng);
        let first: Vec<&f64> = arrivals.iter().filter(|&&t| t < 100.0).collect();
        let second: Vec<&f64> = arrivals.iter().filter(|&&t| t >= 100.0).collect();
        let r1 = first.len() as f64 / 100.0;
        let r2 = second.len() as f64 / 100.0;
        assert!((r1 - 10.0).abs() < 1.5, "segment 1 rate {r1}");
        assert!((r2 - 60.0).abs() < 4.0, "segment 2 rate {r2}");
    }

    #[test]
    fn arrivals_are_sorted_and_within_range() {
        let sched = RateSchedule::new(vec![(10.0, 30.0), (10.0, 15.0)]).unwrap();
        let mut rng = SimRng::seed_from(7);
        let arrivals = generate(&sched, &mut rng);
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
        assert!(arrivals.iter().all(|&t| (0.0..20.0).contains(&t)));
    }

    #[test]
    fn interarrivals_look_exponential() {
        let sched = RateSchedule::constant(25.0, 2000.0).unwrap();
        let mut rng = SimRng::seed_from(3);
        let arrivals = generate(&sched, &mut rng);
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        let fitted = simcore::dist::Exponential::fit_mle(&gaps).unwrap();
        let ks = simcore::dist::fit::ks_statistic(&gaps, &fitted);
        assert!(ks < 0.01, "ks {ks}");
        assert!((fitted.rate() - 25.0).abs() < 1.0, "rate {}", fitted.rate());
    }

    #[test]
    fn floor_preserves_mean_rate_but_breaks_exponentiality() {
        let sched = RateSchedule::constant(30.0, 3000.0).unwrap();
        let mut rng = SimRng::seed_from(9);
        let arrivals = generate_jittered(&sched, &mut rng);
        let measured = arrivals.len() as f64 / 3000.0;
        assert!((measured - 30.0).abs() < 1.0, "rate {measured}");
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        // No gap below the floor (aside from numerical dust).
        assert!(gaps.iter().all(|&g| g >= 0.012 - 1e-12));
        // A fitted exponential shows a visible (but moderate) CDF error.
        let fitted = simcore::dist::Exponential::fit_mle(&gaps).unwrap();
        let err = simcore::dist::fit::mean_abs_cdf_error(&gaps, &fitted);
        assert!(err > 0.005, "err {err} should be visible");
        assert!(
            err < 0.2,
            "err {err} should stay 'approximately exponential'"
        );
    }

    /// The scalar one-draw-per-event loop the block sampler replaced,
    /// kept verbatim as a differential reference.
    fn generate_with_floor_scalar(
        schedule: &RateSchedule,
        floor: f64,
        rng: &mut SimRng,
    ) -> Vec<f64> {
        let total = schedule.total_duration();
        let mut arrivals = Vec::new();
        let mut t = 0.0;
        loop {
            let rate = schedule.rate_at(f64::min(t, total * (1.0 - 1e-12)));
            let mean_gap = 1.0 / rate;
            let residual_rate = 1.0 / (mean_gap - floor);
            let gap = floor + -(1.0 - rng.next_f64()).ln() / residual_rate;
            let candidate = t + gap;
            let boundary = next_boundary(schedule, t);
            if candidate > boundary && boundary < total {
                t = boundary;
                continue;
            }
            if candidate >= total {
                break;
            }
            t = candidate;
            arrivals.push(t);
        }
        arrivals
    }

    #[test]
    fn block_sampler_matches_scalar_bitwise_and_leaves_same_rng_state() {
        // Multi-segment schedules exercise boundary restarts (draws
        // consumed without producing an arrival) and rate changes
        // mid-block; the floored variant exercises the residual-rate
        // arithmetic. Equality must be exact, not approximate, and the
        // RNG must come out in the same state either way because clip
        // jitter is drawn from the same stream afterwards.
        let schedules = [
            RateSchedule::constant(25.0, 400.0).unwrap(),
            RateSchedule::new(vec![(30.0, 10.0), (30.0, 60.0), (30.0, 22.0)]).unwrap(),
            RateSchedule::new(vec![(0.5, 5.0), (0.5, 80.0)]).unwrap(),
        ];
        for (i, sched) in schedules.iter().enumerate() {
            for floor in [0.0, 0.012] {
                for seed in [0u64, 7, 42, 99] {
                    let mut a_rng = SimRng::seed_from(seed);
                    let mut b_rng = SimRng::seed_from(seed);
                    let a = generate_with_floor(sched, floor, &mut a_rng);
                    let b = generate_with_floor_scalar(sched, floor, &mut b_rng);
                    assert!(
                        a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits())
                            && a.len() == b.len(),
                        "schedule {i} floor {floor} seed {seed}: arrivals diverged"
                    );
                    assert_eq!(
                        a_rng.next_u64(),
                        b_rng.next_u64(),
                        "schedule {i} floor {floor} seed {seed}: RNG state diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let sched = RateSchedule::constant(20.0, 50.0).unwrap();
        let a = generate(&sched, &mut SimRng::seed_from(5));
        let b = generate(&sched, &mut SimRng::seed_from(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "below the mean gap")]
    fn floor_above_mean_gap_panics() {
        let sched = RateSchedule::constant(1000.0, 1.0).unwrap(); // mean gap 1 ms
        let _ = generate_with_floor(&sched, 0.002, &mut SimRng::seed_from(0));
    }
}
