//! Recorded workload traces.
//!
//! A [`Trace`] is an explicit list of [`FrameRecord`]s plus an end time.
//! Every generator in this crate produces a trace; the system simulator
//! consumes traces. Because traces are plain serializable data they can be
//! saved, replayed and compared across experiments, standing in for the
//! packet captures the paper's authors recorded on real hardware.

use crate::frame::FrameRecord;
use crate::WorkloadError;
use simcore::json::{Json, ToJson};
use simcore::time::{SimDuration, SimTime};

/// An ordered sequence of frames with an explicit end-of-stream time.
///
/// The gap between the last frame and [`Trace::end`] is trailing idle
/// time, which is where the DPM policy earns its savings.
///
/// # Example
///
/// ```
/// use simcore::rng::SimRng;
/// use workload::mp3::Mp3Clip;
/// use workload::Trace;
///
/// let mut rng = SimRng::seed_from(11);
/// let a = Mp3Clip::table2()[0].generate(&mut rng);
/// let b = Mp3Clip::table2()[1].generate(&mut rng);
/// let combined = Trace::sequence(&[a.clone(), b], simcore::time::SimDuration::ZERO);
/// assert!(combined.frames().len() > a.frames().len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    frames: Vec<FrameRecord>,
    end: SimTime,
}

impl Trace {
    /// Builds a trace, validating that frames are sorted by arrival time,
    /// internally consistent, and arrive before `end`.
    ///
    /// # Errors
    ///
    /// Returns an error if any frame is invalid, out of order, or arrives
    /// after `end`.
    pub fn new(frames: Vec<FrameRecord>, end: SimTime) -> Result<Self, WorkloadError> {
        for w in frames.windows(2) {
            if w[1].arrival < w[0].arrival {
                return Err(WorkloadError::InvalidParameter {
                    name: "frames (arrival order)",
                    value: w[1].arrival.as_secs_f64(),
                });
            }
        }
        for f in &frames {
            if !f.is_valid() {
                return Err(WorkloadError::InvalidParameter {
                    name: "frame",
                    value: f.work,
                });
            }
            if f.arrival > end {
                return Err(WorkloadError::InvalidParameter {
                    name: "frames (arrival after end)",
                    value: f.arrival.as_secs_f64(),
                });
            }
        }
        Ok(Trace { frames, end })
    }

    /// An empty trace of zero length.
    #[must_use]
    pub fn empty() -> Self {
        Trace {
            frames: Vec::new(),
            end: SimTime::ZERO,
        }
    }

    /// The frames in arrival order.
    #[must_use]
    pub fn frames(&self) -> &[FrameRecord] {
        &self.frames
    }

    /// End-of-stream instant (≥ the last arrival).
    #[must_use]
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Trace length in seconds.
    #[must_use]
    pub fn duration_secs(&self) -> f64 {
        self.end.as_secs_f64()
    }

    /// Empirical mean arrival rate: frames per second over the trace
    /// length; `0.0` for an empty or zero-length trace.
    #[must_use]
    pub fn mean_arrival_rate(&self) -> f64 {
        let d = self.duration_secs();
        if d == 0.0 {
            0.0
        } else {
            self.frames.len() as f64 / d
        }
    }

    /// Interarrival gaps between consecutive frames, seconds.
    #[must_use]
    pub fn interarrival_times(&self) -> Vec<f64> {
        self.frames
            .windows(2)
            .map(|w| (w[1].arrival - w[0].arrival).as_secs_f64())
            .collect()
    }

    /// Per-frame decode times at maximum frequency, seconds.
    #[must_use]
    pub fn decode_works(&self) -> Vec<f64> {
        self.frames.iter().map(|f| f.work).collect()
    }

    /// Concatenates traces with a fixed idle `gap` between them,
    /// re-indexing frames and offsetting arrival times.
    #[must_use]
    pub fn sequence(traces: &[Trace], gap: SimDuration) -> Trace {
        let mut frames = Vec::new();
        let mut offset = SimDuration::ZERO;
        let mut end = SimTime::ZERO;
        for (i, t) in traces.iter().enumerate() {
            if i > 0 {
                offset += gap;
            }
            for f in &t.frames {
                frames.push(FrameRecord {
                    index: frames.len() as u64,
                    arrival: f.arrival + offset,
                    ..*f
                });
            }
            end = t.end + offset;
            offset += t.end - SimTime::ZERO;
        }
        Trace { frames, end }
    }

    /// Concatenates traces with *individual* idle gaps: `items[i] =
    /// (gap_before_i, trace_i)`. Used by sessions where idle periods have
    /// varying, heavy-tailed lengths.
    #[must_use]
    pub fn sequence_with_gaps(items: &[(SimDuration, Trace)]) -> Trace {
        let mut frames = Vec::new();
        let mut offset = SimDuration::ZERO;
        let mut end = SimTime::ZERO;
        for (gap, t) in items {
            offset += *gap;
            for f in &t.frames {
                frames.push(FrameRecord {
                    index: frames.len() as u64,
                    arrival: f.arrival + offset,
                    ..*f
                });
            }
            end = t.end + offset;
            offset += t.end - SimTime::ZERO;
        }
        Trace { frames, end }
    }
}

impl Default for Trace {
    fn default() -> Self {
        Self::empty()
    }
}

impl Trace {
    /// Saves the trace as JSON, the stand-in for the packet captures the
    /// paper's authors recorded on hardware.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be written.
    pub fn save_json<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().dump())
    }

    /// Reconstructs a trace from the JSON produced by
    /// [`ToJson::to_json`], without validation (see [`Trace::load_json`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(v: &Json) -> Result<Trace, String> {
        let frames = v["frames"]
            .as_array()
            .ok_or_else(|| "trace field `frames` must be an array".to_string())?
            .iter()
            .map(FrameRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let end = v["end"]
            .as_u64()
            .ok_or_else(|| "trace field `end` must be integer nanoseconds".to_string())?;
        Ok(Trace {
            frames,
            end: SimTime::from_nanos(end),
        })
    }

    /// Loads a trace saved by [`Trace::save_json`], re-validating the
    /// frame ordering invariants.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be read, parsed, or fails
    /// validation.
    pub fn load_json<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Trace> {
        let text = std::fs::read_to_string(path)?;
        let value = Json::parse(&text).map_err(std::io::Error::other)?;
        let raw = Trace::from_json(&value).map_err(std::io::Error::other)?;
        // Re-run the construction-time validation on untrusted input.
        Trace::new(raw.frames, raw.end)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

simcore::impl_to_json!(Trace { frames, end });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::MediaKind;

    fn frame(i: u64, at_secs: f64) -> FrameRecord {
        FrameRecord {
            index: i,
            kind: MediaKind::Mp3Audio,
            arrival: SimTime::from_secs_f64(at_secs),
            work: 0.01,
            true_arrival_rate: 10.0,
            true_service_rate: 100.0,
        }
    }

    #[test]
    fn new_validates_order() {
        let ok = Trace::new(
            vec![frame(0, 0.1), frame(1, 0.2)],
            SimTime::from_secs_f64(1.0),
        );
        assert!(ok.is_ok());
        let bad = Trace::new(
            vec![frame(0, 0.2), frame(1, 0.1)],
            SimTime::from_secs_f64(1.0),
        );
        assert!(bad.is_err());
    }

    #[test]
    fn new_rejects_arrival_after_end() {
        let bad = Trace::new(vec![frame(0, 2.0)], SimTime::from_secs_f64(1.0));
        assert!(bad.is_err());
    }

    #[test]
    fn new_rejects_invalid_frame() {
        let mut f = frame(0, 0.1);
        f.work = f64::NAN;
        assert!(Trace::new(vec![f], SimTime::from_secs_f64(1.0)).is_err());
    }

    #[test]
    fn statistics() {
        let t = Trace::new(
            vec![frame(0, 1.0), frame(1, 2.0), frame(2, 4.0)],
            SimTime::from_secs_f64(6.0),
        )
        .unwrap();
        assert!((t.mean_arrival_rate() - 0.5).abs() < 1e-12);
        assert_eq!(t.interarrival_times(), vec![1.0, 2.0]);
        assert_eq!(t.decode_works(), vec![0.01, 0.01, 0.01]);
        assert!((t.duration_secs() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn sequence_offsets_and_reindexes() {
        let a = Trace::new(vec![frame(0, 1.0)], SimTime::from_secs_f64(2.0)).unwrap();
        let b = Trace::new(vec![frame(0, 0.5)], SimTime::from_secs_f64(1.0)).unwrap();
        let s = Trace::sequence(&[a, b], SimDuration::from_secs(3));
        assert_eq!(s.frames().len(), 2);
        assert_eq!(s.frames()[0].index, 0);
        assert_eq!(s.frames()[1].index, 1);
        // Second trace starts at 2.0 (end of a) + 3.0 (gap) = 5.0; frame at 5.5.
        assert!((s.frames()[1].arrival.as_secs_f64() - 5.5).abs() < 1e-9);
        assert!((s.end().as_secs_f64() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn sequence_with_gaps_applies_each_gap() {
        let a = Trace::new(vec![frame(0, 0.5)], SimTime::from_secs_f64(1.0)).unwrap();
        let b = Trace::new(vec![frame(0, 0.5)], SimTime::from_secs_f64(1.0)).unwrap();
        let s = Trace::sequence_with_gaps(&[
            (SimDuration::from_secs(2), a),
            (SimDuration::from_secs(5), b),
        ]);
        assert!((s.frames()[0].arrival.as_secs_f64() - 2.5).abs() < 1e-9);
        assert!((s.frames()[1].arrival.as_secs_f64() - 8.5).abs() < 1e-9);
        assert!((s.end().as_secs_f64() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::empty();
        assert!(t.frames().is_empty());
        assert_eq!(t.mean_arrival_rate(), 0.0);
        assert_eq!(Trace::default(), t);
    }

    #[test]
    fn json_roundtrip() {
        let t = Trace::new(vec![frame(0, 1.0)], SimTime::from_secs_f64(2.0)).unwrap();
        let json = t.to_json().dump();
        let back = Trace::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("workload-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let t = Trace::new(
            vec![frame(0, 0.5), frame(1, 1.25)],
            SimTime::from_secs_f64(2.0),
        )
        .unwrap();
        t.save_json(&path).unwrap();
        let back = Trace::load_json(&path).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn load_rejects_corrupt_and_invalid_data() {
        let dir = std::env::temp_dir().join("workload-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(Trace::load_json(&path).is_err());
        // Structurally valid JSON violating the ordering invariant.
        let bad = dir.join("bad.json");
        let t = Trace::new(
            vec![frame(0, 0.5), frame(1, 1.25)],
            SimTime::from_secs_f64(2.0),
        )
        .unwrap();
        let mut json = t.to_json();
        json["frames"][0]["arrival"] = SimTime::from_secs_f64(1.9).to_json();
        std::fs::write(&bad, json.dump()).unwrap();
        let err = Trace::load_json(&bad).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
