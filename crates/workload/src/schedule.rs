//! Piecewise-constant rate schedules.
//!
//! Both the frame *arrival* rate (network conditions, clip changes) and
//! the frame *decode* rate (content complexity) change over time in
//! steps. A [`RateSchedule`] is the ground-truth description of those
//! steps; the change-point detector's job is to recover them from samples
//! alone.

use crate::WorkloadError;

/// One constant-rate segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Segment length, seconds.
    pub duration: f64,
    /// Rate during the segment, events/second.
    pub rate: f64,
}

/// A piecewise-constant rate over `[0, total_duration)`.
///
/// # Example
///
/// ```
/// use workload::schedule::RateSchedule;
///
/// # fn main() -> Result<(), workload::WorkloadError> {
/// // 10 fr/s for 10 s, then a step up to 60 fr/s (the paper's Fig. 10 case).
/// let sched = RateSchedule::new(vec![(10.0, 10.0), (10.0, 60.0)])?;
/// assert_eq!(sched.rate_at(5.0), 10.0);
/// assert_eq!(sched.rate_at(15.0), 60.0);
/// assert_eq!(sched.total_duration(), 20.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RateSchedule {
    segments: Vec<Segment>,
}

impl RateSchedule {
    /// Builds a schedule from `(duration_secs, rate)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty or any duration/rate is
    /// non-positive or non-finite.
    pub fn new(segments: Vec<(f64, f64)>) -> Result<Self, WorkloadError> {
        if segments.is_empty() {
            return Err(WorkloadError::Empty { name: "segments" });
        }
        let mut out = Vec::with_capacity(segments.len());
        for (duration, rate) in segments {
            if !(duration.is_finite() && duration > 0.0) {
                return Err(WorkloadError::InvalidParameter {
                    name: "duration",
                    value: duration,
                });
            }
            if !(rate.is_finite() && rate > 0.0) {
                return Err(WorkloadError::InvalidParameter {
                    name: "rate",
                    value: rate,
                });
            }
            out.push(Segment { duration, rate });
        }
        Ok(RateSchedule { segments: out })
    }

    /// A single-segment schedule: `rate` held for `duration` seconds.
    ///
    /// # Errors
    ///
    /// Returns an error if either value is non-positive or non-finite.
    pub fn constant(rate: f64, duration: f64) -> Result<Self, WorkloadError> {
        RateSchedule::new(vec![(duration, rate)])
    }

    /// The segments in order.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total schedule length, seconds.
    #[must_use]
    pub fn total_duration(&self) -> f64 {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// The rate in force at `t` seconds from the schedule start. Clamps to
    /// the last segment's rate beyond the end.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or NaN.
    #[must_use]
    pub fn rate_at(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "schedule time must be non-negative");
        let mut elapsed = 0.0;
        for s in &self.segments {
            elapsed += s.duration;
            if t < elapsed {
                return s.rate;
            }
        }
        self.segments.last().expect("validated non-empty").rate
    }

    /// The instants (seconds from schedule start) at which the rate
    /// changes — the ground-truth change points.
    #[must_use]
    pub fn change_points(&self) -> Vec<f64> {
        let mut points = Vec::new();
        let mut elapsed = 0.0;
        for w in self.segments.windows(2) {
            elapsed += w[0].duration;
            if (w[1].rate - w[0].rate).abs() > f64::EPSILON {
                points.push(elapsed);
            }
        }
        points
    }

    /// Mean rate over the whole schedule, duration-weighted.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        let total = self.total_duration();
        self.segments
            .iter()
            .map(|s| s.rate * s.duration)
            .sum::<f64>()
            / total
    }

    /// Expected number of events over the whole schedule
    /// (`Σ rateᵢ · durationᵢ`).
    #[must_use]
    pub fn expected_events(&self) -> f64 {
        self.segments.iter().map(|s| s.rate * s.duration).sum()
    }

    /// Appends another schedule after this one.
    #[must_use]
    pub fn then(mut self, other: &RateSchedule) -> RateSchedule {
        self.segments.extend_from_slice(&other.segments);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step() -> RateSchedule {
        RateSchedule::new(vec![(10.0, 10.0), (5.0, 60.0), (5.0, 30.0)]).unwrap()
    }

    #[test]
    fn rate_lookup_per_segment() {
        let s = step();
        assert_eq!(s.rate_at(0.0), 10.0);
        assert_eq!(s.rate_at(9.999), 10.0);
        assert_eq!(s.rate_at(10.0), 60.0);
        assert_eq!(s.rate_at(14.9), 60.0);
        assert_eq!(s.rate_at(15.0), 30.0);
        // Clamped beyond the end.
        assert_eq!(s.rate_at(100.0), 30.0);
    }

    #[test]
    fn change_points_found() {
        let s = step();
        assert_eq!(s.change_points(), vec![10.0, 15.0]);
        let flat = RateSchedule::constant(20.0, 30.0).unwrap();
        assert!(flat.change_points().is_empty());
    }

    #[test]
    fn equal_adjacent_rates_are_not_change_points() {
        let s = RateSchedule::new(vec![(5.0, 20.0), (5.0, 20.0), (5.0, 40.0)]).unwrap();
        assert_eq!(s.change_points(), vec![10.0]);
    }

    #[test]
    fn aggregate_quantities() {
        let s = step();
        assert!((s.total_duration() - 20.0).abs() < 1e-12);
        assert!((s.expected_events() - (100.0 + 300.0 + 150.0)).abs() < 1e-12);
        assert!((s.mean_rate() - 550.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn then_concatenates() {
        let s = RateSchedule::constant(10.0, 5.0)
            .unwrap()
            .then(&RateSchedule::constant(20.0, 5.0).unwrap());
        assert_eq!(s.segments().len(), 2);
        assert_eq!(s.rate_at(7.0), 20.0);
    }

    #[test]
    fn validation() {
        assert!(RateSchedule::new(vec![]).is_err());
        assert!(RateSchedule::new(vec![(0.0, 10.0)]).is_err());
        assert!(RateSchedule::new(vec![(5.0, 0.0)]).is_err());
        assert!(RateSchedule::new(vec![(5.0, f64::NAN)]).is_err());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let _ = step().rate_at(-1.0);
    }
}
