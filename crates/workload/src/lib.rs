#![warn(missing_docs)]
//! Streaming-media workload generators.
//!
//! The paper evaluates on MP3 audio and MPEG2 video (CIF size) streamed to
//! the SmartBadge over its WLAN link. Real traces are not available, so
//! this crate generates **statistically matched synthetic workloads**
//! (see `DESIGN.md` for the substitution rationale):
//!
//! * frame interarrival times are exponential within a segment, with
//!   piecewise-constant rates — the rate steps are what the change-point
//!   detector must find ([`schedule`], [`arrivals`]),
//! * MP3 decode times have very little frame-to-frame variation within a
//!   clip but differ widely *between* clips (paper Table 2) — [`mp3`],
//! * MPEG decode times vary by a factor of ≈3 frame-to-frame through the
//!   I/P/B group-of-pictures structure and scene-dependent rate segments
//!   (paper refs [15, 16]) — [`mpeg`],
//! * sessions interleave clips with long idle gaps, the territory of the
//!   DPM policy (paper Table 5) — [`session`],
//! * every generated workload is an explicit, serializable [`trace::Trace`]
//!   so experiments can be recorded, replayed and diffed.
//!
//! # Example
//!
//! ```
//! use simcore::rng::SimRng;
//! use workload::mp3::Mp3Clip;
//!
//! let clip = Mp3Clip::table2()[0]; // clip A
//! let mut rng = SimRng::seed_from(1);
//! let trace = clip.generate(&mut rng);
//! assert!(!trace.frames().is_empty());
//! // Frames arrive at roughly the clip's nominal rate.
//! let measured = trace.mean_arrival_rate();
//! assert!((measured - clip.arrival_rate()).abs() / clip.arrival_rate() < 0.15);
//! ```

pub mod arrivals;
pub mod frame;
pub mod mp3;
pub mod mpeg;
pub mod schedule;
pub mod session;
pub mod trace;

pub use frame::{FrameRecord, MediaKind};
pub use mp3::Mp3Clip;
pub use mpeg::MpegClip;
pub use schedule::RateSchedule;
pub use session::Session;
pub use trace::Trace;

use std::error::Error;
use std::fmt;

/// Errors from workload construction.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A rate or duration parameter was out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An empty schedule or clip list where at least one entry is needed.
    Empty {
        /// Name of the offending argument.
        name: &'static str,
    },
    /// A clip label that is not in Table 2.
    UnknownClip {
        /// The unrecognized label.
        label: char,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidParameter { name, value } => {
                write!(f, "invalid workload parameter `{name}` = {value}")
            }
            WorkloadError::Empty { name } => write!(f, "`{name}` must not be empty"),
            WorkloadError::UnknownClip { label } => {
                write!(f, "unknown MP3 clip label `{label}` (expected A-F)")
            }
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WorkloadError>();
        assert!(WorkloadError::UnknownClip { label: 'Z' }
            .to_string()
            .contains('Z'));
    }
}
