//! User sessions: clips separated by idle periods.
//!
//! The combined DVS+DPM experiment (paper Table 5) plays "a sequence of
//! audio and video clips, separated by idle time. During longer idle
//! times, the power manager has the opportunity to place the SmartBadge in
//! the standby state." A [`Session`] describes such a day-in-the-life
//! workload; idle-gap lengths are drawn from a heavy-tailed Pareto
//! distribution, matching the observation (from the authors' earlier DPM
//! work) that real idle-time tails are not exponential.

use crate::mp3::Mp3Clip;
use crate::mpeg::MpegClip;
use crate::trace::Trace;
use crate::WorkloadError;
use simcore::dist::{Pareto, Sample};
use simcore::rng::SimRng;
use simcore::time::SimDuration;

/// One clip choice in a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClipChoice {
    /// An MP3 clip from Table 2, by label A–F.
    Mp3(char),
    /// The football video clip (875 s).
    Football,
    /// The Terminator 2 video clip (1200 s).
    Terminator2,
}

/// One session entry: an idle gap followed by a clip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionEntry {
    /// Idle time before the clip starts.
    pub idle_before: SimDuration,
    /// The clip to play.
    pub clip: ClipChoice,
}

/// A user session: an ordered list of entries.
///
/// # Example
///
/// ```
/// use simcore::rng::SimRng;
/// use workload::session::Session;
///
/// let mut rng = SimRng::seed_from(17);
/// let session = Session::table5(&mut rng);
/// let trace = session.generate(&mut rng).expect("valid canonical session");
/// assert!(trace.duration_secs() > 1000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    entries: Vec<SessionEntry>,
}

impl Session {
    /// Creates a session from explicit entries.
    ///
    /// # Errors
    ///
    /// Returns an error if `entries` is empty.
    pub fn new(entries: Vec<SessionEntry>) -> Result<Self, WorkloadError> {
        if entries.is_empty() {
            return Err(WorkloadError::Empty { name: "entries" });
        }
        Ok(Session { entries })
    }

    /// The canonical Table 5 session: all six MP3 clips and both video
    /// clips, interleaved, with heavy-tailed user-absence gaps (Pareto,
    /// scale 300 s, shape 1.5, clamped to 60–1800 s) — the "longer idle
    /// times" during which "the power manager has the opportunity to
    /// place the SmartBadge in the standby state". Idle dominates the
    /// session (a PDA spends most of its day waiting), which is what
    /// gives DPM its leverage in the paper's Table 5.
    #[must_use]
    pub fn table5(rng: &mut SimRng) -> Self {
        let order = [
            ClipChoice::Mp3('A'),
            ClipChoice::Football,
            ClipChoice::Mp3('C'),
            ClipChoice::Mp3('E'),
            ClipChoice::Terminator2,
            ClipChoice::Mp3('B'),
            ClipChoice::Mp3('D'),
            ClipChoice::Mp3('F'),
        ];
        let gaps = Pareto::new(300.0, 1.5).expect("static parameters are valid");
        let mut gap_rng = rng.fork("session-gaps");
        let entries = order
            .iter()
            .map(|&clip| SessionEntry {
                idle_before: SimDuration::from_secs_f64(
                    gaps.sample(&mut gap_rng).clamp(60.0, 1800.0),
                ),
                clip,
            })
            .collect();
        Session { entries }
    }

    /// The entries in order.
    #[must_use]
    pub fn entries(&self) -> &[SessionEntry] {
        &self.entries
    }

    /// Total idle time across all gaps.
    #[must_use]
    pub fn total_idle(&self) -> SimDuration {
        self.entries.iter().map(|e| e.idle_before).sum()
    }

    /// Generates the session's full frame trace.
    ///
    /// # Errors
    ///
    /// Returns an error if an MP3 label is unknown.
    pub fn generate(&self, rng: &mut SimRng) -> Result<Trace, WorkloadError> {
        let mut items = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            let trace = match e.clip {
                ClipChoice::Mp3(label) => Mp3Clip::by_label(label)?.generate(rng),
                ClipChoice::Football => MpegClip::football().generate(rng),
                ClipChoice::Terminator2 => MpegClip::terminator2().generate(rng),
            };
            items.push((e.idle_before, trace));
        }
        Ok(Trace::sequence_with_gaps(&items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::MediaKind;

    #[test]
    fn table5_contains_audio_and_video() {
        let mut rng = SimRng::seed_from(8);
        let s = Session::table5(&mut rng);
        let has_audio = s
            .entries()
            .iter()
            .any(|e| matches!(e.clip, ClipChoice::Mp3(_)));
        let has_video = s
            .entries()
            .iter()
            .any(|e| matches!(e.clip, ClipChoice::Football | ClipChoice::Terminator2));
        assert!(has_audio && has_video);
    }

    #[test]
    fn gaps_are_clamped_and_heavy_tailed() {
        let mut rng = SimRng::seed_from(8);
        let s = Session::table5(&mut rng);
        for e in s.entries() {
            let g = e.idle_before.as_secs_f64();
            assert!((60.0..=1800.0).contains(&g), "gap {g}");
        }
        assert!(s.total_idle() > SimDuration::from_secs(480));
    }

    #[test]
    fn generated_trace_covers_clips_and_gaps() {
        let mut rng = SimRng::seed_from(8);
        let s = Session::table5(&mut rng);
        let trace = s.generate(&mut rng).unwrap();
        let clip_secs = 653.0 + 875.0 + 1200.0;
        let idle_secs = s.total_idle().as_secs_f64();
        assert!((trace.duration_secs() - (clip_secs + idle_secs)).abs() < 1e-6);
        // Both media kinds present.
        let kinds: std::collections::HashSet<MediaKind> =
            trace.frames().iter().map(|f| f.kind).collect();
        assert_eq!(kinds.len(), 2);
    }

    #[test]
    fn frames_in_order_and_indexed() {
        let mut rng = SimRng::seed_from(9);
        let s = Session::table5(&mut rng);
        let trace = s.generate(&mut rng).unwrap();
        for (i, f) in trace.frames().iter().enumerate() {
            assert_eq!(f.index, i as u64);
        }
        assert!(trace
            .frames()
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn custom_session_validation() {
        assert!(Session::new(vec![]).is_err());
        let s = Session::new(vec![SessionEntry {
            idle_before: SimDuration::from_secs(10),
            clip: ClipChoice::Mp3('Z'),
        }])
        .unwrap();
        assert!(s.generate(&mut SimRng::seed_from(0)).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let build = |seed| {
            let mut rng = SimRng::seed_from(seed);
            let s = Session::table5(&mut rng);
            s.generate(&mut rng).unwrap()
        };
        assert_eq!(build(33), build(33));
    }
}
