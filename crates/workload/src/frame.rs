//! Frame records: the unit of work flowing through the system.

use simcore::json::{Json, ToJson};
use simcore::time::SimTime;
use std::fmt;

/// The media type of a stream; determines which memory bank decodes it and
/// which performance curve applies (paper Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaKind {
    /// MP3 audio — decoded out of SRAM, memory-bound performance curve.
    Mp3Audio,
    /// MPEG2 video (CIF size) — decoded out of SDRAM, near-linear curve.
    MpegVideo,
}

impl fmt::Display for MediaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaKind::Mp3Audio => f.write_str("mp3-audio"),
            MediaKind::MpegVideo => f.write_str("mpeg-video"),
        }
    }
}

/// One frame of a generated workload.
///
/// `work` is the decode time this frame needs **at the maximum CPU
/// frequency**; the system simulator stretches it according to the actual
/// operating point through the application performance curve. The true
/// generator rates are carried along so the *ideal* (oracle) detection
/// policy of the paper's comparison can read them, and so experiments can
/// verify detector output against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameRecord {
    /// Zero-based frame index within its trace.
    pub index: u64,
    /// Which decoder (and memory bank, and performance curve) this frame
    /// needs.
    pub kind: MediaKind,
    /// Arrival instant at the frame buffer.
    pub arrival: SimTime,
    /// Decode time at the maximum CPU frequency, seconds.
    pub work: f64,
    /// True arrival rate of the generating process at this frame, frames/s.
    pub true_arrival_rate: f64,
    /// True mean decode rate (at maximum frequency) of the generating
    /// process at this frame, frames/s.
    pub true_service_rate: f64,
}

impl MediaKind {
    /// Parses the [`Display`](fmt::Display) form back into a kind.
    #[must_use]
    pub fn parse(text: &str) -> Option<MediaKind> {
        match text {
            "mp3-audio" => Some(MediaKind::Mp3Audio),
            "mpeg-video" => Some(MediaKind::MpegVideo),
            _ => None,
        }
    }
}

impl FrameRecord {
    /// Validates internal consistency: non-negative work and positive
    /// rates. Generator output is checked with this in tests.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.work >= 0.0
            && self.work.is_finite()
            && self.true_arrival_rate > 0.0
            && self.true_service_rate > 0.0
    }

    /// Reconstructs a record from the JSON object produced by
    /// [`ToJson::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(v: &Json) -> Result<FrameRecord, String> {
        let nanos = |field: &str| {
            v[field]
                .as_u64()
                .ok_or_else(|| format!("frame field `{field}` must be integer nanoseconds"))
        };
        let num = |field: &str| {
            v[field]
                .as_f64()
                .ok_or_else(|| format!("frame field `{field}` must be a number"))
        };
        let kind = v["kind"]
            .as_str()
            .and_then(MediaKind::parse)
            .ok_or_else(|| "frame field `kind` must be a media-kind string".to_string())?;
        Ok(FrameRecord {
            index: v["index"]
                .as_u64()
                .ok_or_else(|| "frame field `index` must be a non-negative integer".to_string())?,
            kind,
            arrival: SimTime::from_nanos(nanos("arrival")?),
            work: num("work")?,
            true_arrival_rate: num("true_arrival_rate")?,
            true_service_rate: num("true_service_rate")?,
        })
    }
}

impl ToJson for MediaKind {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

simcore::impl_to_json!(FrameRecord {
    index,
    kind,
    arrival,
    work,
    true_arrival_rate,
    true_service_rate,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn media_kind_display() {
        assert_eq!(MediaKind::Mp3Audio.to_string(), "mp3-audio");
        assert_eq!(MediaKind::MpegVideo.to_string(), "mpeg-video");
    }

    #[test]
    fn record_validity() {
        let good = FrameRecord {
            index: 0,
            kind: MediaKind::Mp3Audio,
            arrival: SimTime::ZERO,
            work: 0.01,
            true_arrival_rate: 30.0,
            true_service_rate: 80.0,
        };
        assert!(good.is_valid());
        let bad = FrameRecord { work: -1.0, ..good };
        assert!(!bad.is_valid());
        let bad = FrameRecord {
            true_arrival_rate: 0.0,
            ..good
        };
        assert!(!bad.is_valid());
    }

    #[test]
    fn json_roundtrip() {
        let r = FrameRecord {
            index: 7,
            kind: MediaKind::MpegVideo,
            arrival: SimTime::from_secs_f64(1.5),
            work: 0.02,
            true_arrival_rate: 24.0,
            true_service_rate: 60.0,
        };
        let json = r.to_json().dump();
        let back = FrameRecord::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn from_json_rejects_malformed_fields() {
        let mut v = FrameRecord {
            index: 0,
            kind: MediaKind::Mp3Audio,
            arrival: SimTime::ZERO,
            work: 0.01,
            true_arrival_rate: 10.0,
            true_service_rate: 100.0,
        }
        .to_json();
        v["kind"] = Json::Str("vorbis".to_string());
        assert!(FrameRecord::from_json(&v).is_err());
        v["kind"] = Json::Str("mp3-audio".to_string());
        v["arrival"] = Json::Str("soon".to_string());
        assert!(FrameRecord::from_json(&v).is_err());
    }
}
