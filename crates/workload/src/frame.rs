//! Frame records: the unit of work flowing through the system.

use serde::{Deserialize, Serialize};
use simcore::time::SimTime;
use std::fmt;

/// The media type of a stream; determines which memory bank decodes it and
/// which performance curve applies (paper Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MediaKind {
    /// MP3 audio — decoded out of SRAM, memory-bound performance curve.
    Mp3Audio,
    /// MPEG2 video (CIF size) — decoded out of SDRAM, near-linear curve.
    MpegVideo,
}

impl fmt::Display for MediaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaKind::Mp3Audio => f.write_str("mp3-audio"),
            MediaKind::MpegVideo => f.write_str("mpeg-video"),
        }
    }
}

/// One frame of a generated workload.
///
/// `work` is the decode time this frame needs **at the maximum CPU
/// frequency**; the system simulator stretches it according to the actual
/// operating point through the application performance curve. The true
/// generator rates are carried along so the *ideal* (oracle) detection
/// policy of the paper's comparison can read them, and so experiments can
/// verify detector output against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameRecord {
    /// Zero-based frame index within its trace.
    pub index: u64,
    /// Which decoder (and memory bank, and performance curve) this frame
    /// needs.
    pub kind: MediaKind,
    /// Arrival instant at the frame buffer.
    pub arrival: SimTime,
    /// Decode time at the maximum CPU frequency, seconds.
    pub work: f64,
    /// True arrival rate of the generating process at this frame, frames/s.
    pub true_arrival_rate: f64,
    /// True mean decode rate (at maximum frequency) of the generating
    /// process at this frame, frames/s.
    pub true_service_rate: f64,
}

impl FrameRecord {
    /// Validates internal consistency: non-negative work and positive
    /// rates. Generator output is checked with this in tests.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.work >= 0.0
            && self.work.is_finite()
            && self.true_arrival_rate > 0.0
            && self.true_service_rate > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn media_kind_display() {
        assert_eq!(MediaKind::Mp3Audio.to_string(), "mp3-audio");
        assert_eq!(MediaKind::MpegVideo.to_string(), "mpeg-video");
    }

    #[test]
    fn record_validity() {
        let good = FrameRecord {
            index: 0,
            kind: MediaKind::Mp3Audio,
            arrival: SimTime::ZERO,
            work: 0.01,
            true_arrival_rate: 30.0,
            true_service_rate: 80.0,
        };
        assert!(good.is_valid());
        let bad = FrameRecord { work: -1.0, ..good };
        assert!(!bad.is_valid());
        let bad = FrameRecord {
            true_arrival_rate: 0.0,
            ..good
        };
        assert!(!bad.is_valid());
    }

    #[test]
    fn serde_roundtrip() {
        let r = FrameRecord {
            index: 7,
            kind: MediaKind::MpegVideo,
            arrival: SimTime::from_secs_f64(1.5),
            work: 0.02,
            true_arrival_rate: 24.0,
            true_service_rate: 60.0,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: FrameRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
