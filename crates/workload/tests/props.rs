//! Property-based tests for the workload generators.

use proptest::prelude::*;
use simcore::rng::SimRng;
use simcore::time::SimDuration;
use workload::schedule::RateSchedule;
use workload::session::{ClipChoice, Session, SessionEntry};
use workload::{mp3, MediaKind, Mp3Clip, MpegClip, Trace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any MP3 sequence over valid labels produces a well-formed trace:
    /// sorted, indexed, correct duration, correct per-clip ground truth.
    #[test]
    fn mp3_sequences_are_well_formed(
        picks in prop::collection::vec(0usize..6, 1..6),
        seed in 0u64..1_000,
    ) {
        let labels: String = picks.iter().map(|&i| (b'A' + i as u8) as char).collect();
        let mut rng = SimRng::seed_from(seed);
        let trace = mp3::sequence(&labels, &mut rng).expect("valid labels");
        let expected_duration: f64 = picks
            .iter()
            .map(|&i| Mp3Clip::table2()[i].duration_secs)
            .sum();
        prop_assert!((trace.duration_secs() - expected_duration).abs() < 1e-6);
        for (i, f) in trace.frames().iter().enumerate() {
            prop_assert_eq!(f.index, i as u64);
            prop_assert!(f.is_valid());
            prop_assert_eq!(f.kind, MediaKind::Mp3Audio);
        }
        prop_assert!(trace
            .frames()
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
    }

    /// Synthesized MPEG clips cover their duration with valid scenes and
    /// stay inside the paper's rate ranges for any length and seed.
    #[test]
    fn synthesized_mpeg_clips_in_range(
        duration in 60.0f64..2_000.0,
        seed in 0u64..1_000,
    ) {
        let clip = MpegClip::synthesize("prop", duration, seed);
        prop_assert!((clip.duration_secs() - duration).abs() < 1e-6);
        for seg in clip.arrival_schedule().segments() {
            prop_assert!((9.0..=32.0).contains(&seg.rate));
        }
        for seg in clip.service_schedule().segments() {
            prop_assert!((45.0..=90.0).contains(&seg.rate));
        }
    }

    /// Trace sequencing preserves frame counts, ordering and total
    /// duration for any combination of clips and gaps.
    #[test]
    fn sequencing_conserves_frames(
        gaps in prop::collection::vec(0.0f64..100.0, 1..4),
        seed in 0u64..500,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let parts: Vec<Trace> = gaps
            .iter()
            .enumerate()
            .map(|(i, _)| Mp3Clip::table2()[i % 6].generate(&mut rng))
            .collect();
        let items: Vec<(SimDuration, Trace)> = gaps
            .iter()
            .zip(parts.iter())
            .map(|(&g, t)| (SimDuration::from_secs_f64(g), t.clone()))
            .collect();
        let combined = Trace::sequence_with_gaps(&items);
        let total_frames: usize = parts.iter().map(|t| t.frames().len()).sum();
        prop_assert_eq!(combined.frames().len(), total_frames);
        let expected_duration: f64 = gaps.iter().sum::<f64>()
            + parts.iter().map(Trace::duration_secs).sum::<f64>();
        prop_assert!((combined.duration_secs() - expected_duration).abs() < 1e-6);
        prop_assert!(combined
            .frames()
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
    }

    /// Custom sessions generate traces whose duration equals clips plus
    /// gaps, for any gap choices.
    #[test]
    fn custom_sessions_account_for_gaps(
        gap_secs in prop::collection::vec(1.0f64..500.0, 1..4),
        seed in 0u64..200,
    ) {
        let entries: Vec<SessionEntry> = gap_secs
            .iter()
            .enumerate()
            .map(|(i, &g)| SessionEntry {
                idle_before: SimDuration::from_secs_f64(g),
                clip: ClipChoice::Mp3((b'A' + (i % 6) as u8) as char),
            })
            .collect();
        let session = Session::new(entries).expect("non-empty");
        let mut rng = SimRng::seed_from(seed);
        let trace = session.generate(&mut rng).expect("valid clips");
        let clips: f64 = (0..gap_secs.len())
            .map(|i| Mp3Clip::table2()[i % 6].duration_secs)
            .sum();
        let expected = clips + gap_secs.iter().sum::<f64>();
        prop_assert!((trace.duration_secs() - expected).abs() < 1e-6);
    }

    /// Schedule rate lookups always return one of the segment rates, and
    /// the mean rate is within the segment extremes.
    #[test]
    fn schedule_rates_within_bounds(
        segs in prop::collection::vec((1.0f64..50.0, 0.5f64..200.0), 1..6),
        t_frac in 0.0f64..1.5,
    ) {
        let schedule = RateSchedule::new(segs.clone()).expect("valid segments");
        let t = schedule.total_duration() * t_frac;
        let r = schedule.rate_at(t);
        prop_assert!(segs.iter().any(|&(_, rate)| (rate - r).abs() < 1e-12));
        let lo = segs.iter().map(|&(_, r)| r).fold(f64::INFINITY, f64::min);
        let hi = segs.iter().map(|&(_, r)| r).fold(0.0, f64::max);
        prop_assert!((lo - 1e-9..=hi + 1e-9).contains(&schedule.mean_rate()));
    }
}
