//! Property-based tests for the hardware model.

use hardware::battery::Battery;
use hardware::cpu::CpuModel;
use hardware::dcdc::DcDcConverter;
use hardware::perf::PerformanceCurve;
use hardware::{PowerState, SmartBadge};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CPU active power is strictly increasing across operating points
    /// and quantization never under-delivers frequency.
    #[test]
    fn cpu_power_monotone_and_quantization_sound(freq in 0.0f64..400.0) {
        let cpu = CpuModel::sa1100();
        let mut last = 0.0;
        for op in cpu.operating_points() {
            let p = cpu.active_power_mw(*op);
            prop_assert!(p > last);
            last = p;
        }
        let q = cpu.lowest_point_at_least(freq);
        if freq <= 221.2 {
            prop_assert!(q.freq_mhz >= freq - 1e-9);
            // Tight: the next step down (if any) is below the request.
            if let Some(below) = cpu
                .operating_points()
                .iter()
                .rev()
                .find(|p| p.freq_mhz < q.freq_mhz - 1e-9)
            {
                prop_assert!(below.freq_mhz < freq);
            }
        } else {
            prop_assert!((q.freq_mhz - 221.2).abs() < 1e-9);
        }
    }

    /// Performance curves from any stall fraction are monotone, bounded
    /// by (0, 1], and their inversion is a true inverse on the curve's
    /// range.
    #[test]
    fn perf_curves_monotone_and_invertible(
        mem_fraction in 0.0f64..0.95,
        f in 59.0f64..221.2,
    ) {
        let cpu = CpuModel::sa1100();
        let curve = PerformanceCurve::from_memory_model(&cpu, mem_fraction)
            .expect("valid fraction");
        let p = curve.performance_at(f);
        prop_assert!(p > 0.0 && p <= 1.0);
        let f_back = curve.frequency_for_performance(p);
        prop_assert!((curve.performance_at(f_back) - p).abs() < 1e-9);
        // Higher stall fraction keeps more performance at low clocks.
        let flat = PerformanceCurve::from_memory_model(&cpu, 0.0).expect("valid");
        prop_assert!(p + 1e-12 >= flat.performance_at(f));
    }

    /// System power strictly decreases with deeper uniform states, for
    /// the stock badge.
    #[test]
    fn power_states_strictly_ordered(_x in 0..1i32) {
        let badge = SmartBadge::new();
        let seq = [
            PowerState::Active,
            PowerState::Idle,
            PowerState::Standby,
            PowerState::Off,
        ];
        for w in seq.windows(2) {
            prop_assert!(badge.uniform_power_mw(w[0]) > badge.uniform_power_mw(w[1]));
        }
    }

    /// DC-DC battery draw is monotone in load and efficiency stays in
    /// (0, 1].
    #[test]
    fn dcdc_monotone(load1 in 0.1f64..8_000.0, load2 in 0.1f64..8_000.0) {
        let c = DcDcConverter::smartbadge();
        let (lo, hi) = if load1 <= load2 { (load1, load2) } else { (load2, load1) };
        prop_assert!(c.battery_draw_mw(lo) <= c.battery_draw_mw(hi) + 1e-9);
        let e = c.efficiency(lo);
        prop_assert!(e > 0.0 && e <= 1.0);
        prop_assert!(c.battery_draw_mw(lo) >= lo);
    }

    /// Battery lifetime scales exactly inversely with power.
    #[test]
    fn battery_lifetime_inverse(capacity in 0.1f64..100.0, power in 1.0f64..10_000.0, k in 1.1f64..10.0) {
        let b = Battery::new(capacity).expect("valid capacity");
        let l1 = b.lifetime_hours(power);
        let l2 = b.lifetime_hours(power * k);
        prop_assert!((l1 / l2 - k).abs() < 1e-9);
    }

    /// Break-even times, when they exist, satisfy the defining equality:
    /// idling for exactly the break-even time costs the same energy as
    /// sleeping and waking.
    #[test]
    fn break_even_balances_energies(idx in 0usize..6) {
        let badge = SmartBadge::new();
        let spec = badge.components()[idx];
        for state in [PowerState::Standby, PowerState::Off] {
            if let Some(be) = spec.break_even(state) {
                let t = be.as_secs_f64();
                let idle_energy = spec.idle_mw * t;
                let sleep_energy = spec.power_mw(state) * t
                    + (spec.active_mw - spec.power_mw(state))
                        * spec.nominal_wakeup(state).as_secs_f64();
                prop_assert!(
                    (idle_energy - sleep_energy).abs() <= 1e-6 * idle_energy.max(1.0),
                    "{}: idle {idle_energy} vs sleep {sleep_energy}",
                    spec.id
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The component power-state machine never reaches an illegal state
    /// under arbitrary command sequences: failed transitions leave the
    /// state untouched, and every reachable state is one of the four.
    #[test]
    fn component_state_machine_is_closed(commands in prop::collection::vec(0u8..4, 1..60)) {
        use hardware::component::Component;
        let badge = SmartBadge::new();
        let mut c = Component::new(*badge.component(hardware::component::ComponentId::Cpu));
        for cmd in commands {
            let target = match cmd {
                0 => PowerState::Active,
                1 => PowerState::Idle,
                2 => PowerState::Standby,
                _ => PowerState::Off,
            };
            let before = c.state();
            match c.transition(target) {
                Ok(latency) => {
                    prop_assert_eq!(c.state(), target);
                    // Latency is only paid when waking from a sleep state.
                    if target == PowerState::Active && before.is_sleep_state() {
                        prop_assert!(latency > simcore::time::SimDuration::ZERO);
                    } else {
                        prop_assert_eq!(latency, simcore::time::SimDuration::ZERO);
                    }
                }
                Err(_) => prop_assert_eq!(c.state(), before),
            }
            // Power is always the spec's value for the current state.
            prop_assert_eq!(c.power_mw(), c.spec().power_mw(c.state()));
        }
    }

    /// Wake-up latencies are always within the uniform [0.5, 1.5]x band
    /// of the nominal value, for every component and sleep state.
    #[test]
    fn wakeup_latencies_within_uniform_band(idx in 0usize..6, deep in 0u8..2, seed in 0u64..500) {
        use hardware::component::Component;
        let badge = SmartBadge::new();
        let spec = badge.components()[idx];
        let mut c = Component::new(spec);
        c.transition(PowerState::Idle).expect("active -> idle");
        let state = if deep == 0 { PowerState::Standby } else { PowerState::Off };
        c.transition(state).expect("idle -> sleep");
        let nominal = spec.nominal_wakeup(state).as_secs_f64();
        let mut rng = simcore::rng::SimRng::seed_from(seed);
        for _ in 0..20 {
            let w = c.wakeup_latency(&mut rng).as_secs_f64();
            prop_assert!(w >= 0.5 * nominal - 1e-12 && w <= 1.5 * nominal + 1e-12);
        }
    }
}
