//! Battery model and lifetime estimation.
//!
//! The headline motivation of the paper is battery lifetime: "Portable
//! systems require long battery lifetime while still delivering high
//! performance." This module turns the energy totals from the experiments
//! into the lifetime numbers a product designer would quote, including the
//! DC-DC conversion loss.

use crate::dcdc::DcDcConverter;
use crate::HwError;

/// An ideal-capacity battery (no rate-dependent capacity fade).
///
/// # Example
///
/// ```
/// use hardware::battery::Battery;
///
/// # fn main() -> Result<(), hardware::HwError> {
/// let batt = Battery::new(5.0)?; // 5 Wh, a small Li-Ion cell
/// // A 3.5 W system drains it in under 1.5 hours…
/// let hours_full = batt.lifetime_hours(3500.0);
/// assert!(hours_full < 1.5);
/// // …a 3x energy saving triples the lifetime.
/// assert!((batt.lifetime_hours(3500.0 / 3.0) - 3.0 * hours_full).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    capacity_wh: f64,
}

impl Battery {
    /// Creates a battery with the given capacity in watt-hours.
    ///
    /// # Errors
    ///
    /// Returns an error unless the capacity is finite and positive.
    pub fn new(capacity_wh: f64) -> Result<Self, HwError> {
        if !(capacity_wh.is_finite() && capacity_wh > 0.0) {
            return Err(HwError::InvalidParameter {
                name: "capacity_wh",
                value: capacity_wh,
            });
        }
        Ok(Battery { capacity_wh })
    }

    /// Capacity in watt-hours.
    #[must_use]
    pub fn capacity_wh(&self) -> f64 {
        self.capacity_wh
    }

    /// Capacity in joules.
    #[must_use]
    pub fn capacity_joules(&self) -> f64 {
        self.capacity_wh * 3600.0
    }

    /// Lifetime in hours at a constant average drain of `avg_power_mw`
    /// measured **at the battery terminals**.
    ///
    /// # Panics
    ///
    /// Panics if `avg_power_mw` is not finite and positive.
    #[must_use]
    pub fn lifetime_hours(&self, avg_power_mw: f64) -> f64 {
        assert!(
            avg_power_mw.is_finite() && avg_power_mw > 0.0,
            "average power must be positive"
        );
        self.capacity_wh / (avg_power_mw * 1e-3)
    }

    /// Lifetime in hours when the system draws `rail_power_mw` at the
    /// rails through `converter`.
    ///
    /// # Panics
    ///
    /// Panics if `rail_power_mw` is not finite and positive.
    #[must_use]
    pub fn lifetime_hours_through(&self, rail_power_mw: f64, converter: &DcDcConverter) -> f64 {
        self.lifetime_hours(converter.battery_draw_mw(rail_power_mw))
    }

    /// Fraction of the battery consumed by `energy_joules` delivered at
    /// the terminals (may exceed 1.0 if the budget is blown).
    ///
    /// # Panics
    ///
    /// Panics if `energy_joules` is negative or not finite.
    #[must_use]
    pub fn drained_fraction(&self, energy_joules: f64) -> f64 {
        assert!(
            energy_joules.is_finite() && energy_joules >= 0.0,
            "energy must be finite and non-negative"
        );
        energy_joules / self.capacity_joules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_scales_inversely_with_power() {
        let b = Battery::new(10.0).unwrap();
        assert!((b.lifetime_hours(1000.0) - 10.0).abs() < 1e-12);
        assert!((b.lifetime_hours(2000.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_units() {
        let b = Battery::new(2.0).unwrap();
        assert!((b.capacity_joules() - 7200.0).abs() < 1e-9);
        assert!((b.drained_fraction(3600.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn converter_losses_shorten_lifetime() {
        let b = Battery::new(5.0).unwrap();
        let conv = DcDcConverter::smartbadge();
        let ideal = b.lifetime_hours(2000.0);
        let real = b.lifetime_hours_through(2000.0, &conv);
        assert!(real < ideal);
    }

    #[test]
    fn rejects_bad_capacity() {
        for c in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(Battery::new(c).is_err());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_power_lifetime_panics() {
        let _ = Battery::new(1.0).unwrap().lifetime_hours(0.0);
    }
}
