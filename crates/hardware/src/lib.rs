#![warn(missing_docs)]
//! SmartBadge portable-device hardware model.
//!
//! The SmartBadge (paper Section 2.1, Figure 2) is an embedded system built
//! around a StrongARM SA-1100 processor with a display, a WLAN RF link,
//! FLASH, SRAM and DRAM, powered through a DC-DC converter. This crate
//! models every piece the power manager can observe or control:
//!
//! * [`state`] — the four power states (active / idle / standby / off) and
//!   legal transitions,
//! * [`component`] — per-component power draw and wake-up latencies
//!   (paper Table 1),
//! * [`cpu`] — the SA-1100 operating points: 12 clock frequencies with
//!   their minimum supply voltages (paper Figure 3) and CMOS `f·V²` power
//!   scaling,
//! * [`perf`] — application performance vs. CPU frequency, including the
//!   memory-bound saturation of MP3-on-SRAM and the near-linear scaling of
//!   MPEG-on-SDRAM (paper Figures 4 and 5),
//! * [`smartbadge`] — the assembled device with per-component energy
//!   metering,
//! * [`energy`] — energy accounting,
//! * [`dcdc`] — DC-DC converter efficiency,
//! * [`battery`] — battery-lifetime estimation.
//!
//! ## Fidelity note
//!
//! Table 1 of the paper scan is OCR-garbled; the numbers in
//! [`smartbadge::SmartBadge::table1`] are reconstructed from the values the
//! same authors published for the same platform (ISLPED'00 / MobiCom'00)
//! and are marked as such in `DESIGN.md`. All policies consume them through
//! the same interfaces they would consume measured values.
//!
//! # Example
//!
//! ```
//! use hardware::cpu::CpuModel;
//! use hardware::perf::PerformanceCurve;
//!
//! let cpu = CpuModel::sa1100();
//! let op = cpu.operating_point_for_frequency(103.2).expect("valid SA-1100 step");
//! assert!(op.voltage_v < cpu.max_operating_point().voltage_v);
//!
//! // MP3 decode is memory bound: halving the clock does not halve throughput.
//! let mp3 = PerformanceCurve::mp3_on_sram(&cpu);
//! let perf_half = mp3.performance_at(110.6);
//! assert!(perf_half > 0.5);
//! ```

pub mod battery;
pub mod component;
pub mod cpu;
pub mod dcdc;
pub mod energy;
pub mod perf;
pub mod smartbadge;
pub mod state;

pub use component::{ComponentId, ComponentSpec};
pub use cpu::{CpuModel, OperatingPoint};
pub use energy::EnergyMeter;
pub use perf::PerformanceCurve;
pub use smartbadge::SmartBadge;
pub use state::PowerState;

use std::error::Error;
use std::fmt;

/// Errors reported by the hardware model.
#[derive(Debug, Clone, PartialEq)]
pub enum HwError {
    /// A requested CPU frequency is not one of the device's discrete
    /// operating points.
    UnknownFrequency {
        /// The requested frequency in MHz.
        freq_mhz: f64,
    },
    /// A power-state transition that the hardware does not support.
    IllegalTransition {
        /// State the component is currently in.
        from: state::PowerState,
        /// Requested destination state.
        to: state::PowerState,
    },
    /// A numeric model parameter was out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::UnknownFrequency { freq_mhz } => {
                write!(
                    f,
                    "frequency {freq_mhz} MHz is not a supported operating point"
                )
            }
            HwError::IllegalTransition { from, to } => {
                write!(f, "illegal power-state transition from {from} to {to}")
            }
            HwError::InvalidParameter { name, value } => {
                write!(f, "invalid hardware parameter `{name}` = {value}")
            }
        }
    }
}

impl Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HwError>();
        let e = HwError::UnknownFrequency { freq_mhz: 42.0 };
        assert!(e.to_string().contains("42"));
    }
}
