//! SA-1100 CPU operating points and CMOS power scaling.
//!
//! The StrongARM SA-1100 on the SmartBadge can be reconfigured at run time,
//! "by a simple write to a hardware register", to execute at one of a fixed
//! set of clock frequencies; for each frequency there is a minimum voltage
//! at which the part still runs correctly (paper Section 2.1.1, Figure 3).
//! Running at the minimum frequency/voltage that sustains the required
//! performance saves power even while active — the core rationale of DVS.
//!
//! Dynamic CMOS power scales as `P ∝ f · V²`, so the active power at an
//! operating point `(f, V)` relative to the maximum point `(f_max, V_max)`
//! is `(f/f_max) · (V/V_max)²`.

use crate::HwError;
use simcore::time::SimDuration;

/// One CPU operating point: a clock frequency and its minimum voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Core clock frequency, MHz.
    pub freq_mhz: f64,
    /// Minimum supply voltage at this frequency, volts.
    pub voltage_v: f64,
}

impl OperatingPoint {
    /// Relative dynamic power of this point versus a reference point:
    /// `(f/f_ref) · (V/V_ref)²`.
    #[must_use]
    pub fn power_ratio_vs(&self, reference: &OperatingPoint) -> f64 {
        (self.freq_mhz / reference.freq_mhz)
            * (self.voltage_v / reference.voltage_v)
            * (self.voltage_v / reference.voltage_v)
    }
}

/// The set of discrete operating points of a DVS-capable CPU, with its
/// active/idle power at the maximum point.
///
/// # Example
///
/// ```
/// use hardware::cpu::CpuModel;
///
/// let cpu = CpuModel::sa1100();
/// assert_eq!(cpu.operating_points().len(), 12);
/// let lowest = cpu.min_operating_point();
/// let highest = cpu.max_operating_point();
/// // Scaling down frequency and voltage cuts active power superlinearly:
/// assert!(cpu.active_power_mw(lowest) < 0.3 * cpu.active_power_mw(highest));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    points: Vec<OperatingPoint>,
    /// Active power at the maximum operating point, milliwatts.
    active_mw_at_max: f64,
    /// Idle power (clock gated, independent of the DVS setting), milliwatts.
    idle_mw: f64,
    /// Latency of changing between any two frequency settings.
    switch_latency: SimDuration,
}

impl CpuModel {
    /// The StrongARM SA-1100 as configured on the SmartBadge.
    ///
    /// Twelve clock steps from 59.0 to 221.2 MHz (the SA-1100 PLL grid).
    /// The minimum-voltage curve reproduces the convex shape of the
    /// paper's Figure 3: roughly 0.8 V at the lowest step rising to 1.5 V
    /// at 221.2 MHz. Active power at the top point is 400 mW and idle
    /// power 170 mW (Table 1). The frequency-switch latency is 150 µs —
    /// far below any frame decode time, which is why the paper can change
    /// frequency "without perceivable overhead".
    #[must_use]
    pub fn sa1100() -> Self {
        // SA-1100 core-clock PLL steps, MHz.
        const FREQS: [f64; 12] = [
            59.0, 73.7, 88.5, 103.2, 118.0, 132.7, 147.5, 162.2, 176.9, 191.7, 206.4, 221.2,
        ];
        let f_lo = FREQS[0];
        let f_hi = FREQS[11];
        let points = FREQS
            .iter()
            .map(|&f| {
                // Mildly convex minimum-voltage curve (Figure 3 shape):
                // V(f) = 0.8 + 0.7 · ((f − f_lo)/(f_hi − f_lo))^1.25
                let x = (f - f_lo) / (f_hi - f_lo);
                OperatingPoint {
                    freq_mhz: f,
                    voltage_v: 0.8 + 0.7 * x.powf(1.25),
                }
            })
            .collect();
        CpuModel {
            points,
            active_mw_at_max: 400.0,
            idle_mw: 170.0,
            switch_latency: SimDuration::from_micros(150),
        }
    }

    /// Builds a custom CPU model from explicit operating points.
    ///
    /// # Errors
    ///
    /// Returns an error if `points` is empty, not strictly increasing in
    /// frequency, non-increasing in voltage, or if a power is non-positive.
    pub fn from_points(
        points: Vec<OperatingPoint>,
        active_mw_at_max: f64,
        idle_mw: f64,
        switch_latency: SimDuration,
    ) -> Result<Self, HwError> {
        if points.is_empty() {
            return Err(HwError::InvalidParameter {
                name: "points",
                value: 0.0,
            });
        }
        for w in points.windows(2) {
            if w[1].freq_mhz <= w[0].freq_mhz {
                return Err(HwError::InvalidParameter {
                    name: "points (frequency order)",
                    value: w[1].freq_mhz,
                });
            }
            if w[1].voltage_v < w[0].voltage_v {
                return Err(HwError::InvalidParameter {
                    name: "points (voltage monotonicity)",
                    value: w[1].voltage_v,
                });
            }
        }
        if !(active_mw_at_max.is_finite() && active_mw_at_max > 0.0) {
            return Err(HwError::InvalidParameter {
                name: "active_mw_at_max",
                value: active_mw_at_max,
            });
        }
        if !(idle_mw.is_finite() && idle_mw >= 0.0) {
            return Err(HwError::InvalidParameter {
                name: "idle_mw",
                value: idle_mw,
            });
        }
        Ok(CpuModel {
            points,
            active_mw_at_max,
            idle_mw,
            switch_latency,
        })
    }

    /// The discrete operating points, in increasing frequency order.
    #[must_use]
    pub fn operating_points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// The slowest (lowest-power) operating point.
    #[must_use]
    pub fn min_operating_point(&self) -> OperatingPoint {
        self.points[0]
    }

    /// The fastest operating point.
    #[must_use]
    pub fn max_operating_point(&self) -> OperatingPoint {
        *self.points.last().expect("validated non-empty")
    }

    /// Latency of switching between two frequency settings.
    #[must_use]
    pub fn switch_latency(&self) -> SimDuration {
        self.switch_latency
    }

    /// Idle power (independent of the DVS setting), milliwatts.
    #[must_use]
    pub fn idle_mw(&self) -> f64 {
        self.idle_mw
    }

    /// Looks up the operating point with exactly this frequency
    /// (tolerance 0.05 MHz).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::UnknownFrequency`] if `freq_mhz` is not a
    /// supported step.
    pub fn operating_point_for_frequency(&self, freq_mhz: f64) -> Result<OperatingPoint, HwError> {
        self.points
            .iter()
            .find(|p| (p.freq_mhz - freq_mhz).abs() < 0.05)
            .copied()
            .ok_or(HwError::UnknownFrequency { freq_mhz })
    }

    /// The slowest operating point with frequency ≥ `freq_mhz`, or the
    /// maximum point if the request exceeds every step. This is how the
    /// DVS policy quantizes a continuous frequency requirement onto the
    /// hardware grid without violating the performance constraint.
    #[must_use]
    pub fn lowest_point_at_least(&self, freq_mhz: f64) -> OperatingPoint {
        self.points
            .iter()
            .find(|p| p.freq_mhz >= freq_mhz - 1e-9)
            .copied()
            .unwrap_or_else(|| self.max_operating_point())
    }

    /// Active power at `point`, milliwatts, via CMOS `f·V²` scaling from
    /// the maximum point.
    #[must_use]
    pub fn active_power_mw(&self, point: OperatingPoint) -> f64 {
        self.active_mw_at_max * point.power_ratio_vs(&self.max_operating_point())
    }

    /// Energy ratio per unit of work at `point` versus the maximum point,
    /// for CPU-bound work: time stretches by `f_max/f` while power shrinks
    /// by `(f/f_max)(V/V_max)²`, so energy per work unit scales as
    /// `(V/V_max)²`.
    #[must_use]
    pub fn energy_per_work_ratio(&self, point: OperatingPoint) -> f64 {
        let v = point.voltage_v / self.max_operating_point().voltage_v;
        v * v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sa1100_has_twelve_increasing_points() {
        let cpu = CpuModel::sa1100();
        let pts = cpu.operating_points();
        assert_eq!(pts.len(), 12);
        for w in pts.windows(2) {
            assert!(w[1].freq_mhz > w[0].freq_mhz);
            assert!(w[1].voltage_v >= w[0].voltage_v);
        }
        assert!((pts[0].freq_mhz - 59.0).abs() < 1e-9);
        assert!((pts[11].freq_mhz - 221.2).abs() < 1e-9);
    }

    #[test]
    fn voltage_range_matches_figure3_shape() {
        let cpu = CpuModel::sa1100();
        assert!((cpu.min_operating_point().voltage_v - 0.8).abs() < 1e-9);
        assert!((cpu.max_operating_point().voltage_v - 1.5).abs() < 1e-9);
        // Convex: midpoint voltage below linear interpolation.
        let mid = cpu.operating_point_for_frequency(132.7).unwrap();
        let linear = 0.8 + 0.7 * (132.7 - 59.0) / (221.2 - 59.0);
        assert!(mid.voltage_v < linear);
    }

    #[test]
    fn power_scaling_is_f_v_squared() {
        let cpu = CpuModel::sa1100();
        let max = cpu.max_operating_point();
        assert!((cpu.active_power_mw(max) - 400.0).abs() < 1e-9);
        let min = cpu.min_operating_point();
        let expected = 400.0 * (59.0 / 221.2) * (0.8 / 1.5_f64).powi(2);
        assert!((cpu.active_power_mw(min) - expected).abs() < 1e-9);
        // Over 5x reduction at the lowest point.
        assert!(cpu.active_power_mw(min) < 400.0 / 5.0);
    }

    #[test]
    fn energy_per_work_falls_with_voltage() {
        let cpu = CpuModel::sa1100();
        let min = cpu.min_operating_point();
        let e = cpu.energy_per_work_ratio(min);
        assert!((e - (0.8f64 / 1.5).powi(2)).abs() < 1e-12);
        assert!(e < 0.3);
        assert!((cpu.energy_per_work_ratio(cpu.max_operating_point()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_lookup_exact_and_unknown() {
        let cpu = CpuModel::sa1100();
        assert!(cpu.operating_point_for_frequency(103.2).is_ok());
        assert!(matches!(
            cpu.operating_point_for_frequency(100.0),
            Err(HwError::UnknownFrequency { .. })
        ));
    }

    #[test]
    fn lowest_point_at_least_quantizes_up() {
        let cpu = CpuModel::sa1100();
        let p = cpu.lowest_point_at_least(100.0);
        assert!((p.freq_mhz - 103.2).abs() < 1e-9);
        let p = cpu.lowest_point_at_least(59.0);
        assert!((p.freq_mhz - 59.0).abs() < 1e-9);
        // Beyond the top step: clamp to max.
        let p = cpu.lowest_point_at_least(500.0);
        assert!((p.freq_mhz - 221.2).abs() < 1e-9);
    }

    #[test]
    fn switch_latency_is_small() {
        let cpu = CpuModel::sa1100();
        assert_eq!(cpu.switch_latency(), SimDuration::from_micros(150));
        // Much shorter than a 30 fr/s frame period.
        assert!(cpu.switch_latency().as_secs_f64() < (1.0 / 30.0) / 100.0);
    }

    #[test]
    fn from_points_validates() {
        let good = vec![
            OperatingPoint {
                freq_mhz: 100.0,
                voltage_v: 1.0,
            },
            OperatingPoint {
                freq_mhz: 200.0,
                voltage_v: 1.4,
            },
        ];
        assert!(CpuModel::from_points(good.clone(), 400.0, 100.0, SimDuration::ZERO).is_ok());
        assert!(CpuModel::from_points(vec![], 400.0, 100.0, SimDuration::ZERO).is_err());
        let bad_freq = vec![good[1], good[0]];
        assert!(CpuModel::from_points(bad_freq, 400.0, 100.0, SimDuration::ZERO).is_err());
        let bad_volt = vec![
            OperatingPoint {
                freq_mhz: 100.0,
                voltage_v: 1.4,
            },
            OperatingPoint {
                freq_mhz: 200.0,
                voltage_v: 1.0,
            },
        ];
        assert!(CpuModel::from_points(bad_volt, 400.0, 100.0, SimDuration::ZERO).is_err());
        assert!(CpuModel::from_points(good.clone(), -1.0, 100.0, SimDuration::ZERO).is_err());
        assert!(CpuModel::from_points(good, 400.0, f64::NAN, SimDuration::ZERO).is_err());
    }

    #[test]
    fn power_ratio_reference_identity() {
        let p = OperatingPoint {
            freq_mhz: 150.0,
            voltage_v: 1.2,
        };
        assert!((p.power_ratio_vs(&p) - 1.0).abs() < 1e-12);
    }
}
