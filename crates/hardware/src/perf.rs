//! Application performance versus CPU frequency.
//!
//! The paper (Figures 4 and 5) measures normalized decode performance and
//! energy against the CPU frequency setting and observes that **the shape
//! depends on which memory the application uses**:
//!
//! * MP3 audio decodes out of the slower SRAM. Memory access time does not
//!   scale with the core clock, so performance saturates at high
//!   frequencies — the workload becomes memory bound.
//! * MPEG video decodes out of the much faster SDRAM, so its performance
//!   curve is almost linear in frequency.
//!
//! We model a frame's decode time at frequency `f` as
//!
//! ```text
//! t(f) = t_cpu(f_max) · (f_max / f) + t_mem
//! ```
//!
//! where `t_mem` is the frequency-independent memory-stall time. With
//! `β = t_mem / t(f_max)` the normalized performance is
//!
//! ```text
//! perf(f) = t(f_max) / t(f) = 1 / ((1 − β) · f_max/f + β)
//! ```
//!
//! The DVS policy inverts this curve: given a required decode rate it finds
//! the minimum frequency that sustains it, exactly as the paper uses
//! "piece-wise linear approximation based on the application
//! frequency-performance tradeoff curve" (Section 3.1).

use crate::cpu::CpuModel;
use crate::HwError;

/// A monotone normalized performance curve sampled at the CPU's discrete
/// operating points, with piecewise-linear interpolation between them.
///
/// Performance is normalized to `1.0` at the maximum frequency.
///
/// # Example
///
/// ```
/// use hardware::cpu::CpuModel;
/// use hardware::perf::PerformanceCurve;
///
/// let cpu = CpuModel::sa1100();
/// let mpeg = PerformanceCurve::mpeg_on_sdram(&cpu);
/// // Nearly linear: at ~half the clock, ~half the performance.
/// let p = mpeg.performance_at(110.6);
/// assert!((p - 0.5).abs() < 0.05);
///
/// // Inversion: the frequency needed for 80% performance.
/// let f = mpeg.frequency_for_performance(0.8);
/// assert!((mpeg.performance_at(f) - 0.8).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceCurve {
    /// `(freq_mhz, normalized_performance)`, strictly increasing in both.
    points: Vec<(f64, f64)>,
}

impl PerformanceCurve {
    /// Builds a curve from the memory-stall model with stall fraction
    /// `mem_fraction` (`β`) at the maximum frequency, sampled at the CPU's
    /// operating points.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 ≤ mem_fraction < 1`.
    pub fn from_memory_model(cpu: &CpuModel, mem_fraction: f64) -> Result<Self, HwError> {
        if !(mem_fraction.is_finite() && (0.0..1.0).contains(&mem_fraction)) {
            return Err(HwError::InvalidParameter {
                name: "mem_fraction",
                value: mem_fraction,
            });
        }
        let f_max = cpu.max_operating_point().freq_mhz;
        let points = cpu
            .operating_points()
            .iter()
            .map(|p| {
                let perf = 1.0 / ((1.0 - mem_fraction) * f_max / p.freq_mhz + mem_fraction);
                (p.freq_mhz, perf)
            })
            .collect();
        Ok(PerformanceCurve { points })
    }

    /// MP3 audio decoding out of SRAM: strongly memory bound
    /// (stall fraction 0.35), so the curve saturates at high frequency
    /// (paper Figure 4).
    #[must_use]
    pub fn mp3_on_sram(cpu: &CpuModel) -> Self {
        Self::from_memory_model(cpu, 0.35).expect("0.35 is a valid stall fraction")
    }

    /// MPEG video decoding out of SDRAM: almost CPU bound
    /// (stall fraction 0.05), so the curve is nearly linear
    /// (paper Figure 5).
    #[must_use]
    pub fn mpeg_on_sdram(cpu: &CpuModel) -> Self {
        Self::from_memory_model(cpu, 0.05).expect("0.05 is a valid stall fraction")
    }

    /// Builds a curve from explicit `(freq_mhz, performance)` samples, as
    /// one would from hardware measurements.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two points are given or the samples
    /// are not strictly increasing in both coordinates.
    pub fn from_points(points: Vec<(f64, f64)>) -> Result<Self, HwError> {
        if points.len() < 2 {
            return Err(HwError::InvalidParameter {
                name: "points",
                value: points.len() as f64,
            });
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 || w[1].1 <= w[0].1 {
                return Err(HwError::InvalidParameter {
                    name: "points (monotonicity)",
                    value: w[1].0,
                });
            }
        }
        Ok(PerformanceCurve { points })
    }

    /// The sampled `(freq_mhz, performance)` points.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Normalized performance at frequency `freq_mhz`, interpolating
    /// piecewise-linearly and clamping outside the sampled range.
    #[must_use]
    pub fn performance_at(&self, freq_mhz: f64) -> f64 {
        let first = self.points[0];
        let last = *self.points.last().expect("validated non-empty");
        if freq_mhz <= first.0 {
            return first.1;
        }
        if freq_mhz >= last.0 {
            return last.1;
        }
        for w in self.points.windows(2) {
            let (f0, p0) = w[0];
            let (f1, p1) = w[1];
            if freq_mhz <= f1 {
                let t = (freq_mhz - f0) / (f1 - f0);
                return p0 + t * (p1 - p0);
            }
        }
        last.1
    }

    /// The minimum frequency achieving normalized performance `perf`
    /// (inverse piecewise-linear interpolation). Clamps to the sampled
    /// frequency range: requests below the lowest sampled performance
    /// return the lowest frequency; requests above the highest return the
    /// highest frequency.
    #[must_use]
    pub fn frequency_for_performance(&self, perf: f64) -> f64 {
        let first = self.points[0];
        let last = *self.points.last().expect("validated non-empty");
        if perf <= first.1 {
            return first.0;
        }
        if perf >= last.1 {
            return last.0;
        }
        for w in self.points.windows(2) {
            let (f0, p0) = w[0];
            let (f1, p1) = w[1];
            if perf <= p1 {
                let t = (perf - p0) / (p1 - p0);
                return f0 + t * (f1 - f0);
            }
        }
        last.0
    }

    /// Decode rate (frames/s) at `freq_mhz` for an application that
    /// decodes `rate_at_max` frames/s at the maximum frequency.
    ///
    /// # Panics
    ///
    /// Panics if `rate_at_max` is not finite and positive.
    #[must_use]
    pub fn decode_rate(&self, freq_mhz: f64, rate_at_max: f64) -> f64 {
        assert!(
            rate_at_max.is_finite() && rate_at_max > 0.0,
            "rate_at_max must be positive"
        );
        rate_at_max * self.performance_at(freq_mhz)
    }

    /// The minimum (continuous) frequency sustaining `required_rate`
    /// frames/s for an application decoding `rate_at_max` frames/s at the
    /// maximum frequency. Clamps to the sampled range.
    ///
    /// # Panics
    ///
    /// Panics if `rate_at_max` is not finite and positive.
    #[must_use]
    pub fn frequency_for_rate(&self, required_rate: f64, rate_at_max: f64) -> f64 {
        assert!(
            rate_at_max.is_finite() && rate_at_max > 0.0,
            "rate_at_max must be positive"
        );
        self.frequency_for_performance(required_rate / rate_at_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> CpuModel {
        CpuModel::sa1100()
    }

    #[test]
    fn performance_is_one_at_max_frequency() {
        for curve in [
            PerformanceCurve::mp3_on_sram(&cpu()),
            PerformanceCurve::mpeg_on_sdram(&cpu()),
        ] {
            assert!((curve.performance_at(221.2) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mp3_is_memory_bound_mpeg_is_not() {
        let c = cpu();
        let mp3 = PerformanceCurve::mp3_on_sram(&c);
        let mpeg = PerformanceCurve::mpeg_on_sdram(&c);
        let f = 110.6; // about half the top clock
        let linear = f / 221.2;
        // MP3 retains much more than linear performance at half clock...
        assert!(mp3.performance_at(f) > linear + 0.1);
        // ...while MPEG is within a few percent of linear.
        assert!((mpeg.performance_at(f) - linear).abs() < 0.05);
    }

    #[test]
    fn curve_is_monotone_increasing() {
        let mp3 = PerformanceCurve::mp3_on_sram(&cpu());
        let mut last = 0.0;
        for f in (59..=221).step_by(2) {
            let p = mp3.performance_at(f as f64);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn inversion_roundtrips() {
        let mpeg = PerformanceCurve::mpeg_on_sdram(&cpu());
        for perf in [0.35, 0.5, 0.75, 0.9, 0.99] {
            let f = mpeg.frequency_for_performance(perf);
            assert!(
                (mpeg.performance_at(f) - perf).abs() < 1e-9,
                "perf {perf} roundtrip"
            );
        }
    }

    #[test]
    fn inversion_clamps_out_of_range() {
        let mp3 = PerformanceCurve::mp3_on_sram(&cpu());
        assert!((mp3.frequency_for_performance(0.0) - 59.0).abs() < 1e-9);
        assert!((mp3.frequency_for_performance(2.0) - 221.2).abs() < 1e-9);
        assert!((mp3.performance_at(10.0) - mp3.performance_at(59.0)).abs() < 1e-12);
        assert!((mp3.performance_at(500.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decode_rate_and_inverse_agree() {
        let mpeg = PerformanceCurve::mpeg_on_sdram(&cpu());
        let rate_at_max = 44.0;
        let f = mpeg.frequency_for_rate(22.0, rate_at_max);
        let achieved = mpeg.decode_rate(f, rate_at_max);
        assert!((achieved - 22.0).abs() < 1e-6);
    }

    #[test]
    fn from_points_validates_monotonicity() {
        assert!(PerformanceCurve::from_points(vec![(59.0, 0.3)]).is_err());
        assert!(
            PerformanceCurve::from_points(vec![(59.0, 0.3), (100.0, 0.2)]).is_err(),
            "performance must increase"
        );
        assert!(
            PerformanceCurve::from_points(vec![(100.0, 0.3), (59.0, 0.5)]).is_err(),
            "frequency must increase"
        );
        assert!(PerformanceCurve::from_points(vec![(59.0, 0.3), (221.2, 1.0)]).is_ok());
    }

    #[test]
    fn memory_model_validates_fraction() {
        let c = cpu();
        assert!(PerformanceCurve::from_memory_model(&c, -0.1).is_err());
        assert!(PerformanceCurve::from_memory_model(&c, 1.0).is_err());
        assert!(PerformanceCurve::from_memory_model(&c, 0.0).is_ok());
    }

    #[test]
    fn zero_stall_fraction_is_exactly_linear() {
        let c = cpu();
        let curve = PerformanceCurve::from_memory_model(&c, 0.0).unwrap();
        for p in c.operating_points() {
            assert!((curve.performance_at(p.freq_mhz) - p.freq_mhz / 221.2).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn decode_rate_rejects_bad_max_rate() {
        let curve = PerformanceCurve::mp3_on_sram(&cpu());
        let _ = curve.decode_rate(100.0, 0.0);
    }
}
