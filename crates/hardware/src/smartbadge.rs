//! The assembled SmartBadge device.
//!
//! Combines the component table (paper Table 1), the SA-1100 CPU model
//! (Figure 3) and the application performance curves (Figures 4/5) into
//! one queriable device description, plus helpers for the aggregate system
//! power in the operating modes the experiments use.

use crate::component::{ComponentId, ComponentSpec};
use crate::cpu::{CpuModel, OperatingPoint};
use crate::state::PowerState;
use simcore::time::SimDuration;

/// Which data memory the running application decodes from.
///
/// MP3 audio uses the slower SRAM; MPEG video uses the faster SDRAM
/// (paper Section 2.1). The unused memory bank sits idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeMemory {
    /// Toshiba SRAM — MP3 audio.
    Sram,
    /// Micron SDRAM — MPEG video.
    Dram,
}

/// The SmartBadge: CPU model plus the Table 1 component inventory.
///
/// # Example
///
/// ```
/// use hardware::smartbadge::{DecodeMemory, SmartBadge};
///
/// let badge = SmartBadge::new();
/// // Decoding MPEG at the top operating point draws the full system power…
/// let top = badge.cpu().max_operating_point();
/// let p_full = badge.decode_power_mw(top, DecodeMemory::Dram);
/// // …while dropping to the lowest point saves hundreds of milliwatts.
/// let low = badge.cpu().min_operating_point();
/// assert!(badge.decode_power_mw(low, DecodeMemory::Dram) < p_full - 250.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SmartBadge {
    cpu: CpuModel,
    components: Vec<ComponentSpec>,
}

impl SmartBadge {
    /// Creates the SmartBadge with the reconstructed Table 1 values and
    /// the SA-1100 CPU model.
    #[must_use]
    pub fn new() -> Self {
        SmartBadge {
            cpu: CpuModel::sa1100(),
            components: Self::table1(),
        }
    }

    /// The component inventory (paper Table 1).
    ///
    /// The scan of Table 1 is OCR-garbled; these values are reconstructed
    /// from the same authors' ISLPED'00/MobiCom'00 descriptions of the
    /// identical platform (see `DESIGN.md`): power in mW for
    /// active/idle/standby and wake-up latencies from standby/off.
    #[must_use]
    pub fn table1() -> Vec<ComponentSpec> {
        use ComponentId::*;
        let ms = SimDuration::from_millis;
        vec![
            ComponentSpec {
                id: Display,
                active_mw: 1000.0,
                idle_mw: 1000.0,
                standby_mw: 100.0,
                t_standby: ms(100),
                t_off: ms(240),
            },
            ComponentSpec {
                id: WlanRf,
                active_mw: 1500.0,
                idle_mw: 1000.0,
                standby_mw: 100.0,
                t_standby: ms(40),
                t_off: ms(160),
            },
            ComponentSpec {
                id: Cpu,
                active_mw: 400.0,
                idle_mw: 170.0,
                standby_mw: 0.1,
                t_standby: ms(10),
                t_off: ms(35),
            },
            ComponentSpec {
                id: Flash,
                active_mw: 75.0,
                idle_mw: 5.0,
                standby_mw: 0.023,
                t_standby: ms(1),
                t_off: ms(5),
            },
            ComponentSpec {
                id: Sram,
                active_mw: 115.0,
                idle_mw: 17.0,
                standby_mw: 0.13,
                t_standby: ms(1),
                t_off: ms(5),
            },
            ComponentSpec {
                id: Dram,
                active_mw: 400.0,
                idle_mw: 10.0,
                standby_mw: 0.4,
                t_standby: ms(4),
                t_off: ms(8),
            },
        ]
    }

    /// The CPU model.
    #[must_use]
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// All component specifications, in Table 1 order.
    #[must_use]
    pub fn components(&self) -> &[ComponentSpec] {
        &self.components
    }

    /// The specification for one component.
    ///
    /// # Panics
    ///
    /// Panics if `id` is missing from the inventory (cannot happen for
    /// devices built with [`SmartBadge::new`]).
    #[must_use]
    pub fn component(&self, id: ComponentId) -> &ComponentSpec {
        self.components
            .iter()
            .find(|c| c.id == id)
            .expect("component present in inventory")
    }

    /// Total system power while decoding at operating point `op` with the
    /// given decode memory active: CPU active (frequency-scaled), display
    /// and WLAN active (frames stream in over the RF link), FLASH idle,
    /// the decode memory active and the other memory bank idle.
    #[must_use]
    pub fn decode_power_mw(&self, op: OperatingPoint, memory: DecodeMemory) -> f64 {
        let (decode_mem, other_mem) = match memory {
            DecodeMemory::Sram => (ComponentId::Sram, ComponentId::Dram),
            DecodeMemory::Dram => (ComponentId::Dram, ComponentId::Sram),
        };
        self.cpu.active_power_mw(op)
            + self.component(ComponentId::Display).active_mw
            + self.component(ComponentId::WlanRf).active_mw
            + self.component(ComponentId::Flash).idle_mw
            + self.component(decode_mem).active_mw
            + self.component(other_mem).idle_mw
    }

    /// Total system power with every component in `state` (the CPU
    /// contributes its Table 1 row, not the DVS-scaled value, since DVS
    /// only applies while actively executing).
    #[must_use]
    pub fn uniform_power_mw(&self, state: PowerState) -> f64 {
        self.components.iter().map(|c| c.power_mw(state)).sum()
    }

    /// The Table 1 "Total" row: sum of active powers, milliwatts.
    #[must_use]
    pub fn total_active_mw(&self) -> f64 {
        self.uniform_power_mw(PowerState::Active)
    }

    /// The longest wake-up latency among all components from `state` —
    /// the system is ready only when its slowest component is.
    #[must_use]
    pub fn system_wakeup(&self, state: PowerState) -> SimDuration {
        self.components
            .iter()
            .map(|c| c.nominal_wakeup(state))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

impl Default for SmartBadge {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_has_all_six_components() {
        let badge = SmartBadge::new();
        assert_eq!(badge.components().len(), 6);
        for id in ComponentId::ALL {
            assert_eq!(badge.component(id).id, id);
        }
    }

    #[test]
    fn total_active_power_near_3_5_watts() {
        let badge = SmartBadge::new();
        let total = badge.total_active_mw();
        assert!(
            (3000.0..4000.0).contains(&total),
            "total active power {total} mW should be ~3.5 W"
        );
    }

    #[test]
    fn power_ordering_across_states() {
        let badge = SmartBadge::new();
        let active = badge.uniform_power_mw(PowerState::Active);
        let idle = badge.uniform_power_mw(PowerState::Idle);
        let standby = badge.uniform_power_mw(PowerState::Standby);
        let off = badge.uniform_power_mw(PowerState::Off);
        assert!(active > idle && idle > standby && standby > off);
        assert_eq!(off, 0.0);
    }

    #[test]
    fn decode_power_depends_on_memory_bank() {
        let badge = SmartBadge::new();
        let top = badge.cpu().max_operating_point();
        let mpeg = badge.decode_power_mw(top, DecodeMemory::Dram);
        let mp3 = badge.decode_power_mw(top, DecodeMemory::Sram);
        // DRAM active draws more than SRAM active (400 vs 115 mW), the idle
        // swap is 10 vs 17 mW.
        assert!(mpeg > mp3);
    }

    #[test]
    fn decode_power_scales_with_operating_point() {
        let badge = SmartBadge::new();
        let hi = badge.decode_power_mw(badge.cpu().max_operating_point(), DecodeMemory::Sram);
        let lo = badge.decode_power_mw(badge.cpu().min_operating_point(), DecodeMemory::Sram);
        let cpu_hi = badge
            .cpu()
            .active_power_mw(badge.cpu().max_operating_point());
        let cpu_lo = badge
            .cpu()
            .active_power_mw(badge.cpu().min_operating_point());
        assert!(
            (hi - lo - (cpu_hi - cpu_lo)).abs() < 1e-9,
            "only CPU power varies"
        );
    }

    #[test]
    fn system_wakeup_is_dominated_by_slowest_component() {
        let badge = SmartBadge::new();
        // Display has the longest latencies in the inventory.
        assert_eq!(
            badge.system_wakeup(PowerState::Standby),
            badge.component(ComponentId::Display).t_standby
        );
        assert_eq!(
            badge.system_wakeup(PowerState::Off),
            badge.component(ComponentId::Display).t_off
        );
        assert_eq!(badge.system_wakeup(PowerState::Idle), SimDuration::ZERO);
    }

    #[test]
    fn cpu_row_matches_cpu_model() {
        let badge = SmartBadge::new();
        let row = badge.component(ComponentId::Cpu);
        assert_eq!(
            badge
                .cpu()
                .active_power_mw(badge.cpu().max_operating_point()),
            row.active_mw
        );
        assert_eq!(badge.cpu().idle_mw(), row.idle_mw);
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(SmartBadge::default(), SmartBadge::new());
    }
}
