//! Power states and the legal transition structure.
//!
//! Every SmartBadge component has four main power states (paper Section 1):
//! **active**, **idle**, **standby** and **off**. Idle is entered
//! autonomously by a component as soon as it is not accessed; standby and
//! off are entered only on command from the power manager; any request for
//! service returns the component to active after a wake-up latency.

use std::fmt;

/// One of the four component power states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PowerState {
    /// Servicing requests (decoding frames, driving the display, …).
    Active,
    /// Powered but not accessed; entered automatically when not in use.
    Idle,
    /// Low-power state with state retention; wake-up costs `t_sby`.
    Standby,
    /// Deepest state; wake-up costs `t_off`.
    Off,
}

impl PowerState {
    /// All states, ordered from shallowest to deepest.
    pub const ALL: [PowerState; 4] = [
        PowerState::Active,
        PowerState::Idle,
        PowerState::Standby,
        PowerState::Off,
    ];

    /// `true` for the states the power manager may command a component
    /// into during an idle period (standby and off). Active is reached by
    /// servicing a request and idle is entered autonomously, so neither is
    /// a power-manager command target.
    #[must_use]
    pub fn is_sleep_state(self) -> bool {
        matches!(self, PowerState::Standby | PowerState::Off)
    }

    /// `true` if moving from `self` to `to` is a legal transition in the
    /// SmartBadge model:
    ///
    /// * active ↔ idle (autonomous),
    /// * idle → standby/off (power-manager command),
    /// * standby → off (deepening, power-manager command),
    /// * standby/off → active (wake-up on request arrival),
    /// * any state → itself (no-op).
    #[must_use]
    pub fn can_transition_to(self, to: PowerState) -> bool {
        use PowerState::*;
        if self == to {
            return true;
        }
        matches!(
            (self, to),
            (Active, Idle)
                | (Idle, Active)
                | (Idle, Standby)
                | (Idle, Off)
                | (Standby, Off)
                | (Standby, Active)
                | (Off, Active)
        )
    }

    /// Depth of the state for ordering comparisons: deeper states save
    /// more power but cost more to leave.
    #[must_use]
    pub fn depth(self) -> u8 {
        match self {
            PowerState::Active => 0,
            PowerState::Idle => 1,
            PowerState::Standby => 2,
            PowerState::Off => 3,
        }
    }
}

impl fmt::Display for PowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PowerState::Active => "active",
            PowerState::Idle => "idle",
            PowerState::Standby => "standby",
            PowerState::Off => "off",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_states() {
        assert!(!PowerState::Active.is_sleep_state());
        assert!(!PowerState::Idle.is_sleep_state());
        assert!(PowerState::Standby.is_sleep_state());
        assert!(PowerState::Off.is_sleep_state());
    }

    #[test]
    fn depth_orders_states() {
        let depths: Vec<u8> = PowerState::ALL.iter().map(|s| s.depth()).collect();
        assert_eq!(depths, vec![0, 1, 2, 3]);
    }

    #[test]
    fn self_transitions_allowed() {
        for s in PowerState::ALL {
            assert!(s.can_transition_to(s));
        }
    }

    #[test]
    fn legal_transitions() {
        use PowerState::*;
        assert!(Active.can_transition_to(Idle));
        assert!(Idle.can_transition_to(Active));
        assert!(Idle.can_transition_to(Standby));
        assert!(Idle.can_transition_to(Off));
        assert!(Standby.can_transition_to(Active));
        assert!(Standby.can_transition_to(Off));
        assert!(Off.can_transition_to(Active));
    }

    #[test]
    fn illegal_transitions() {
        use PowerState::*;
        // Cannot sleep directly from active: idle is entered first.
        assert!(!Active.can_transition_to(Standby));
        assert!(!Active.can_transition_to(Off));
        // Cannot resurface to idle from a sleep state: a request wakes to active.
        assert!(!Standby.can_transition_to(Idle));
        assert!(!Off.can_transition_to(Idle));
        assert!(!Off.can_transition_to(Standby));
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(PowerState::Standby.to_string(), "standby");
    }
}
