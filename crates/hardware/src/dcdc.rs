//! DC-DC converter efficiency model.
//!
//! The SmartBadge is "powered by the batteries through a DC-DC converter"
//! (paper Section 2.1). Converter efficiency is load dependent: poor at
//! very light loads (fixed switching losses dominate) and slightly reduced
//! at full load (conduction losses). Battery drain is the delivered power
//! divided by the efficiency at that load, so deep power-down states save
//! slightly less at the battery terminals than at the rails — a
//! second-order effect worth modeling when estimating battery lifetime.

use crate::HwError;

/// A load-dependent DC-DC converter efficiency curve
/// (piecewise linear in the load fraction of rated output power).
///
/// # Example
///
/// ```
/// use hardware::dcdc::DcDcConverter;
///
/// let conv = DcDcConverter::smartbadge();
/// // Drawing 1 W from a ~4 W-rated converter:
/// let battery_mw = conv.battery_draw_mw(1000.0);
/// assert!(battery_mw > 1000.0, "conversion always loses something");
/// assert!(battery_mw < 1400.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DcDcConverter {
    rated_mw: f64,
    /// `(load_fraction, efficiency)` points, increasing in load fraction.
    curve: Vec<(f64, f64)>,
}

impl DcDcConverter {
    /// A converter sized for the SmartBadge: 4 W rated, peak efficiency
    /// 90 % at mid load, 60 % at 1 % load, 85 % at full load.
    #[must_use]
    pub fn smartbadge() -> Self {
        DcDcConverter {
            rated_mw: 4000.0,
            curve: vec![(0.0, 0.4), (0.01, 0.6), (0.1, 0.8), (0.5, 0.9), (1.0, 0.85)],
        }
    }

    /// Builds a converter from a rated power and an efficiency curve.
    ///
    /// # Errors
    ///
    /// Returns an error if the rated power is non-positive, the curve has
    /// fewer than two points, load fractions are not strictly increasing
    /// from ≥ 0, or an efficiency is outside `(0, 1]`.
    pub fn from_curve(rated_mw: f64, curve: Vec<(f64, f64)>) -> Result<Self, HwError> {
        if !(rated_mw.is_finite() && rated_mw > 0.0) {
            return Err(HwError::InvalidParameter {
                name: "rated_mw",
                value: rated_mw,
            });
        }
        if curve.len() < 2 {
            return Err(HwError::InvalidParameter {
                name: "curve",
                value: curve.len() as f64,
            });
        }
        let mut last = -1.0;
        for &(load, eff) in &curve {
            if !(load.is_finite() && load >= 0.0 && load > last) {
                return Err(HwError::InvalidParameter {
                    name: "curve (load fraction)",
                    value: load,
                });
            }
            if !(eff.is_finite() && eff > 0.0 && eff <= 1.0) {
                return Err(HwError::InvalidParameter {
                    name: "curve (efficiency)",
                    value: eff,
                });
            }
            last = load;
        }
        Ok(DcDcConverter { rated_mw, curve })
    }

    /// Rated output power, milliwatts.
    #[must_use]
    pub fn rated_mw(&self) -> f64 {
        self.rated_mw
    }

    /// Conversion efficiency when delivering `load_mw` to the rails.
    /// Clamped to the curve's endpoints outside the sampled range.
    ///
    /// # Panics
    ///
    /// Panics if `load_mw` is negative or not finite.
    #[must_use]
    pub fn efficiency(&self, load_mw: f64) -> f64 {
        assert!(
            load_mw.is_finite() && load_mw >= 0.0,
            "load must be finite and non-negative"
        );
        let x = load_mw / self.rated_mw;
        let first = self.curve[0];
        let last = *self.curve.last().expect("validated non-empty");
        if x <= first.0 {
            return first.1;
        }
        if x >= last.0 {
            return last.1;
        }
        for w in self.curve.windows(2) {
            let (x0, e0) = w[0];
            let (x1, e1) = w[1];
            if x <= x1 {
                let t = (x - x0) / (x1 - x0);
                return e0 + t * (e1 - e0);
            }
        }
        last.1
    }

    /// Power drawn from the battery to deliver `load_mw` at the rails.
    ///
    /// # Panics
    ///
    /// Panics if `load_mw` is negative or not finite.
    #[must_use]
    pub fn battery_draw_mw(&self, load_mw: f64) -> f64 {
        if load_mw == 0.0 {
            return 0.0;
        }
        load_mw / self.efficiency(load_mw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_peaks_at_mid_load() {
        let c = DcDcConverter::smartbadge();
        let low = c.efficiency(40.0); // 1% load
        let mid = c.efficiency(2000.0); // 50% load
        let full = c.efficiency(4000.0);
        assert!(mid > low);
        assert!(mid > full);
        assert!((mid - 0.9).abs() < 1e-9);
    }

    #[test]
    fn battery_draw_exceeds_load() {
        let c = DcDcConverter::smartbadge();
        for load in [10.0, 100.0, 1000.0, 3500.0] {
            assert!(c.battery_draw_mw(load) > load);
        }
        assert_eq!(c.battery_draw_mw(0.0), 0.0);
    }

    #[test]
    fn interpolation_is_continuous() {
        let c = DcDcConverter::smartbadge();
        let e1 = c.efficiency(399.9);
        let e2 = c.efficiency(400.1);
        assert!((e1 - e2).abs() < 1e-3);
    }

    #[test]
    fn clamps_beyond_rated() {
        let c = DcDcConverter::smartbadge();
        assert!((c.efficiency(8000.0) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn from_curve_validates() {
        assert!(DcDcConverter::from_curve(0.0, vec![(0.0, 0.5), (1.0, 0.9)]).is_err());
        assert!(DcDcConverter::from_curve(1000.0, vec![(0.0, 0.5)]).is_err());
        assert!(DcDcConverter::from_curve(1000.0, vec![(0.5, 0.5), (0.2, 0.9)]).is_err());
        assert!(DcDcConverter::from_curve(1000.0, vec![(0.0, 0.5), (1.0, 1.5)]).is_err());
        assert!(DcDcConverter::from_curve(1000.0, vec![(0.0, 0.5), (1.0, 0.9)]).is_ok());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_load_panics() {
        let _ = DcDcConverter::smartbadge().efficiency(-1.0);
    }
}
