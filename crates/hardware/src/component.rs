//! Per-component power specification and runtime state machine.
//!
//! A [`ComponentSpec`] captures one row of the paper's Table 1: power draw
//! in active / idle / standby (off draws nothing), and the wake-up
//! latencies `t_sby` and `t_off` back to active. A [`Component`] is a live
//! instance tracking its current state, with transitions validated against
//! [`PowerState::can_transition_to`].
//!
//! Wake-up latency is stochastic: the paper models the transition from
//! standby or off into active with a **uniform distribution** (Section
//! 2.1). [`Component::wakeup_latency`] draws from
//! `U[0.5·t, 1.5·t]` around the nominal latency.

use crate::state::PowerState;
use crate::HwError;
use simcore::rng::SimRng;
use simcore::time::SimDuration;
use std::fmt;

/// Identifies one of the six SmartBadge components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComponentId {
    /// Sharp display.
    Display,
    /// Lucent WLAN RF link.
    WlanRf,
    /// StrongARM SA-1100 processor.
    Cpu,
    /// FLASH memory.
    Flash,
    /// Toshiba SRAM (1 MB, 80 ns) — used by MP3 decode.
    Sram,
    /// Micron SDRAM (4 MB, 15 ns) — used by MPEG video decode.
    Dram,
}

impl ComponentId {
    /// All components in Table 1 order.
    pub const ALL: [ComponentId; 6] = [
        ComponentId::Display,
        ComponentId::WlanRf,
        ComponentId::Cpu,
        ComponentId::Flash,
        ComponentId::Sram,
        ComponentId::Dram,
    ];

    /// Dense index of this component in [`Self::ALL`] order; used for
    /// array-backed per-component accounting.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentId::Display => "display",
            ComponentId::WlanRf => "wlan-rf",
            ComponentId::Cpu => "sa-1100",
            ComponentId::Flash => "flash",
            ComponentId::Sram => "sram",
            ComponentId::Dram => "dram",
        };
        f.write_str(s)
    }
}

/// Static power/latency specification of one component (one Table 1 row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentSpec {
    /// Which component this describes.
    pub id: ComponentId,
    /// Power draw in the active state, milliwatts.
    pub active_mw: f64,
    /// Power draw in the idle state, milliwatts.
    pub idle_mw: f64,
    /// Power draw in the standby state, milliwatts.
    pub standby_mw: f64,
    /// Nominal wake-up latency from standby to active.
    pub t_standby: SimDuration,
    /// Nominal wake-up latency from off to active.
    pub t_off: SimDuration,
}

impl ComponentSpec {
    /// Power draw in `state`, milliwatts. Off draws zero.
    #[must_use]
    pub fn power_mw(&self, state: PowerState) -> f64 {
        match state {
            PowerState::Active => self.active_mw,
            PowerState::Idle => self.idle_mw,
            PowerState::Standby => self.standby_mw,
            PowerState::Off => 0.0,
        }
    }

    /// Nominal latency to wake from `state` back to active.
    /// Zero for active and idle (idle → active is immediate).
    #[must_use]
    pub fn nominal_wakeup(&self, state: PowerState) -> SimDuration {
        match state {
            PowerState::Active | PowerState::Idle => SimDuration::ZERO,
            PowerState::Standby => self.t_standby,
            PowerState::Off => self.t_off,
        }
    }

    /// The break-even time of a sleep state: the shortest idle period for
    /// which transitioning into `state` (and back on the next request)
    /// saves energy compared to staying idle, assuming the wake-up is
    /// performed at active power.
    ///
    /// Returns `None` for active/idle (no transition involved) or when the
    /// sleep state never pays off (its power exceeds idle power).
    #[must_use]
    pub fn break_even(&self, state: PowerState) -> Option<SimDuration> {
        if !state.is_sleep_state() {
            return None;
        }
        let p_sleep = self.power_mw(state);
        let p_idle = self.idle_mw;
        if p_sleep >= p_idle {
            return None;
        }
        // Energy staying idle for T: p_idle·T.
        // Energy sleeping: p_sleep·T + (p_active − p_sleep)·t_wake
        // (the wake-up burns active power for t_wake that idling avoids).
        // Break-even: T = (p_active − p_sleep)·t_wake / (p_idle − p_sleep).
        let t_wake = self.nominal_wakeup(state).as_secs_f64();
        let t = (self.active_mw - p_sleep) * t_wake / (p_idle - p_sleep);
        Some(SimDuration::from_secs_f64(t.max(0.0)))
    }
}

/// A live component instance: spec plus current power state.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    spec: ComponentSpec,
    state: PowerState,
}

impl Component {
    /// Creates a component in the active state.
    #[must_use]
    pub fn new(spec: ComponentSpec) -> Self {
        Component {
            spec,
            state: PowerState::Active,
        }
    }

    /// The component's static specification.
    #[must_use]
    pub fn spec(&self) -> &ComponentSpec {
        &self.spec
    }

    /// The current power state.
    #[must_use]
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Current power draw, milliwatts.
    #[must_use]
    pub fn power_mw(&self) -> f64 {
        self.spec.power_mw(self.state)
    }

    /// Commands a transition to `to`.
    ///
    /// Returns the nominal latency of the transition (non-zero only when
    /// waking from standby or off).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::IllegalTransition`] if the SmartBadge state
    /// machine does not permit `self.state() → to`.
    pub fn transition(&mut self, to: PowerState) -> Result<SimDuration, HwError> {
        if !self.state.can_transition_to(to) {
            return Err(HwError::IllegalTransition {
                from: self.state,
                to,
            });
        }
        let latency = if to == PowerState::Active {
            self.spec.nominal_wakeup(self.state)
        } else {
            SimDuration::ZERO
        };
        self.state = to;
        Ok(latency)
    }

    /// Draws a stochastic wake-up latency for returning to active from the
    /// current state: uniform on `[0.5·t, 1.5·t]` around the nominal
    /// latency `t` (paper Section 2.1), zero if already active/idle.
    #[must_use]
    pub fn wakeup_latency(&self, rng: &mut SimRng) -> SimDuration {
        let nominal = self.spec.nominal_wakeup(self.state).as_secs_f64();
        if nominal == 0.0 {
            return SimDuration::ZERO;
        }
        let u = rng.next_f64();
        SimDuration::from_secs_f64(nominal * (0.5 + u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ComponentSpec {
        ComponentSpec {
            id: ComponentId::Cpu,
            active_mw: 400.0,
            idle_mw: 170.0,
            standby_mw: 0.1,
            t_standby: SimDuration::from_millis(10),
            t_off: SimDuration::from_millis(35),
        }
    }

    #[test]
    fn power_per_state() {
        let s = spec();
        assert_eq!(s.power_mw(PowerState::Active), 400.0);
        assert_eq!(s.power_mw(PowerState::Idle), 170.0);
        assert_eq!(s.power_mw(PowerState::Standby), 0.1);
        assert_eq!(s.power_mw(PowerState::Off), 0.0);
    }

    #[test]
    fn nominal_wakeup_latencies() {
        let s = spec();
        assert_eq!(s.nominal_wakeup(PowerState::Active), SimDuration::ZERO);
        assert_eq!(s.nominal_wakeup(PowerState::Idle), SimDuration::ZERO);
        assert_eq!(
            s.nominal_wakeup(PowerState::Standby),
            SimDuration::from_millis(10)
        );
        assert_eq!(
            s.nominal_wakeup(PowerState::Off),
            SimDuration::from_millis(35)
        );
    }

    #[test]
    fn break_even_is_positive_and_deeper_is_longer() {
        let s = spec();
        let sby = s.break_even(PowerState::Standby).unwrap();
        let off = s.break_even(PowerState::Off).unwrap();
        assert!(sby > SimDuration::ZERO);
        assert!(off > sby, "off has longer wake-up so longer break-even");
        assert_eq!(s.break_even(PowerState::Idle), None);
    }

    #[test]
    fn break_even_none_when_sleep_draws_more_than_idle() {
        let mut s = spec();
        s.standby_mw = 500.0;
        assert_eq!(s.break_even(PowerState::Standby), None);
    }

    #[test]
    fn component_transitions_follow_state_machine() {
        let mut c = Component::new(spec());
        assert_eq!(c.state(), PowerState::Active);
        c.transition(PowerState::Idle).unwrap();
        c.transition(PowerState::Standby).unwrap();
        let latency = c.transition(PowerState::Active).unwrap();
        assert_eq!(latency, SimDuration::from_millis(10));
        // Illegal: active → standby directly.
        assert!(c.transition(PowerState::Standby).is_err());
        assert_eq!(
            c.state(),
            PowerState::Active,
            "failed transition leaves state unchanged"
        );
    }

    #[test]
    fn wake_from_off_has_longer_latency() {
        let mut c = Component::new(spec());
        c.transition(PowerState::Idle).unwrap();
        c.transition(PowerState::Off).unwrap();
        let latency = c.transition(PowerState::Active).unwrap();
        assert_eq!(latency, SimDuration::from_millis(35));
    }

    #[test]
    fn stochastic_wakeup_within_uniform_bounds() {
        let mut c = Component::new(spec());
        c.transition(PowerState::Idle).unwrap();
        c.transition(PowerState::Standby).unwrap();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let w = c.wakeup_latency(&mut rng).as_secs_f64();
            assert!((0.005..=0.015).contains(&w), "latency {w}");
        }
    }

    #[test]
    fn wakeup_latency_zero_when_awake() {
        let c = Component::new(spec());
        let mut rng = SimRng::seed_from(2);
        assert_eq!(c.wakeup_latency(&mut rng), SimDuration::ZERO);
    }

    #[test]
    fn component_id_display_names_unique() {
        let names: std::collections::HashSet<String> =
            ComponentId::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(names.len(), ComponentId::ALL.len());
    }
}
