//! Energy accounting.
//!
//! [`EnergyMeter`] integrates per-component power over simulation time,
//! producing the joule totals the experiment tables report. Power is fed
//! in milliwatts (matching Table 1) and accumulated in joules.

use crate::component::ComponentId;
use simcore::json::{Json, ToJson};
use simcore::time::SimDuration;

/// Integrates component power draws over time.
///
/// # Example
///
/// ```
/// use hardware::component::ComponentId;
/// use hardware::energy::EnergyMeter;
/// use simcore::time::SimDuration;
///
/// let mut meter = EnergyMeter::new();
/// meter.accumulate(ComponentId::Cpu, 400.0, SimDuration::from_secs(10));
/// meter.accumulate(ComponentId::Display, 1000.0, SimDuration::from_secs(10));
/// assert!((meter.component_joules(ComponentId::Cpu) - 4.0).abs() < 1e-9);
/// assert!((meter.total_joules() - 14.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyMeter {
    /// Joule totals indexed by [`ComponentId`] discriminant. A fixed
    /// array keeps the per-interval accumulation the simulator does on
    /// every event O(1) with no tree traversal; `touched` distinguishes
    /// "never attributed" from "attributed zero" so reports only list
    /// components that actually drew power, exactly as the previous
    /// map-backed meter did.
    joules: [f64; ComponentId::ALL.len()],
    touched: [bool; ComponentId::ALL.len()],
    elapsed_secs: f64,
}

impl EnergyMeter {
    /// Creates a meter with all totals at zero.
    #[must_use]
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Adds `power_mw` milliwatts drawn by `id` for duration `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `power_mw` is negative or not finite.
    #[inline]
    pub fn accumulate(&mut self, id: ComponentId, power_mw: f64, dt: SimDuration) {
        assert!(
            power_mw.is_finite() && power_mw >= 0.0,
            "power must be finite and non-negative, got {power_mw}"
        );
        let i = id.index();
        self.touched[i] = true;
        self.joules[i] += power_mw * 1e-3 * dt.as_secs_f64();
    }

    /// Records wall-clock progress without attributing energy; used so the
    /// meter can report average power over the full run.
    ///
    /// The simulator drives this from the *same* accounting intervals
    /// that feed its metrics registry, so the meter's clock is a
    /// float-accumulated view of that single source of truth (the
    /// registry keeps integer nanoseconds); the simulator cross-checks
    /// the two at the end of every run.
    #[inline]
    pub fn advance_time(&mut self, dt: SimDuration) {
        self.elapsed_secs += dt.as_secs_f64();
    }

    /// Joules attributed to `id` so far.
    #[must_use]
    pub fn component_joules(&self, id: ComponentId) -> f64 {
        self.joules[id.index()]
    }

    /// Total joules across all components.
    #[must_use]
    pub fn total_joules(&self) -> f64 {
        // Untouched slots hold exactly 0.0, and adding 0.0 to a
        // non-negative running sum is exact, so summing every slot in
        // id order matches summing only the touched ones bit for bit.
        self.joules.iter().sum()
    }

    /// Total energy in kilojoules, the unit the paper's tables use.
    #[must_use]
    pub fn total_kilojoules(&self) -> f64 {
        self.total_joules() * 1e-3
    }

    /// Seconds of simulated time recorded via [`advance_time`].
    ///
    /// [`advance_time`]: EnergyMeter::advance_time
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_secs
    }

    /// Average total power in milliwatts over the recorded elapsed time;
    /// `0.0` if no time has elapsed.
    #[must_use]
    pub fn average_power_mw(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.total_joules() / self.elapsed_secs * 1e3
        }
    }

    /// Per-component totals in joules, in [`ComponentId`] order,
    /// listing only components that have been attributed energy.
    #[must_use]
    pub fn breakdown(&self) -> Vec<(ComponentId, f64)> {
        ComponentId::ALL
            .iter()
            .filter(|id| self.touched[id.index()])
            .map(|&id| (id, self.joules[id.index()]))
            .collect()
    }

    /// Merges another meter's totals into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        for id in ComponentId::ALL {
            let i = id.index();
            if other.touched[i] {
                self.touched[i] = true;
                self.joules[i] += other.joules[i];
            }
        }
        self.elapsed_secs += other.elapsed_secs;
    }
}

impl ToJson for EnergyMeter {
    fn to_json(&self) -> Json {
        let joules = Json::obj(
            self.breakdown()
                .into_iter()
                .map(|(id, j)| (id.to_string(), j.to_json()))
                .collect(),
        );
        Json::obj(vec![
            ("joules".to_string(), joules),
            ("elapsed_secs".to_string(), self.elapsed_secs.to_json()),
            ("total_joules".to_string(), self.total_joules().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_component() {
        let mut m = EnergyMeter::new();
        m.accumulate(ComponentId::Cpu, 100.0, SimDuration::from_secs(2));
        m.accumulate(ComponentId::Cpu, 200.0, SimDuration::from_secs(1));
        assert!((m.component_joules(ComponentId::Cpu) - 0.4).abs() < 1e-12);
        assert_eq!(m.component_joules(ComponentId::Dram), 0.0);
    }

    #[test]
    fn totals_and_units() {
        let mut m = EnergyMeter::new();
        m.accumulate(ComponentId::Display, 1000.0, SimDuration::from_secs(3600));
        assert!((m.total_joules() - 3600.0).abs() < 1e-9);
        assert!((m.total_kilojoules() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn average_power() {
        let mut m = EnergyMeter::new();
        assert_eq!(m.average_power_mw(), 0.0);
        m.accumulate(ComponentId::Cpu, 400.0, SimDuration::from_secs(5));
        m.accumulate(ComponentId::Cpu, 0.0, SimDuration::from_secs(5));
        m.advance_time(SimDuration::from_secs(10));
        assert!((m.average_power_mw() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums() {
        let mut a = EnergyMeter::new();
        a.accumulate(ComponentId::Sram, 115.0, SimDuration::from_secs(1));
        a.advance_time(SimDuration::from_secs(1));
        let mut b = EnergyMeter::new();
        b.accumulate(ComponentId::Sram, 115.0, SimDuration::from_secs(2));
        b.accumulate(ComponentId::Flash, 75.0, SimDuration::from_secs(2));
        b.advance_time(SimDuration::from_secs(2));
        a.merge(&b);
        assert!((a.component_joules(ComponentId::Sram) - 0.345).abs() < 1e-12);
        assert!((a.component_joules(ComponentId::Flash) - 0.15).abs() < 1e-12);
        assert!((a.elapsed_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_is_ordered() {
        let mut m = EnergyMeter::new();
        m.accumulate(ComponentId::Dram, 1.0, SimDuration::from_secs(1));
        m.accumulate(ComponentId::Display, 1.0, SimDuration::from_secs(1));
        let ids: Vec<ComponentId> = m.breakdown().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![ComponentId::Display, ComponentId::Dram]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_power_panics() {
        EnergyMeter::new().accumulate(ComponentId::Cpu, -1.0, SimDuration::from_secs(1));
    }
}
