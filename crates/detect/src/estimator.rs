//! The common interface of all rate estimators.
//!
//! Every detection strategy the paper compares — ideal, exponential
//! moving average, change-point — consumes a stream of non-negative
//! samples (interarrival times or decode times) and maintains a current
//! rate estimate. The power manager is generic over this trait, so
//! swapping strategies is a one-line change in experiment configs.

/// A detected (or updated) rate, reported by an estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateChange {
    /// The new rate estimate, events/second.
    pub new_rate: f64,
    /// How many of the most recent samples are believed to come from the
    /// new rate (the window tail after the estimated change index).
    pub samples_since_change: usize,
}

/// The test statistic behind an estimator's most recent change report,
/// exposed for tracing and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionStat {
    /// Peak log-likelihood ratio over the candidate change points.
    pub ln_p_max: f64,
    /// The calibrated threshold the statistic cleared.
    pub threshold: f64,
}

/// An online rate estimator over a stream of positive samples.
///
/// Object safe: the power manager stores `Box<dyn RateEstimator>`.
pub trait RateEstimator {
    /// Feeds one sample (seconds). Returns `Some(RateChange)` when the
    /// estimator decides the underlying rate has changed (for the
    /// change-point detector) or produces a materially new estimate (for
    /// smoothing estimators).
    fn observe(&mut self, sample: f64) -> Option<RateChange>;

    /// The current rate estimate, events/second.
    fn current_rate(&self) -> f64;

    /// Resets the estimator to a fresh state with the given initial rate.
    fn reset(&mut self, initial_rate: f64);

    /// A short human-readable name for experiment tables.
    fn name(&self) -> &'static str;

    /// The statistic behind the most recent change this estimator
    /// reported, when the strategy computes one. Smoothing and oracle
    /// estimators return `None` (the default).
    fn last_detection_stat(&self) -> Option<DetectionStat> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);

    impl RateEstimator for Fixed {
        fn observe(&mut self, _sample: f64) -> Option<RateChange> {
            None
        }
        fn current_rate(&self) -> f64 {
            self.0
        }
        fn reset(&mut self, initial_rate: f64) {
            self.0 = initial_rate;
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut est: Box<dyn RateEstimator> = Box::new(Fixed(10.0));
        assert_eq!(est.observe(0.1), None);
        assert_eq!(est.current_rate(), 10.0);
        est.reset(20.0);
        assert_eq!(est.current_rate(), 20.0);
        assert_eq!(est.name(), "fixed");
        assert_eq!(est.last_detection_stat(), None, "default has no statistic");
    }
}
