#![warn(missing_docs)]
//! Rate-change detection — the first half of the paper's contribution.
//!
//! A DVS policy is only as good as its knowledge of the current frame
//! arrival and decode rates. The paper (Section 3) detects rate changes
//! with a **maximum-likelihood ratio test** over a sliding window of the
//! last `m` interarrival (or decode-time) samples:
//!
//! ```text
//!           Π_{j≤k} λo e^{−λo xⱼ} · Π_{k<j≤m} λn e^{−λn xⱼ}
//! P_max = ─────────────────────────────────────────────────────
//!                     Π_{j≤m} λo e^{−λo xⱼ}
//!
//! ln P_max = (m−k) ln(λn/λo) − (λn−λo) Σ_{j=k+1..m} xⱼ     (Eq. 4)
//! ```
//!
//! maximized over the change index `k` and candidate new rates `λn ∈ Λ`.
//! Detection fires when `ln P_max` exceeds a threshold calibrated
//! **offline** by stochastic simulation so that a firing implies 99.5 %
//! likelihood that the rate really changed (paper Section 3.1).
//!
//! ## Scale invariance
//!
//! For exponential samples the statistic under the no-change hypothesis
//! depends only on the **ratio** `r = λn/λo`: substituting `u = λo·x`
//! (which is Exp(1)) gives `ln P_max = (m−k) ln r − (r−1) Σ u_j`. The
//! calibration in [`calibrate`] therefore simulates standard-exponential
//! windows once per ratio, instead of once per absolute rate pair — an
//! exact reformulation of the paper's per-pair histograms that makes the
//! offline characterization cheap and rate-grid independent.
//!
//! ## What lives where
//!
//! * [`window`] — the sliding sample window with suffix sums,
//! * [`likelihood`] — the `ln P_max` statistic (Eq. 4),
//! * [`calibrate`] — offline Monte-Carlo threshold characterization
//!   (parallelized on the deterministic engine in `simcore::par`),
//! * [`cache`] — process-wide memoization of calibrated tables,
//! * [`changepoint`] — the online [`ChangePointDetector`],
//! * [`ema`] — the exponential-moving-average estimator the paper
//!   compares against (Eq. 6),
//! * [`oracle`] — ideal detection with ground-truth knowledge,
//! * [`cusum`] — a CUSUM variant (paper ref.\[17\]) for the ablation bench,
//! * [`estimator`] — the common [`RateEstimator`] trait.
//!
//! # Example
//!
//! ```
//! use detect::changepoint::{ChangePointConfig, ChangePointDetector};
//! use detect::estimator::RateEstimator;
//! use simcore::dist::{Exponential, Sample};
//! use simcore::rng::SimRng;
//!
//! # fn main() -> Result<(), detect::DetectError> {
//! let config = ChangePointConfig::default();
//! let mut det = ChangePointDetector::new(10.0, config)?;
//! let mut rng = SimRng::seed_from(1);
//!
//! // 300 samples at 10 ev/s, then a jump to 60 ev/s (the Fig. 10 case).
//! let slow = Exponential::new(10.0)?;
//! let fast = Exponential::new(60.0)?;
//! for _ in 0..300 {
//!     det.observe(slow.sample(&mut rng));
//! }
//! assert!((det.current_rate() - 10.0).abs() < 2.5);
//! let mut detected = false;
//! for _ in 0..200 {
//!     if det.observe(fast.sample(&mut rng)).is_some() {
//!         detected = true;
//!     }
//! }
//! assert!(detected, "rate jump must be detected");
//! // With the post-jump samples observed, the estimate has settled.
//! assert!((det.current_rate() - 60.0).abs() < 15.0);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod calibrate;
pub mod changepoint;
pub mod cusum;
pub mod ema;
pub mod estimator;
pub mod likelihood;
pub mod oracle;
pub mod window;

pub use changepoint::{ChangePointConfig, ChangePointDetector};
pub use ema::EmaEstimator;
pub use estimator::{DetectionStat, RateChange, RateEstimator};

use std::error::Error;
use std::fmt;

/// Errors from detector construction and calibration.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectError {
    /// A numeric parameter was out of its legal domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An empty candidate set or sample collection.
    Empty {
        /// Name of the offending argument.
        name: &'static str,
    },
    /// A threshold lookup for a ratio with no calibrated entry nearby —
    /// distinct from a float-drifted ratio, which snaps to the nearest
    /// calibrated entry within tolerance.
    Uncalibrated {
        /// The requested ratio.
        ratio: f64,
        /// The nearest calibrated ratio.
        nearest: f64,
    },
    /// Monte-Carlo calibration produced a non-finite `ln P_max`
    /// statistic, which would silently corrupt the threshold quantile.
    NonFiniteStatistic {
        /// The candidate ratio whose calibration failed (NaN when the
        /// failure is detected outside a per-ratio context).
        ratio: f64,
    },
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::InvalidParameter { name, value } => {
                write!(f, "invalid detector parameter `{name}` = {value}")
            }
            DetectError::Empty { name } => write!(f, "`{name}` must not be empty"),
            DetectError::Uncalibrated { ratio, nearest } => write!(
                f,
                "ratio {ratio} was not calibrated (nearest calibrated ratio: {nearest})"
            ),
            DetectError::NonFiniteStatistic { ratio } => write!(
                f,
                "calibration for ratio {ratio} produced a non-finite ln P_max statistic"
            ),
        }
    }
}

impl Error for DetectError {}

impl From<simcore::SimError> for DetectError {
    fn from(e: simcore::SimError) -> Self {
        match e {
            simcore::SimError::InvalidParameter { name, value, .. } => {
                DetectError::InvalidParameter { name, value }
            }
            simcore::SimError::Empty { name } => DetectError::Empty { name },
            simcore::SimError::LengthMismatch { name, .. } => DetectError::Empty { name },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DetectError>();
        let e = DetectError::InvalidParameter {
            name: "window",
            value: -1.0,
        };
        assert!(e.to_string().contains("window"));
    }

    #[test]
    fn sim_error_converts() {
        let e: DetectError = simcore::SimError::Empty { name: "samples" }.into();
        assert_eq!(e, DetectError::Empty { name: "samples" });
    }
}
