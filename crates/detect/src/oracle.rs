//! Ideal (oracle) detection.
//!
//! The paper's comparison baseline "assumes knowledge of the future; thus
//! the system detects the change in rate exactly when the change occurs".
//! [`OracleEstimator`] is fed the ground-truth rate alongside each sample
//! (the workload traces carry it) and reports a change at the precise
//! sample where the truth steps.

use crate::estimator::{RateChange, RateEstimator};
use crate::DetectError;

/// An estimator that simply mirrors externally supplied ground truth.
///
/// Use [`OracleEstimator::observe_truth`] when the true rate is known per
/// sample; the plain [`RateEstimator::observe`] path is a no-op so the
/// oracle can still be used behind the common trait object.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleEstimator {
    rate: f64,
}

impl OracleEstimator {
    /// Creates an oracle with an initial rate.
    ///
    /// # Errors
    ///
    /// Returns an error unless the rate is finite and positive.
    pub fn new(initial_rate: f64) -> Result<Self, DetectError> {
        if !(initial_rate.is_finite() && initial_rate > 0.0) {
            return Err(DetectError::InvalidParameter {
                name: "initial_rate",
                value: initial_rate,
            });
        }
        Ok(OracleEstimator { rate: initial_rate })
    }

    /// Feeds the ground-truth rate for the current sample. Returns a
    /// change exactly when the truth differs from the held rate.
    ///
    /// # Panics
    ///
    /// Panics if `true_rate` is not finite and positive.
    pub fn observe_truth(&mut self, true_rate: f64) -> Option<RateChange> {
        assert!(
            true_rate.is_finite() && true_rate > 0.0,
            "true rate must be positive"
        );
        if (true_rate - self.rate).abs() > 1e-9 {
            self.rate = true_rate;
            Some(RateChange {
                new_rate: true_rate,
                samples_since_change: 0,
            })
        } else {
            None
        }
    }
}

impl RateEstimator for OracleEstimator {
    fn observe(&mut self, _sample: f64) -> Option<RateChange> {
        // The oracle learns from truth, not from samples.
        None
    }

    fn current_rate(&self) -> f64 {
        self.rate
    }

    fn reset(&mut self, initial_rate: f64) {
        assert!(
            initial_rate.is_finite() && initial_rate > 0.0,
            "initial rate must be positive"
        );
        self.rate = initial_rate;
    }

    fn name(&self) -> &'static str {
        "ideal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_on_truth_steps() {
        let mut oracle = OracleEstimator::new(10.0).unwrap();
        assert!(oracle.observe_truth(10.0).is_none());
        let change = oracle.observe_truth(60.0).unwrap();
        assert_eq!(change.new_rate, 60.0);
        assert_eq!(change.samples_since_change, 0);
        assert!(oracle.observe_truth(60.0).is_none());
        assert_eq!(oracle.current_rate(), 60.0);
    }

    #[test]
    fn samples_are_ignored() {
        let mut oracle = OracleEstimator::new(10.0).unwrap();
        assert!(oracle.observe(123.0).is_none());
        assert_eq!(oracle.current_rate(), 10.0);
    }

    #[test]
    fn validation_and_reset() {
        assert!(OracleEstimator::new(-1.0).is_err());
        let mut oracle = OracleEstimator::new(10.0).unwrap();
        oracle.reset(5.0);
        assert_eq!(oracle.current_rate(), 5.0);
        assert_eq!(oracle.name(), "ideal");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_truth_panics() {
        let _ = OracleEstimator::new(10.0).unwrap().observe_truth(0.0);
    }
}
