//! Two-sided CUSUM detector (ablation comparator).
//!
//! The paper's change-point test descends from "cumulative sum techniques
//! in ATM traffic management" (ref [17]). A classical two-sided CUSUM is
//! the streaming cousin of the windowed maximum-likelihood test: it keeps
//! a pair of cumulative log-likelihood-ratio scores (one for "rate went
//! up", one for "rate went down") that reset at zero, and alarms when a
//! score crosses a threshold `h`. The `ablation_rate_grid` and
//! `ablation_window` benches use it to quantify what the windowed test
//! buys over the streaming test.
//!
//! For exponential samples with current rate `λo` and a design ratio
//! `r ≠ 1`, the per-sample score increment is
//!
//! ```text
//! z = ln r − (r − 1) · λo · x
//! ```
//!
//! (the same per-sample term as Eq. 4, in normalized units).

use crate::estimator::{RateChange, RateEstimator};
use crate::DetectError;

/// Two-sided CUSUM with MLE re-estimation after an alarm.
///
/// # Example
///
/// ```
/// use detect::cusum::CusumDetector;
/// use detect::estimator::RateEstimator;
///
/// # fn main() -> Result<(), detect::DetectError> {
/// let mut det = CusumDetector::new(10.0, 2.0, 8.0)?;
/// // Sudden fast gaps (rate 60) push the "up" score over the threshold.
/// let mut fired = false;
/// for _ in 0..200 {
///     if det.observe(1.0 / 60.0).is_some() {
///         fired = true;
///         break;
///     }
/// }
/// assert!(fired);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CusumDetector {
    rate: f64,
    /// Design ratio for the "rate increased" hypothesis (> 1); the
    /// "decreased" side uses `1/ratio`.
    ratio: f64,
    /// Alarm threshold `h` on the cumulative score.
    threshold: f64,
    score_up: f64,
    score_down: f64,
    /// Samples (count, sum) since each score last touched zero — the
    /// MLE window for re-estimation at alarm time.
    up_count: usize,
    up_sum: f64,
    down_count: usize,
    down_sum: f64,
}

impl CusumDetector {
    /// Creates a detector with initial rate, design ratio (> 1) and alarm
    /// threshold (> 0).
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive rates/thresholds or ratios ≤ 1.
    pub fn new(initial_rate: f64, ratio: f64, threshold: f64) -> Result<Self, DetectError> {
        if !(initial_rate.is_finite() && initial_rate > 0.0) {
            return Err(DetectError::InvalidParameter {
                name: "initial_rate",
                value: initial_rate,
            });
        }
        if !(ratio.is_finite() && ratio > 1.0) {
            return Err(DetectError::InvalidParameter {
                name: "ratio",
                value: ratio,
            });
        }
        if !(threshold.is_finite() && threshold > 0.0) {
            return Err(DetectError::InvalidParameter {
                name: "threshold",
                value: threshold,
            });
        }
        Ok(CusumDetector {
            rate: initial_rate,
            ratio,
            threshold,
            score_up: 0.0,
            score_down: 0.0,
            up_count: 0,
            up_sum: 0.0,
            down_count: 0,
            down_sum: 0.0,
        })
    }

    fn clear_scores(&mut self) {
        self.score_up = 0.0;
        self.score_down = 0.0;
        self.up_count = 0;
        self.up_sum = 0.0;
        self.down_count = 0;
        self.down_sum = 0.0;
    }

    fn alarm(&mut self, count: usize, sum: f64) -> Option<RateChange> {
        if count == 0 || sum <= 0.0 {
            return None;
        }
        let new_rate = count as f64 / sum;
        self.rate = new_rate;
        self.clear_scores();
        Some(RateChange {
            new_rate,
            samples_since_change: count,
        })
    }
}

impl RateEstimator for CusumDetector {
    fn observe(&mut self, sample: f64) -> Option<RateChange> {
        if !(sample.is_finite() && sample > 0.0) {
            return None;
        }
        let u = self.rate * sample; // normalized gap, Exp(1) under H0
        let r = self.ratio;
        let z_up = r.ln() - (r - 1.0) * u;
        let rd = 1.0 / r;
        let z_down = rd.ln() - (rd - 1.0) * u;

        self.score_up = (self.score_up + z_up).max(0.0);
        if self.score_up > 0.0 {
            self.up_count += 1;
            self.up_sum += sample;
        } else {
            self.up_count = 0;
            self.up_sum = 0.0;
        }
        self.score_down = (self.score_down + z_down).max(0.0);
        if self.score_down > 0.0 {
            self.down_count += 1;
            self.down_sum += sample;
        } else {
            self.down_count = 0;
            self.down_sum = 0.0;
        }

        if self.score_up > self.threshold {
            let (c, s) = (self.up_count, self.up_sum);
            return self.alarm(c, s);
        }
        if self.score_down > self.threshold {
            let (c, s) = (self.down_count, self.down_sum);
            return self.alarm(c, s);
        }
        None
    }

    fn current_rate(&self) -> f64 {
        self.rate
    }

    fn reset(&mut self, initial_rate: f64) {
        assert!(
            initial_rate.is_finite() && initial_rate > 0.0,
            "initial rate must be positive"
        );
        self.rate = initial_rate;
        self.clear_scores();
    }

    fn name(&self) -> &'static str {
        "cusum"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::{Exponential, Sample};
    use simcore::rng::SimRng;

    fn feed(det: &mut CusumDetector, rate: f64, n: usize, rng: &mut SimRng) -> usize {
        let dist = Exponential::new(rate).unwrap();
        let mut fired = 0;
        for _ in 0..n {
            if det.observe(dist.sample(rng)).is_some() {
                fired += 1;
            }
        }
        fired
    }

    #[test]
    fn quiet_under_stable_rate() {
        let mut det = CusumDetector::new(30.0, 2.0, 10.0).unwrap();
        let mut rng = SimRng::seed_from(1);
        let alarms = feed(&mut det, 30.0, 3000, &mut rng);
        assert!(alarms <= 3, "{alarms} false alarms");
    }

    #[test]
    fn detects_rate_increase() {
        let mut det = CusumDetector::new(10.0, 2.0, 8.0).unwrap();
        let mut rng = SimRng::seed_from(2);
        feed(&mut det, 10.0, 300, &mut rng);
        let alarms = feed(&mut det, 60.0, 100, &mut rng);
        assert!(alarms >= 1);
        assert!(
            (det.current_rate() - 60.0).abs() / 60.0 < 0.5,
            "rate {}",
            det.current_rate()
        );
    }

    #[test]
    fn detects_rate_decrease() {
        let mut det = CusumDetector::new(60.0, 2.0, 8.0).unwrap();
        let mut rng = SimRng::seed_from(3);
        feed(&mut det, 60.0, 300, &mut rng);
        let alarms = feed(&mut det, 10.0, 200, &mut rng);
        assert!(alarms >= 1);
        assert!((det.current_rate() - 10.0).abs() / 10.0 < 0.5);
    }

    #[test]
    fn higher_threshold_is_slower() {
        let dist = Exponential::new(60.0).unwrap();
        let delay_until_alarm = |h: f64| {
            let mut det = CusumDetector::new(10.0, 2.0, h).unwrap();
            let mut rng = SimRng::seed_from(4);
            for i in 0..10_000 {
                if det.observe(dist.sample(&mut rng)).is_some() {
                    return i;
                }
            }
            usize::MAX
        };
        assert!(delay_until_alarm(4.0) <= delay_until_alarm(20.0));
    }

    #[test]
    fn validates_parameters() {
        assert!(CusumDetector::new(0.0, 2.0, 8.0).is_err());
        assert!(CusumDetector::new(10.0, 1.0, 8.0).is_err());
        assert!(CusumDetector::new(10.0, 0.5, 8.0).is_err());
        assert!(CusumDetector::new(10.0, 2.0, 0.0).is_err());
    }

    #[test]
    fn reset_clears_scores() {
        let mut det = CusumDetector::new(10.0, 2.0, 8.0).unwrap();
        let mut rng = SimRng::seed_from(5);
        feed(&mut det, 60.0, 50, &mut rng);
        det.reset(15.0);
        assert_eq!(det.current_rate(), 15.0);
        // After reset, stable feeding at the new rate stays quiet.
        let alarms = feed(&mut det, 15.0, 500, &mut rng);
        assert!(alarms <= 1);
    }
}
