//! Sliding sample window with O(1) suffix sums.
//!
//! The `ln P_max` statistic needs, for every candidate change index `k`,
//! the sum of the **last** `m − k` samples. [`SampleWindow`] keeps the
//! window in a ring buffer together with a running prefix-sum offset so
//! any suffix sum is answered from two subtractions, and the paper's note
//! that "only the sum of interarrival times needs to be updated upon
//! every arrival" holds in the implementation too.

use std::collections::VecDeque;

/// A fixed-capacity sliding window of positive samples.
///
/// # Example
///
/// ```
/// use detect::window::SampleWindow;
///
/// let mut w = SampleWindow::new(3);
/// w.push(1.0);
/// w.push(2.0);
/// w.push(3.0);
/// w.push(4.0); // evicts 1.0
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.suffix_sum(2), 7.0); // last two samples: 3 + 4
/// assert_eq!(w.total(), 9.0);
/// ```
#[derive(Debug, Clone)]
pub struct SampleWindow {
    samples: VecDeque<f64>,
    /// Cumulative sums aligned with `samples`: `cumsum[i]` is the sum of
    /// `samples[0..=i]` plus an arbitrary base offset.
    cumsum: VecDeque<f64>,
    capacity: usize,
}

impl SampleWindow {
    /// Creates a window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SampleWindow {
            samples: VecDeque::with_capacity(capacity),
            cumsum: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of samples retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// `true` when the window holds `capacity` samples.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Appends a sample, evicting the oldest if full.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is negative or not finite.
    pub fn push(&mut self, sample: f64) {
        assert!(
            sample.is_finite() && sample >= 0.0,
            "samples must be finite and non-negative, got {sample}"
        );
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.cumsum.pop_front();
        }
        let base = self.cumsum.back().copied().unwrap_or(0.0);
        self.samples.push_back(sample);
        self.cumsum.push_back(base + sample);
    }

    /// Sum of the most recent `n` samples.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the current length.
    #[must_use]
    pub fn suffix_sum(&self, n: usize) -> f64 {
        assert!(n <= self.samples.len(), "suffix longer than window");
        if n == 0 {
            return 0.0;
        }
        let last = *self.cumsum.back().expect("n > 0 implies non-empty");
        let cut = self.samples.len() - n;
        if cut == 0 {
            last - (self.cumsum.front().expect("non-empty")
                - self.samples.front().expect("non-empty"))
        } else {
            last - self.cumsum[cut - 1]
        }
    }

    /// Sum of all samples in the window.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.suffix_sum(self.samples.len())
    }

    /// Mean of all samples; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.total() / self.samples.len() as f64
        }
    }

    /// Maximum-likelihood exponential rate of the most recent `n`
    /// samples: `n / suffix_sum(n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, exceeds the length, or the suffix sum is
    /// zero.
    #[must_use]
    pub fn suffix_rate(&self, n: usize) -> f64 {
        assert!(n > 0, "rate of zero samples");
        let s = self.suffix_sum(n);
        assert!(s > 0.0, "rate undefined for all-zero samples");
        n as f64 / s
    }

    /// Keeps only the most recent `n` samples, discarding the rest. Used
    /// after a detected change so the window contains post-change samples
    /// only.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the current length.
    pub fn retain_last(&mut self, n: usize) {
        assert!(n <= self.samples.len(), "cannot retain more than held");
        while self.samples.len() > n {
            self.samples.pop_front();
            self.cumsum.pop_front();
        }
    }

    /// Clears all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.cumsum.clear();
    }

    /// Iterates the samples oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_evict() {
        let mut w = SampleWindow::new(2);
        w.push(1.0);
        assert!(!w.is_full());
        w.push(2.0);
        assert!(w.is_full());
        w.push(3.0);
        let v: Vec<f64> = w.iter().collect();
        assert_eq!(v, vec![2.0, 3.0]);
    }

    #[test]
    fn suffix_sums_match_naive() {
        let mut w = SampleWindow::new(5);
        let data = [0.5, 1.5, 2.0, 0.25, 3.0, 1.0, 0.75];
        for &x in &data {
            w.push(x);
        }
        let held: Vec<f64> = w.iter().collect();
        for n in 0..=held.len() {
            let naive: f64 = held[held.len() - n..].iter().sum();
            assert!((w.suffix_sum(n) - naive).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn suffix_sums_stay_accurate_after_many_evictions() {
        let mut w = SampleWindow::new(10);
        for i in 0..100_000 {
            w.push((i % 7) as f64 * 0.1);
        }
        let held: Vec<f64> = w.iter().collect();
        let naive: f64 = held.iter().sum();
        assert!((w.total() - naive).abs() < 1e-6);
    }

    #[test]
    fn mean_and_rate() {
        let mut w = SampleWindow::new(4);
        for x in [0.1, 0.1, 0.1, 0.1] {
            w.push(x);
        }
        assert!((w.mean() - 0.1).abs() < 1e-12);
        assert!((w.suffix_rate(4) - 10.0).abs() < 1e-9);
        assert!((w.suffix_rate(2) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn retain_last_keeps_tail() {
        let mut w = SampleWindow::new(5);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.push(x);
        }
        w.retain_last(2);
        let v: Vec<f64> = w.iter().collect();
        assert_eq!(v, vec![4.0, 5.0]);
        assert_eq!(w.total(), 9.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.suffix_sum(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SampleWindow::new(0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_sample_panics() {
        SampleWindow::new(2).push(-0.1);
    }

    #[test]
    #[should_panic(expected = "suffix longer")]
    fn oversized_suffix_panics() {
        let mut w = SampleWindow::new(3);
        w.push(1.0);
        let _ = w.suffix_sum(2);
    }
}
