//! Sliding sample window with O(1) suffix sums.
//!
//! The `ln P_max` statistic needs, for every candidate change index `k`,
//! the sum of the **last** `m − k` samples. [`SampleWindow`] keeps the
//! window in a ring buffer together with a running prefix-sum offset so
//! any suffix sum is answered from two subtractions, and the paper's note
//! that "only the sum of interarrival times needs to be updated upon
//! every arrival" holds in the implementation too.
//!
//! # Hot-path layout
//!
//! The window is the innermost data structure of both Monte-Carlo
//! calibration (`trials × ratios` windows per table) and the online
//! detector, so its layout is flat: one `Box<[f64]>` for the samples and
//! one for the running prefix sums, addressed through a `head`/`len`
//! ring. This replaces an earlier two-`VecDeque` layout (retained
//! verbatim in [`reference`] for differential tests and benchmarks)
//! while reproducing its arithmetic **bit for bit**: the prefix-sum
//! values and the subtraction order in [`SampleWindow::suffix_sum`] are
//! identical, only the storage changed. Construction is the only
//! allocation; [`SampleWindow::clear`] and reuse across trials cost
//! nothing.

use simcore::dist::Exponential;
use simcore::rng::SimRng;

/// A fixed-capacity sliding window of positive samples.
///
/// # Example
///
/// ```
/// use detect::window::SampleWindow;
///
/// let mut w = SampleWindow::new(3);
/// w.push(1.0);
/// w.push(2.0);
/// w.push(3.0);
/// w.push(4.0); // evicts 1.0
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.suffix_sum(2), 7.0); // last two samples: 3 + 4
/// assert_eq!(w.total(), 9.0);
/// ```
#[derive(Debug, Clone)]
pub struct SampleWindow {
    /// Sample ring: logical index `i` (0 = oldest) lives at
    /// `(head + i) % capacity`.
    samples: Box<[f64]>,
    /// Running prefix sums aligned with `samples`: the cumulative total
    /// of every sample pushed so far (plus an arbitrary base offset
    /// carried across evictions), never renormalized.
    cumsum: Box<[f64]>,
    head: usize,
    len: usize,
}

impl SampleWindow {
    /// Creates a window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SampleWindow {
            samples: vec![0.0; capacity].into_boxed_slice(),
            cumsum: vec![0.0; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Maximum number of samples retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.samples.len()
    }

    /// Current number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no samples are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when the window holds `capacity` samples.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// Physical slot of logical index `i` (0 = oldest).
    #[inline]
    fn slot(&self, i: usize) -> usize {
        let cap = self.samples.len();
        let s = self.head + i;
        if s >= cap {
            s - cap
        } else {
            s
        }
    }

    /// Appends a sample, evicting the oldest if full.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is negative or not finite.
    pub fn push(&mut self, sample: f64) {
        assert!(
            sample.is_finite() && sample >= 0.0,
            "samples must be finite and non-negative, got {sample}"
        );
        let cap = self.samples.len();
        if self.len == cap {
            // Evict the oldest; the running totals of the survivors are
            // untouched, exactly as popping the front of a deque was.
            self.head = if self.head + 1 == cap {
                0
            } else {
                self.head + 1
            };
            self.len -= 1;
        }
        let base = if self.len == 0 {
            0.0
        } else {
            self.cumsum[self.slot(self.len - 1)]
        };
        let at = self.slot(self.len);
        self.samples[at] = sample;
        self.cumsum[at] = base + sample;
        self.len += 1;
    }

    /// Refills the window to capacity with draws from `dist`.
    ///
    /// Equivalent to [`Self::clear`] followed by `capacity` calls of
    /// `push(dist.sample(rng))` — bit for bit, including the stored
    /// prefix sums — but routed through
    /// [`Exponential::fill_with_cumsum`], which fuses the RNG draws,
    /// the `ln` kernel, and the running sum into one pass. This is the
    /// Monte-Carlo calibration inner loop. Exponential samples are
    /// finite and non-negative by construction (`-ln(1-u)/λ` with
    /// `u ∈ [0, 1)`), so [`Self::push`]'s per-sample domain checks hold
    /// without being re-evaluated.
    pub fn refill_exponential(&mut self, dist: &Exponential, rng: &mut SimRng) {
        self.head = 0;
        self.len = self.samples.len();
        dist.fill_with_cumsum(rng, &mut self.samples, &mut self.cumsum);
    }

    /// Replaces the window's contents with `samples`, oldest first.
    ///
    /// Equivalent to [`Self::clear`] followed by one [`Self::push`] per
    /// sample — including bit for bit: the running sum starts at `0.0`
    /// and accumulates as `prev + x` exactly as the push path does
    /// (which matters because a sample may be `-0.0`, and
    /// `0.0 + (-0.0)` is `+0.0`). The fused loop exists for the
    /// Monte-Carlo hot path, where it replaces `capacity` individual
    /// pushes (each re-deriving its ring slot and eviction state) with
    /// a straight-line cumulative-sum fill.
    ///
    /// # Panics
    ///
    /// Panics if `samples` exceeds the capacity, or if any sample is
    /// negative or not finite.
    pub fn refill(&mut self, samples: &[f64]) {
        assert!(
            samples.len() <= self.capacity(),
            "refill of {} samples exceeds capacity {}",
            samples.len(),
            self.capacity()
        );
        self.head = 0;
        self.len = samples.len();
        let mut prev = 0.0f64;
        for (i, &x) in samples.iter().enumerate() {
            assert!(
                x.is_finite() && x >= 0.0,
                "samples must be finite and non-negative, got {x}"
            );
            self.samples[i] = x;
            prev += x;
            self.cumsum[i] = prev;
        }
    }

    /// Sum of the most recent `n` samples.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the current length.
    #[must_use]
    pub fn suffix_sum(&self, n: usize) -> f64 {
        assert!(n <= self.len, "suffix longer than window");
        if n == 0 {
            return 0.0;
        }
        let last = self.cumsum[self.slot(self.len - 1)];
        let cut = self.len - n;
        if cut == 0 {
            let front = self.slot(0);
            last - (self.cumsum[front] - self.samples[front])
        } else {
            last - self.cumsum[self.slot(cut - 1)]
        }
    }

    /// Sum of all samples in the window.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.suffix_sum(self.len)
    }

    /// Mean of all samples; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.total() / self.len as f64
        }
    }

    /// Maximum-likelihood exponential rate of the most recent `n`
    /// samples: `n / suffix_sum(n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, exceeds the length, or the suffix sum is
    /// zero.
    #[must_use]
    pub fn suffix_rate(&self, n: usize) -> f64 {
        assert!(n > 0, "rate of zero samples");
        let s = self.suffix_sum(n);
        assert!(s > 0.0, "rate undefined for all-zero samples");
        n as f64 / s
    }

    /// Keeps only the most recent `n` samples, discarding the rest. Used
    /// after a detected change so the window contains post-change samples
    /// only.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the current length.
    pub fn retain_last(&mut self, n: usize) {
        assert!(n <= self.len, "cannot retain more than held");
        let drop = self.len - n;
        self.head = self.slot(drop);
        self.len = n;
    }

    /// Clears all samples. Storage is retained, so a cleared window can
    /// be refilled with zero allocations.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// Iterates the samples oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len).map(|i| self.samples[self.slot(i)])
    }
}

/// A reusable window-plus-sample-buffer arena for Monte-Carlo trials.
///
/// One calibration trial needs a `window`-capacity [`SampleWindow`] and
/// a staging buffer for the batched exponential draws. Allocating both
/// per trial dominated the old kernel's cost; a `ScratchWindow` owns
/// them once and hands out cleared views, so a worker thread runs any
/// number of trials with **zero heap allocations** after the first
/// (re)size.
#[derive(Debug)]
pub struct ScratchWindow {
    window: SampleWindow,
    samples: Vec<f64>,
}

impl ScratchWindow {
    /// Creates an arena for windows of `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ScratchWindow {
            window: SampleWindow::new(capacity),
            samples: vec![0.0; capacity],
        }
    }

    /// Resizes the arena if `capacity` differs from the current one;
    /// otherwise a no-op. Returns `true` when a reallocation happened.
    pub fn ensure_capacity(&mut self, capacity: usize) -> bool {
        if self.window.capacity() == capacity {
            return false;
        }
        self.window = SampleWindow::new(capacity);
        self.samples = vec![0.0; capacity];
        true
    }

    /// The cleared window and the full-capacity staging buffer, ready
    /// for one trial.
    pub fn begin_trial(&mut self) -> (&mut SampleWindow, &mut [f64]) {
        self.window.clear();
        (&mut self.window, &mut self.samples)
    }
}

pub mod reference {
    //! The pre-optimization two-`VecDeque` window, retained verbatim.
    //!
    //! This is the exact seed-era implementation [`SampleWindow`]
    //! replaced. It exists for two jobs: the differential property test
    //! that drives both windows through random operation sequences and
    //! asserts bit-equal results, and `bench_hotpath`, which measures
    //! the ring-buffer kernel's speedup against this as the "pre-PR
    //! kernel" in the same run. Do not use it in production paths.

    use std::collections::VecDeque;

    /// The original deque-backed sliding window (pre-PR kernel).
    #[derive(Debug, Clone)]
    pub struct VecDequeWindow {
        samples: VecDeque<f64>,
        cumsum: VecDeque<f64>,
        capacity: usize,
    }

    impl VecDequeWindow {
        /// Creates a window holding at most `capacity` samples.
        ///
        /// # Panics
        ///
        /// Panics if `capacity` is zero.
        #[must_use]
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0, "window capacity must be positive");
            VecDequeWindow {
                samples: VecDeque::with_capacity(capacity),
                cumsum: VecDeque::with_capacity(capacity),
                capacity,
            }
        }

        /// Current number of samples.
        #[must_use]
        pub fn len(&self) -> usize {
            self.samples.len()
        }

        /// `true` when no samples are held.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.samples.is_empty()
        }

        /// Appends a sample, evicting the oldest if full.
        ///
        /// # Panics
        ///
        /// Panics if `sample` is negative or not finite.
        pub fn push(&mut self, sample: f64) {
            assert!(
                sample.is_finite() && sample >= 0.0,
                "samples must be finite and non-negative, got {sample}"
            );
            if self.samples.len() == self.capacity {
                self.samples.pop_front();
                self.cumsum.pop_front();
            }
            let base = self.cumsum.back().copied().unwrap_or(0.0);
            self.samples.push_back(sample);
            self.cumsum.push_back(base + sample);
        }

        /// Sum of the most recent `n` samples.
        ///
        /// # Panics
        ///
        /// Panics if `n` exceeds the current length.
        #[must_use]
        pub fn suffix_sum(&self, n: usize) -> f64 {
            assert!(n <= self.samples.len(), "suffix longer than window");
            if n == 0 {
                return 0.0;
            }
            let last = *self.cumsum.back().expect("n > 0 implies non-empty");
            let cut = self.samples.len() - n;
            if cut == 0 {
                last - (self.cumsum.front().expect("non-empty")
                    - self.samples.front().expect("non-empty"))
            } else {
                last - self.cumsum[cut - 1]
            }
        }

        /// Sum of all samples in the window.
        #[must_use]
        pub fn total(&self) -> f64 {
            self.suffix_sum(self.samples.len())
        }

        /// Keeps only the most recent `n` samples.
        ///
        /// # Panics
        ///
        /// Panics if `n` exceeds the current length.
        pub fn retain_last(&mut self, n: usize) {
            assert!(n <= self.samples.len(), "cannot retain more than held");
            while self.samples.len() > n {
                self.samples.pop_front();
                self.cumsum.pop_front();
            }
        }

        /// Clears all samples.
        pub fn clear(&mut self) {
            self.samples.clear();
            self.cumsum.clear();
        }

        /// Iterates the samples oldest → newest.
        pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
            self.samples.iter().copied()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_evict() {
        let mut w = SampleWindow::new(2);
        w.push(1.0);
        assert!(!w.is_full());
        w.push(2.0);
        assert!(w.is_full());
        w.push(3.0);
        let v: Vec<f64> = w.iter().collect();
        assert_eq!(v, vec![2.0, 3.0]);
    }

    #[test]
    fn suffix_sums_match_naive() {
        let mut w = SampleWindow::new(5);
        let data = [0.5, 1.5, 2.0, 0.25, 3.0, 1.0, 0.75];
        for &x in &data {
            w.push(x);
        }
        let held: Vec<f64> = w.iter().collect();
        for n in 0..=held.len() {
            let naive: f64 = held[held.len() - n..].iter().sum();
            assert!((w.suffix_sum(n) - naive).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn suffix_sums_stay_accurate_after_many_evictions() {
        let mut w = SampleWindow::new(10);
        for i in 0..100_000 {
            w.push((i % 7) as f64 * 0.1);
        }
        let held: Vec<f64> = w.iter().collect();
        let naive: f64 = held.iter().sum();
        assert!((w.total() - naive).abs() < 1e-6);
    }

    #[test]
    fn mean_and_rate() {
        let mut w = SampleWindow::new(4);
        for x in [0.1, 0.1, 0.1, 0.1] {
            w.push(x);
        }
        assert!((w.mean() - 0.1).abs() < 1e-12);
        assert!((w.suffix_rate(4) - 10.0).abs() < 1e-9);
        assert!((w.suffix_rate(2) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn retain_last_keeps_tail() {
        let mut w = SampleWindow::new(5);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.push(x);
        }
        w.retain_last(2);
        let v: Vec<f64> = w.iter().collect();
        assert_eq!(v, vec![4.0, 5.0]);
        assert_eq!(w.total(), 9.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.suffix_sum(0), 0.0);
    }

    #[test]
    fn refill_after_retain_wraps_correctly() {
        // Exercise the ring wrap: evictions move the head, then pushes
        // write past the physical end of the buffer.
        let mut w = SampleWindow::new(4);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
            w.push(x); // holds [3, 4, 5, 6], head has wrapped
        }
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![3.0, 4.0, 5.0, 6.0]);
        w.retain_last(1);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![6.0]);
        w.push(7.0);
        w.push(8.0);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![6.0, 7.0, 8.0]);
        assert!((w.suffix_sum(2) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn matches_reference_window_bitwise_on_a_fixed_sequence() {
        use simcore::dist::{Exponential, Sample};
        use simcore::rng::SimRng;
        let unit = Exponential::new(1.0).unwrap();
        let mut rng = SimRng::seed_from(99);
        let mut ring = SampleWindow::new(7);
        let mut deque = reference::VecDequeWindow::new(7);
        for i in 0..500 {
            let x = unit.sample(&mut rng);
            ring.push(x);
            deque.push(x);
            for n in 0..=ring.len() {
                assert_eq!(
                    ring.suffix_sum(n).to_bits(),
                    deque.suffix_sum(n).to_bits(),
                    "i={i} n={n}"
                );
            }
            if i % 97 == 0 && ring.len() > 2 {
                ring.retain_last(2);
                deque.retain_last(2);
            }
        }
    }

    #[test]
    fn refill_is_bit_identical_to_clear_plus_pushes() {
        use simcore::dist::{Exponential, Sample};
        use simcore::rng::SimRng;
        let unit = Exponential::new(1.0).unwrap();
        let mut rng = SimRng::seed_from(0x5EED);
        let mut pushed = SampleWindow::new(64);
        let mut refilled = SampleWindow::new(64);
        // Dirty both windows first so refill must overwrite stale state,
        // including a wrapped head.
        for _ in 0..100 {
            let x = unit.sample(&mut rng);
            pushed.push(x);
            refilled.push(x);
        }
        for len in [0usize, 1, 7, 63, 64] {
            let batch: Vec<f64> = (0..len).map(|_| unit.sample(&mut rng)).collect();
            pushed.clear();
            for &x in &batch {
                pushed.push(x);
            }
            refilled.refill(&batch);
            assert_eq!(refilled.len(), pushed.len());
            for n in 0..=len {
                assert_eq!(
                    refilled.suffix_sum(n).to_bits(),
                    pushed.suffix_sum(n).to_bits(),
                    "len={len} n={n}"
                );
            }
            assert!(refilled.iter().eq(pushed.iter()));
        }
    }

    #[test]
    fn refill_exponential_matches_sample_push_loop_bitwise() {
        use simcore::dist::Sample;
        // The fused sampler must leave the window exactly as the naive
        // clear + per-sample push loop would, for both rate arms, and
        // must fully overwrite stale wrapped-ring state.
        for rate in [1.0, 25.0] {
            let dist = Exponential::new(rate).unwrap();
            let mut fused = SampleWindow::new(100);
            let mut naive = SampleWindow::new(100);
            for _ in 0..150 {
                fused.push(0.5); // wrap the head
            }
            let mut a = SimRng::seed_from(0xCAFE);
            let mut b = SimRng::seed_from(0xCAFE);
            fused.refill_exponential(&dist, &mut a);
            naive.clear();
            for _ in 0..100 {
                naive.push(dist.sample(&mut b));
            }
            assert_eq!(fused.len(), naive.len());
            for n in 0..=100 {
                assert_eq!(
                    fused.suffix_sum(n).to_bits(),
                    naive.suffix_sum(n).to_bits(),
                    "rate {rate} n={n}"
                );
            }
            assert!(fused.iter().eq(naive.iter()), "rate {rate}");
            assert_eq!(a.next_u64(), b.next_u64(), "rate {rate} RNG state");
        }
    }

    #[test]
    fn refill_handles_negative_zero_like_push() {
        // -0.0 passes the `>= 0.0` check and 0.0 + (-0.0) == +0.0; the
        // fused sum must take the same path.
        let mut pushed = SampleWindow::new(3);
        let mut refilled = SampleWindow::new(3);
        let batch = [-0.0f64, 1.0, -0.0];
        for &x in &batch {
            pushed.push(x);
        }
        refilled.refill(&batch);
        for n in 0..=3 {
            assert_eq!(
                refilled.suffix_sum(n).to_bits(),
                pushed.suffix_sum(n).to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_refill_panics() {
        SampleWindow::new(2).refill(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn refill_rejects_negative_samples() {
        SampleWindow::new(4).refill(&[1.0, -0.5]);
    }

    #[test]
    fn scratch_window_reuses_storage() {
        let mut scratch = ScratchWindow::new(8);
        assert!(!scratch.ensure_capacity(8), "same capacity: no realloc");
        assert!(scratch.ensure_capacity(16), "new capacity: realloc");
        let (w, buf) = scratch.begin_trial();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 16);
        assert_eq!(buf.len(), 16);
        w.push(1.0);
        let (w2, _) = scratch.begin_trial();
        assert!(w2.is_empty(), "begin_trial clears the window");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SampleWindow::new(0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_sample_panics() {
        SampleWindow::new(2).push(-0.1);
    }

    #[test]
    #[should_panic(expected = "suffix longer")]
    fn oversized_suffix_panics() {
        let mut w = SampleWindow::new(3);
        w.push(1.0);
        let _ = w.suffix_sum(2);
    }
}
