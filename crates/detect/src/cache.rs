//! Process-wide cache of calibrated threshold tables.
//!
//! Offline Monte-Carlo calibration dominates the startup cost of every
//! [`ChangePointDetector`](crate::ChangePointDetector). Experiment
//! harnesses construct hundreds of identically configured detectors
//! (one per simulated run), each of which would repeat the exact same
//! calibration: the result is a pure function of the calibration
//! configuration, the candidate-ratio grid, and the calibration seed.
//!
//! This module memoizes that function process-wide. Tables are shared as
//! [`Arc`]s, so a thousand detectors constructed from one configuration
//! perform one calibration and share one allocation.
//!
//! # Locking
//!
//! The cache is a **sharded map of per-key entries**. A lookup briefly
//! locks one shard to fetch-or-insert the key's entry, releases it, and
//! then locks only that entry for the duration of its calibration:
//!
//! * concurrent misses on **distinct keys** calibrate concurrently —
//!   a heterogeneous fleet's first wave of detector configs never
//!   queues head-of-line behind one calibration (shard collisions cost
//!   only the brief entry fetch, never the calibration itself);
//! * concurrent misses on the **same key** are deduplicated — the
//!   second requester blocks on the entry until the first finishes,
//!   then counts a hit and receives the shared [`Arc`];
//! * failed calibrations leave the entry empty, so errors keep missing
//!   and never poison the map.
//!
//! f64 key components are hashed by their IEEE-754 bit patterns
//! ([`f64::to_bits`]), so "identical configuration" means *bit*-identical
//! — two configs that differ by one ULP calibrate separately, which is
//! exactly the determinism contract the rest of the workspace relies on.

use crate::calibrate::{CalibrationConfig, ThresholdTable};
use crate::DetectError;
use simcore::par::Jobs;
use simcore::rng::SimRng;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: the complete input of the calibration pure function, with
/// floats keyed by bit pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    window: usize,
    k_step: usize,
    confidence_bits: u64,
    trials: usize,
    ratio_bits: Vec<u64>,
    seed: u64,
}

impl CacheKey {
    fn new(ratios: &[f64], config: CalibrationConfig, seed: u64) -> Self {
        CacheKey {
            window: config.window,
            k_step: config.k_step,
            confidence_bits: config.confidence.to_bits(),
            trials: config.trials,
            ratio_bits: ratios.iter().map(|r| r.to_bits()).collect(),
            seed,
        }
    }
}

/// One key's calibration slot. The slot mutex — not the shard mutex —
/// is what a miss holds while calibrating, so only same-key requesters
/// ever wait on a calibration. `None` means "not calibrated yet" (fresh
/// entry, or every calibration so far failed).
#[derive(Default)]
struct Entry {
    table: Mutex<Option<Arc<ThresholdTable>>>,
}

/// Shard count: a small power of two is plenty — the shard lock is held
/// only for a `HashMap` fetch-or-insert, never across calibration, so
/// sharding only has to spread that microsecond-scale critical section.
const SHARD_COUNT: usize = 16;

/// One shard: a plain map from key to its calibration entry.
type Shard = Mutex<HashMap<CacheKey, Arc<Entry>>>;

static SHARDS: OnceLock<Vec<Shard>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static HIT_NANOS: AtomicU64 = AtomicU64::new(0);
static MISS_NANOS: AtomicU64 = AtomicU64::new(0);

fn shards() -> &'static [Shard] {
    SHARDS.get_or_init(|| {
        (0..SHARD_COUNT)
            .map(|_| Mutex::new(HashMap::new()))
            .collect()
    })
}

/// Stable shard selector. `DefaultHasher::new()` is deterministic (the
/// per-`HashMap` random state lives in `RandomState`, not here), so a
/// key maps to the same shard for the lifetime of the process.
fn shard_of(key: &CacheKey) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARD_COUNT
}

/// Recovers a poisoned lock: a panicking calibration (contained by the
/// fleet supervisor's `catch_unwind`) leaves its entry `None`, which is
/// exactly the "not calibrated" state, so later lookups can proceed.
fn relock<T>(lock: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Returns the calibrated table for `(ratios, config, seed)`, calibrating
/// at most once per distinct key for the lifetime of the process.
///
/// Misses on **distinct keys proceed concurrently**: a lookup holds its
/// shard's lock only to fetch-or-insert the key's entry, then calibrates
/// under that entry's own lock. Concurrent requests for the **same** key
/// never duplicate the Monte-Carlo work — the second requester blocks on
/// the entry until the first finishes, counts a hit, and receives the
/// shared [`Arc`]. (Calibration also parallelizes internally via `jobs`.)
///
/// # Errors
///
/// Propagates any [`ThresholdTable::calibrate_jobs`] error; failed
/// calibrations are not cached — the key's entry stays empty and the
/// next lookup calibrates again.
pub fn cached_table(
    ratios: &[f64],
    config: CalibrationConfig,
    seed: u64,
    jobs: Jobs,
) -> Result<Arc<ThresholdTable>, DetectError> {
    let started = std::time::Instant::now();
    let key = CacheKey::new(ratios, config, seed);
    let entry = {
        let mut map = relock(&shards()[shard_of(&key)]);
        Arc::clone(map.entry(key).or_default())
    };
    // Shard lock released: from here on, only same-key traffic contends.
    let mut slot = relock(&entry.table);
    if let Some(table) = slot.as_ref() {
        HITS.fetch_add(1, Ordering::Relaxed);
        HIT_NANOS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        return Ok(Arc::clone(table));
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let mut rng = SimRng::seed_from(seed);
    let table = Arc::new(ThresholdTable::calibrate_jobs(
        ratios, config, &mut rng, jobs,
    )?);
    *slot = Some(Arc::clone(&table));
    MISS_NANOS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    Ok(table)
}

/// Lifetime cache statistics as `(hits, misses)` — a hit returned a
/// previously calibrated table, a miss ran a fresh calibration.
#[must_use]
pub fn cache_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Fraction of lifetime lookups served from the cache, in `[0, 1]`;
/// `0.0` before any lookup. Two atomic loads — cheap enough to call
/// from a bench inner loop or a log line.
#[must_use]
pub fn hit_ratio() -> f64 {
    let (hits, misses) = cache_stats();
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Lifetime threshold-cache statistics, including cumulative latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned an already calibrated table.
    pub hits: u64,
    /// Lookups that ran a fresh calibration (successful misses only).
    pub misses: u64,
    /// Wall time spent inside hit lookups, nanoseconds.
    pub hit_nanos: u64,
    /// Wall time spent inside miss lookups (dominated by the
    /// Monte-Carlo calibration itself), nanoseconds.
    pub miss_nanos: u64,
}

impl CacheStats {
    /// Fraction of these lookups that were hits, in `[0, 1]`; `0.0`
    /// when no lookups were recorded.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The activity recorded between `earlier` (a previous
    /// [`cache_stats_detailed`] snapshot) and `self` — how a bounded
    /// region of work (one fleet run, one bench phase) used the cache,
    /// independent of whatever the process did before. Saturating, so a
    /// mismatched snapshot order yields zeros rather than wrapping.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            hit_nanos: self.hit_nanos.saturating_sub(earlier.hit_nanos),
            miss_nanos: self.miss_nanos.saturating_sub(earlier.miss_nanos),
        }
    }
}

/// Lifetime cache statistics with per-path latency — the profiling
/// companion to [`cache_stats`]. Successful misses accumulate
/// `miss_nanos`; failed calibrations count as misses but record no
/// latency (they abort before the table is built).
#[must_use]
pub fn cache_stats_detailed() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        hit_nanos: HIT_NANOS.load(Ordering::Relaxed),
        miss_nanos: MISS_NANOS.load(Ordering::Relaxed),
    }
}

/// Drops every cached table (already-shared [`Arc`]s stay alive in their
/// holders; an in-flight calibration completes into its orphaned entry
/// and is simply recalibrated on the next lookup). Statistics are
/// preserved. Primarily for tests and memory-sensitive embedders.
pub fn clear() {
    for shard in shards() {
        relock(shard).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Barrier;

    fn quick_config() -> CalibrationConfig {
        CalibrationConfig {
            window: 40,
            k_step: 4,
            confidence: 0.99,
            trials: 200,
        }
    }

    #[test]
    fn repeated_lookups_share_one_table() {
        // Distinct seed so other tests cannot pre-populate this key.
        let seed = 0xCAC4_E001;
        let (_, m0) = cache_stats();
        let a = cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap();
        let (h1, m1) = cache_stats();
        assert_eq!(m1, m0 + 1, "first lookup must calibrate");
        let b = cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap();
        let (h2, _) = cache_stats();
        assert!(h2 > h1.saturating_sub(1), "second lookup must hit");
        assert!(Arc::ptr_eq(&a, &b), "hits share the same allocation");
    }

    #[test]
    fn stats_delta_isolates_a_region_of_work() {
        let seed = 0xCAC4_E010;
        let before = cache_stats_detailed();
        let _ = cached_table(&[2.0, 4.0], quick_config(), seed, Jobs::Count(1)).unwrap();
        let _ = cached_table(&[2.0, 4.0], quick_config(), seed, Jobs::Count(1)).unwrap();
        let delta = cache_stats_detailed().since(&before);
        // Other tests may run concurrently, so the delta is a lower
        // bound on global counters but exact for this key's first use.
        assert!(delta.misses >= 1, "first lookup calibrated");
        assert!(delta.hits >= 1, "second lookup hit");
        assert!(delta.hit_ratio() > 0.0);
        // Reversed snapshots saturate to zero instead of wrapping.
        let zero = before.since(&cache_stats_detailed());
        assert_eq!((zero.hits, zero.misses), (0, 0));
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let seed = 0xCAC4_E002;
        let a = cached_table(&[2.0], quick_config(), seed, Jobs::Count(1)).unwrap();
        let b = cached_table(&[3.0], quick_config(), seed, Jobs::Count(1)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.ratios(), b.ratios());
        let c = cached_table(&[2.0], quick_config(), seed + 1, Jobs::Count(1)).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "seed is part of the key");
    }

    #[test]
    fn cached_table_matches_direct_calibration() {
        let seed = 0xCAC4_E003;
        let cached = cached_table(&[2.0], quick_config(), seed, Jobs::Count(1)).unwrap();
        let direct = ThresholdTable::calibrate_jobs(
            &[2.0],
            quick_config(),
            &mut SimRng::seed_from(seed),
            Jobs::Count(1),
        )
        .unwrap();
        assert_eq!(*cached, direct);
    }

    #[test]
    fn detailed_stats_track_latency_per_path() {
        let seed = 0xCAC4_E005;
        let before = cache_stats_detailed();
        let _ = cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap();
        let after_miss = cache_stats_detailed();
        // Other tests run concurrently against the same global counters,
        // so assert monotone lower bounds rather than exact deltas.
        assert!(after_miss.misses > before.misses);
        assert!(
            after_miss.miss_nanos > before.miss_nanos,
            "a calibration takes measurable time"
        );
        let _ = cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap();
        let after_hit = cache_stats_detailed();
        assert!(after_hit.hits > after_miss.hits);
        assert!(after_hit.hit_nanos >= after_miss.hit_nanos);
        let (hits, misses) = cache_stats();
        assert!(hits >= after_hit.hits.saturating_sub(1));
        assert!(misses >= after_hit.misses.saturating_sub(1));
    }

    #[test]
    fn hit_ratio_reflects_traffic() {
        let seed = 0xCAC4_E006;
        let _ = cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap();
        let _ = cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap();
        let global = hit_ratio();
        assert!((0.0..=1.0).contains(&global));
        let stats = cache_stats_detailed();
        assert!(stats.hits >= 1, "second lookup above must have hit");
        assert!(stats.hit_ratio() > 0.0);
        assert!(stats.hit_ratio() <= 1.0);
        let empty = CacheStats {
            hits: 0,
            misses: 0,
            hit_nanos: 0,
            miss_nanos: 0,
        };
        assert_eq!(empty.hit_ratio(), 0.0);
    }

    #[test]
    fn failed_calibrations_are_not_cached() {
        let seed = 0xCAC4_E004;
        assert!(cached_table(&[], quick_config(), seed, Jobs::Count(1)).is_err());
        let (_, m0) = cache_stats();
        assert!(cached_table(&[], quick_config(), seed, Jobs::Count(1)).is_err());
        let (_, m1) = cache_stats();
        assert_eq!(m1, m0 + 1, "errors keep missing, never poison the map");
        // A failed key must also recover: the same key with valid ratios
        // is a different key, but the failed entry itself must not block
        // a third attempt.
        assert!(cached_table(&[], quick_config(), seed, Jobs::Count(1)).is_err());
    }

    /// The regression test for the head-of-line bug this module used to
    /// have: the old design held one global lock across the entire
    /// Monte-Carlo calibration, so a concurrent miss on a *different*
    /// key queued behind it. Here a long calibration (A) and a short one
    /// (B) start together; B must finish while A is still running.
    #[test]
    fn concurrent_misses_on_distinct_keys_overlap() {
        // Unique seeds so neither key can be pre-populated.
        let seed = 0xCAC4_E020;
        // A must stay busy far longer than the sleep below plus B's
        // quick calibration, or `a_done` flips before B returns and the
        // test fails without any serialization. The optimized kernel
        // runs a few million trials per second, so size A in the
        // hundreds of milliseconds.
        let long_config = CalibrationConfig {
            window: 80,
            k_step: 8,
            confidence: 0.99,
            trials: 200_000,
        };
        let short_config = quick_config();
        let barrier = Barrier::new(2);
        let a_done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                barrier.wait();
                let _ = cached_table(&[2.0], long_config, seed, Jobs::Count(1)).unwrap();
                a_done.store(true, Ordering::SeqCst);
            });
            barrier.wait();
            // Give A time to enter its calibration (it holds only its
            // own entry's lock once inside).
            std::thread::sleep(std::time::Duration::from_millis(10));
            let _ = cached_table(&[2.0], short_config, seed, Jobs::Count(1)).unwrap();
            assert!(
                !a_done.load(Ordering::SeqCst),
                "short calibration (B) waited for the long one (A) to finish — \
                 distinct-key misses are serializing again"
            );
        });
    }

    /// Same-key concurrent misses must still be deduplicated: exactly
    /// one calibration runs, everyone shares its allocation.
    #[test]
    fn concurrent_same_key_misses_calibrate_once() {
        let seed = 0xCAC4_E021;
        let (_, m0) = cache_stats();
        let barrier = Barrier::new(4);
        let tables: Vec<Arc<ThresholdTable>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let (_, m1) = cache_stats();
        assert_eq!(m1, m0 + 1, "same key must calibrate exactly once");
        assert!(tables.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
    }

    #[test]
    fn clear_preserves_stats_and_recalibrates() {
        let seed = 0xCAC4_E022;
        let a = cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap();
        let (_, m0) = cache_stats();
        clear();
        let (h1, m1) = cache_stats();
        assert_eq!(m0, m1, "clear preserves statistics");
        let b = cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap();
        let (_, m2) = cache_stats();
        assert_eq!(m2, m1 + 1, "cleared key calibrates again");
        assert!(!Arc::ptr_eq(&a, &b), "fresh allocation after clear");
        assert_eq!(*a, *b, "recalibration is deterministic");
        let _ = h1;
    }
}
