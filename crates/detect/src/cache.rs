//! Process-wide cache of calibrated threshold tables.
//!
//! Offline Monte-Carlo calibration dominates the startup cost of every
//! [`ChangePointDetector`](crate::ChangePointDetector). Experiment
//! harnesses construct hundreds of identically configured detectors
//! (one per simulated run), each of which would repeat the exact same
//! calibration: the result is a pure function of the calibration
//! configuration, the candidate-ratio grid, and the calibration seed.
//!
//! This module memoizes that function process-wide. Tables are shared as
//! [`Arc`]s, so a thousand detectors constructed from one configuration
//! perform one calibration and share one allocation.
//!
//! f64 key components are hashed by their IEEE-754 bit patterns
//! ([`f64::to_bits`]), so "identical configuration" means *bit*-identical
//! — two configs that differ by one ULP calibrate separately, which is
//! exactly the determinism contract the rest of the workspace relies on.

use crate::calibrate::{CalibrationConfig, ThresholdTable};
use crate::DetectError;
use simcore::par::Jobs;
use simcore::rng::SimRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: the complete input of the calibration pure function, with
/// floats keyed by bit pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    window: usize,
    k_step: usize,
    confidence_bits: u64,
    trials: usize,
    ratio_bits: Vec<u64>,
    seed: u64,
}

impl CacheKey {
    fn new(ratios: &[f64], config: CalibrationConfig, seed: u64) -> Self {
        CacheKey {
            window: config.window,
            k_step: config.k_step,
            confidence_bits: config.confidence.to_bits(),
            trials: config.trials,
            ratio_bits: ratios.iter().map(|r| r.to_bits()).collect(),
            seed,
        }
    }
}

static CACHE: OnceLock<Mutex<HashMap<CacheKey, Arc<ThresholdTable>>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static HIT_NANOS: AtomicU64 = AtomicU64::new(0);
static MISS_NANOS: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<HashMap<CacheKey, Arc<ThresholdTable>>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the calibrated table for `(ratios, config, seed)`, calibrating
/// at most once per distinct key for the lifetime of the process.
///
/// The cache lock is held across a miss's calibration, so concurrent
/// requests for the same key never duplicate the Monte-Carlo work — the
/// second requester blocks briefly and receives the shared [`Arc`].
/// (Calibration itself parallelizes internally via `jobs`, so holding
/// the lock does not serialize the actual computation.)
///
/// # Errors
///
/// Propagates any [`ThresholdTable::calibrate_jobs`] error; failed
/// calibrations are not cached.
pub fn cached_table(
    ratios: &[f64],
    config: CalibrationConfig,
    seed: u64,
    jobs: Jobs,
) -> Result<Arc<ThresholdTable>, DetectError> {
    let started = std::time::Instant::now();
    let key = CacheKey::new(ratios, config, seed);
    let mut map = cache().lock().expect("threshold cache poisoned");
    if let Some(table) = map.get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        HIT_NANOS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        return Ok(Arc::clone(table));
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let mut rng = SimRng::seed_from(seed);
    let table = Arc::new(ThresholdTable::calibrate_jobs(
        ratios, config, &mut rng, jobs,
    )?);
    map.insert(key, Arc::clone(&table));
    MISS_NANOS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    Ok(table)
}

/// Lifetime cache statistics as `(hits, misses)` — a hit returned a
/// previously calibrated table, a miss ran a fresh calibration.
#[must_use]
pub fn cache_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Fraction of lifetime lookups served from the cache, in `[0, 1]`;
/// `0.0` before any lookup. Two atomic loads — cheap enough to call
/// from a bench inner loop or a log line.
#[must_use]
pub fn hit_ratio() -> f64 {
    let (hits, misses) = cache_stats();
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Lifetime threshold-cache statistics, including cumulative latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned an already calibrated table.
    pub hits: u64,
    /// Lookups that ran a fresh calibration (successful misses only).
    pub misses: u64,
    /// Wall time spent inside hit lookups, nanoseconds.
    pub hit_nanos: u64,
    /// Wall time spent inside miss lookups (dominated by the
    /// Monte-Carlo calibration itself), nanoseconds.
    pub miss_nanos: u64,
}

impl CacheStats {
    /// Fraction of these lookups that were hits, in `[0, 1]`; `0.0`
    /// when no lookups were recorded.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The activity recorded between `earlier` (a previous
    /// [`cache_stats_detailed`] snapshot) and `self` — how a bounded
    /// region of work (one fleet run, one bench phase) used the cache,
    /// independent of whatever the process did before. Saturating, so a
    /// mismatched snapshot order yields zeros rather than wrapping.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            hit_nanos: self.hit_nanos.saturating_sub(earlier.hit_nanos),
            miss_nanos: self.miss_nanos.saturating_sub(earlier.miss_nanos),
        }
    }
}

/// Lifetime cache statistics with per-path latency — the profiling
/// companion to [`cache_stats`]. Successful misses accumulate
/// `miss_nanos`; failed calibrations count as misses but record no
/// latency (they abort before the table is built).
#[must_use]
pub fn cache_stats_detailed() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        hit_nanos: HIT_NANOS.load(Ordering::Relaxed),
        miss_nanos: MISS_NANOS.load(Ordering::Relaxed),
    }
}

/// Drops every cached table (already-shared [`Arc`]s stay alive in their
/// holders). Statistics are preserved. Primarily for tests and
/// memory-sensitive embedders.
pub fn clear() {
    cache().lock().expect("threshold cache poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> CalibrationConfig {
        CalibrationConfig {
            window: 40,
            k_step: 4,
            confidence: 0.99,
            trials: 200,
        }
    }

    #[test]
    fn repeated_lookups_share_one_table() {
        // Distinct seed so other tests cannot pre-populate this key.
        let seed = 0xCAC4_E001;
        let (_, m0) = cache_stats();
        let a = cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap();
        let (h1, m1) = cache_stats();
        assert_eq!(m1, m0 + 1, "first lookup must calibrate");
        let b = cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap();
        let (h2, _) = cache_stats();
        assert!(h2 > h1.saturating_sub(1), "second lookup must hit");
        assert!(Arc::ptr_eq(&a, &b), "hits share the same allocation");
    }

    #[test]
    fn stats_delta_isolates_a_region_of_work() {
        let seed = 0xCAC4_E010;
        let before = cache_stats_detailed();
        let _ = cached_table(&[2.0, 4.0], quick_config(), seed, Jobs::Count(1)).unwrap();
        let _ = cached_table(&[2.0, 4.0], quick_config(), seed, Jobs::Count(1)).unwrap();
        let delta = cache_stats_detailed().since(&before);
        // Other tests may run concurrently, so the delta is a lower
        // bound on global counters but exact for this key's first use.
        assert!(delta.misses >= 1, "first lookup calibrated");
        assert!(delta.hits >= 1, "second lookup hit");
        assert!(delta.hit_ratio() > 0.0);
        // Reversed snapshots saturate to zero instead of wrapping.
        let zero = before.since(&cache_stats_detailed());
        assert_eq!((zero.hits, zero.misses), (0, 0));
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let seed = 0xCAC4_E002;
        let a = cached_table(&[2.0], quick_config(), seed, Jobs::Count(1)).unwrap();
        let b = cached_table(&[3.0], quick_config(), seed, Jobs::Count(1)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.ratios(), b.ratios());
        let c = cached_table(&[2.0], quick_config(), seed + 1, Jobs::Count(1)).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "seed is part of the key");
    }

    #[test]
    fn cached_table_matches_direct_calibration() {
        let seed = 0xCAC4_E003;
        let cached = cached_table(&[2.0], quick_config(), seed, Jobs::Count(1)).unwrap();
        let direct = ThresholdTable::calibrate_jobs(
            &[2.0],
            quick_config(),
            &mut SimRng::seed_from(seed),
            Jobs::Count(1),
        )
        .unwrap();
        assert_eq!(*cached, direct);
    }

    #[test]
    fn detailed_stats_track_latency_per_path() {
        let seed = 0xCAC4_E005;
        let before = cache_stats_detailed();
        let _ = cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap();
        let after_miss = cache_stats_detailed();
        // Other tests run concurrently against the same global counters,
        // so assert monotone lower bounds rather than exact deltas.
        assert!(after_miss.misses > before.misses);
        assert!(
            after_miss.miss_nanos > before.miss_nanos,
            "a calibration takes measurable time"
        );
        let _ = cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap();
        let after_hit = cache_stats_detailed();
        assert!(after_hit.hits > after_miss.hits);
        assert!(after_hit.hit_nanos >= after_miss.hit_nanos);
        let (hits, misses) = cache_stats();
        assert!(hits >= after_hit.hits.saturating_sub(1));
        assert!(misses >= after_hit.misses.saturating_sub(1));
    }

    #[test]
    fn hit_ratio_reflects_traffic() {
        let seed = 0xCAC4_E006;
        let _ = cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap();
        let _ = cached_table(&[2.0, 0.5], quick_config(), seed, Jobs::Count(1)).unwrap();
        let global = hit_ratio();
        assert!((0.0..=1.0).contains(&global));
        let stats = cache_stats_detailed();
        assert!(stats.hits >= 1, "second lookup above must have hit");
        assert!(stats.hit_ratio() > 0.0);
        assert!(stats.hit_ratio() <= 1.0);
        let empty = CacheStats {
            hits: 0,
            misses: 0,
            hit_nanos: 0,
            miss_nanos: 0,
        };
        assert_eq!(empty.hit_ratio(), 0.0);
    }

    #[test]
    fn failed_calibrations_are_not_cached() {
        let seed = 0xCAC4_E004;
        assert!(cached_table(&[], quick_config(), seed, Jobs::Count(1)).is_err());
        let (_, m0) = cache_stats();
        assert!(cached_table(&[], quick_config(), seed, Jobs::Count(1)).is_err());
        let (_, m1) = cache_stats();
        assert_eq!(m1, m0 + 1, "errors keep missing, never poison the map");
    }
}
