//! Offline threshold characterization (paper Section 3.1).
//!
//! "Off-line characterization is done using stochastic simulation of a set
//! of possible rates to obtain the value of ln P_max that is sufficient to
//! detect the change in rate. The results are accumulated in a histogram,
//! and then the value of maximum likelihood ratio that gives very high
//! probability that the rate has changed is chosen for every pair of rates
//! under consideration. In our work we selected 99.5 % likelihood."
//!
//! Thanks to the scale invariance documented at the crate root, the
//! statistic's null distribution depends only on the candidate-to-current
//! rate **ratio** `r = λn/λo`, so we characterize once per ratio with
//! standard-exponential windows. This is an exact reformulation of the
//! per-pair histograms (any pair with the same ratio has the identical
//! distribution), with the practical benefit that the online detector can
//! track arbitrary absolute rates without re-calibration.
//!
//! # Parallel execution and RNG partitioning
//!
//! Each Monte-Carlo cell `(ratio i, trial t)` draws from its own RNG
//! stream, forked as `seed → ("calibration-ratio", i) →
//! ("calibration-trial", t)` — a pure function of the root seed and the
//! cell's indices, never of execution order. The cells therefore run on
//! the deterministic parallel engine ([`simcore::par`]) with results
//! **bit-identical at any thread count**, including the inline
//! sequential path of `--jobs 1`.
//!
//! Calibration is also the dominant startup cost of every change-point
//! detector, so identically configured detectors share one table through
//! the process-wide [`crate::cache`] instead of recomputing it.

use crate::likelihood::{maximize_kernel, RatioKernel};
use crate::window::ScratchWindow;
use crate::DetectError;
use simcore::dist::{Exponential, Sample};
use simcore::par::{par_map_range, Jobs, ParSpan};
use simcore::rng::SimRng;
use simcore::stats::Histogram;
use std::cell::RefCell;

/// Static histogram range for the `ln P_max` null statistic: under H0 it
/// is usually ≤ a few tens, so `[-50, 200)` with 5000 bins gives
/// quantile resolution ~0.05. When samples escape this range the
/// calibration auto-widens rather than silently clamping the quantile.
const LN_P_RANGE: (f64, f64) = (-50.0, 200.0);
/// Bin count for the calibration histograms.
const LN_P_BINS: usize = 5000;

/// Relative tolerance for [`ThresholdTable::threshold`] lookups: rate
/// ratios recomputed online drift by float rounding, never by a part in
/// a million.
pub const RATIO_LOOKUP_RTOL: f64 = 1e-6;

/// Calibration parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Sliding-window length `m` (paper: 100).
    pub window: usize,
    /// Change-index grid step `k` (paper: "checked every k points").
    pub k_step: usize,
    /// Detection confidence (paper: 0.995).
    pub confidence: f64,
    /// Monte-Carlo trials per ratio.
    pub trials: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            window: 100,
            k_step: 10,
            confidence: 0.995,
            trials: 2000,
        }
    }
}

impl CalibrationConfig {
    fn validate(&self) -> Result<(), DetectError> {
        if self.window < 2 * self.k_step || self.k_step == 0 {
            return Err(DetectError::InvalidParameter {
                name: "window/k_step",
                value: self.window as f64,
            });
        }
        if !(self.confidence.is_finite() && (0.5..1.0).contains(&self.confidence)) {
            return Err(DetectError::InvalidParameter {
                name: "confidence",
                value: self.confidence,
            });
        }
        if self.trials < 100 {
            return Err(DetectError::InvalidParameter {
                name: "trials",
                value: self.trials as f64,
            });
        }
        Ok(())
    }
}

/// Calibrated detection thresholds, one per candidate rate ratio.
///
/// # Example
///
/// ```
/// use detect::calibrate::{CalibrationConfig, ThresholdTable};
/// use simcore::rng::SimRng;
///
/// # fn main() -> Result<(), detect::DetectError> {
/// let config = CalibrationConfig { trials: 400, ..CalibrationConfig::default() };
/// let table = ThresholdTable::calibrate(&[0.5, 2.0], config, &mut SimRng::seed_from(0))?;
/// // A doubling of the rate needs a statistic above its 99.5% null quantile:
/// assert!(table.threshold(2.0)? > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdTable {
    config: CalibrationConfig,
    /// `(ratio, threshold)` pairs, sorted by ratio.
    entries: Vec<(f64, f64)>,
}

impl ThresholdTable {
    /// Runs the offline Monte-Carlo characterization for each ratio in
    /// `ratios` (each must be positive, finite and ≠ 1): simulates
    /// no-change windows of Exp(1) samples, accumulates the `ln P_max`
    /// statistic in a histogram, and stores its `confidence` quantile as
    /// the detection threshold.
    ///
    /// Trials run on the deterministic parallel engine at the
    /// process-default thread count; see [`Self::calibrate_jobs`] for an
    /// explicit count. The result depends only on `rng.seed()`.
    ///
    /// # Errors
    ///
    /// Returns an error if `ratios` is empty, contains an invalid ratio,
    /// the configuration is invalid, or a trial produces a non-finite
    /// statistic.
    pub fn calibrate(
        ratios: &[f64],
        config: CalibrationConfig,
        rng: &mut SimRng,
    ) -> Result<Self, DetectError> {
        Self::calibrate_jobs(ratios, config, rng, Jobs::Auto)
    }

    /// [`Self::calibrate`] with an explicit thread count. Results are
    /// bit-identical for every `jobs` value: each `(ratio, trial)` cell
    /// forks its own RNG stream from the root seed and the cell indices,
    /// so scheduling cannot perturb any sample.
    ///
    /// # Errors
    ///
    /// As for [`Self::calibrate`].
    pub fn calibrate_jobs(
        ratios: &[f64],
        config: CalibrationConfig,
        rng: &mut SimRng,
        jobs: Jobs,
    ) -> Result<Self, DetectError> {
        config.validate()?;
        if ratios.is_empty() {
            return Err(DetectError::Empty { name: "ratios" });
        }
        for &ratio in ratios {
            if !(ratio.is_finite() && ratio > 0.0 && (ratio - 1.0).abs() > 1e-9) {
                return Err(DetectError::InvalidParameter {
                    name: "ratio",
                    value: ratio,
                });
            }
        }
        let root = &*rng;
        let statistics = par_map_range(jobs, ratios.len() * config.trials, |cell| {
            let (i, t) = (cell / config.trials, cell % config.trials);
            let trial_rng = root
                .fork_indexed("calibration-ratio", i as u64)
                .fork_indexed("calibration-trial", t as u64);
            trial_statistic(ratios[i], config, trial_rng)
        });
        let mut entries = Vec::with_capacity(ratios.len());
        for (i, &ratio) in ratios.iter().enumerate() {
            let samples = &statistics[i * config.trials..(i + 1) * config.trials];
            let threshold =
                confidence_quantile(samples, config.confidence).map_err(|e| match e {
                    DetectError::NonFiniteStatistic { .. } => {
                        DetectError::NonFiniteStatistic { ratio }
                    }
                    other => other,
                })?;
            entries.push((ratio, threshold));
        }
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("ratios are finite"));
        Ok(ThresholdTable { config, entries })
    }

    /// [`Self::calibrate_jobs`] with span profiling: enables the
    /// parallel engine's worker profiling around the calibration and
    /// returns a [`CalibrationProfile`] — the recorded [`ParSpan`]s
    /// (per-worker wall time and item counts) plus the threshold-cache
    /// hit/miss counts observed while the calibration ran — alongside
    /// the table.
    ///
    /// Profiling is a process-global switch; spans recorded by other
    /// concurrently profiled loops may appear in the result, and any
    /// un-collected spans pending beforehand are discarded. The
    /// calibration *result* is unaffected — identical to
    /// [`Self::calibrate_jobs`] bit for bit.
    ///
    /// # Errors
    ///
    /// As for [`Self::calibrate`].
    pub fn calibrate_profiled(
        ratios: &[f64],
        config: CalibrationConfig,
        rng: &mut SimRng,
        jobs: Jobs,
    ) -> Result<(Self, CalibrationProfile), DetectError> {
        let was_enabled = simcore::par::profiling_enabled();
        simcore::par::set_profiling(true);
        let _ = simcore::par::take_spans();
        let (hits_before, misses_before) = crate::cache::cache_stats();
        let result = Self::calibrate_jobs(ratios, config, rng, jobs);
        let (hits_after, misses_after) = crate::cache::cache_stats();
        let spans = simcore::par::take_spans();
        simcore::par::set_profiling(was_enabled);
        result.map(|table| {
            (
                table,
                CalibrationProfile {
                    spans,
                    cache_hits: hits_after - hits_before,
                    cache_misses: misses_after - misses_before,
                },
            )
        })
    }

    /// The calibration configuration this table was built with.
    #[must_use]
    pub fn config(&self) -> CalibrationConfig {
        self.config
    }

    /// The calibrated `(ratio, threshold)` entries, sorted by ratio.
    #[must_use]
    pub fn entries(&self) -> &[(f64, f64)] {
        &self.entries
    }

    /// The candidate ratios.
    #[must_use]
    pub fn ratios(&self) -> Vec<f64> {
        self.entries.iter().map(|&(r, _)| r).collect()
    }

    /// The detection threshold for a candidate ratio.
    ///
    /// Lookup is drift-tolerant: the nearest calibrated ratio within
    /// [`RATIO_LOOKUP_RTOL`] (relative) matches, so a ratio recomputed
    /// online with float rounding cannot abort a run.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::Uncalibrated`] if no calibrated ratio lies
    /// within tolerance, and [`DetectError::InvalidParameter`] for a
    /// non-finite ratio.
    pub fn threshold(&self, ratio: f64) -> Result<f64, DetectError> {
        if !ratio.is_finite() {
            return Err(DetectError::InvalidParameter {
                name: "ratio",
                value: ratio,
            });
        }
        let &(nearest, threshold) = self
            .entries
            .iter()
            .min_by(|a, b| {
                (a.0 - ratio)
                    .abs()
                    .partial_cmp(&(b.0 - ratio).abs())
                    .expect("ratios are finite")
            })
            .expect("calibrated tables are never empty");
        if (nearest - ratio).abs() <= RATIO_LOOKUP_RTOL * nearest.abs().max(ratio.abs()) {
            Ok(threshold)
        } else {
            Err(DetectError::Uncalibrated { ratio, nearest })
        }
    }
}

/// Profiling data collected by [`ThresholdTable::calibrate_profiled`].
#[derive(Debug, Clone)]
pub struct CalibrationProfile {
    /// Parallel-engine spans recorded while the calibration ran
    /// (per-worker wall time and item counts).
    pub spans: Vec<ParSpan>,
    /// Threshold-cache hits observed process-wide during the
    /// calibration — lets a bench attribute wins to the cache versus
    /// the Monte-Carlo kernel itself.
    pub cache_hits: u64,
    /// Threshold-cache misses observed process-wide during the
    /// calibration.
    pub cache_misses: u64,
}

thread_local! {
    /// Per-thread trial arena: every worker (and the inline `jobs=1`
    /// path) reuses one window + staging buffer across all its trials.
    static TRIAL_SCRATCH: RefCell<ScratchWindow> = RefCell::new(ScratchWindow::new(1));
}

/// One Monte-Carlo cell: a no-change window of Exp(1) samples and its
/// maximized `ln P_max` statistic.
///
/// This is the calibration inner loop. After the first call on a thread
/// (or a `config.window` change) it performs **zero heap allocations**:
/// the window comes from a thread-local [`ScratchWindow`] arena, the
/// exponential draws, the batched `ln` kernel, and the window's
/// prefix-sum construction are fused into one pass
/// ([`crate::window::SampleWindow::refill_exponential`]) with unchanged
/// RNG consumption order, and the per-ratio `ln()` is hoisted into a
/// [`RatioKernel`]. The returned statistic is bit-identical to the
/// seed-era allocating kernel (retained as
/// [`reference_trial_statistic`]).
#[must_use]
pub fn trial_statistic(ratio: f64, config: CalibrationConfig, mut rng: SimRng) -> f64 {
    let unit = Exponential::new(1.0).expect("rate 1 is valid");
    let kernel = RatioKernel::new(1.0, ratio);
    TRIAL_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        scratch.ensure_capacity(config.window);
        let (window, _staged) = scratch.begin_trial();
        window.refill_exponential(&unit, &mut rng);
        maximize_kernel(window, &kernel, config.k_step).ln_p_max
    })
}

/// The seed-era Monte-Carlo trial, retained verbatim: allocates a fresh
/// deque-backed window per trial, draws samples one call at a time, and
/// re-evaluates `ln(λn/λo)` at every candidate change index.
///
/// Exists so `bench_hotpath` can measure the optimized
/// [`trial_statistic`] against the true pre-optimization kernel *in the
/// same run*, and so tests can assert the two are bit-identical. Not
/// used by production calibration.
#[must_use]
pub fn reference_trial_statistic(ratio: f64, config: CalibrationConfig, mut rng: SimRng) -> f64 {
    use crate::window::reference::VecDequeWindow;
    let unit = Exponential::new(1.0).expect("rate 1 is valid");
    let mut window = VecDequeWindow::new(config.window);
    for _ in 0..config.window {
        window.push(unit.sample(&mut rng));
    }
    // The original maximize loop, with the per-index ln() left in place.
    let (rate_old, rate_new) = (1.0, ratio);
    let m = window.len();
    let mut best = f64::NEG_INFINITY;
    let mut k = config.k_step;
    while k + config.k_step <= m {
        let tail_len = m - k;
        let tail_sum = window.suffix_sum(tail_len);
        let ln_p = tail_len as f64 * (rate_new / rate_old).ln() - (rate_new - rate_old) * tail_sum;
        if ln_p > best {
            best = ln_p;
        }
        k += config.k_step;
    }
    best
}

/// The `confidence` quantile of `ln P_max` samples via the paper's
/// histogram method.
///
/// The histogram starts on the static `[-50, 200)` range that fits the
/// null distribution. If samples escape it far enough that the requested
/// quantile falls in an under/overflow bucket — where the old behaviour
/// silently clamped the threshold to the range edge — the range is
/// auto-widened to cover the data and re-accumulated, so the returned
/// quantile is always estimated from real bins.
///
/// # Errors
///
/// Returns [`DetectError::Empty`] for an empty sample set and
/// [`DetectError::NonFiniteStatistic`] if any sample is NaN or infinite
/// (the caller attaches the offending ratio).
pub fn confidence_quantile(samples: &[f64], confidence: f64) -> Result<f64, DetectError> {
    if samples.is_empty() {
        return Err(DetectError::Empty { name: "samples" });
    }
    if samples.iter().any(|x| !x.is_finite()) {
        return Err(DetectError::NonFiniteStatistic { ratio: f64::NAN });
    }
    let (lo, hi) = LN_P_RANGE;
    let mut hist = Histogram::new(lo, hi, LN_P_BINS).expect("static bounds are valid");
    for &x in samples {
        hist.record(x);
    }
    if !hist.quantile_is_clamped(confidence) {
        return Ok(hist.quantile(confidence));
    }
    // Overflow (or underflow) contaminates the confidence quantile:
    // widen to the data range and re-accumulate.
    let (min, max) = samples.iter().fold((f64::INFINITY, f64::NEG_INFINITY), {
        |(lo, hi), &x| (lo.min(x), hi.max(x))
    });
    let margin = (max - min).max(1.0) * 1e-3;
    let mut hist = Histogram::new(min - margin, max + margin, LN_P_BINS)
        .expect("finite samples give finite bounds");
    for &x in samples {
        hist.record(x);
    }
    debug_assert!(!hist.quantile_is_clamped(confidence));
    Ok(hist.quantile(confidence))
}

/// The default candidate-ratio grid used by the experiments: geometric
/// steps covering 4× decreases through 4× increases, dense enough that
/// any realistic media rate step lands near a candidate.
#[must_use]
pub fn default_ratios() -> Vec<f64> {
    vec![0.25, 0.33, 0.5, 0.67, 0.8, 1.25, 1.5, 2.0, 3.0, 4.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::likelihood::maximize_ln_p;
    use crate::window::SampleWindow;

    fn quick_config() -> CalibrationConfig {
        CalibrationConfig {
            window: 50,
            k_step: 5,
            confidence: 0.99,
            trials: 400,
        }
    }

    #[test]
    fn thresholds_are_positive_and_finite() {
        let mut rng = SimRng::seed_from(1);
        let table = ThresholdTable::calibrate(&[0.5, 2.0, 4.0], quick_config(), &mut rng).unwrap();
        for &(r, t) in table.entries() {
            assert!(t.is_finite(), "ratio {r}");
            assert!(
                t > 0.0,
                "ratio {r}: threshold {t} should exceed the ln P ≈ 0 null mode"
            );
        }
    }

    #[test]
    fn profiled_calibration_matches_plain_and_yields_spans() {
        let config = quick_config();
        let plain = ThresholdTable::calibrate_jobs(
            &[0.5, 2.0],
            config,
            &mut SimRng::seed_from(11),
            Jobs::Count(2),
        )
        .unwrap();
        let (profiled, profile) = ThresholdTable::calibrate_profiled(
            &[0.5, 2.0],
            config,
            &mut SimRng::seed_from(11),
            Jobs::Count(2),
        )
        .unwrap();
        assert_eq!(plain, profiled, "profiling must not perturb the table");
        let span = profile
            .spans
            .iter()
            .find(|s| s.items == 2 * config.trials)
            .expect("the calibration loop was profiled");
        assert_eq!(
            span.workers.iter().map(|w| w.items).sum::<usize>(),
            span.items
        );
    }

    #[test]
    fn optimized_trial_matches_reference_trial_bitwise() {
        // The zero-allocation kernel must reproduce the seed-era
        // allocating kernel exactly, bit for bit, for every ratio.
        let config = quick_config();
        let root = SimRng::seed_from(0xBEEF);
        for (i, &ratio) in default_ratios().iter().enumerate() {
            let a = trial_statistic(ratio, config, root.fork_indexed("trial", i as u64));
            let b = reference_trial_statistic(ratio, config, root.fork_indexed("trial", i as u64));
            assert_eq!(a.to_bits(), b.to_bits(), "ratio {ratio}");
        }
        // And across window reconfiguration on the same thread (the
        // thread-local scratch must resize, not corrupt).
        let other = CalibrationConfig {
            window: 80,
            k_step: 8,
            ..config
        };
        let a = trial_statistic(2.0, other, root.fork_indexed("resize", 0));
        let b = reference_trial_statistic(2.0, other, root.fork_indexed("resize", 0));
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn profiled_calibration_reports_cache_traffic() {
        let config = quick_config();
        let (_, profile) = ThresholdTable::calibrate_profiled(
            &[0.5, 2.0],
            config,
            &mut SimRng::seed_from(12),
            Jobs::Count(1),
        )
        .unwrap();
        // Direct calibration bypasses the cache; concurrent tests may
        // add traffic, so only sanity-bound the deltas.
        assert!(profile.cache_hits <= 1_000_000);
        assert!(profile.cache_misses <= 1_000_000);
    }

    #[test]
    fn false_positive_rate_matches_confidence() {
        // Generate fresh H0 windows and check the exceedance rate is near
        // 1 − confidence.
        let config = quick_config();
        let mut rng = SimRng::seed_from(2);
        let table = ThresholdTable::calibrate(&[2.0], config, &mut rng).unwrap();
        let thr = table.threshold(2.0).unwrap();
        let unit = Exponential::new(1.0).unwrap();
        let mut exceed = 0usize;
        let n = 2000;
        let mut w = SampleWindow::new(config.window);
        for _ in 0..n {
            w.clear();
            for _ in 0..config.window {
                w.push(unit.sample(&mut rng));
            }
            if maximize_ln_p(&w, 1.0, 2.0, config.k_step).ln_p_max > thr {
                exceed += 1;
            }
        }
        let rate = exceed as f64 / n as f64;
        assert!(
            rate < 0.03,
            "false positive rate {rate} should be ≈ 1% at 99% confidence"
        );
    }

    #[test]
    fn true_change_exceeds_threshold() {
        let config = quick_config();
        let mut rng = SimRng::seed_from(3);
        let table = ThresholdTable::calibrate(&[2.0], config, &mut rng).unwrap();
        let thr = table.threshold(2.0).unwrap();
        // Window whose second half really runs at double rate.
        let slow = Exponential::new(1.0).unwrap();
        let fast = Exponential::new(2.0).unwrap();
        let mut detected = 0usize;
        let n = 200;
        for trial in 0..n {
            let mut w = SampleWindow::new(config.window);
            let mut r = SimRng::seed_from(1000 + trial);
            for _ in 0..config.window / 2 {
                w.push(slow.sample(&mut r));
            }
            for _ in 0..config.window / 2 {
                w.push(fast.sample(&mut r));
            }
            if maximize_ln_p(&w, 1.0, 2.0, config.k_step).ln_p_max > thr {
                detected += 1;
            }
        }
        assert!(
            detected as f64 / n as f64 > 0.5,
            "detection power {detected}/{n} too low"
        );
    }

    #[test]
    fn scale_invariance_holds_empirically() {
        // The same windows scaled by 1/λ give identical statistics against
        // (λ, r·λ) — the core of the per-ratio calibration.
        let unit = Exponential::new(1.0).unwrap();
        let mut rng = SimRng::seed_from(4);
        let samples: Vec<f64> = (0..60).map(|_| unit.sample(&mut rng)).collect();
        let mut w1 = SampleWindow::new(60);
        let mut w2 = SampleWindow::new(60);
        let lambda = 37.0;
        for &x in &samples {
            w1.push(x);
            w2.push(x / lambda);
        }
        let a = maximize_ln_p(&w1, 1.0, 2.0, 5);
        let b = maximize_ln_p(&w2, lambda, 2.0 * lambda, 5);
        assert!((a.ln_p_max - b.ln_p_max).abs() < 1e-9);
        assert_eq!(a.change_index, b.change_index);
    }

    #[test]
    fn bigger_ratio_jumps_are_not_harder_to_clear() {
        // Thresholds exist for every calibrated ratio and lookups validate.
        let mut rng = SimRng::seed_from(5);
        let table = ThresholdTable::calibrate(&default_ratios(), quick_config(), &mut rng).unwrap();
        assert_eq!(table.ratios().len(), default_ratios().len());
        assert!(table.threshold(9.0).is_err());
    }

    #[test]
    fn calibration_validates_input() {
        let mut rng = SimRng::seed_from(6);
        assert!(ThresholdTable::calibrate(&[], quick_config(), &mut rng).is_err());
        assert!(ThresholdTable::calibrate(&[1.0], quick_config(), &mut rng).is_err());
        assert!(ThresholdTable::calibrate(&[-2.0], quick_config(), &mut rng).is_err());
        let bad = CalibrationConfig {
            window: 5,
            k_step: 5,
            ..quick_config()
        };
        assert!(ThresholdTable::calibrate(&[2.0], bad, &mut rng).is_err());
        let bad = CalibrationConfig {
            confidence: 1.5,
            ..quick_config()
        };
        assert!(ThresholdTable::calibrate(&[2.0], bad, &mut rng).is_err());
        let bad = CalibrationConfig {
            trials: 10,
            ..quick_config()
        };
        assert!(ThresholdTable::calibrate(&[2.0], bad, &mut rng).is_err());
    }

    #[test]
    fn calibration_is_deterministic_per_seed() {
        let a =
            ThresholdTable::calibrate(&[2.0], quick_config(), &mut SimRng::seed_from(7)).unwrap();
        let b =
            ThresholdTable::calibrate(&[2.0], quick_config(), &mut SimRng::seed_from(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn calibration_is_bit_identical_across_thread_counts() {
        let ratios = default_ratios();
        let sequential = ThresholdTable::calibrate_jobs(
            &ratios,
            quick_config(),
            &mut SimRng::seed_from(8),
            Jobs::Count(1),
        )
        .unwrap();
        for jobs in [2, 4, 8] {
            let parallel = ThresholdTable::calibrate_jobs(
                &ratios,
                quick_config(),
                &mut SimRng::seed_from(8),
                Jobs::Count(jobs),
            )
            .unwrap();
            assert_eq!(sequential, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn threshold_lookup_tolerates_float_drift() {
        let mut rng = SimRng::seed_from(9);
        let table = ThresholdTable::calibrate(&[0.5, 2.0], quick_config(), &mut rng).unwrap();
        let exact = table.threshold(2.0).unwrap();
        // A ratio recomputed through a different float expression drifts
        // by ULPs; lookup must still resolve to the same entry.
        let drifted = 2.0 * (1.0 + 2.0 * f64::EPSILON);
        assert_ne!(drifted.to_bits(), 2.0f64.to_bits());
        assert_eq!(table.threshold(drifted).unwrap(), exact);
        assert_eq!(table.threshold(2.0 - 1e-7).unwrap(), exact);
    }

    #[test]
    fn uncalibrated_ratio_is_a_distinct_error() {
        let mut rng = SimRng::seed_from(10);
        let table = ThresholdTable::calibrate(&[0.5, 2.0], quick_config(), &mut rng).unwrap();
        match table.threshold(9.0) {
            Err(DetectError::Uncalibrated { ratio, nearest }) => {
                assert_eq!(ratio, 9.0);
                assert_eq!(nearest, 2.0);
            }
            other => panic!("expected Uncalibrated, got {other:?}"),
        }
        // Halfway between entries is also genuinely uncalibrated, not a
        // drifted lookup.
        assert!(matches!(
            table.threshold(1.2),
            Err(DetectError::Uncalibrated { .. })
        ));
        assert!(table.threshold(f64::NAN).is_err());
    }

    #[test]
    fn confidence_quantile_auto_widens_on_overflow() {
        // 1% of the mass beyond the static upper edge: the old histogram
        // clamped the 99.5% quantile to 200 exactly. The widened pass
        // must recover the real tail value.
        let mut samples = vec![1.0; 980];
        samples.extend(std::iter::repeat_n(500.0, 20));
        let q = confidence_quantile(&samples, 0.995).unwrap();
        assert!(q > 400.0, "quantile {q} still clamped to the static range");
    }

    #[test]
    fn confidence_quantile_auto_widens_on_underflow() {
        let samples = vec![-300.0; 400];
        let q = confidence_quantile(&samples, 0.99).unwrap();
        assert!(
            (-301.0..=-299.0).contains(&q),
            "quantile {q} should sit at the data, not the -50 edge"
        );
    }

    #[test]
    fn confidence_quantile_is_unchanged_for_in_range_data() {
        // The auto-widen path must not disturb the normal case.
        let samples: Vec<f64> = (0..1000).map(|i| f64::from(i) * 0.1).collect();
        let q = confidence_quantile(&samples, 0.99).unwrap();
        assert!((98.9..=99.2).contains(&q), "{q}");
    }

    #[test]
    fn confidence_quantile_rejects_non_finite_statistics() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let samples = vec![1.0, 2.0, bad];
            assert!(matches!(
                confidence_quantile(&samples, 0.99),
                Err(DetectError::NonFiniteStatistic { .. })
            ));
        }
        assert!(confidence_quantile(&[], 0.99).is_err());
    }
}
