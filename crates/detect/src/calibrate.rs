//! Offline threshold characterization (paper Section 3.1).
//!
//! "Off-line characterization is done using stochastic simulation of a set
//! of possible rates to obtain the value of ln P_max that is sufficient to
//! detect the change in rate. The results are accumulated in a histogram,
//! and then the value of maximum likelihood ratio that gives very high
//! probability that the rate has changed is chosen for every pair of rates
//! under consideration. In our work we selected 99.5 % likelihood."
//!
//! Thanks to the scale invariance documented at the crate root, the
//! statistic's null distribution depends only on the candidate-to-current
//! rate **ratio** `r = λn/λo`, so we characterize once per ratio with
//! standard-exponential windows. This is an exact reformulation of the
//! per-pair histograms (any pair with the same ratio has the identical
//! distribution), with the practical benefit that the online detector can
//! track arbitrary absolute rates without re-calibration.

use crate::likelihood::maximize_ln_p;
use crate::window::SampleWindow;
use crate::DetectError;
use simcore::dist::{Exponential, Sample};
use simcore::rng::SimRng;
use simcore::stats::Histogram;

/// Calibration parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Sliding-window length `m` (paper: 100).
    pub window: usize,
    /// Change-index grid step `k` (paper: "checked every k points").
    pub k_step: usize,
    /// Detection confidence (paper: 0.995).
    pub confidence: f64,
    /// Monte-Carlo trials per ratio.
    pub trials: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            window: 100,
            k_step: 10,
            confidence: 0.995,
            trials: 2000,
        }
    }
}

impl CalibrationConfig {
    fn validate(&self) -> Result<(), DetectError> {
        if self.window < 2 * self.k_step || self.k_step == 0 {
            return Err(DetectError::InvalidParameter {
                name: "window/k_step",
                value: self.window as f64,
            });
        }
        if !(self.confidence.is_finite() && (0.5..1.0).contains(&self.confidence)) {
            return Err(DetectError::InvalidParameter {
                name: "confidence",
                value: self.confidence,
            });
        }
        if self.trials < 100 {
            return Err(DetectError::InvalidParameter {
                name: "trials",
                value: self.trials as f64,
            });
        }
        Ok(())
    }
}

/// Calibrated detection thresholds, one per candidate rate ratio.
///
/// # Example
///
/// ```
/// use detect::calibrate::{CalibrationConfig, ThresholdTable};
/// use simcore::rng::SimRng;
///
/// # fn main() -> Result<(), detect::DetectError> {
/// let config = CalibrationConfig { trials: 400, ..CalibrationConfig::default() };
/// let table = ThresholdTable::calibrate(&[0.5, 2.0], config, &mut SimRng::seed_from(0))?;
/// // A doubling of the rate needs a statistic above its 99.5% null quantile:
/// assert!(table.threshold(2.0)? > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdTable {
    config: CalibrationConfig,
    /// `(ratio, threshold)` pairs, sorted by ratio.
    entries: Vec<(f64, f64)>,
}

impl ThresholdTable {
    /// Runs the offline Monte-Carlo characterization for each ratio in
    /// `ratios` (each must be positive, finite and ≠ 1): simulates
    /// no-change windows of Exp(1) samples, accumulates the `ln P_max`
    /// statistic in a histogram, and stores its `confidence` quantile as
    /// the detection threshold.
    ///
    /// # Errors
    ///
    /// Returns an error if `ratios` is empty, contains an invalid ratio,
    /// or the configuration is invalid.
    pub fn calibrate(
        ratios: &[f64],
        config: CalibrationConfig,
        rng: &mut SimRng,
    ) -> Result<Self, DetectError> {
        config.validate()?;
        if ratios.is_empty() {
            return Err(DetectError::Empty { name: "ratios" });
        }
        let unit = Exponential::new(1.0).expect("rate 1 is valid");
        let mut entries = Vec::with_capacity(ratios.len());
        for (i, &ratio) in ratios.iter().enumerate() {
            if !(ratio.is_finite() && ratio > 0.0 && (ratio - 1.0).abs() > 1e-9) {
                return Err(DetectError::InvalidParameter {
                    name: "ratio",
                    value: ratio,
                });
            }
            let mut trial_rng = rng.fork_indexed("calibration-ratio", i as u64);
            // ln P_max under H0 is usually ≤ a few tens; histogram over a
            // generous range with quantile resolution ~0.05.
            let mut hist = Histogram::new(-50.0, 200.0, 5000).expect("static bounds are valid");
            let mut window = SampleWindow::new(config.window);
            for _ in 0..config.trials {
                window.clear();
                for _ in 0..config.window {
                    window.push(unit.sample(&mut trial_rng));
                }
                let best = maximize_ln_p(&window, 1.0, ratio, config.k_step);
                hist.record(best.ln_p_max);
            }
            entries.push((ratio, hist.quantile(config.confidence)));
        }
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("ratios are finite"));
        Ok(ThresholdTable { config, entries })
    }

    /// The calibration configuration this table was built with.
    #[must_use]
    pub fn config(&self) -> CalibrationConfig {
        self.config
    }

    /// The calibrated `(ratio, threshold)` entries, sorted by ratio.
    #[must_use]
    pub fn entries(&self) -> &[(f64, f64)] {
        &self.entries
    }

    /// The candidate ratios.
    #[must_use]
    pub fn ratios(&self) -> Vec<f64> {
        self.entries.iter().map(|&(r, _)| r).collect()
    }

    /// The detection threshold for a candidate ratio.
    ///
    /// # Errors
    ///
    /// Returns an error if `ratio` was not calibrated (tolerance 1e−9).
    pub fn threshold(&self, ratio: f64) -> Result<f64, DetectError> {
        self.entries
            .iter()
            .find(|&&(r, _)| (r - ratio).abs() < 1e-9)
            .map(|&(_, t)| t)
            .ok_or(DetectError::InvalidParameter {
                name: "ratio (not calibrated)",
                value: ratio,
            })
    }
}

/// The default candidate-ratio grid used by the experiments: geometric
/// steps covering 4× decreases through 4× increases, dense enough that
/// any realistic media rate step lands near a candidate.
#[must_use]
pub fn default_ratios() -> Vec<f64> {
    vec![0.25, 0.33, 0.5, 0.67, 0.8, 1.25, 1.5, 2.0, 3.0, 4.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> CalibrationConfig {
        CalibrationConfig {
            window: 50,
            k_step: 5,
            confidence: 0.99,
            trials: 400,
        }
    }

    #[test]
    fn thresholds_are_positive_and_finite() {
        let mut rng = SimRng::seed_from(1);
        let table = ThresholdTable::calibrate(&[0.5, 2.0, 4.0], quick_config(), &mut rng).unwrap();
        for &(r, t) in table.entries() {
            assert!(t.is_finite(), "ratio {r}");
            assert!(
                t > 0.0,
                "ratio {r}: threshold {t} should exceed the ln P ≈ 0 null mode"
            );
        }
    }

    #[test]
    fn false_positive_rate_matches_confidence() {
        // Generate fresh H0 windows and check the exceedance rate is near
        // 1 − confidence.
        let config = quick_config();
        let mut rng = SimRng::seed_from(2);
        let table = ThresholdTable::calibrate(&[2.0], config, &mut rng).unwrap();
        let thr = table.threshold(2.0).unwrap();
        let unit = Exponential::new(1.0).unwrap();
        let mut exceed = 0usize;
        let n = 2000;
        let mut w = SampleWindow::new(config.window);
        for _ in 0..n {
            w.clear();
            for _ in 0..config.window {
                w.push(unit.sample(&mut rng));
            }
            if maximize_ln_p(&w, 1.0, 2.0, config.k_step).ln_p_max > thr {
                exceed += 1;
            }
        }
        let rate = exceed as f64 / n as f64;
        assert!(
            rate < 0.03,
            "false positive rate {rate} should be ≈ 1% at 99% confidence"
        );
    }

    #[test]
    fn true_change_exceeds_threshold() {
        let config = quick_config();
        let mut rng = SimRng::seed_from(3);
        let table = ThresholdTable::calibrate(&[2.0], config, &mut rng).unwrap();
        let thr = table.threshold(2.0).unwrap();
        // Window whose second half really runs at double rate.
        let slow = Exponential::new(1.0).unwrap();
        let fast = Exponential::new(2.0).unwrap();
        let mut detected = 0usize;
        let n = 200;
        for trial in 0..n {
            let mut w = SampleWindow::new(config.window);
            let mut r = SimRng::seed_from(1000 + trial);
            for _ in 0..config.window / 2 {
                w.push(slow.sample(&mut r));
            }
            for _ in 0..config.window / 2 {
                w.push(fast.sample(&mut r));
            }
            if maximize_ln_p(&w, 1.0, 2.0, config.k_step).ln_p_max > thr {
                detected += 1;
            }
        }
        assert!(
            detected as f64 / n as f64 > 0.5,
            "detection power {detected}/{n} too low"
        );
    }

    #[test]
    fn scale_invariance_holds_empirically() {
        // The same windows scaled by 1/λ give identical statistics against
        // (λ, r·λ) — the core of the per-ratio calibration.
        let unit = Exponential::new(1.0).unwrap();
        let mut rng = SimRng::seed_from(4);
        let samples: Vec<f64> = (0..60).map(|_| unit.sample(&mut rng)).collect();
        let mut w1 = SampleWindow::new(60);
        let mut w2 = SampleWindow::new(60);
        let lambda = 37.0;
        for &x in &samples {
            w1.push(x);
            w2.push(x / lambda);
        }
        let a = maximize_ln_p(&w1, 1.0, 2.0, 5);
        let b = maximize_ln_p(&w2, lambda, 2.0 * lambda, 5);
        assert!((a.ln_p_max - b.ln_p_max).abs() < 1e-9);
        assert_eq!(a.change_index, b.change_index);
    }

    #[test]
    fn bigger_ratio_jumps_are_not_harder_to_clear() {
        // Thresholds exist for every calibrated ratio and lookups validate.
        let mut rng = SimRng::seed_from(5);
        let table = ThresholdTable::calibrate(&default_ratios(), quick_config(), &mut rng).unwrap();
        assert_eq!(table.ratios().len(), default_ratios().len());
        assert!(table.threshold(9.0).is_err());
    }

    #[test]
    fn calibration_validates_input() {
        let mut rng = SimRng::seed_from(6);
        assert!(ThresholdTable::calibrate(&[], quick_config(), &mut rng).is_err());
        assert!(ThresholdTable::calibrate(&[1.0], quick_config(), &mut rng).is_err());
        assert!(ThresholdTable::calibrate(&[-2.0], quick_config(), &mut rng).is_err());
        let bad = CalibrationConfig {
            window: 5,
            k_step: 5,
            ..quick_config()
        };
        assert!(ThresholdTable::calibrate(&[2.0], bad, &mut rng).is_err());
        let bad = CalibrationConfig {
            confidence: 1.5,
            ..quick_config()
        };
        assert!(ThresholdTable::calibrate(&[2.0], bad, &mut rng).is_err());
        let bad = CalibrationConfig {
            trials: 10,
            ..quick_config()
        };
        assert!(ThresholdTable::calibrate(&[2.0], bad, &mut rng).is_err());
    }

    #[test]
    fn calibration_is_deterministic_per_seed() {
        let a =
            ThresholdTable::calibrate(&[2.0], quick_config(), &mut SimRng::seed_from(7)).unwrap();
        let b =
            ThresholdTable::calibrate(&[2.0], quick_config(), &mut SimRng::seed_from(7)).unwrap();
        assert_eq!(a, b);
    }
}
