//! The online change-point detector (the paper's detection algorithm).
//!
//! [`ChangePointDetector`] keeps a sliding window of the last `m` samples
//! and, every `check_interval` samples, evaluates the maximum-likelihood
//! ratio statistic (Eq. 4) for each candidate rate `λn = r · λo`, `r ∈ Λ`.
//! If any candidate's statistic exceeds its calibrated 99.5 % threshold,
//! the detector declares a rate change, re-estimates the rate from the
//! post-change tail of the window (maximum likelihood), and restarts with
//! those samples.

use crate::calibrate::{default_ratios, CalibrationConfig, ThresholdTable};
use crate::estimator::{DetectionStat, RateChange, RateEstimator};
use crate::likelihood::{maximize_kernel, RatioKernel};
use crate::window::SampleWindow;
use crate::DetectError;
use std::sync::Arc;

/// Configuration of the online change-point detector.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangePointConfig {
    /// Sliding-window length `m`. The paper found m = 100 "large enough";
    /// larger windows cost computation, much shorter ones are
    /// statistically unstable.
    pub window: usize,
    /// Run the test every this many new samples (the paper's "checked
    /// every k points" trade-off between latency and computation).
    pub check_interval: usize,
    /// Grid step for the change index inside the window.
    pub k_step: usize,
    /// Candidate rate ratios `λn/λo`.
    pub ratios: Vec<f64>,
    /// Detection confidence for threshold calibration (paper: 0.995).
    pub confidence: f64,
    /// Monte-Carlo trials per ratio during calibration.
    pub calibration_trials: usize,
    /// Seed for the calibration random stream, so identically configured
    /// detectors behave identically.
    pub calibration_seed: u64,
}

impl Default for ChangePointConfig {
    fn default() -> Self {
        ChangePointConfig {
            window: 100,
            check_interval: 10,
            k_step: 10,
            ratios: default_ratios(),
            confidence: 0.995,
            calibration_trials: 2000,
            calibration_seed: 0x5EED,
        }
    }
}

impl ChangePointConfig {
    /// Resolves this configuration's calibrated threshold table through
    /// the process-wide [`crate::cache`] — exactly the lookup
    /// [`ChangePointDetector::new`] performs, exposed so batch harnesses
    /// (the fleet engine's cohort stepping) can resolve once per cohort
    /// and construct every detector via
    /// [`ChangePointDetector::with_shared_table`] with zero cache
    /// traffic. The returned table is bit-identical to the one `new`
    /// would use.
    ///
    /// # Errors
    ///
    /// Propagates any calibration error.
    pub fn resolve_table(&self) -> Result<Arc<ThresholdTable>, DetectError> {
        let calibration = CalibrationConfig {
            window: self.window,
            k_step: self.k_step,
            confidence: self.confidence,
            trials: self.calibration_trials,
        };
        crate::cache::cached_table(
            &self.ratios,
            calibration,
            self.calibration_seed,
            simcore::par::Jobs::Auto,
        )
    }
}

/// Online rate-change detector driven by the maximum-likelihood ratio
/// test with offline-calibrated thresholds.
///
/// See the crate-level docs for a complete usage example.
#[derive(Debug, Clone)]
pub struct ChangePointDetector {
    rate: f64,
    window: SampleWindow,
    table: Arc<ThresholdTable>,
    check_interval: usize,
    k_step: usize,
    since_check: usize,
    last_stat: Option<DetectionStat>,
    /// `(threshold, kernel)` per candidate ratio, with the kernel's
    /// `ln()` precomputed for the current baseline rate. Rebuilt only
    /// when `rate` changes (detection or reset) — the per-sample test
    /// then runs without a single `ln()` call.
    kernels: Vec<(f64, RatioKernel)>,
}

/// Precomputes per-candidate kernels for a baseline rate. The candidate
/// rate is formed as `rate * ratio` and divided back by `rate` inside
/// [`RatioKernel::new`] — the exact float expressions the unhoisted
/// per-test evaluation used, so detection sequences are bit-identical.
fn build_kernels(rate: f64, table: &ThresholdTable) -> Vec<(f64, RatioKernel)> {
    table
        .entries()
        .iter()
        .map(|&(ratio, threshold)| (threshold, RatioKernel::new(rate, rate * ratio)))
        .collect()
}

impl ChangePointDetector {
    /// Creates a detector with the given initial rate estimate.
    ///
    /// Threshold calibration goes through the process-wide
    /// [`crate::cache`]: the first detector with a given `(config.ratios,
    /// calibration parameters, calibration_seed)` runs the offline
    /// Monte-Carlo characterization (parallelized at the process-default
    /// job count), and every later identically configured detector shares
    /// that table.
    ///
    /// # Errors
    ///
    /// Returns an error if the initial rate or any configuration value is
    /// invalid.
    pub fn new(initial_rate: f64, config: ChangePointConfig) -> Result<Self, DetectError> {
        let table = config.resolve_table()?;
        Self::with_shared_table(initial_rate, table, config.check_interval)
    }

    /// Creates a detector reusing an existing threshold table —
    /// calibration is the expensive part, so experiment harnesses
    /// calibrate once and clone. Prefer [`Self::with_shared_table`] to
    /// avoid copying the table.
    ///
    /// # Errors
    ///
    /// Returns an error if the initial rate or `check_interval` is
    /// invalid.
    pub fn with_table(
        initial_rate: f64,
        table: ThresholdTable,
        check_interval: usize,
    ) -> Result<Self, DetectError> {
        Self::with_shared_table(initial_rate, Arc::new(table), check_interval)
    }

    /// Creates a detector sharing an [`Arc`]-held threshold table —
    /// zero-copy reuse across any number of detectors.
    ///
    /// # Errors
    ///
    /// Returns an error if the initial rate or `check_interval` is
    /// invalid.
    pub fn with_shared_table(
        initial_rate: f64,
        table: Arc<ThresholdTable>,
        check_interval: usize,
    ) -> Result<Self, DetectError> {
        if !(initial_rate.is_finite() && initial_rate > 0.0) {
            return Err(DetectError::InvalidParameter {
                name: "initial_rate",
                value: initial_rate,
            });
        }
        if check_interval == 0 {
            return Err(DetectError::InvalidParameter {
                name: "check_interval",
                value: 0.0,
            });
        }
        let window = SampleWindow::new(table.config().window);
        let kernels = build_kernels(initial_rate, &table);
        Ok(ChangePointDetector {
            rate: initial_rate,
            k_step: table.config().k_step,
            table,
            check_interval,
            since_check: 0,
            window,
            last_stat: None,
            kernels,
        })
    }

    /// The calibrated threshold table in use.
    #[must_use]
    pub fn table(&self) -> &ThresholdTable {
        &self.table
    }

    /// A shared handle to the threshold table, for constructing further
    /// detectors via [`Self::with_shared_table`] without recalibrating
    /// or copying.
    #[must_use]
    pub fn shared_table(&self) -> Arc<ThresholdTable> {
        Arc::clone(&self.table)
    }

    /// Number of samples currently buffered in the window.
    #[must_use]
    pub fn window_fill(&self) -> usize {
        self.window.len()
    }

    fn run_test(&mut self) -> Option<RateChange> {
        // (margin, tail_len, statistic of the winning candidate)
        let mut best: Option<(f64, usize, DetectionStat)> = None;
        for &(threshold, ref kernel) in &self.kernels {
            let candidate = maximize_kernel(&self.window, kernel, self.k_step);
            let margin = candidate.ln_p_max - threshold;
            if margin > 0.0 && best.is_none_or(|(m, _, _)| margin > m) {
                best = Some((
                    margin,
                    candidate.tail_len,
                    DetectionStat {
                        ln_p_max: candidate.ln_p_max,
                        threshold,
                    },
                ));
            }
        }
        let (_, tail_len, stat) = best?;
        // Maximum-likelihood re-estimate from the post-change samples; the
        // candidate grid located the change, the tail MLE refines the rate.
        let new_rate = self.window.suffix_rate(tail_len);
        self.window.retain_last(tail_len);
        self.rate = new_rate;
        self.kernels = build_kernels(new_rate, &self.table);
        self.last_stat = Some(stat);
        Some(RateChange {
            new_rate,
            samples_since_change: tail_len,
        })
    }
}

impl RateEstimator for ChangePointDetector {
    fn observe(&mut self, sample: f64) -> Option<RateChange> {
        if !(sample.is_finite() && sample > 0.0) {
            return None; // zero-length gaps carry no rate information
        }
        self.window.push(sample);
        self.since_check += 1;
        if self.window.is_full() && self.since_check >= self.check_interval {
            self.since_check = 0;
            return self.run_test();
        }
        None
    }

    fn current_rate(&self) -> f64 {
        self.rate
    }

    fn reset(&mut self, initial_rate: f64) {
        assert!(
            initial_rate.is_finite() && initial_rate > 0.0,
            "initial rate must be positive"
        );
        self.rate = initial_rate;
        self.kernels = build_kernels(initial_rate, &self.table);
        self.window.clear();
        self.since_check = 0;
        self.last_stat = None;
    }

    fn name(&self) -> &'static str {
        "change-point"
    }

    fn last_detection_stat(&self) -> Option<DetectionStat> {
        self.last_stat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::{Exponential, Sample};
    use simcore::rng::SimRng;

    fn quick_config() -> ChangePointConfig {
        ChangePointConfig {
            window: 60,
            check_interval: 5,
            k_step: 6,
            calibration_trials: 500,
            ..ChangePointConfig::default()
        }
    }

    fn feed_exponential(
        det: &mut ChangePointDetector,
        rate: f64,
        n: usize,
        rng: &mut SimRng,
    ) -> Vec<(usize, RateChange)> {
        let dist = Exponential::new(rate).unwrap();
        let mut changes = Vec::new();
        for i in 0..n {
            if let Some(c) = det.observe(dist.sample(rng)) {
                changes.push((i, c));
            }
        }
        changes
    }

    #[test]
    fn stable_rate_rarely_fires() {
        let mut det = ChangePointDetector::new(30.0, quick_config()).unwrap();
        let mut rng = SimRng::seed_from(1);
        let changes = feed_exponential(&mut det, 30.0, 2000, &mut rng);
        // 99.5% confidence per candidate ratio, ~10 candidates, checked
        // every 5 samples over overlapping windows → a small number of
        // false alarms is expected; runaway firing is not.
        assert!(changes.len() <= 15, "{} false alarms", changes.len());
        assert!((det.current_rate() - 30.0).abs() / 30.0 < 0.35);
    }

    #[test]
    fn detects_step_up_quickly_and_accurately() {
        let mut det = ChangePointDetector::new(10.0, quick_config()).unwrap();
        let mut rng = SimRng::seed_from(9);
        feed_exponential(&mut det, 10.0, 300, &mut rng);
        let changes = feed_exponential(&mut det, 60.0, 120, &mut rng);
        assert!(!changes.is_empty(), "step 10→60 must be detected");
        let (when, _) = changes[0];
        // Paper Fig. 10: detects "within 10 frames of the ideal detection".
        assert!(when <= 40, "detected after {when} samples");
        assert!(
            (det.current_rate() - 60.0).abs() / 60.0 < 0.3,
            "final rate {}",
            det.current_rate()
        );
    }

    #[test]
    fn detection_statistic_is_exposed_after_a_change() {
        let mut det = ChangePointDetector::new(10.0, quick_config()).unwrap();
        assert_eq!(det.last_detection_stat(), None, "no detection yet");
        let mut rng = SimRng::seed_from(9);
        feed_exponential(&mut det, 10.0, 300, &mut rng);
        let changes = feed_exponential(&mut det, 60.0, 120, &mut rng);
        assert!(!changes.is_empty());
        let stat = det.last_detection_stat().expect("detection leaves a stat");
        assert!(
            stat.ln_p_max > stat.threshold,
            "winning candidate cleared its threshold: {stat:?}"
        );
        assert!(stat.threshold > 0.0);
        det.reset(10.0);
        assert_eq!(det.last_detection_stat(), None, "reset clears the stat");
    }

    #[test]
    fn detects_step_down() {
        let mut det = ChangePointDetector::new(60.0, quick_config()).unwrap();
        let mut rng = SimRng::seed_from(3);
        feed_exponential(&mut det, 60.0, 300, &mut rng);
        let changes = feed_exponential(&mut det, 10.0, 200, &mut rng);
        assert!(!changes.is_empty());
        assert!((det.current_rate() - 10.0).abs() / 10.0 < 0.3);
    }

    #[test]
    fn tracks_multiple_steps() {
        let mut det = ChangePointDetector::new(20.0, quick_config()).unwrap();
        let mut rng = SimRng::seed_from(4);
        for &rate in &[20.0, 40.0, 15.0, 30.0] {
            feed_exponential(&mut det, rate, 400, &mut rng);
            assert!(
                (det.current_rate() - rate).abs() / rate < 0.35,
                "after {rate}: estimate {}",
                det.current_rate()
            );
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut det = ChangePointDetector::new(10.0, quick_config()).unwrap();
        let mut rng = SimRng::seed_from(5);
        feed_exponential(&mut det, 50.0, 500, &mut rng);
        det.reset(25.0);
        assert_eq!(det.current_rate(), 25.0);
        assert_eq!(det.window_fill(), 0);
    }

    #[test]
    fn non_positive_samples_are_ignored() {
        let mut det = ChangePointDetector::new(10.0, quick_config()).unwrap();
        assert_eq!(det.observe(0.0), None);
        assert_eq!(det.observe(f64::NAN), None);
        assert_eq!(det.window_fill(), 0);
    }

    #[test]
    fn constructor_validates() {
        assert!(ChangePointDetector::new(0.0, quick_config()).is_err());
        let bad = ChangePointConfig {
            check_interval: 0,
            ..quick_config()
        };
        assert!(ChangePointDetector::new(10.0, bad).is_err());
        let bad = ChangePointConfig {
            ratios: vec![],
            ..quick_config()
        };
        assert!(ChangePointDetector::new(10.0, bad).is_err());
    }

    #[test]
    fn shared_table_reuse() {
        let det = ChangePointDetector::new(10.0, quick_config()).unwrap();
        let table = det.table().clone();
        let det2 = ChangePointDetector::with_table(20.0, table, 5).unwrap();
        assert_eq!(det2.current_rate(), 20.0);
        // Zero-copy sharing through the Arc handle.
        let det3 = ChangePointDetector::with_shared_table(30.0, det.shared_table(), 5).unwrap();
        assert!(std::ptr::eq(det.table(), det3.table()));
    }

    #[test]
    fn identically_configured_detectors_hit_the_threshold_cache() {
        // A config distinct from every other test's, so the first
        // construction here is the calibrating one.
        let config = ChangePointConfig {
            calibration_seed: 0xCAC4_E100,
            ..quick_config()
        };
        let a = ChangePointDetector::new(10.0, config.clone()).unwrap();
        let (h0, m0) = crate::cache::cache_stats();
        let b = ChangePointDetector::new(99.0, config).unwrap();
        let (h1, m1) = crate::cache::cache_stats();
        assert_eq!(m1, m0, "second construction must not recalibrate");
        assert!(h1 > h0, "second construction must hit the cache");
        assert!(std::ptr::eq(a.table(), b.table()), "one shared table");
    }

    #[test]
    fn name_is_stable() {
        let det = ChangePointDetector::new(10.0, quick_config()).unwrap();
        assert_eq!(det.name(), "change-point");
    }
}
