//! Exponential-moving-average rate estimation (paper Eq. 6).
//!
//! The baseline the paper compares against (from the earlier DVS
//! literature) smooths the *instantaneous* rate of each sample:
//!
//! ```text
//! Rate_new_avg = (1 − g) · Rate_old_avg + g · Rate_cur
//! ```
//!
//! where `Rate_cur = 1/x` for the latest gap `x` and `g` is the gain.
//! Because `1/x` for exponential samples has unbounded variance, the
//! estimate oscillates — the instability visible in the paper's Figure 10
//! and the cause of the EMA policy's higher energy *and* higher delay in
//! Tables 3 and 4.

use crate::estimator::{RateChange, RateEstimator};
use crate::DetectError;

/// Exponential moving average of instantaneous rates.
///
/// # Example
///
/// ```
/// use detect::ema::EmaEstimator;
/// use detect::estimator::RateEstimator;
///
/// # fn main() -> Result<(), detect::DetectError> {
/// let mut ema = EmaEstimator::new(10.0, 0.3)?;
/// ema.observe(0.05); // a 20 ev/s gap pulls the estimate up
/// assert!(ema.current_rate() > 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmaEstimator {
    rate: f64,
    gain: f64,
}

impl EmaEstimator {
    /// Creates an estimator with an initial rate and gain `g ∈ (0, 1]`.
    ///
    /// The paper's Figure 10 plots gains 0.3 and 0.5.
    ///
    /// # Errors
    ///
    /// Returns an error if the rate is not positive/finite or the gain is
    /// outside `(0, 1]`.
    pub fn new(initial_rate: f64, gain: f64) -> Result<Self, DetectError> {
        if !(initial_rate.is_finite() && initial_rate > 0.0) {
            return Err(DetectError::InvalidParameter {
                name: "initial_rate",
                value: initial_rate,
            });
        }
        if !(gain.is_finite() && gain > 0.0 && gain <= 1.0) {
            return Err(DetectError::InvalidParameter {
                name: "gain",
                value: gain,
            });
        }
        Ok(EmaEstimator {
            rate: initial_rate,
            gain,
        })
    }

    /// The smoothing gain.
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.gain
    }
}

impl RateEstimator for EmaEstimator {
    fn observe(&mut self, sample: f64) -> Option<RateChange> {
        if !(sample.is_finite() && sample > 0.0) {
            return None;
        }
        let instantaneous = 1.0 / sample;
        self.rate = (1.0 - self.gain) * self.rate + self.gain * instantaneous;
        // The EMA revises its estimate on every sample — the resulting
        // continuous frequency re-adjustment is exactly its weakness.
        Some(RateChange {
            new_rate: self.rate,
            samples_since_change: 1,
        })
    }

    fn current_rate(&self) -> f64 {
        self.rate
    }

    fn reset(&mut self, initial_rate: f64) {
        assert!(
            initial_rate.is_finite() && initial_rate > 0.0,
            "initial rate must be positive"
        );
        self.rate = initial_rate;
    }

    fn name(&self) -> &'static str {
        "exp-average"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::{Exponential, Sample};
    use simcore::rng::SimRng;

    #[test]
    fn converges_toward_true_rate_on_average() {
        let mut ema = EmaEstimator::new(10.0, 0.3).unwrap();
        let dist = Exponential::new(60.0).unwrap();
        let mut rng = SimRng::seed_from(1);
        let n = 5000;
        let mut estimates = Vec::with_capacity(n);
        for _ in 0..n {
            ema.observe(dist.sample(&mut rng));
            estimates.push(ema.current_rate());
        }
        // E[1/x] diverges, so the long-run *mean* is unbounded; the median
        // of the estimate should still track the true rate's ballpark.
        let median = simcore::stats::exact_quantile(&estimates, 0.5);
        assert!((30.0..300.0).contains(&median), "median {median}");
    }

    #[test]
    fn is_unstable_compared_to_the_truth() {
        // The paper's core criticism: EMA with the Fig. 10 gains swings
        // wildly around the true rate.
        let mut ema = EmaEstimator::new(60.0, 0.5).unwrap();
        let dist = Exponential::new(60.0).unwrap();
        let mut rng = SimRng::seed_from(2);
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for _ in 0..2000 {
            ema.observe(dist.sample(&mut rng));
            min = min.min(ema.current_rate());
            max = max.max(ema.current_rate());
        }
        assert!(
            max / min > 5.0,
            "EMA should oscillate: range {min:.1}..{max:.1}"
        );
    }

    #[test]
    fn lower_gain_is_smoother() {
        let dist = Exponential::new(30.0).unwrap();
        let spread = |gain: f64| {
            let mut ema = EmaEstimator::new(30.0, gain).unwrap();
            let mut rng = SimRng::seed_from(3);
            let mut lo = f64::INFINITY;
            let mut hi = 0.0f64;
            for _ in 0..2000 {
                ema.observe(dist.sample(&mut rng));
                lo = lo.min(ema.current_rate());
                hi = hi.max(ema.current_rate());
            }
            hi - lo
        };
        assert!(spread(0.05) < spread(0.5));
    }

    #[test]
    fn reports_every_sample() {
        let mut ema = EmaEstimator::new(10.0, 0.3).unwrap();
        assert!(ema.observe(0.1).is_some());
        assert!(ema.observe(0.1).is_some());
    }

    #[test]
    fn ignores_degenerate_samples() {
        let mut ema = EmaEstimator::new(10.0, 0.3).unwrap();
        assert!(ema.observe(0.0).is_none());
        assert!(ema.observe(-1.0).is_none());
        assert_eq!(ema.current_rate(), 10.0);
    }

    #[test]
    fn validates_parameters() {
        assert!(EmaEstimator::new(0.0, 0.3).is_err());
        assert!(EmaEstimator::new(10.0, 0.0).is_err());
        assert!(EmaEstimator::new(10.0, 1.5).is_err());
        assert!(EmaEstimator::new(10.0, 1.0).is_ok());
    }

    #[test]
    fn reset_and_name() {
        let mut ema = EmaEstimator::new(10.0, 0.3).unwrap();
        ema.observe(0.001);
        ema.reset(42.0);
        assert_eq!(ema.current_rate(), 42.0);
        assert_eq!(ema.name(), "exp-average");
        assert_eq!(ema.gain(), 0.3);
    }
}
