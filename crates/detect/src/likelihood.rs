//! The maximum-likelihood ratio statistic (paper Eq. 3/4).
//!
//! For a window of `m` samples, a hypothesized old rate `λo` and a
//! candidate new rate `λn`, the log likelihood ratio of "rate changed at
//! index k" against "no change" is
//!
//! ```text
//! ln P(k) = (m − k) ln(λn/λo) − (λn − λo) · Σ_{j=k+1..m} xⱼ
//! ```
//!
//! and the statistic is the maximum over the checked change indices.
//! Evaluating it only needs suffix sums of the window — "only the sum of
//! interarrival times needs to be updated upon every arrival".
//!
//! # Hoisted constants
//!
//! `ln(λn/λo)` and `(λn − λo)` depend only on the rate pair, never on
//! `k`, so [`RatioKernel`] precomputes them once per pair instead of
//! paying an `ln()` per candidate change index (~`window / k_step`
//! redundant calls per evaluation in both the Monte-Carlo calibration
//! and the online detector). Because the loop previously recomputed the
//! *same* `f64` value each iteration, hoisting is bit-identical — every
//! `ln P(k)` is produced by the exact float expression it always was.

use crate::window::SampleWindow;

/// The best change hypothesis for one candidate rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestChange {
    /// Maximized `ln P_max` value.
    pub ln_p_max: f64,
    /// The maximizing change index `k`: the change is hypothesized to
    /// occur after the `k`-th oldest sample in the window.
    pub change_index: usize,
    /// Number of window samples after the change (`m − k`).
    pub tail_len: usize,
}

/// Precomputed per-rate-pair constants of the `ln P(k)` formula.
///
/// Both terms of the statistic that don't vary with the change index —
/// `ln(λn/λo)` and `(λn − λo)` — are evaluated once at construction, so
/// scanning a whole window costs one multiply-subtract per candidate
/// index. Calibration builds one kernel per ratio; the online detector
/// rebuilds its kernels only when the baseline rate changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioKernel {
    rate_old: f64,
    rate_new: f64,
    /// `ln(rate_new / rate_old)`, computed exactly as the unhoisted
    /// formula did.
    ln_ratio: f64,
    /// `rate_new - rate_old`.
    rate_diff: f64,
}

impl RatioKernel {
    /// Builds the kernel for a `(λo, λn)` rate pair.
    ///
    /// # Panics
    ///
    /// Panics if either rate is non-positive or non-finite.
    #[inline]
    #[must_use]
    pub fn new(rate_old: f64, rate_new: f64) -> Self {
        assert!(
            rate_old > 0.0 && rate_new > 0.0 && rate_old.is_finite() && rate_new.is_finite(),
            "rates must be positive ({rate_old}, {rate_new})"
        );
        RatioKernel {
            rate_old,
            rate_new,
            ln_ratio: (rate_new / rate_old).ln(),
            rate_diff: rate_new - rate_old,
        }
    }

    /// The hypothesized pre-change rate `λo`.
    #[inline]
    #[must_use]
    pub fn rate_old(&self) -> f64 {
        self.rate_old
    }

    /// The candidate post-change rate `λn`.
    #[inline]
    #[must_use]
    pub fn rate_new(&self) -> f64 {
        self.rate_new
    }

    /// Evaluates `ln P(k)` for a tail of `tail_len` samples summing to
    /// `tail_sum`.
    #[inline]
    #[must_use]
    pub fn ln_p(&self, tail_len: usize, tail_sum: f64) -> f64 {
        tail_len as f64 * self.ln_ratio - self.rate_diff * tail_sum
    }
}

/// Evaluates `ln P(k)` for a single change index.
///
/// `tail_sum` must be the sum of the last `tail_len` samples. This is a
/// convenience wrapper that builds a throwaway [`RatioKernel`]; loops
/// evaluating many indices against one rate pair should construct the
/// kernel once instead.
///
/// # Panics
///
/// Panics if either rate is non-positive or non-finite.
#[inline]
#[must_use]
pub fn ln_p_at(rate_old: f64, rate_new: f64, tail_len: usize, tail_sum: f64) -> f64 {
    RatioKernel::new(rate_old, rate_new).ln_p(tail_len, tail_sum)
}

/// Maximizes `ln P(k)` over change indices `k ∈ {k_step, 2·k_step, …}`
/// (leaving at least `k_step` samples on each side), for one candidate
/// rate.
///
/// Checking only every `k_step`-th index is the paper's k-interval
/// trade-off: "larger values of k interval mean that the changed rate
/// will be detected later, while with very small values the detection is
/// quicker, but also causes extra computation".
///
/// # Panics
///
/// Panics if the window holds fewer than `2·k_step` samples, if
/// `k_step == 0`, or if either rate is non-positive.
#[must_use]
pub fn maximize_ln_p(
    window: &SampleWindow,
    rate_old: f64,
    rate_new: f64,
    k_step: usize,
) -> BestChange {
    maximize_kernel(window, &RatioKernel::new(rate_old, rate_new), k_step)
}

/// [`maximize_ln_p`] against a prebuilt [`RatioKernel`] — the inner-loop
/// entry point for callers that scan many windows (or many rate pairs)
/// and have already paid the kernel's `ln()` once.
///
/// # Panics
///
/// Panics if the window holds fewer than `2·k_step` samples or if
/// `k_step == 0`.
#[must_use]
pub fn maximize_kernel(window: &SampleWindow, kernel: &RatioKernel, k_step: usize) -> BestChange {
    assert!(k_step > 0, "k_step must be positive");
    let m = window.len();
    assert!(m >= 2 * k_step, "window too short: {m} < 2·{k_step}");
    let mut best = BestChange {
        ln_p_max: f64::NEG_INFINITY,
        change_index: 0,
        tail_len: 0,
    };
    let mut k = k_step;
    while k + k_step <= m {
        let tail_len = m - k;
        let tail_sum = window.suffix_sum(tail_len);
        let ln_p = kernel.ln_p(tail_len, tail_sum);
        if ln_p > best.ln_p_max {
            best = BestChange {
                ln_p_max: ln_p,
                change_index: k,
                tail_len,
            };
        }
        k += k_step;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::{Exponential, Sample};
    use simcore::rng::SimRng;

    fn window_from(samples: &[f64]) -> SampleWindow {
        let mut w = SampleWindow::new(samples.len());
        for &x in samples {
            w.push(x);
        }
        w
    }

    #[test]
    fn ln_p_zero_when_rates_equal() {
        assert_eq!(ln_p_at(10.0, 10.0, 50, 5.0), 0.0);
    }

    #[test]
    fn ln_p_matches_manual_formula() {
        let v = ln_p_at(10.0, 60.0, 20, 0.4);
        let expected = 20.0 * (6.0_f64).ln() - 50.0 * 0.4;
        assert!((v - expected).abs() < 1e-12);
    }

    #[test]
    fn kernel_matches_unhoisted_expression_bitwise() {
        // The hoisting contract: for any rate pair and tail, the kernel
        // reproduces `(m−k)·ln(λn/λo) − (λn−λo)·Σ` to the last bit.
        for (ro, rn) in [(10.0, 60.0), (60.0, 10.0), (3.7, 4.9), (1.0, 0.25)] {
            let kernel = RatioKernel::new(ro, rn);
            for tail_len in [1usize, 7, 50, 99] {
                for tail_sum in [0.0, 0.013, 1.7, 42.5] {
                    let unhoisted = tail_len as f64 * (rn / ro).ln() - (rn - ro) * tail_sum;
                    assert_eq!(
                        kernel.ln_p(tail_len, tail_sum).to_bits(),
                        unhoisted.to_bits(),
                        "({ro}, {rn}, {tail_len}, {tail_sum})"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_accessors_report_the_pair() {
        let k = RatioKernel::new(10.0, 25.0);
        assert_eq!(k.rate_old(), 10.0);
        assert_eq!(k.rate_new(), 25.0);
    }

    #[test]
    fn maximize_kernel_matches_maximize_ln_p() {
        let mut rng = SimRng::seed_from(17);
        let unit = Exponential::new(1.0).unwrap();
        let samples: Vec<f64> = (0..80).map(|_| unit.sample(&mut rng)).collect();
        let w = window_from(&samples);
        let a = maximize_ln_p(&w, 12.0, 30.0, 8);
        let b = maximize_kernel(&w, &RatioKernel::new(12.0, 30.0), 8);
        assert_eq!(a.ln_p_max.to_bits(), b.ln_p_max.to_bits());
        assert_eq!(a.change_index, b.change_index);
        assert_eq!(a.tail_len, b.tail_len);
    }

    #[test]
    fn statistic_is_large_after_a_real_change() {
        let mut rng = SimRng::seed_from(1);
        let slow = Exponential::new(10.0).unwrap();
        let fast = Exponential::new(60.0).unwrap();
        let mut samples = Vec::new();
        for _ in 0..50 {
            samples.push(slow.sample(&mut rng));
        }
        for _ in 0..50 {
            samples.push(fast.sample(&mut rng));
        }
        let w = window_from(&samples);
        let with_change = maximize_ln_p(&w, 10.0, 60.0, 5);
        // No-change window for comparison:
        let mut rng2 = SimRng::seed_from(2);
        let flat: Vec<f64> = (0..100).map(|_| slow.sample(&mut rng2)).collect();
        let without = maximize_ln_p(&window_from(&flat), 10.0, 60.0, 5);
        assert!(
            with_change.ln_p_max > without.ln_p_max + 20.0,
            "changed {} vs flat {}",
            with_change.ln_p_max,
            without.ln_p_max
        );
    }

    #[test]
    fn change_index_locates_the_change() {
        let mut rng = SimRng::seed_from(3);
        let slow = Exponential::new(10.0).unwrap();
        let fast = Exponential::new(60.0).unwrap();
        let mut samples = Vec::new();
        for _ in 0..60 {
            samples.push(slow.sample(&mut rng));
        }
        for _ in 0..40 {
            samples.push(fast.sample(&mut rng));
        }
        let w = window_from(&samples);
        let best = maximize_ln_p(&w, 10.0, 60.0, 5);
        assert!(
            (50..=70).contains(&best.change_index),
            "estimated change index {} should be near 60",
            best.change_index
        );
        assert_eq!(best.tail_len, 100 - best.change_index);
    }

    #[test]
    fn detects_rate_decreases_too() {
        let mut rng = SimRng::seed_from(4);
        let fast = Exponential::new(60.0).unwrap();
        let slow = Exponential::new(10.0).unwrap();
        let mut samples = Vec::new();
        for _ in 0..50 {
            samples.push(fast.sample(&mut rng));
        }
        for _ in 0..50 {
            samples.push(slow.sample(&mut rng));
        }
        let w = window_from(&samples);
        let best = maximize_ln_p(&w, 60.0, 10.0, 5);
        assert!(best.ln_p_max > 10.0, "decrease statistic {}", best.ln_p_max);
    }

    #[test]
    fn k_step_grid_respects_bounds() {
        let samples: Vec<f64> = (0..30).map(|i| 0.1 + (i as f64) * 1e-4).collect();
        let w = window_from(&samples);
        let best = maximize_ln_p(&w, 10.0, 20.0, 7);
        // k ranges over {7, 14, 21}: 28 would leave < 7 tail samples? No:
        // constraint is k + k_step <= m, so k ∈ {7, 14, 21} for m=30? 21+7=28<=30, 28+7>30.
        assert!(best.change_index.is_multiple_of(7) && best.change_index >= 7);
        assert!(best.change_index + 7 <= 30);
    }

    #[test]
    #[should_panic(expected = "window too short")]
    fn short_window_panics() {
        let w = window_from(&[0.1, 0.2, 0.3]);
        let _ = maximize_ln_p(&w, 10.0, 20.0, 2);
    }

    #[test]
    #[should_panic(expected = "k_step must be positive")]
    fn zero_k_step_panics() {
        let w = window_from(&[0.1, 0.2, 0.3, 0.4]);
        let _ = maximize_ln_p(&w, 10.0, 20.0, 0);
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn non_positive_rate_panics() {
        let _ = RatioKernel::new(0.0, 2.0);
    }
}
