//! Differential property tests: the flat ring-buffer [`SampleWindow`]
//! versus the retained seed-era deque-backed reference implementation.
//!
//! The hot-path rewrite replaced `SampleWindow`'s two `VecDeque<f64>`s
//! with a flat ring buffer under a bit-identity contract: every
//! observable value (`suffix_sum`, `total`, iteration order, length)
//! must be reproduced **bit for bit** for any operation sequence. These
//! tests drive both implementations through random interleavings of
//! push / suffix_sum / retain_last / clear and assert exact equality.

use detect::window::{reference::VecDequeWindow, SampleWindow};
use proptest::prelude::*;

/// One randomly generated window operation.
#[derive(Debug, Clone)]
enum Op {
    /// Push a sample (non-negative, finite).
    Push(f64),
    /// Query a suffix sum; the index is reduced modulo `len + 1`.
    SuffixSum(usize),
    /// Retain the last `n % (len + 1)` samples.
    RetainLast(usize),
    /// Clear the window.
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Pushes dominate, as they do in the real workload.
        6 => (0.0f64..1e6).prop_map(Op::Push),
        2 => any::<usize>().prop_map(Op::SuffixSum),
        1 => any::<usize>().prop_map(Op::RetainLast),
        1 => Just(Op::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary operation sequences leave both windows in bit-equal
    /// states, with every intermediate suffix sum bit-equal too.
    #[test]
    fn ring_matches_deque_reference(
        capacity in 1usize..48,
        ops in prop::collection::vec(op_strategy(), 0..300),
    ) {
        let mut ring = SampleWindow::new(capacity);
        let mut deque = VecDequeWindow::new(capacity);
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Push(x) => {
                    ring.push(x);
                    deque.push(x);
                }
                Op::SuffixSum(raw) => {
                    let n = raw % (ring.len() + 1);
                    prop_assert_eq!(
                        ring.suffix_sum(n).to_bits(),
                        deque.suffix_sum(n).to_bits(),
                        "step {}: suffix_sum({})", step, n
                    );
                }
                Op::RetainLast(raw) => {
                    let n = raw % (ring.len() + 1);
                    ring.retain_last(n);
                    deque.retain_last(n);
                }
                Op::Clear => {
                    ring.clear();
                    deque.clear();
                }
            }
            prop_assert_eq!(ring.len(), deque.len(), "step {}", step);
            prop_assert_eq!(ring.is_empty(), deque.is_empty());
            // Full-state check: contents and every suffix sum, bitwise.
            let a: Vec<u64> = ring.iter().map(f64::to_bits).collect();
            let b: Vec<u64> = deque.iter().map(f64::to_bits).collect();
            prop_assert_eq!(a, b, "step {}: contents diverged", step);
            for n in 0..=ring.len() {
                prop_assert_eq!(
                    ring.suffix_sum(n).to_bits(),
                    deque.suffix_sum(n).to_bits(),
                    "step {}: post-op suffix_sum({})", step, n
                );
            }
        }
        prop_assert_eq!(ring.total().to_bits(), deque.total().to_bits());
    }

    /// Long eviction-heavy streams (many times the capacity) stay
    /// bit-equal — the regime where the ring's head wraps repeatedly and
    /// the prefix-sum base crosses eviction boundaries.
    #[test]
    fn sustained_eviction_stays_bit_equal(
        capacity in 1usize..16,
        seed in any::<u64>(),
    ) {
        use simcore::dist::{Exponential, Sample};
        use simcore::rng::SimRng;
        let unit = Exponential::new(1.0).expect("valid rate");
        let mut rng = SimRng::seed_from(seed);
        let mut ring = SampleWindow::new(capacity);
        let mut deque = VecDequeWindow::new(capacity);
        for i in 0..20 * capacity {
            let x = unit.sample(&mut rng);
            ring.push(x);
            deque.push(x);
            prop_assert_eq!(
                ring.total().to_bits(),
                deque.total().to_bits(),
                "push {}", i
            );
        }
        for n in 0..=ring.len() {
            prop_assert_eq!(
                ring.suffix_sum(n).to_bits(),
                deque.suffix_sum(n).to_bits()
            );
        }
    }
}
