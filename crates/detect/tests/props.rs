//! Property-based tests for the detection stack.

use detect::calibrate::{CalibrationConfig, ThresholdTable};
use detect::likelihood::{ln_p_at, maximize_ln_p};
use detect::window::SampleWindow;
use proptest::prelude::*;
use simcore::dist::{Exponential, Sample};
use simcore::rng::SimRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Window suffix sums match naive recomputation for any push
    /// sequence and any suffix length.
    #[test]
    fn suffix_sums_match_naive(
        samples in prop::collection::vec(0.0f64..1e3, 1..200),
        capacity in 1usize..64,
    ) {
        let mut w = SampleWindow::new(capacity);
        for &x in &samples {
            w.push(x);
        }
        let held: Vec<f64> = w.iter().collect();
        prop_assert_eq!(held.len(), samples.len().min(capacity));
        for n in 0..=held.len() {
            let naive: f64 = held[held.len() - n..].iter().sum();
            let fast = w.suffix_sum(n);
            prop_assert!(
                (fast - naive).abs() <= 1e-9 * (1.0 + naive.abs()),
                "n={n}: {fast} vs {naive}"
            );
        }
    }

    /// The exact scale invariance behind per-ratio calibration: the
    /// statistic of (λo, r·λo) on samples x equals the statistic of
    /// (1, r) on λo·x, for arbitrary windows.
    #[test]
    fn statistic_is_scale_invariant(
        seed in 0u64..10_000,
        lambda in 0.01f64..1e3,
        ratio in 0.1f64..10.0,
    ) {
        prop_assume!((ratio - 1.0).abs() > 1e-6);
        let unit = Exponential::new(1.0).expect("valid");
        let mut rng = SimRng::seed_from(seed);
        let mut w_unit = SampleWindow::new(40);
        let mut w_scaled = SampleWindow::new(40);
        for _ in 0..40 {
            let u = unit.sample(&mut rng);
            w_unit.push(u);
            w_scaled.push(u / lambda);
        }
        let a = maximize_ln_p(&w_unit, 1.0, ratio, 5);
        let b = maximize_ln_p(&w_scaled, lambda, ratio * lambda, 5);
        prop_assert!((a.ln_p_max - b.ln_p_max).abs() < 1e-6 * (1.0 + a.ln_p_max.abs()));
        prop_assert_eq!(a.change_index, b.change_index);
    }

    /// ln P(k) is zero iff the candidate equals the current rate, and
    /// its sign flips consistently with whether the tail mean supports
    /// the candidate.
    #[test]
    fn ln_p_sign_structure(
        rate in 0.1f64..100.0,
        tail_len in 1usize..200,
        tail_mean in 0.001f64..10.0,
    ) {
        let tail_sum = tail_mean * tail_len as f64;
        prop_assert_eq!(ln_p_at(rate, rate, tail_len, tail_sum), 0.0);
        // The likelihood-ratio is maximized over λn at the tail MLE
        // 1/tail_mean; a candidate exactly there is never negative.
        let mle = 1.0 / tail_mean;
        if (mle - rate).abs() > 1e-9 {
            prop_assert!(ln_p_at(rate, mle, tail_len, tail_sum) > 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Calibrated thresholds increase with the confidence level for a
    /// fixed ratio (they are quantiles of one distribution).
    #[test]
    fn thresholds_monotone_in_confidence(seed in 0u64..50) {
        let base = CalibrationConfig {
            window: 50,
            k_step: 5,
            trials: 400,
            confidence: 0.9,
        };
        let mut last = f64::NEG_INFINITY;
        for conf in [0.9, 0.95, 0.99, 0.995] {
            let config = CalibrationConfig {
                confidence: conf,
                ..base
            };
            let mut rng = SimRng::seed_from(seed);
            let table = ThresholdTable::calibrate(&[2.0], config, &mut rng)
                .expect("valid calibration");
            let t = table.threshold(2.0).expect("calibrated ratio");
            prop_assert!(t >= last, "confidence {conf}: {t} < {last}");
            last = t;
        }
    }
}
