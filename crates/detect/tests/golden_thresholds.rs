//! Bit-identity goldens for Monte-Carlo threshold calibration.
//!
//! These tables were captured from the pre-optimization (seed-era)
//! kernel — deque-backed windows, per-sample RNG draws, unhoisted
//! `ln()` in the maximize loop. The rewritten zero-allocation kernel
//! must reproduce them to the last bit, at any thread count; any drift
//! here means a hot-path "optimization" silently changed the float
//! arithmetic and every published experiment number with it.

use detect::calibrate::{default_ratios, CalibrationConfig, ThresholdTable};
use simcore::par::Jobs;
use simcore::rng::SimRng;

/// `(ratio_bits, threshold_bits)` for the paper-default configuration
/// (window 100, k_step 10, confidence 0.995, trials 2000) calibrated at
/// seed `0xDAC_2001` over `default_ratios()`.
const GOLDEN_DEFAULT: [(u64, u64); 10] = [
    (0x3fd0000000000000, 0x3fee666666666680), // (0.25, 0.9500000000000028)
    (0x3fd51eb851eb851f, 0x4003333333333340), // (0.33, 2.4000000000000057)
    (0x3fe0000000000000, 0x400b333333333340), // (0.5, 3.4000000000000057)
    (0x3fe570a3d70a3d71, 0x40119999999999a0), // (0.67, 4.400000000000006)
    (0x3fe999999999999a, 0x400cccccccccccd0), // (0.8, 3.6000000000000014)
    (0x3ff4000000000000, 0x400c666666666670), // (1.25, 3.5500000000000043)
    (0x3ff8000000000000, 0x4011333333333338), // (1.5, 4.300000000000004)
    (0x4000000000000000, 0x40139999999999a0), // (2.0, 4.900000000000006)
    (0x4008000000000000, 0x400f9999999999a0), // (3.0, 3.950000000000003)
    (0x4010000000000000, 0x40099999999999a0), // (4.0, 3.200000000000003)
];

/// As above for a quick configuration (window 50, k_step 5, confidence
/// 0.99, trials 400), seed 7, ratios `[0.5, 2.0, 4.0]`.
const GOLDEN_QUICK: [(u64, u64); 3] = [
    (0x3fe0000000000000, 0x4006666666666670), // (0.5, 2.8000000000000043)
    (0x4000000000000000, 0x400f333333333340), // (2.0, 3.9000000000000057)
    (0x4010000000000000, 0x4008000000000000), // (4.0, 3.0)
];

fn assert_matches_golden(table: &ThresholdTable, golden: &[(u64, u64)], label: &str) {
    assert_eq!(table.entries().len(), golden.len(), "{label}: entry count");
    for (i, (&(ratio, threshold), &(ratio_bits, threshold_bits))) in
        table.entries().iter().zip(golden).enumerate()
    {
        assert_eq!(
            ratio.to_bits(),
            ratio_bits,
            "{label}: entry {i} ratio {ratio} drifted"
        );
        assert_eq!(
            threshold.to_bits(),
            threshold_bits,
            "{label}: entry {i} (ratio {ratio}) threshold {threshold} drifted"
        );
    }
}

#[test]
fn default_config_thresholds_match_pre_rewrite_goldens() {
    let table = ThresholdTable::calibrate_jobs(
        &default_ratios(),
        CalibrationConfig::default(),
        &mut SimRng::seed_from(0xDAC_2001),
        Jobs::Count(1),
    )
    .unwrap();
    assert_matches_golden(&table, &GOLDEN_DEFAULT, "default/jobs=1");
}

#[test]
fn default_config_thresholds_match_goldens_at_any_thread_count() {
    for jobs in [2, 4] {
        let table = ThresholdTable::calibrate_jobs(
            &default_ratios(),
            CalibrationConfig::default(),
            &mut SimRng::seed_from(0xDAC_2001),
            Jobs::Count(jobs),
        )
        .unwrap();
        assert_matches_golden(&table, &GOLDEN_DEFAULT, &format!("default/jobs={jobs}"));
    }
}

#[test]
fn quick_config_thresholds_match_pre_rewrite_goldens() {
    let config = CalibrationConfig {
        window: 50,
        k_step: 5,
        confidence: 0.99,
        trials: 400,
    };
    for jobs in [1, 3] {
        let table = ThresholdTable::calibrate_jobs(
            &[0.5, 2.0, 4.0],
            config,
            &mut SimRng::seed_from(7),
            Jobs::Count(jobs),
        )
        .unwrap();
        assert_matches_golden(&table, &GOLDEN_QUICK, &format!("quick/jobs={jobs}"));
    }
}

#[test]
fn optimized_and_reference_kernels_agree_on_golden_cells() {
    // Spot-check the per-trial contract directly against the retained
    // seed-era kernel on the golden configuration's RNG streams.
    use detect::calibrate::{reference_trial_statistic, trial_statistic};
    let config = CalibrationConfig::default();
    let root = SimRng::seed_from(0xDAC_2001);
    for (i, &ratio) in default_ratios().iter().enumerate().take(3) {
        for t in [0u64, 1, 999] {
            let rng = || {
                root.fork_indexed("calibration-ratio", i as u64)
                    .fork_indexed("calibration-trial", t)
            };
            let new = trial_statistic(ratio, config, rng());
            let old = reference_trial_statistic(ratio, config, rng());
            assert_eq!(new.to_bits(), old.to_bits(), "ratio {ratio} trial {t}");
        }
    }
}
