//! Counting-allocator proof of the calibration hot loop's allocation
//! budget: after one warm-up call per thread, `trial_statistic` performs
//! **zero** heap allocations per trial.
//!
//! This file holds exactly one `#[test]` so no concurrently running test
//! in the same binary can disturb the process-global counter, and the
//! measured region calls nothing but the trial kernel.

#![deny(unsafe_op_in_unsafe_fn)]

use detect::calibrate::{trial_statistic, CalibrationConfig};
use simcore::rng::SimRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts every allocation request.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn calibration_trials_allocate_zero_after_warmup() {
    let config = CalibrationConfig::default();
    let root = SimRng::seed_from(0x00A1_10C8);

    // Warm-up: the first trial on this thread sizes the thread-local
    // scratch arena (window ring + staging buffer).
    let warm = trial_statistic(2.0, config, root.fork_indexed("warmup", 0));
    assert!(warm.is_finite());

    let before = ALLOCS.load(Ordering::SeqCst);
    let mut acc = 0.0f64;
    for t in 0..500 {
        // RNG forking is arithmetic on the seed — no allocation — so the
        // measured region is exactly one full Monte-Carlo trial per
        // iteration: 100 batched Exp(1) draws, 100 window pushes, and
        // the kernelized maximize scan.
        acc += trial_statistic(2.0, config, root.fork_indexed("trial", t));
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    std::hint::black_box(acc);

    assert_eq!(
        after - before,
        0,
        "calibration inner loop allocated {} times over 500 trials",
        after - before
    );

    // Changing the window size is allowed to reallocate the arena once —
    // and then the loop is allocation-free again at the new size.
    let resized = CalibrationConfig {
        window: 60,
        k_step: 6,
        ..config
    };
    let _ = trial_statistic(2.0, resized, root.fork_indexed("resize-warmup", 0));
    let before = ALLOCS.load(Ordering::SeqCst);
    for t in 0..100 {
        std::hint::black_box(trial_statistic(
            2.0,
            resized,
            root.fork_indexed("resized", t),
        ));
    }
    assert_eq!(ALLOCS.load(Ordering::SeqCst) - before, 0);
}
