//! Fault-tolerant fleet execution: failures are contained per device,
//! accounted in `FleetHealth`, and never cost determinism — a partial
//! report's bytes are identical at any worker count, and `retry(N)`
//! outcomes are a pure function of the spec.

use fleet::{run_fleet, FleetError, FleetSpec, OnError};
use simcore::json::ToJson;
use simcore::par::Jobs;

/// A fleet mixing healthy devices with guaranteed-failing ones: the
/// `poison` preset yields a fault spec the simulator rejects on
/// construction, and `panic` panics outright (exercising the
/// `catch_unwind` path). Faults vary slowest in the 1×2×3 cross
/// product, so of every 6 devices, 0-1 are healthy, 2-3 poisoned,
/// 4-5 panicking.
fn mixed_spec(devices: usize, on_error: &str) -> FleetSpec {
    FleetSpec::parse(&format!(
        r#"{{
            "name": "mixed",
            "devices": {devices},
            "base_seed": 99,
            "workloads": ["mp3:A"],
            "policies": [
                {{ "governor": "max", "dpm": "none" }},
                {{ "governor": "change-point", "dpm": "break-even" }}
            ],
            "faults": ["off", "poison", "panic"],
            "on_error": "{on_error}"
        }}"#
    ))
    .expect("test spec is valid")
}

#[test]
fn partial_report_bytes_are_identical_at_any_jobs_count() {
    let spec = mixed_spec(13, "continue");
    let reference = run_fleet(&spec, Jobs::Count(1))
        .expect("continue survives failures")
        .to_json()
        .pretty();
    for jobs in [2, 8] {
        let got = run_fleet(&spec, Jobs::Count(jobs))
            .expect("continue survives failures")
            .to_json()
            .pretty();
        assert_eq!(got, reference, "jobs={jobs} diverged from jobs=1");
    }
}

#[test]
fn continue_contains_failures_and_counts_them() {
    // 12 devices over a 1×2×3 cross product: faults vary slowest, so
    // devices 2,3 (poison) and 4,5 (panic) of every 6 fail.
    let spec = mixed_spec(12, "continue");
    let report = run_fleet(&spec, Jobs::Count(4)).expect("continue survives failures");
    assert!(report.partial);
    assert_eq!(report.devices, 12);
    assert_eq!(
        report.records.len(),
        4,
        "only the fault-free third survives"
    );

    let h = &report.health;
    assert_eq!(h.on_error, "continue");
    assert_eq!((h.completed, h.failed), (4, 8));
    assert_eq!(h.retried, 0, "continue never retries");
    assert_eq!(h.quarantined, 8, "one attempt was the whole budget");
    assert!((h.failure_rate - 8.0 / 12.0).abs() < 1e-12);
    // Both policy cohorts lose the same 2-of-3 fault share.
    assert_eq!(h.cohorts.len(), 2);
    for c in &h.cohorts {
        assert_eq!(c.devices, 6);
        assert_eq!(c.failed, 4);
    }
    assert_eq!(h.first_errors.len(), 5, "samples are capped");
    // Poisoned devices report the typed fault error; panicking devices
    // report the caught panic message.
    let errors: Vec<&str> = h.first_errors.iter().map(|s| s.error.as_str()).collect();
    assert!(
        errors.iter().any(|e| e.contains("fault")),
        "typed error missing from {errors:?}"
    );
    assert!(
        errors
            .iter()
            .any(|e| e.starts_with("panic: injected panic")),
        "panic message missing from {errors:?}"
    );

    // Survivor summaries exist and cover exactly the healthy devices.
    let energy = report.energy_kj.as_ref().expect("survivors");
    assert!(energy.mean > 0.0);
    for r in &report.records {
        assert_eq!(r.faults, "off");
        assert_eq!(r.attempts, 1);
    }
}

#[test]
fn fail_fast_aborts_on_the_first_failure() {
    let spec = mixed_spec(12, "fail_fast");
    let err = run_fleet(&spec, Jobs::Count(2)).expect_err("fail_fast aborts");
    match err {
        FleetError::Device {
            device, attempts, ..
        } => {
            assert_eq!(device, 2, "first poisoned device in fold order");
            assert_eq!(attempts, 1);
        }
        other => panic!("expected FleetError::Device, got {other}"),
    }
}

#[test]
fn retry_outcomes_are_deterministic_and_recover_flaky_devices() {
    // `flaky:60` dooms ~60% of first attempts by seed; with 4 retries
    // on independent forked seeds most devices recover. What matters
    // here is not the exact rate but that (a) some devices genuinely
    // retry, and (b) the full outcome set — including every retried
    // seed — is byte-identical across jobs counts and repeat runs.
    let spec = FleetSpec::parse(
        r#"{
            "name": "flaky",
            "devices": 24,
            "base_seed": 7,
            "workloads": ["mp3:A"],
            "policies": [{ "governor": "max", "dpm": "none" }],
            "faults": ["flaky:60"],
            "on_error": "retry:4"
        }"#,
    )
    .expect("valid spec");
    assert_eq!(spec.on_error, OnError::Retry(4));

    let reference = run_fleet(&spec, Jobs::Count(1)).expect("retry contains failures");
    for jobs in [2, 8] {
        let got = run_fleet(&spec, Jobs::Count(jobs)).expect("retry contains failures");
        assert_eq!(
            got.to_json().pretty(),
            reference.to_json().pretty(),
            "jobs={jobs} diverged"
        );
    }

    let h = &reference.health;
    assert!(h.retried > 0, "flaky:60 over 24 devices must retry some");
    assert!(h.recovered > 0, "retries on fresh seeds must recover some");
    assert_eq!(h.retried, h.recovered + h.failed);
    // Retried survivors carry their retry seed and attempt count; the
    // seeds must match the spec's deterministic ladder.
    for r in reference.records.iter().filter(|r| r.attempts > 1) {
        let attempt = u32::try_from(r.attempts - 1).expect("small");
        assert_eq!(r.seed, spec.retry_seed(r.device as usize, attempt));
    }
}

#[test]
fn retry_seeds_never_collide_with_device_seeds() {
    let spec = mixed_spec(8, "continue");
    let mut seen = std::collections::BTreeSet::new();
    for device in 0..spec.devices {
        for attempt in 0..=fleet::spec::MAX_RETRIES {
            assert!(
                seen.insert(spec.retry_seed(device, attempt)),
                "seed collision at device {device} attempt {attempt}"
            );
        }
    }
}

#[test]
fn all_devices_failing_still_produces_a_report() {
    let spec = FleetSpec::parse(
        r#"{
            "name": "doomed",
            "devices": 3,
            "base_seed": 5,
            "workloads": ["mp3:A"],
            "policies": [{ "governor": "max", "dpm": "none" }],
            "faults": ["poison"],
            "on_error": "continue"
        }"#,
    )
    .expect("valid spec");
    let report = run_fleet(&spec, Jobs::Count(2)).expect("continue survives total loss");
    assert!(report.partial);
    assert_eq!(report.health.failed, 3);
    assert!(report.records.is_empty());
    assert!(report.energy_kj.is_none());
    assert!(report.cohorts.is_empty());
}

/// Regression for the poisoned-mutex bug: a `panic` chaos-preset
/// device unwinds while the parallel engine's span-store and
/// result-slot mutexes are in active use. Before the
/// `unwrap_or_else(into_inner)` recovery in `simcore::par`, one caught
/// device panic could poison those locks and turn every *later*
/// contained failure into a cascading abort of the whole run. With
/// profiling enabled the fleet must still yield `DeviceOutcome::Failed`
/// for the panicking devices and a complete report.
#[test]
fn profiled_panic_devices_still_fail_cleanly() {
    simcore::par::set_profiling(true);
    let spec = mixed_spec(12, "continue");
    let result = run_fleet(&spec, Jobs::Count(4));
    simcore::par::set_profiling(false);
    let report = result.expect("panicking devices are contained, not cascaded");
    assert_eq!(report.devices, 12);
    assert_eq!(report.health.failed, 8, "poison + panic thirds both fail");
    assert_eq!(report.health.completed, 4);
    assert!(
        report
            .health
            .first_errors
            .iter()
            .any(|e| e.error.starts_with("panic:")),
        "panic outcomes survive as Failed, not aborts"
    );
    // The spans recorded while devices were panicking are still
    // harvestable — the store survived the poison.
    let _ = simcore::par::take_spans();
}

#[test]
fn failed_devices_leave_no_truncated_trace_files() {
    let dir = std::env::temp_dir().join(format!("fleet_partial_trace_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = mixed_spec(6, "continue");
    let report = fleet::run_fleet_opts(
        &spec,
        Jobs::Count(2),
        &fleet::RunOptions {
            trace_dir: Some(dir.clone()),
            ..fleet::RunOptions::default()
        },
    )
    .expect("continue survives failures");

    for device in 0..6u64 {
        let path = dir.join(format!("device_{device:05}.jsonl"));
        let tmp = dir.join(format!("device_{device:05}.jsonl.tmp"));
        assert!(!tmp.exists(), "temp file left for device {device}");
        let completed = report.records.iter().any(|r| r.device == device);
        assert_eq!(
            path.exists(),
            completed,
            "trace file presence must track completion for device {device}"
        );
        if completed {
            let text = std::fs::read_to_string(&path).expect("readable");
            trace::parse_jsonl(&text).expect("complete, parseable JSONL");
        }
    }
    // The fleet log records one start per device and done-or-failed.
    let log = std::fs::read_to_string(dir.join("fleet.jsonl")).expect("fleet log");
    let events = trace::parse_fleet_jsonl(&log).expect("parses");
    let failed = events
        .iter()
        .filter(|e| matches!(e, trace::FleetEvent::DeviceFailed { .. }))
        .count() as u64;
    assert_eq!(failed, report.health.failed);
    let _ = std::fs::remove_dir_all(&dir);
}
