//! The cohort engine's cache-traffic contract: once a policy's
//! threshold table is resolved, a fleet run performs **one** cache
//! lookup per change-point policy (the cohort pre-resolution) and zero
//! per device — the contention fix that lets device throughput scale
//! with workers instead of serializing on the cache.
//!
//! This lives in its own integration binary (one test) because it
//! asserts on the process-wide cache counters: any concurrent test
//! touching the cache would pollute the deltas.

use fleet::{run_fleet, FleetSpec};
use simcore::par::Jobs;

#[test]
fn fleet_runs_touch_the_cache_once_per_policy_not_per_device() {
    let spec = FleetSpec::parse(
        r#"{
            "name": "cache-traffic",
            "devices": 9,
            "base_seed": 99,
            "workloads": ["mp3:A"],
            "policies": [
                { "governor": "change-point", "dpm": "none" },
                { "governor": "max", "dpm": "none" }
            ],
            "faults": ["off"]
        }"#,
    )
    .expect("valid spec");

    // First run calibrates (one miss) and pre-resolves per policy.
    run_fleet(&spec, Jobs::Count(2)).expect("warm run");

    let before = detect::cache::cache_stats_detailed();
    run_fleet(&spec, Jobs::Count(2)).expect("measured run");
    let delta = detect::cache::cache_stats_detailed().since(&before);

    assert_eq!(delta.misses, 0, "warm fleet run must never recalibrate");
    assert_eq!(
        delta.hits, 1,
        "exactly one lookup for the one change-point policy — devices do zero cache traffic"
    );
}
