//! The fleet engine's core contract: a fleet run is a pure function of
//! its spec. The serialized report must be byte-identical at any worker
//! count, every device's stream must be independent of its neighbours,
//! and shared change-point calibration must not leak state between
//! devices.

use std::collections::BTreeSet;

use fleet::{run_fleet, run_fleet_with, FleetError, FleetSpec};
use simcore::json::ToJson;
use simcore::par::Jobs;

/// A small but non-trivial fleet: two workloads, three policies
/// (including a quick change-point config so the threshold cache is on
/// the path), two fault presets.
fn spec(devices: usize) -> FleetSpec {
    FleetSpec::parse(&format!(
        r#"{{
            "name": "determinism",
            "devices": {devices},
            "base_seed": 1234,
            "workloads": ["mp3:AB", "session"],
            "policies": [
                {{ "governor": "change-point", "dpm": "break-even" }},
                {{ "governor": "ema:0.05", "dpm": "timeout:1.0" }},
                {{ "governor": "max", "dpm": "none" }}
            ],
            "faults": ["off", "wlan"]
        }}"#
    ))
    .expect("test spec is valid")
}

#[test]
fn report_bytes_are_identical_at_any_jobs_count() {
    let spec = spec(13); // deliberately not a multiple of batch or combos
    let reference = run_fleet(&spec, Jobs::Count(1))
        .expect("fleet runs")
        .to_json()
        .pretty();
    for jobs in [2, 4, 8] {
        let got = run_fleet(&spec, Jobs::Count(jobs))
            .expect("fleet runs")
            .to_json()
            .pretty();
        assert_eq!(got, reference, "jobs={jobs} diverged from jobs=1");
    }
}

#[test]
fn records_cover_the_cross_product_with_distinct_seeds() {
    let spec = spec(12); // exactly one full 2×3×2 cross product
    let report = run_fleet(&spec, Jobs::Auto).expect("fleet runs");
    assert_eq!(report.devices, 12);
    assert_eq!(report.records.len(), 12);

    let combos: BTreeSet<(String, u64, String)> = report
        .records
        .iter()
        .map(|r| (r.workload.clone(), r.policy, r.faults.clone()))
        .collect();
    assert_eq!(combos.len(), 12, "every combination appears exactly once");

    let seeds: BTreeSet<u64> = report.records.iter().map(|r| r.seed).collect();
    assert_eq!(seeds.len(), 12, "device seeds must be pairwise distinct");

    // Cohorts are balanced (4 devices per policy) and in slot order.
    assert_eq!(report.cohorts.len(), 3);
    for (i, c) in report.cohorts.iter().enumerate() {
        assert_eq!(c.policy, i as u64);
        assert_eq!(c.devices, 4);
        assert!(c.mean_energy_kj > 0.0);
    }
    // max/none is present, so every cohort gets a savings factor and
    // the baseline's own factor is exactly 1.
    let baseline = &report.cohorts[2];
    assert_eq!(baseline.governor, "max");
    assert!((baseline.savings_vs_baseline.expect("baseline") - 1.0).abs() < 1e-12);
    for c in &report.cohorts {
        assert!(c.savings_vs_baseline.expect("baseline present") > 0.0);
    }

    // Detecting governors (change-point, ema) report a probe latency;
    // max does not.
    for r in &report.records {
        match r.governor.as_str() {
            "max" => assert_eq!(r.detection_latency_frames, None, "device {}", r.device),
            _ => assert!(
                r.detection_latency_frames.expect("probe ran") >= 1.0,
                "device {}",
                r.device
            ),
        }
    }
    assert!(report.detection_latency_frames.is_some());
}

#[test]
fn a_device_run_does_not_depend_on_fleet_size() {
    // Device 3 of a 4-device fleet and device 3 of a 16-device fleet
    // must be the same simulation: seeds fork per index, never from a
    // shared sequential stream.
    let small = run_fleet(&spec(4), Jobs::Count(2)).expect("fleet runs");
    let large = run_fleet(&spec(16), Jobs::Count(3)).expect("fleet runs");
    assert_eq!(small.records[3], large.records[3]);
}

#[test]
fn trace_dir_gets_per_device_and_fleet_logs() {
    let dir = std::env::temp_dir().join(format!("fleet_trace_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = spec(3);
    let report = run_fleet_with(&spec, Jobs::Count(2), Some(&dir)).expect("fleet runs");
    for i in 0..3 {
        let path = dir.join(format!("device_{i:05}.jsonl"));
        let text = std::fs::read_to_string(&path).expect("device trace exists");
        assert!(!text.is_empty(), "device {i} trace is empty");
    }
    let fleet_log = std::fs::read_to_string(dir.join("fleet.jsonl")).expect("fleet log exists");
    let events = trace::parse_fleet_jsonl(&fleet_log).expect("fleet log parses");
    // start + (start, done) per device + done.
    assert_eq!(events.len(), 2 + 2 * 3);
    assert!(matches!(
        events[0],
        trace::FleetEvent::FleetStart { devices: 3, .. }
    ));
    assert!(matches!(
        events.last(),
        Some(trace::FleetEvent::FleetDone { devices: 3 })
    ));

    // Tracing must not perturb the simulation.
    let untraced = run_fleet(&spec, Jobs::Count(2)).expect("fleet runs");
    assert_eq!(report, untraced);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_jobs_runs_inline() {
    // Jobs::Count(0) means "inline on the calling thread" in simcore;
    // the fleet engine inherits that and still produces the reference
    // bytes.
    let spec = spec(2);
    let inline = run_fleet(&spec, Jobs::Count(0)).expect("inline run");
    let reference = run_fleet(&spec, Jobs::Count(1)).expect("reference run");
    assert_eq!(inline.to_json().pretty(), reference.to_json().pretty());
}

#[test]
fn spec_validation_errors_are_spec_errors() {
    let bad = FleetSpec::parse(r#"{ "devices": 0, "workloads": ["session"], "policies": [{}] }"#);
    assert!(matches!(bad, Err(FleetError::Spec(_))));
}
