//! Checkpoint/resume at the engine level: a run resumed from any
//! checkpointed prefix must produce report bytes identical to an
//! uninterrupted run, and checkpoints must survive only intact.

use std::path::PathBuf;

use fleet::checkpoint::{load_checkpoint, write_checkpoint};
use fleet::{
    run_device, run_fleet, run_fleet_opts, FleetAccumulator, FleetError, FleetSpec, RunOptions,
};
use simcore::json::ToJson;
use simcore::par::Jobs;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet_ckpt_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(devices: usize) -> FleetSpec {
    FleetSpec::parse(&format!(
        r#"{{
            "name": "resume",
            "devices": {devices},
            "base_seed": 31,
            "workloads": ["mp3:A"],
            "policies": [
                {{ "governor": "max", "dpm": "none" }},
                {{ "governor": "change-point", "dpm": "break-even" }}
            ],
            "faults": ["off", "poison"],
            "on_error": "continue"
        }}"#
    ))
    .expect("valid spec")
}

#[test]
fn resume_from_any_prefix_matches_the_uninterrupted_run() {
    let spec = spec(9);
    let reference = run_fleet(&spec, Jobs::Count(2))
        .expect("runs")
        .to_json()
        .pretty();

    // A checkpointed run's final snapshot must cover the whole fleet.
    let dir = tmp_dir("prefix");
    run_fleet_opts(
        &spec,
        Jobs::Count(2),
        &RunOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1,
            ..RunOptions::default()
        },
    )
    .expect("checkpointed run");
    let full = load_checkpoint(&dir, &spec)
        .expect("loads")
        .expect("final checkpoint present");
    assert_eq!(full.devices(), 9, "final checkpoint covers the fleet");

    // Synthesize the accumulator state after each prefix by streaming
    // the engine's own per-device outcomes (run_device is the same unit
    // of work the fold uses), checkpoint it, and resume from there.
    for prefix in [0, 1, 4, 9] {
        let mut acc = FleetAccumulator::new(spec.policies.len(), 1);
        for device in 0..prefix {
            acc.push(run_device(&spec, device).expect("device runs"));
        }
        write_checkpoint(&dir, &spec, &acc).expect("write prefix");
        let resumed = run_fleet_opts(
            &spec,
            Jobs::Count(2),
            &RunOptions {
                resume_dir: Some(dir.clone()),
                ..RunOptions::default()
            },
        )
        .expect("resumed run");
        assert_eq!(
            resumed.to_json().pretty(),
            reference,
            "resume from prefix {prefix} diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_no_checkpoint_starts_fresh() {
    let spec = spec(4);
    let dir = tmp_dir("fresh");
    let resumed = run_fleet_opts(
        &spec,
        Jobs::Count(1),
        &RunOptions {
            resume_dir: Some(dir.clone()),
            ..RunOptions::default()
        },
    )
    .expect("fresh start");
    let reference = run_fleet(&spec, Jobs::Count(1)).expect("runs");
    assert_eq!(resumed.to_json().pretty(), reference.to_json().pretty());
}

#[test]
fn resume_rejects_a_checkpoint_from_a_different_spec() {
    let dir = tmp_dir("foreign");
    let a = spec(9);
    run_fleet_opts(
        &a,
        Jobs::Count(1),
        &RunOptions {
            checkpoint_dir: Some(dir.clone()),
            ..RunOptions::default()
        },
    )
    .expect("checkpointed run");

    let mut b = spec(9);
    b.base_seed = 32; // different fleet entirely
    let err = run_fleet_opts(
        &b,
        Jobs::Count(1),
        &RunOptions {
            resume_dir: Some(dir.clone()),
            ..RunOptions::default()
        },
    )
    .expect_err("foreign checkpoint rejected");
    assert!(matches!(err, FleetError::Checkpoint(_)), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointing_does_not_change_report_bytes() {
    let spec = spec(7);
    let dir = tmp_dir("bytes");
    let plain = run_fleet(&spec, Jobs::Count(2)).expect("runs");
    let checkpointed = run_fleet_opts(
        &spec,
        Jobs::Count(2),
        &RunOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1,
            ..RunOptions::default()
        },
    )
    .expect("runs");
    assert_eq!(
        plain.to_json().pretty(),
        checkpointed.to_json().pretty(),
        "checkpointing must be invisible in the report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
