//! Differential contract of the SoA cohort engine: stepping mixed
//! cohorts through the flattened kernel (per-policy pre-resolved
//! threshold tables, cohort-scheduled batches, block-sampled probes)
//! must be indistinguishable — byte for byte — from running each
//! device through the per-device reference path ([`fleet::run_device`]
//! + a caller-owned accumulator), at any worker count.

use fleet::{run_device, run_fleet, run_fleet_with, FleetAccumulator, FleetSpec};
use powermgr::config::SystemConfig;
use simcore::json::ToJson;
use simcore::par::Jobs;
use trace::{JsonlSink, TraceSink};

/// Mixed cohorts: two workloads × three governors (quick change-point
/// so calibration is cheap but on the path, EMA, max) × two fault
/// presets, with a base seed per case.
fn mixed_spec(devices: usize, base_seed: u64, faults: &str) -> FleetSpec {
    FleetSpec::parse(&format!(
        r#"{{
            "name": "soa-differential",
            "devices": {devices},
            "base_seed": {base_seed},
            "workloads": ["mp3:AB", "session"],
            "policies": [
                {{ "governor": "change-point", "dpm": "break-even" }},
                {{ "governor": "ema:0.05", "dpm": "timeout:1.0" }},
                {{ "governor": "max", "dpm": "none" }}
            ],
            "faults": {faults}
        }}"#
    ))
    .expect("test spec is valid")
}

/// The per-device reference: every device through [`run_device`] (no
/// cohort resources, per-construction cache traffic), folded in device
/// order by a caller-owned accumulator — exactly what the engine did
/// before cohort stepping existed.
fn reference_report_bytes(spec: &FleetSpec) -> String {
    let mut acc =
        FleetAccumulator::new(spec.policies.len(), u64::from(spec.on_error.max_attempts()));
    for device in 0..spec.devices {
        acc.push(run_device(spec, device).expect("reference device runs"));
    }
    acc.finish(&spec.name, spec.base_seed, &spec.on_error.to_string())
        .to_json()
        .pretty()
}

#[test]
fn cohort_engine_report_bytes_equal_per_device_reference() {
    // A small property sweep: device counts that wrap the cross
    // product unevenly, distinct base seeds, clean and faulty presets.
    let cases = [
        (13, 1234, r#"["off", "wlan"]"#),
        (7, 9, r#"["off"]"#),
        (24, 0xFEED, r#"["off", "wlan"]"#),
    ];
    for (devices, base_seed, faults) in cases {
        let spec = mixed_spec(devices, base_seed, faults);
        let reference = reference_report_bytes(&spec);
        for jobs in [1, 2, 8] {
            let got = run_fleet(&spec, Jobs::Count(jobs))
                .expect("cohort engine runs")
                .to_json()
                .pretty();
            assert_eq!(
                got, reference,
                "devices={devices} seed={base_seed} jobs={jobs}: cohort engine diverged from per-device reference"
            );
        }
    }
}

#[test]
fn cohort_engine_trace_streams_equal_per_device_reference() {
    // Clean-fault spec so the reference device config is exactly the
    // assignment's governor/dpm over defaults (fault presets add a
    // supervisor + bounded buffer inside the engine).
    let spec = mixed_spec(6, 4321, r#"["off"]"#);
    for jobs in [1, 2, 8] {
        let dir =
            std::env::temp_dir().join(format!("soa_diff_traces_{}_{jobs}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        run_fleet_with(&spec, Jobs::Count(jobs), Some(&dir)).expect("traced fleet runs");

        for device in 0..spec.devices {
            let engine_trace =
                std::fs::read_to_string(dir.join(format!("device_{device:05}.jsonl")))
                    .expect("engine trace exists");

            let a = spec.assignment(device);
            let config = SystemConfig {
                governor: a.policy.governor.clone(),
                dpm: a.policy.dpm.clone(),
                ..SystemConfig::default()
            };
            let mut sink = JsonlSink::new(Vec::new());
            a.workload
                .run_traced(&config, a.seed, &mut sink)
                .expect("reference device runs");
            sink.finish().expect("reference trace flushes");
            let reference = String::from_utf8(sink.into_inner()).expect("trace is UTF-8");

            assert_eq!(
                engine_trace, reference,
                "device {device} jobs {jobs}: cohort engine trace diverged from per-device loop"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
