//! Streaming fleet aggregation at bounded memory.
//!
//! The original [`FleetReport::build`] retained every per-device record
//! until the end of the run, which caps fleet size long before the
//! "millions of users" regime the roadmap targets. [`FleetAccumulator`]
//! is the replacement: the engine pushes each [`DeviceOutcome`] as the
//! in-order fold delivers it, the accumulator folds it into O(1)-sized
//! state (streaming moments plus a fixed-capacity
//! [`QuantileSketch`] per metric, per-cohort sums, capped samples), and
//! the record itself is dropped. Peak RSS no longer grows with fleet
//! size; the 1M-device `bench_fleet` gate holds it under a fixed
//! ceiling.
//!
//! Determinism: every piece of state is updated in device-index order
//! (the batched fold already merges per-batch results on the calling
//! thread in ascending index order), and the sketch's compaction is a
//! pure function of its insertion sequence — no RNG, no addresses, no
//! time. Two runs of the same spec therefore serialize byte-identically
//! at any `--jobs` count, and a checkpointed accumulator resumes into
//! the exact same future.

use simcore::stats::{OnlineStats, QuantileSketch};

use crate::report::{
    CohortHealth, CohortSummary, DeviceOutcome, DeviceRecord, FailureSample, FleetHealth,
    FleetReport, MetricSummary, SloSummary,
};

/// Quantile-sketch capacity per metric. 2048 keeps every fleet up to
/// 2048 survivors *exact* (bit-identical to a full sort) and bounds the
/// worst-case rank error near 0.1% of n beyond that — far below the
/// spread the report's two-decimal percentiles can express.
pub const SKETCH_CAPACITY: usize = 2048;

/// Cap on the per-device records embedded in the report. Small fleets
/// (every test and golden) keep all their records; fleet-scale runs
/// keep the first window as a sample and count the rest in
/// [`FleetReport::records_truncated`].
pub const RECORD_SAMPLE_CAP: usize = 4096;

/// Streaming distribution of one fleet metric: exact moments and
/// extremes from [`OnlineStats`], percentiles from a bounded
/// [`QuantileSketch`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricAcc {
    pub(crate) stats: OnlineStats,
    pub(crate) sketch: QuantileSketch,
}

impl MetricAcc {
    /// An empty accumulator whose sketch holds `capacity` items before
    /// its first lossy compaction.
    #[must_use]
    pub fn new(capacity: usize) -> MetricAcc {
        MetricAcc {
            stats: OnlineStats::new(),
            sketch: QuantileSketch::new(capacity),
        }
    }

    /// Folds in one observation; non-finite values are ignored, exactly
    /// as [`MetricSummary::from_values`] ignored them.
    pub fn push(&mut self, v: f64) {
        if v.is_finite() {
            self.stats.push(v);
            self.sketch.push(v);
        }
    }

    /// Merges another accumulator into this one (self first — merge
    /// order is part of the deterministic contract).
    pub fn merge(&mut self, other: &MetricAcc) {
        self.stats.merge(&other.stats);
        self.sketch.merge(&other.sketch);
    }

    /// The summary this accumulator has converged to; `None` when no
    /// finite value was ever pushed.
    #[must_use]
    pub fn summary(&self) -> Option<MetricSummary> {
        let count = self.stats.count();
        if count == 0 {
            return None;
        }
        Some(MetricSummary {
            mean: self.stats.sum() / count as f64,
            min: self.stats.min(),
            max: self.stats.max(),
            p10: self.sketch.quantile(0.10),
            p50: self.sketch.quantile(0.50),
            p90: self.sketch.quantile(0.90),
            p99: self.sketch.quantile(0.99),
            count,
            rank_error: self.sketch.rank_error_bound() as f64 / count as f64,
        })
    }
}

/// Per-policy-slot streaming state: failure accounting over every
/// assigned device, survivor means for the Table-5-style cohort row.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortAcc {
    /// Devices assigned to the slot (completed + failed).
    pub(crate) devices: u64,
    /// Devices whose final outcome was failure.
    pub(crate) failed: u64,
    /// Devices that completed.
    pub(crate) survivors: u64,
    /// Governor label of the first surviving member (cohort row label).
    pub(crate) governor: String,
    /// DPM label of the first surviving member.
    pub(crate) dpm: String,
    pub(crate) sum_energy_kj: f64,
    pub(crate) sum_delay_s: f64,
    pub(crate) sum_drop_rate: f64,
    /// Constant-size assertion SLO tallies over the cohort's survivors;
    /// all-zero (and absent from the report) when no member carried a
    /// monitor verdict.
    pub(crate) slo: SloSummary,
}

impl CohortAcc {
    fn new() -> CohortAcc {
        CohortAcc {
            devices: 0,
            failed: 0,
            survivors: 0,
            governor: String::new(),
            dpm: String::new(),
            sum_energy_kj: 0.0,
            sum_delay_s: 0.0,
            sum_drop_rate: 0.0,
            slo: SloSummary::default(),
        }
    }
}

/// Streaming replacement for record-retaining report construction: the
/// engine pushes outcomes in device order, the accumulator keeps
/// bounded state, and [`FleetAccumulator::finish`] emits the same
/// [`FleetReport`] the retained path produced (exactly, for any fleet
/// small enough that the sketches never compact).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAccumulator {
    /// Maximum attempts the failure policy allows (quarantine bound).
    pub(crate) max_attempts: u64,
    pub(crate) completed: u64,
    pub(crate) failed: u64,
    pub(crate) retried: u64,
    pub(crate) recovered: u64,
    pub(crate) quarantined: u64,
    pub(crate) retry_attempts: u64,
    /// First few failures in device order, capped at
    /// [`FleetHealth::MAX_ERROR_SAMPLES`].
    pub(crate) first_errors: Vec<FailureSample>,
    /// One slot per spec policy, in slot order.
    pub(crate) cohorts: Vec<CohortAcc>,
    pub(crate) energy_kj: MetricAcc,
    pub(crate) mean_delay_s: MetricAcc,
    pub(crate) drop_rate: MetricAcc,
    pub(crate) detection_latency_frames: MetricAcc,
    /// Leading sample of surviving records (device order), capped at
    /// [`RECORD_SAMPLE_CAP`].
    pub(crate) records: Vec<DeviceRecord>,
    /// Surviving records dropped beyond the sample cap.
    pub(crate) records_truncated: u64,
}

impl FleetAccumulator {
    /// An empty accumulator for a fleet with `policies` policy slots
    /// run under a failure policy allowing `max_attempts` attempts.
    #[must_use]
    pub fn new(policies: usize, max_attempts: u64) -> FleetAccumulator {
        FleetAccumulator {
            max_attempts,
            completed: 0,
            failed: 0,
            retried: 0,
            recovered: 0,
            quarantined: 0,
            retry_attempts: 0,
            first_errors: Vec::new(),
            cohorts: (0..policies).map(|_| CohortAcc::new()).collect(),
            energy_kj: MetricAcc::new(SKETCH_CAPACITY),
            mean_delay_s: MetricAcc::new(SKETCH_CAPACITY),
            drop_rate: MetricAcc::new(SKETCH_CAPACITY),
            detection_latency_frames: MetricAcc::new(SKETCH_CAPACITY),
            records: Vec::new(),
            records_truncated: 0,
        }
    }

    /// Devices folded in so far (completed + failed). This is the
    /// resume cursor: outcomes are pushed in device order, so the count
    /// *is* the index of the next device to run.
    #[must_use]
    pub fn devices(&self) -> u64 {
        self.completed + self.failed
    }

    /// Folds one device's outcome into the bounded state and drops it.
    ///
    /// Outcomes must arrive in ascending device order — the batched
    /// fold guarantees this, and determinism (and the resume cursor)
    /// depends on it.
    ///
    /// # Panics
    ///
    /// Panics if the outcome's policy slot is out of range for the
    /// accumulator (the spec validator makes this unreachable).
    pub fn push(&mut self, outcome: DeviceOutcome) {
        let attempts = outcome.attempts();
        self.retry_attempts += attempts.saturating_sub(1);
        if attempts > 1 {
            self.retried += 1;
        }
        let slot = usize::try_from(outcome.policy()).expect("policy slot fits in usize");
        let cohort = &mut self.cohorts[slot];
        cohort.devices += 1;
        match outcome {
            DeviceOutcome::Completed(r) => {
                self.completed += 1;
                if r.attempts > 1 {
                    self.recovered += 1;
                }
                if cohort.survivors == 0 {
                    cohort.governor = r.governor.clone();
                    cohort.dpm = r.dpm.clone();
                }
                cohort.survivors += 1;
                cohort.sum_energy_kj += r.energy_kj;
                cohort.sum_delay_s += r.mean_delay_s;
                cohort.sum_drop_rate += r.drop_rate;
                if let Some(a) = &r.assertions {
                    cohort.slo.fold(a);
                }
                self.energy_kj.push(r.energy_kj);
                self.mean_delay_s.push(r.mean_delay_s);
                self.drop_rate.push(r.drop_rate);
                if let Some(frames) = r.detection_latency_frames {
                    self.detection_latency_frames.push(frames);
                }
                if self.records.len() < RECORD_SAMPLE_CAP {
                    self.records.push(r);
                } else {
                    self.records_truncated += 1;
                }
            }
            DeviceOutcome::Failed(f) => {
                self.failed += 1;
                cohort.failed += 1;
                if f.attempts >= self.max_attempts {
                    self.quarantined += 1;
                }
                if self.first_errors.len() < FleetHealth::MAX_ERROR_SAMPLES {
                    self.first_errors.push(FailureSample {
                        device: f.device,
                        attempts: f.attempts,
                        error: f.error,
                    });
                }
            }
        }
    }

    /// Assembles the final report.
    ///
    /// # Panics
    ///
    /// Panics if no outcome was ever pushed (the spec validator rejects
    /// zero-device fleets before any outcome exists).
    #[must_use]
    pub fn finish(self, name: &str, base_seed: u64, on_error: &str) -> FleetReport {
        let devices = self.devices();
        assert!(devices > 0, "a fleet report needs at least one device");

        let mut health_cohorts = Vec::new();
        let mut cohorts = Vec::new();
        for (slot, c) in self.cohorts.iter().enumerate() {
            let slot = slot as u64;
            if c.devices > 0 {
                health_cohorts.push(CohortHealth {
                    policy: slot,
                    devices: c.devices,
                    failed: c.failed,
                    failure_rate: c.failed as f64 / c.devices as f64,
                });
            }
            if c.survivors > 0 {
                cohorts.push(CohortSummary {
                    policy: slot,
                    governor: c.governor.clone(),
                    dpm: c.dpm.clone(),
                    devices: c.survivors,
                    mean_energy_kj: c.sum_energy_kj / c.survivors as f64,
                    mean_delay_s: c.sum_delay_s / c.survivors as f64,
                    mean_drop_rate: c.sum_drop_rate / c.survivors as f64,
                    savings_vs_baseline: None,
                    slo: (c.slo.monitored > 0).then_some(c.slo),
                });
            }
        }
        let mut fleet_slo = SloSummary::default();
        for c in &self.cohorts {
            fleet_slo.merge(&c.slo);
        }
        let baseline = cohorts
            .iter()
            .find(|c| c.governor == "max" && c.dpm == "none")
            .map(|c| c.mean_energy_kj);
        if let Some(base) = baseline {
            for c in &mut cohorts {
                c.savings_vs_baseline = (c.mean_energy_kj > 0.0).then(|| base / c.mean_energy_kj);
            }
        }

        let health = FleetHealth {
            on_error: on_error.to_string(),
            devices,
            completed: self.completed,
            failed: self.failed,
            retried: self.retried,
            recovered: self.recovered,
            quarantined: self.quarantined,
            retry_attempts: self.retry_attempts,
            failure_rate: self.failed as f64 / devices as f64,
            cohorts: health_cohorts,
            first_errors: self.first_errors,
        };

        FleetReport {
            name: name.to_string(),
            devices,
            base_seed,
            partial: self.failed > 0,
            energy_kj: self.energy_kj.summary(),
            mean_delay_s: self.mean_delay_s.summary(),
            drop_rate: self.drop_rate.summary(),
            detection_latency_frames: self.detection_latency_frames.summary(),
            cohorts,
            health,
            records: self.records,
            records_truncated: self.records_truncated,
            slo: (fleet_slo.monitored > 0).then_some(fleet_slo),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::DeviceFailure;

    fn record(device: u64, policy: u64, energy_kj: f64, detect: Option<f64>) -> DeviceRecord {
        DeviceRecord {
            device,
            seed: device * 1000 + 1,
            workload: "session".into(),
            policy,
            governor: if policy == 0 { "change-point" } else { "max" }.into(),
            dpm: if policy == 0 { "break-even" } else { "none" }.into(),
            faults: "off".into(),
            attempts: 1,
            energy_kj,
            mean_delay_s: 0.05 * (device + 1) as f64,
            drop_rate: 0.0,
            detection_latency_frames: detect,
            frames_completed: 100,
            duration_secs: 60.0,
            deadline_miss_ratio: 0.0,
            assertions: None,
        }
    }

    fn failure(device: u64, policy: u64, attempts: u64) -> DeviceFailure {
        DeviceFailure {
            device,
            seed: device * 1000 + 7,
            workload: "session".into(),
            policy,
            governor: "change-point".into(),
            dpm: "break-even".into(),
            faults: "poison".into(),
            attempts,
            error: format!("device {device} went sideways"),
        }
    }

    /// The streaming accumulator must reproduce the retained-records
    /// builder byte-for-byte on fleets under the sketch capacity.
    #[test]
    fn accumulator_matches_retained_build_exactly() {
        use simcore::json::ToJson;
        let outcomes = vec![
            DeviceOutcome::Completed(record(0, 0, 1.0, Some(30.0))),
            DeviceOutcome::Completed(record(1, 1, 4.0, None)),
            DeviceOutcome::Failed(failure(2, 1, 3)),
            DeviceOutcome::Completed(record(3, 0, 2.0, Some(50.0))),
        ];
        let retained = FleetReport::build("t", 42, 2, "retry:2", 3, outcomes.clone());
        let mut acc = FleetAccumulator::new(2, 3);
        for o in outcomes {
            acc.push(o);
        }
        let streamed = acc.finish("t", 42, "retry:2");
        assert_eq!(streamed.to_json().pretty(), retained.to_json().pretty());
    }

    #[test]
    fn devices_counts_the_resume_cursor() {
        let mut acc = FleetAccumulator::new(1, 1);
        assert_eq!(acc.devices(), 0);
        acc.push(DeviceOutcome::Completed(record(0, 0, 1.0, None)));
        acc.push(DeviceOutcome::Failed(failure(1, 0, 1)));
        assert_eq!(acc.devices(), 2);
    }

    #[test]
    fn record_sample_is_capped_and_counted() {
        let n = RECORD_SAMPLE_CAP as u64 + 100;
        let mut acc = FleetAccumulator::new(1, 1);
        for d in 0..n {
            acc.push(DeviceOutcome::Completed(record(d, 0, d as f64, None)));
        }
        assert_eq!(acc.records.len(), RECORD_SAMPLE_CAP);
        assert_eq!(acc.records_truncated, 100);
        let report = acc.finish("big", 1, "continue");
        assert_eq!(report.records.len(), RECORD_SAMPLE_CAP);
        assert_eq!(report.records_truncated, 100);
        // Summaries still cover the whole fleet, not just the sample.
        let energy = report.energy_kj.as_ref().expect("survivors");
        assert_eq!(energy.count, n);
        assert_eq!(energy.max, (n - 1) as f64);
        assert!((energy.mean - (n - 1) as f64 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn metric_acc_ignores_non_finite_like_from_values() {
        let mut acc = MetricAcc::new(16);
        for v in [3.0, f64::NAN, 1.0, f64::INFINITY, 2.0] {
            acc.push(v);
        }
        let m = acc.summary().expect("finite data");
        assert_eq!(m.count, 3);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 3.0);
        assert!((m.p50 - 2.0).abs() < 1e-12);
        assert_eq!(m.rank_error, 0.0, "under capacity the sketch is exact");
        assert_eq!(MetricAcc::new(16).summary(), None);
    }
}
