//! The batched fleet engine: run every device of a [`FleetSpec`] over
//! the deterministic parallel engine and fold the results — in device
//! order, regardless of worker count — into a [`FleetReport`].
//!
//! Determinism invariants (checked by `tests/determinism.rs` and the
//! CI `fleet-determinism` job):
//!
//! * Every device's RNG is a labelled fork of the base seed
//!   ([`FleetSpec::device_seed`]), so no device's stream depends on any
//!   other device or on scheduling.
//! * Devices are mapped with [`par_fold_range_batched`], which folds
//!   results in strictly ascending index order on the calling thread —
//!   the report is byte-identical at any `jobs` count, while memory
//!   stays bounded by one batch of `SimReport`s rather than the fleet.
//! * Change-point calibration goes through the process-wide
//!   [`detect::cache`]: the first device with a given detector config
//!   pays for calibration (itself bit-identical at any thread count),
//!   every later device hits the cache. With one distinct config the
//!   steady-state hit ratio approaches 1.

use std::fs;
use std::io::BufWriter;
use std::path::Path;

use detect::{ChangePointDetector, EmaEstimator, RateEstimator};
use powermgr::config::{GovernorKind, SupervisorConfig, SystemConfig};
use simcore::dist::{Exponential, Sample};
use simcore::json::ToJson;
use simcore::par::{par_fold_range_batched, Jobs};
use simcore::rng::SimRng;
use trace::{FleetEvent, JsonlSink, TraceSink};

use crate::report::{DeviceRecord, FleetReport};
use crate::spec::{DeviceAssignment, FleetSpec};
use crate::FleetError;

/// Devices simulated per parallel wave. Large enough to keep every
/// worker busy, small enough that at most one batch of reports is ever
/// resident before being folded into records.
pub const BATCH: usize = 256;

/// Buffer capacity paired with fault presets, matching the CLI's
/// single-device chaos runs (a bounded buffer is what makes drop
/// accounting meaningful under injected faults).
const FAULT_BUFFER_FRAMES: usize = 64;

/// Detection-latency probe: rate step the probe replays, in frames/s.
const PROBE_SLOW_RATE: f64 = 10.0;
/// Post-step rate of the probe, frames/s (the paper's fig. 10 step).
const PROBE_FAST_RATE: f64 = 60.0;
/// Slow samples fed before the step so detector windows are warm.
const PROBE_PREFILL: usize = 150;
/// Upper bound on post-step samples; a detector that has not reacted
/// by then is reported at the cap rather than scanning forever.
const PROBE_CAP: usize = 600;

/// Runs the fleet and aggregates the report.
///
/// # Errors
///
/// Returns [`FleetError::Spec`] for an invalid spec and
/// [`FleetError::Sim`] when any device's simulation fails.
pub fn run_fleet(spec: &FleetSpec, jobs: Jobs) -> Result<FleetReport, FleetError> {
    run_fleet_with(spec, jobs, None)
}

/// [`run_fleet`], optionally streaming traces under `trace_dir`:
/// `device_NNNNN.jsonl` per device (full simulator event stream) plus
/// `fleet.jsonl` of fleet-level [`FleetEvent`]s.
///
/// # Errors
///
/// As [`run_fleet`], plus [`FleetError::Io`] when the trace directory
/// or a trace file cannot be written.
pub fn run_fleet_with(
    spec: &FleetSpec,
    jobs: Jobs,
    trace_dir: Option<&Path>,
) -> Result<FleetReport, FleetError> {
    spec.validate()?;
    if let Some(dir) = trace_dir {
        fs::create_dir_all(dir).map_err(|e| {
            FleetError::Io(format!("cannot create trace dir {}: {e}", dir.display()))
        })?;
    }

    // Map devices in parallel batches; fold arrives in ascending device
    // order, so the record vector (and everything derived from it) is
    // independent of the worker count.
    let folded: Result<Vec<DeviceRecord>, FleetError> = par_fold_range_batched(
        jobs,
        spec.devices,
        BATCH,
        |i| run_device(spec, i, trace_dir),
        Ok(Vec::with_capacity(spec.devices)),
        |acc, _i, result| {
            let mut records = acc?;
            records.push(result?);
            Ok(records)
        },
    );
    let records = folded?;

    if let Some(dir) = trace_dir {
        write_fleet_log(spec, &records, dir)?;
    }
    Ok(FleetReport::build(
        &spec.name,
        spec.base_seed,
        spec.policies.len(),
        records,
    ))
}

/// Simulates one device: resolve its assignment, run its workload, and
/// condense the [`powermgr::SimReport`] plus the detection probe into a
/// [`DeviceRecord`].
fn run_device(
    spec: &FleetSpec,
    device: usize,
    trace_dir: Option<&Path>,
) -> Result<DeviceRecord, FleetError> {
    let a = spec.assignment(device);
    let config = device_config(&a);

    let report = match trace_dir {
        None => a.workload.run(&config, a.seed).map_err(FleetError::Sim)?,
        Some(dir) => {
            let path = dir.join(format!("device_{device:05}.jsonl"));
            let file = fs::File::create(&path)
                .map_err(|e| FleetError::Io(format!("cannot create {}: {e}", path.display())))?;
            let mut sink = JsonlSink::new(BufWriter::new(file));
            let report = a
                .workload
                .run_traced(&config, a.seed, &mut sink)
                .map_err(FleetError::Sim)?;
            sink.finish().map_err(|e| {
                FleetError::Io(format!("trace write to {} failed: {e}", path.display()))
            })?;
            report
        }
    };

    let offered = report.frames_completed
        + report.robustness.arrivals_dropped
        + report.robustness.frames_dropped;
    let dropped = report.robustness.arrivals_dropped + report.robustness.frames_dropped;
    let drop_rate = if offered == 0 {
        0.0
    } else {
        dropped as f64 / offered as f64
    };

    Ok(DeviceRecord {
        device: device as u64,
        seed: a.seed,
        workload: a.workload.to_string(),
        policy: a.policy_index as u64,
        governor: config.governor.label(),
        dpm: config.dpm.label(),
        faults: a.faults.name(),
        energy_kj: report.total_energy_kj(),
        mean_delay_s: report.mean_frame_delay_s(),
        drop_rate,
        detection_latency_frames: detection_latency_frames(&config.governor, a.seed)?,
        frames_completed: report.frames_completed,
        duration_secs: report.duration_secs,
        deadline_miss_ratio: report.robustness.deadline_miss_ratio(),
    })
}

/// Expands a device assignment into the full [`SystemConfig`],
/// mirroring the single-device CLI: fault presets bring the
/// graceful-degradation supervisor and a bounded frame buffer.
fn device_config(a: &DeviceAssignment<'_>) -> SystemConfig {
    let faults = a.faults.spec(a.seed);
    let (supervisor, buffer_capacity) = if faults.is_some() {
        (Some(SupervisorConfig::default()), Some(FAULT_BUFFER_FRAMES))
    } else {
        (None, None)
    };
    SystemConfig {
        governor: a.policy.governor.clone(),
        dpm: a.policy.dpm.clone(),
        faults,
        supervisor,
        buffer_capacity,
        ..SystemConfig::default()
    }
}

/// Measures how many post-step samples the device's detector needs to
/// register a 10 → 60 frames/s arrival-rate step (the paper's fig. 10
/// workload transition), on a probe stream forked from the device seed.
/// `Ok(None)` for governors with no online detector (ideal knows the
/// future, max never looks).
fn detection_latency_frames(
    governor: &GovernorKind,
    device_seed: u64,
) -> Result<Option<f64>, FleetError> {
    let mut rng = SimRng::seed_from(device_seed).fork("fleet/detect-probe");
    let slow = Exponential::new(PROBE_SLOW_RATE).expect("probe rate is positive");
    let fast = Exponential::new(PROBE_FAST_RATE).expect("probe rate is positive");

    match governor {
        GovernorKind::Ideal | GovernorKind::MaxPerformance => Ok(None),
        GovernorKind::ChangePoint(cfg) => {
            let mut det = ChangePointDetector::new(PROBE_SLOW_RATE, cfg.clone())
                .map_err(|e| FleetError::Sim(e.into()))?;
            for _ in 0..PROBE_PREFILL {
                let _ = det.observe(slow.sample(&mut rng));
            }
            for n in 1..=PROBE_CAP {
                if det.observe(fast.sample(&mut rng)).is_some() {
                    return Ok(Some(n as f64));
                }
            }
            Ok(Some(PROBE_CAP as f64))
        }
        GovernorKind::ExpAverage { gain } => {
            let mut est =
                EmaEstimator::new(PROBE_SLOW_RATE, *gain).map_err(|e| FleetError::Sim(e.into()))?;
            for _ in 0..PROBE_PREFILL {
                let _ = est.observe(slow.sample(&mut rng));
            }
            // The EMA re-estimates continuously; "detected" is the first
            // sample where its estimate is within 10% of the new rate.
            for n in 1..=PROBE_CAP {
                let _ = est.observe(fast.sample(&mut rng));
                if est.current_rate() >= 0.9 * PROBE_FAST_RATE {
                    return Ok(Some(n as f64));
                }
            }
            Ok(Some(PROBE_CAP as f64))
        }
    }
}

/// Writes `fleet.jsonl`: the fleet-level event stream (start, one
/// start/done pair per device in device order, done).
fn write_fleet_log(
    spec: &FleetSpec,
    records: &[DeviceRecord],
    dir: &Path,
) -> Result<(), FleetError> {
    let mut out = String::new();
    let mut push = |event: FleetEvent| {
        out.push_str(&event.to_json().dump());
        out.push('\n');
    };
    push(FleetEvent::FleetStart {
        name: spec.name.clone(),
        devices: spec.devices as u64,
        base_seed: spec.base_seed,
    });
    for r in records {
        push(FleetEvent::DeviceStart {
            device: r.device,
            seed: r.seed,
            workload: r.workload.clone(),
            governor: r.governor.to_string(),
            dpm: r.dpm.to_string(),
            faults: r.faults.to_string(),
        });
        push(FleetEvent::DeviceDone {
            device: r.device,
            frames_completed: r.frames_completed,
            energy_j: r.energy_kj * 1000.0,
            mean_delay_s: r.mean_delay_s,
        });
    }
    push(FleetEvent::FleetDone {
        devices: records.len() as u64,
    });
    let path = dir.join("fleet.jsonl");
    fs::write(&path, out)
        .map_err(|e| FleetError::Io(format!("cannot write {}: {e}", path.display())))
}
