//! The batched fleet engine: run every device of a [`FleetSpec`] over
//! the deterministic parallel engine and fold the results — in device
//! order, regardless of worker count — into a [`FleetReport`].
//!
//! Determinism invariants (checked by `tests/determinism.rs`,
//! `tests/partial.rs`, and the CI `fleet-determinism` job):
//!
//! * Every device's RNG is a labelled fork of the base seed
//!   ([`FleetSpec::device_seed`]), so no device's stream depends on any
//!   other device or on scheduling. Retry attempts draw from their own
//!   indexed forks ([`FleetSpec::retry_seed`]), so even a retried
//!   device is a pure function of its index.
//! * Devices are mapped with [`par_try_fold_range_batched`], which
//!   folds results in strictly ascending index order on the calling
//!   thread — the report is byte-identical at any `jobs` count, while
//!   memory stays bounded by one batch of `SimReport`s rather than the
//!   fleet.
//! * Failures are *contained*: each device attempt runs under
//!   [`catch_unwind`], and both panics and typed simulation errors
//!   become a [`DeviceOutcome::Failed`] handled per the spec's
//!   [`OnError`] policy. Only infrastructure errors (trace or
//!   checkpoint I/O) abort the run.
//! * Change-point calibration goes through the process-wide
//!   [`detect::cache`]: the first device with a given detector config
//!   pays for calibration (itself bit-identical at any thread count),
//!   every later device hits the cache. With one distinct config the
//!   steady-state hit ratio approaches 1.

use std::fs;
use std::io::BufWriter;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use detect::{ChangePointDetector, EmaEstimator, RateEstimator};
use powermgr::config::{GovernorKind, SupervisorConfig, SystemConfig};
use powermgr::PmError;
use simcore::dist::{Exponential, Sample};
use simcore::json::ToJson;
use simcore::par::{par_try_fold_range_batched, Jobs};
use simcore::rng::SimRng;
use trace::{FleetEvent, JsonlSink, TraceSink};

use crate::checkpoint;
use crate::report::{DeviceFailure, DeviceOutcome, DeviceRecord, FleetReport};
use crate::spec::{DeviceAssignment, FleetSpec, OnError};
use crate::FleetError;

/// Devices simulated per parallel wave. Large enough to keep every
/// worker busy, small enough that at most one batch of reports is ever
/// resident before being folded into records.
pub const BATCH: usize = 256;

/// Default checkpoint cadence: a snapshot every this many batches.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 4;

/// Buffer capacity paired with fault presets, matching the CLI's
/// single-device chaos runs (a bounded buffer is what makes drop
/// accounting meaningful under injected faults).
const FAULT_BUFFER_FRAMES: usize = 64;

/// Detection-latency probe: rate step the probe replays, in frames/s.
const PROBE_SLOW_RATE: f64 = 10.0;
/// Post-step rate of the probe, frames/s (the paper's fig. 10 step).
const PROBE_FAST_RATE: f64 = 60.0;
/// Slow samples fed before the step so detector windows are warm.
const PROBE_PREFILL: usize = 150;
/// Upper bound on post-step samples; a detector that has not reacted
/// by then is reported at the cap rather than scanning forever.
const PROBE_CAP: usize = 600;

/// Optional engine features beyond the plain spec + jobs run: trace
/// streaming, periodic checkpoints, and resuming from one.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Stream traces under this directory: `device_NNNNN.jsonl` per
    /// device plus a fleet-level `fleet.jsonl`.
    pub trace_dir: Option<PathBuf>,
    /// Write resume checkpoints into this directory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Batches between checkpoints; `0` means
    /// [`DEFAULT_CHECKPOINT_EVERY`].
    pub checkpoint_every: usize,
    /// Resume from the checkpoint in this directory (no checkpoint file
    /// yet simply starts from device 0).
    pub resume_dir: Option<PathBuf>,
}

/// Runs the fleet and aggregates the report.
///
/// # Errors
///
/// Returns [`FleetError::Spec`] for an invalid spec and
/// [`FleetError::Device`] when a device fails under the default
/// `fail_fast` policy.
pub fn run_fleet(spec: &FleetSpec, jobs: Jobs) -> Result<FleetReport, FleetError> {
    run_fleet_opts(spec, jobs, &RunOptions::default())
}

/// [`run_fleet`], optionally streaming traces under `trace_dir`:
/// `device_NNNNN.jsonl` per device (full simulator event stream) plus
/// `fleet.jsonl` of fleet-level [`FleetEvent`]s.
///
/// # Errors
///
/// As [`run_fleet`], plus [`FleetError::Io`] when the trace directory
/// or a trace file cannot be written.
pub fn run_fleet_with(
    spec: &FleetSpec,
    jobs: Jobs,
    trace_dir: Option<&Path>,
) -> Result<FleetReport, FleetError> {
    run_fleet_opts(
        spec,
        jobs,
        &RunOptions {
            trace_dir: trace_dir.map(Path::to_path_buf),
            ..RunOptions::default()
        },
    )
}

/// The full-featured entry point: traces, checkpoints, and resume.
///
/// The report is a pure function of the spec: running with any `jobs`
/// count, with or without checkpointing, or resumed from any checkpoint
/// prefix produces byte-identical report JSON.
///
/// # Errors
///
/// * [`FleetError::Spec`] — the spec fails validation.
/// * [`FleetError::Device`] — a device failed and the spec says
///   `fail_fast` (the failing device's last error is embedded).
/// * [`FleetError::Checkpoint`] — the resume checkpoint exists but
///   fails verification (foreign spec, corruption, bad version).
/// * [`FleetError::Io`] — trace or checkpoint files cannot be written.
pub fn run_fleet_opts(
    spec: &FleetSpec,
    jobs: Jobs,
    opts: &RunOptions,
) -> Result<FleetReport, FleetError> {
    spec.validate()?;
    if let Some(dir) = &opts.trace_dir {
        fs::create_dir_all(dir).map_err(|e| {
            FleetError::Io(format!("cannot create trace dir {}: {e}", dir.display()))
        })?;
    }

    // Resume: adopt the verified outcome prefix and re-run only the
    // rest. Each device is a pure function of the spec, so the join is
    // seamless.
    let resumed: Vec<DeviceOutcome> = match &opts.resume_dir {
        Some(dir) => checkpoint::load_checkpoint(dir, spec)?.unwrap_or_default(),
        None => Vec::new(),
    };
    let start = resumed.len();

    let every = if opts.checkpoint_every == 0 {
        DEFAULT_CHECKPOINT_EVERY
    } else {
        opts.checkpoint_every
    };
    let mut batches = 0usize;
    let mut checkpoints: Vec<u64> = Vec::new();
    let trace_dir = opts.trace_dir.as_deref();

    // Map devices in parallel batches; fold arrives in ascending device
    // order, so the outcome vector (and everything derived from it) is
    // independent of the worker count.
    let outcomes: Vec<DeviceOutcome> = par_try_fold_range_batched(
        jobs,
        start..spec.devices,
        BATCH,
        |i| supervised_run(spec, i, trace_dir),
        resumed,
        |mut acc: Vec<DeviceOutcome>, _i, result| {
            let outcome = result?;
            if spec.on_error == OnError::FailFast {
                if let DeviceOutcome::Failed(f) = &outcome {
                    return Err(FleetError::Device {
                        device: f.device,
                        attempts: f.attempts,
                        error: f.error.clone(),
                    });
                }
            }
            acc.push(outcome);
            Ok(acc)
        },
        |acc, _next| {
            batches += 1;
            if let Some(dir) = &opts.checkpoint_dir {
                if batches.is_multiple_of(every) && acc.len() < spec.devices {
                    checkpoint::write_checkpoint(dir, spec, acc)?;
                    checkpoints.push(acc.len() as u64);
                }
            }
            Ok(())
        },
    )?;

    // A final checkpoint covering the whole fleet, so resuming a
    // completed run replays nothing.
    if let Some(dir) = &opts.checkpoint_dir {
        checkpoint::write_checkpoint(dir, spec, &outcomes)?;
        checkpoints.push(outcomes.len() as u64);
    }
    if let Some(dir) = trace_dir {
        write_fleet_log(spec, &outcomes, &checkpoints, dir)?;
    }
    Ok(FleetReport::build(
        &spec.name,
        spec.base_seed,
        spec.policies.len(),
        &spec.on_error.to_string(),
        u64::from(spec.on_error.max_attempts()),
        outcomes,
    ))
}

/// How one device attempt ended, seen from the supervisor.
enum AttemptError {
    /// The simulation itself failed (typed error or caught panic);
    /// retryable and containable.
    Contained(String),
    /// Infrastructure failed (trace I/O); never retried, always fatal.
    Fatal(FleetError),
}

/// Supervises one device: run it under [`catch_unwind`], retrying on
/// deterministically forked seeds up to the policy's attempt budget,
/// and condense the result into a [`DeviceOutcome`]. Only
/// infrastructure (I/O) failures escape as errors.
fn supervised_run(
    spec: &FleetSpec,
    device: usize,
    trace_dir: Option<&Path>,
) -> Result<DeviceOutcome, FleetError> {
    let a = spec.assignment(device);
    let max_attempts = spec.on_error.max_attempts();
    let mut last_error = String::new();
    let mut last_seed = a.seed;
    for attempt in 1..=max_attempts {
        // Attempt 1 runs the regular device seed; retries fork fresh,
        // collision-free streams that depend only on (device, attempt).
        let seed = spec.retry_seed(device, attempt - 1);
        last_seed = seed;
        let attempted = catch_unwind(AssertUnwindSafe(|| {
            run_attempt(&a, seed, u64::from(attempt), trace_dir)
        }));
        match attempted {
            Ok(Ok(record)) => return Ok(DeviceOutcome::Completed(record)),
            Ok(Err(AttemptError::Fatal(e))) => return Err(e),
            Ok(Err(AttemptError::Contained(msg))) => last_error = msg,
            Err(payload) => last_error = format!("panic: {}", panic_message(&*payload)),
        }
        // A failed attempt may leave a partial trace temp file behind;
        // scrub it so retries (and final failure) stay crash-safe.
        if let Some(dir) = trace_dir {
            fs::remove_file(trace_tmp_path(dir, device)).ok();
        }
    }
    Ok(DeviceOutcome::Failed(DeviceFailure {
        device: device as u64,
        seed: last_seed,
        workload: a.workload.to_string(),
        policy: a.policy_index as u64,
        governor: a.policy.governor.label().to_string(),
        dpm: a.policy.dpm.label().to_string(),
        faults: a.faults.to_string(),
        attempts: u64::from(max_attempts),
        error: last_error,
    }))
}

/// Best-effort panic payload rendering: `&str` and `String` payloads
/// (what `panic!` produces) come through verbatim.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

/// The final per-device trace path and the temp path it is staged at.
fn trace_path(dir: &Path, device: usize) -> PathBuf {
    dir.join(format!("device_{device:05}.jsonl"))
}

fn trace_tmp_path(dir: &Path, device: usize) -> PathBuf {
    dir.join(format!("device_{device:05}.jsonl.tmp"))
}

/// Runs one attempt of one device: resolve its config (fault spec
/// derivation is seed-dependent, so this happens per attempt inside the
/// supervisor's `catch_unwind`), run its workload, and condense the
/// [`powermgr::SimReport`] plus the detection probe into a
/// [`DeviceRecord`].
fn run_attempt(
    a: &DeviceAssignment<'_>,
    seed: u64,
    attempt: u64,
    trace_dir: Option<&Path>,
) -> Result<DeviceRecord, AttemptError> {
    let config = device_config(a, seed);
    let sim_err = |e: PmError| AttemptError::Contained(e.to_string());

    let report = match trace_dir {
        None => a.workload.run(&config, seed).map_err(sim_err)?,
        Some(dir) => {
            // Stage the trace at a temp path and rename only on
            // success: an interrupted or failed attempt never leaves a
            // truncated `device_NNNNN.jsonl` for `tracecat replay
            // --check` to trip over.
            let path = trace_path(dir, a.device);
            let tmp = trace_tmp_path(dir, a.device);
            let io_err = |what: &str, p: &Path, e: std::io::Error| {
                AttemptError::Fatal(FleetError::Io(format!("{what} {}: {e}", p.display())))
            };
            let file = fs::File::create(&tmp).map_err(|e| io_err("cannot create", &tmp, e))?;
            let mut sink = JsonlSink::new(BufWriter::new(file));
            let report = a
                .workload
                .run_traced(&config, seed, &mut sink)
                .map_err(sim_err)?;
            sink.finish().map_err(|e| {
                AttemptError::Fatal(FleetError::Io(format!(
                    "trace write to {} failed: {e}",
                    tmp.display()
                )))
            })?;
            fs::rename(&tmp, &path).map_err(|e| io_err("cannot rename", &tmp, e))?;
            report
        }
    };

    let offered = report.frames_completed
        + report.robustness.arrivals_dropped
        + report.robustness.frames_dropped;
    let dropped = report.robustness.arrivals_dropped + report.robustness.frames_dropped;
    let drop_rate = if offered == 0 {
        0.0
    } else {
        dropped as f64 / offered as f64
    };

    Ok(DeviceRecord {
        device: a.device as u64,
        seed,
        workload: a.workload.to_string(),
        policy: a.policy_index as u64,
        governor: config.governor.label().to_string(),
        dpm: config.dpm.label().to_string(),
        faults: a.faults.to_string(),
        attempts: attempt,
        energy_kj: report.total_energy_kj(),
        mean_delay_s: report.mean_frame_delay_s(),
        drop_rate,
        detection_latency_frames: detection_latency_frames(&config.governor, seed)
            .map_err(AttemptError::Contained)?,
        frames_completed: report.frames_completed,
        duration_secs: report.duration_secs,
        deadline_miss_ratio: report.robustness.deadline_miss_ratio(),
    })
}

/// Expands a device assignment into the full [`SystemConfig`],
/// mirroring the single-device CLI: fault presets bring the
/// graceful-degradation supervisor and a bounded frame buffer. The
/// fault spec derives from the attempt seed, so a retried flaky device
/// re-rolls its failure.
fn device_config(a: &DeviceAssignment<'_>, seed: u64) -> SystemConfig {
    let faults = a.faults.spec(seed);
    let (supervisor, buffer_capacity) = if faults.is_some() {
        (Some(SupervisorConfig::default()), Some(FAULT_BUFFER_FRAMES))
    } else {
        (None, None)
    };
    SystemConfig {
        governor: a.policy.governor.clone(),
        dpm: a.policy.dpm.clone(),
        faults,
        supervisor,
        buffer_capacity,
        ..SystemConfig::default()
    }
}

/// Measures how many post-step samples the device's detector needs to
/// register a 10 → 60 frames/s arrival-rate step (the paper's fig. 10
/// workload transition), on a probe stream forked from the attempt
/// seed. `Ok(None)` for governors with no online detector (ideal knows
/// the future, max never looks). Errors are contained like any other
/// per-device failure.
fn detection_latency_frames(governor: &GovernorKind, seed: u64) -> Result<Option<f64>, String> {
    let mut rng = SimRng::seed_from(seed).fork("fleet/detect-probe");
    let probe =
        |rate: f64| Exponential::new(rate).map_err(|e| format!("detection probe rate {rate}: {e}"));
    let slow = probe(PROBE_SLOW_RATE)?;
    let fast = probe(PROBE_FAST_RATE)?;

    match governor {
        GovernorKind::Ideal | GovernorKind::MaxPerformance => Ok(None),
        GovernorKind::ChangePoint(cfg) => {
            let mut det = ChangePointDetector::new(PROBE_SLOW_RATE, cfg.clone())
                .map_err(|e| PmError::from(e).to_string())?;
            for _ in 0..PROBE_PREFILL {
                let _ = det.observe(slow.sample(&mut rng));
            }
            for n in 1..=PROBE_CAP {
                if det.observe(fast.sample(&mut rng)).is_some() {
                    return Ok(Some(n as f64));
                }
            }
            Ok(Some(PROBE_CAP as f64))
        }
        GovernorKind::ExpAverage { gain } => {
            let mut est = EmaEstimator::new(PROBE_SLOW_RATE, *gain)
                .map_err(|e| PmError::from(e).to_string())?;
            for _ in 0..PROBE_PREFILL {
                let _ = est.observe(slow.sample(&mut rng));
            }
            // The EMA re-estimates continuously; "detected" is the first
            // sample where its estimate is within 10% of the new rate.
            for n in 1..=PROBE_CAP {
                let _ = est.observe(fast.sample(&mut rng));
                if est.current_rate() >= 0.9 * PROBE_FAST_RATE {
                    return Ok(Some(n as f64));
                }
            }
            Ok(Some(PROBE_CAP as f64))
        }
    }
}

/// Writes `fleet.jsonl` atomically (temp file + rename): the fleet-
/// level event stream — start, one start/done-or-failed pair per device
/// in device order, the checkpoint markers, done.
fn write_fleet_log(
    spec: &FleetSpec,
    outcomes: &[DeviceOutcome],
    checkpoints: &[u64],
    dir: &Path,
) -> Result<(), FleetError> {
    let mut out = String::new();
    let mut push = |event: FleetEvent| {
        out.push_str(&event.to_json().dump());
        out.push('\n');
    };
    push(FleetEvent::FleetStart {
        name: spec.name.clone(),
        devices: spec.devices as u64,
        base_seed: spec.base_seed,
    });
    for o in outcomes {
        match o {
            DeviceOutcome::Completed(r) => {
                push(FleetEvent::DeviceStart {
                    device: r.device,
                    seed: r.seed,
                    workload: r.workload.clone(),
                    governor: r.governor.clone(),
                    dpm: r.dpm.clone(),
                    faults: r.faults.clone(),
                });
                push(FleetEvent::DeviceDone {
                    device: r.device,
                    frames_completed: r.frames_completed,
                    energy_j: r.energy_kj * 1000.0,
                    mean_delay_s: r.mean_delay_s,
                });
            }
            DeviceOutcome::Failed(f) => {
                push(FleetEvent::DeviceStart {
                    device: f.device,
                    seed: f.seed,
                    workload: f.workload.clone(),
                    governor: f.governor.clone(),
                    dpm: f.dpm.clone(),
                    faults: f.faults.clone(),
                });
                push(FleetEvent::DeviceFailed {
                    device: f.device,
                    seed: f.seed,
                    attempts: f.attempts,
                    error: f.error.clone(),
                });
            }
        }
    }
    for &done in checkpoints {
        push(FleetEvent::FleetCheckpoint { done });
    }
    push(FleetEvent::FleetDone {
        devices: outcomes
            .iter()
            .filter(|o| matches!(o, DeviceOutcome::Completed(_)))
            .count() as u64,
    });
    let path = dir.join("fleet.jsonl");
    let tmp = dir.join("fleet.jsonl.tmp");
    fs::write(&tmp, out)
        .map_err(|e| FleetError::Io(format!("cannot write {}: {e}", tmp.display())))?;
    fs::rename(&tmp, &path)
        .map_err(|e| FleetError::Io(format!("cannot rename {} into place: {e}", tmp.display())))
}
