//! The batched fleet engine: run every device of a [`FleetSpec`] over
//! the deterministic parallel engine and fold the results — in device
//! order, regardless of worker count — into a [`FleetReport`].
//!
//! Determinism invariants (checked by `tests/determinism.rs`,
//! `tests/partial.rs`, and the CI `fleet-determinism` job):
//!
//! * Every device's RNG is a labelled fork of the base seed
//!   ([`FleetSpec::device_seed`]), so no device's stream depends on any
//!   other device or on scheduling. Retry attempts draw from their own
//!   indexed forks ([`FleetSpec::retry_seed`]), so even a retried
//!   device is a pure function of its index.
//! * Devices are mapped with [`par_try_fold_range_batched`], which
//!   folds results in strictly ascending index order on the calling
//!   thread — the report is byte-identical at any `jobs` count, while
//!   memory stays bounded by one batch of `SimReport`s rather than the
//!   fleet.
//! * Failures are *contained*: each device attempt runs under
//!   [`catch_unwind`], and both panics and typed simulation errors
//!   become a [`DeviceOutcome::Failed`] handled per the spec's
//!   [`OnError`] policy. Only infrastructure errors (trace or
//!   checkpoint I/O) abort the run.
//! * Change-point calibration is resolved **once per policy** before
//!   the loop starts ([`crate::soa::CohortResources::prepare`]) and the
//!   shared table handed to every device construction, so the
//!   per-device hot path performs zero threshold-cache traffic. The
//!   calibration itself (bit-identical at any thread count) still goes
//!   through the process-wide [`detect::cache`], so distinct runs in
//!   one process share tables too.
//! * Within a batch, devices are *scheduled* in cohort order
//!   ([`crate::soa::cohort_key`] via `par_try_fold_range_batched_by`):
//!   identical-config devices step back-to-back on one worker while
//!   results still land (and fold) in device order.

use std::cell::RefCell;
use std::fs;
use std::io::{BufWriter, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use powermgr::config::{SupervisorConfig, SystemConfig};
use powermgr::{PmError, SharedResources};
use simcore::json::ToJson;
use simcore::par::{par_try_fold_range_batched_by, Jobs};
use trace::{FleetEvent, JsonlSink, TraceSink};

use crate::accum::FleetAccumulator;
use crate::checkpoint;
use crate::report::{DeviceAssertions, DeviceFailure, DeviceOutcome, DeviceRecord, FleetReport};
use crate::soa::{self, CohortResources};
use crate::spec::{DeviceAssignment, FleetSpec, OnError};
use crate::FleetError;

/// Devices simulated per parallel wave. Large enough to keep every
/// worker busy, small enough that at most one batch of reports is ever
/// resident before being folded into records.
pub const BATCH: usize = 256;

/// Default checkpoint cadence: a snapshot every this many batches.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 4;

/// Buffer capacity paired with fault presets, matching the CLI's
/// single-device chaos runs (a bounded buffer is what makes drop
/// accounting meaningful under injected faults).
const FAULT_BUFFER_FRAMES: usize = 64;

/// Optional engine features beyond the plain spec + jobs run: trace
/// streaming, periodic checkpoints, and resuming from one.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Stream traces under this directory: `device_NNNNN.jsonl` per
    /// device plus a fleet-level `fleet.jsonl`.
    pub trace_dir: Option<PathBuf>,
    /// Write resume checkpoints into this directory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Batches between checkpoints; `0` means
    /// [`DEFAULT_CHECKPOINT_EVERY`].
    pub checkpoint_every: usize,
    /// Resume from the checkpoint in this directory (no checkpoint file
    /// yet simply starts from device 0).
    pub resume_dir: Option<PathBuf>,
    /// Devices per parallel wave; `0` means [`BATCH`].
    pub batch: usize,
}

/// Runs the fleet and aggregates the report.
///
/// # Errors
///
/// Returns [`FleetError::Spec`] for an invalid spec and
/// [`FleetError::Device`] when a device fails under the default
/// `fail_fast` policy.
pub fn run_fleet(spec: &FleetSpec, jobs: Jobs) -> Result<FleetReport, FleetError> {
    run_fleet_opts(spec, jobs, &RunOptions::default())
}

/// [`run_fleet`], optionally streaming traces under `trace_dir`:
/// `device_NNNNN.jsonl` per device (full simulator event stream) plus
/// `fleet.jsonl` of fleet-level [`FleetEvent`]s.
///
/// # Errors
///
/// As [`run_fleet`], plus [`FleetError::Io`] when the trace directory
/// or a trace file cannot be written.
pub fn run_fleet_with(
    spec: &FleetSpec,
    jobs: Jobs,
    trace_dir: Option<&Path>,
) -> Result<FleetReport, FleetError> {
    run_fleet_opts(
        spec,
        jobs,
        &RunOptions {
            trace_dir: trace_dir.map(Path::to_path_buf),
            ..RunOptions::default()
        },
    )
}

/// The full-featured entry point: traces, checkpoints, and resume.
///
/// The report is a pure function of the spec: running with any `jobs`
/// count, with or without checkpointing, or resumed from any checkpoint
/// prefix produces byte-identical report JSON.
///
/// # Errors
///
/// * [`FleetError::Spec`] — the spec fails validation.
/// * [`FleetError::Device`] — a device failed and the spec says
///   `fail_fast` (the failing device's last error is embedded).
/// * [`FleetError::Checkpoint`] — the resume checkpoint exists but
///   fails verification (foreign spec, corruption, bad version).
/// * [`FleetError::Io`] — trace or checkpoint files cannot be written.
pub fn run_fleet_opts(
    spec: &FleetSpec,
    jobs: Jobs,
    opts: &RunOptions,
) -> Result<FleetReport, FleetError> {
    spec.validate()?;
    if let Some(dir) = &opts.trace_dir {
        fs::create_dir_all(dir).map_err(|e| {
            FleetError::Io(format!("cannot create trace dir {}: {e}", dir.display()))
        })?;
    }

    // Resume: restore the accumulator state and re-run only the
    // remaining devices. Each device is a pure function of the spec and
    // the accumulator folds in device order, so the join is seamless.
    let max_attempts = u64::from(spec.on_error.max_attempts());
    let resumed: FleetAccumulator = match &opts.resume_dir {
        Some(dir) => checkpoint::load_checkpoint(dir, spec)?
            .unwrap_or_else(|| FleetAccumulator::new(spec.policies.len(), max_attempts)),
        None => FleetAccumulator::new(spec.policies.len(), max_attempts),
    };
    let start = usize::try_from(resumed.devices()).expect("device count fits in usize");

    // Resolve each policy's shared threshold table once, before any
    // device runs: the per-device hot path then performs zero cache
    // traffic, and cohorts of identical-config devices share one table.
    let cohorts = CohortResources::prepare(spec);

    let every = if opts.checkpoint_every == 0 {
        DEFAULT_CHECKPOINT_EVERY
    } else {
        opts.checkpoint_every
    };
    let batch = if opts.batch == 0 { BATCH } else { opts.batch };
    let mut batches = 0usize;
    let trace_dir = opts.trace_dir.as_deref();

    // The fleet log streams during the fold. Both the fold and the
    // after-batch closure run on the calling thread, so a `RefCell`
    // hands the single `&mut` between them without locking. A resumed
    // run's log covers only the devices it actually ran.
    let fleet_log: RefCell<Option<FleetLog>> = RefCell::new(match trace_dir {
        Some(dir) => Some(FleetLog::create(dir, spec)?),
        None => None,
    });

    // Map devices in parallel batches; the fold arrives in ascending
    // device order, so the accumulator (and everything derived from it)
    // is independent of the worker count — and each outcome is dropped
    // as soon as it is folded, so memory no longer grows with the fleet.
    // The schedule key groups each batch into cohorts: identical-config
    // devices step consecutively on one worker (their shared tables
    // stay hot) without perturbing result slots or fold order.
    let run = || -> Result<FleetAccumulator, FleetError> {
        let acc = par_try_fold_range_batched_by(
            jobs,
            start..spec.devices,
            batch,
            |i| soa::cohort_key(spec, i),
            |i| supervised_run(spec, i, trace_dir, &cohorts),
            resumed,
            |mut acc: FleetAccumulator, _i, result| {
                let outcome = result?;
                if spec.on_error == OnError::FailFast {
                    if let DeviceOutcome::Failed(f) = &outcome {
                        return Err(FleetError::Device {
                            device: f.device,
                            attempts: f.attempts,
                            error: f.error.clone(),
                        });
                    }
                }
                if let Some(log) = fleet_log.borrow_mut().as_mut() {
                    log.outcome(&outcome)?;
                }
                acc.push(outcome);
                Ok(acc)
            },
            |acc, _next| {
                batches += 1;
                if let Some(dir) = &opts.checkpoint_dir {
                    let done = usize::try_from(acc.devices()).expect("fits in usize");
                    if batches.is_multiple_of(every) && done < spec.devices {
                        checkpoint::write_checkpoint(dir, spec, acc)?;
                        if let Some(log) = fleet_log.borrow_mut().as_mut() {
                            log.checkpoint(acc.devices())?;
                        }
                    }
                }
                Ok(())
            },
        )?;

        // A final checkpoint covering the whole fleet, so resuming a
        // completed run replays nothing.
        if let Some(dir) = &opts.checkpoint_dir {
            checkpoint::write_checkpoint(dir, spec, &acc)?;
            if let Some(log) = fleet_log.borrow_mut().as_mut() {
                log.checkpoint(acc.devices())?;
            }
        }
        Ok(acc)
    };
    let result = run();

    match result {
        Ok(acc) => {
            if let Some(log) = fleet_log.into_inner() {
                log.finish(acc.completed)?;
            }
            Ok(acc.finish(&spec.name, spec.base_seed, &spec.on_error.to_string()))
        }
        Err(e) => {
            // Scrub the half-written log so no truncated
            // `fleet.jsonl.tmp` outlives a failed run.
            if let Some(log) = fleet_log.into_inner() {
                log.abandon();
            }
            Err(e)
        }
    }
}

/// Runs a single device of the fleet exactly as the engine would —
/// supervised, deterministically retried per the spec's failure policy
/// — and returns its outcome. This is the engine's unit of work,
/// exposed so tools (and tests) can stream outcomes through their own
/// [`FleetAccumulator`].
///
/// This is the *per-device reference path*: no cohort pre-resolution,
/// every construction goes through the threshold cache itself. The
/// engine's cohort path is held byte-equal to it by
/// `tests/soa_differential.rs`.
///
/// # Errors
///
/// [`FleetError::Spec`] for an invalid spec or out-of-range device
/// index; device failures are *contained* in the returned
/// [`DeviceOutcome::Failed`], never surfaced as `Err`.
pub fn run_device(spec: &FleetSpec, device: usize) -> Result<DeviceOutcome, FleetError> {
    spec.validate()?;
    if device >= spec.devices {
        return Err(FleetError::Spec(format!(
            "device {device} is out of range for a {}-device fleet",
            spec.devices
        )));
    }
    supervised_run(spec, device, None, &CohortResources::default())
}

/// How one device attempt ended, seen from the supervisor.
enum AttemptError {
    /// The simulation itself failed (typed error or caught panic);
    /// retryable and containable.
    Contained(String),
    /// Infrastructure failed (trace I/O); never retried, always fatal.
    Fatal(FleetError),
}

/// Supervises one device: run it under [`catch_unwind`], retrying on
/// deterministically forked seeds up to the policy's attempt budget,
/// and condense the result into a [`DeviceOutcome`]. Only
/// infrastructure (I/O) failures escape as errors.
fn supervised_run(
    spec: &FleetSpec,
    device: usize,
    trace_dir: Option<&Path>,
    cohorts: &CohortResources,
) -> Result<DeviceOutcome, FleetError> {
    let a = spec.assignment(device);
    let shared = cohorts.for_policy(a.policy_index);
    let max_attempts = spec.on_error.max_attempts();
    let mut last_error = String::new();
    let mut last_seed = a.seed;
    for attempt in 1..=max_attempts {
        // Attempt 1 runs the regular device seed; retries fork fresh,
        // collision-free streams that depend only on (device, attempt).
        let seed = spec.retry_seed(device, attempt - 1);
        last_seed = seed;
        let attempted = catch_unwind(AssertUnwindSafe(|| {
            run_attempt(
                &a,
                seed,
                u64::from(attempt),
                trace_dir,
                shared,
                spec.assertions.as_ref(),
            )
        }));
        match attempted {
            Ok(Ok(record)) => return Ok(DeviceOutcome::Completed(record)),
            Ok(Err(AttemptError::Fatal(e))) => return Err(e),
            Ok(Err(AttemptError::Contained(msg))) => last_error = msg,
            Err(payload) => last_error = format!("panic: {}", panic_message(&*payload)),
        }
        // A failed attempt may leave a partial trace temp file behind;
        // scrub it so retries (and final failure) stay crash-safe.
        if let Some(dir) = trace_dir {
            fs::remove_file(trace_tmp_path(dir, device)).ok();
        }
    }
    Ok(DeviceOutcome::Failed(DeviceFailure {
        device: device as u64,
        seed: last_seed,
        workload: a.workload.to_string(),
        policy: a.policy_index as u64,
        governor: a.policy.governor.label().to_string(),
        dpm: a.policy.dpm.label().to_string(),
        faults: a.faults.to_string(),
        attempts: u64::from(max_attempts),
        error: last_error,
    }))
}

/// Best-effort panic payload rendering: `&str` and `String` payloads
/// (what `panic!` produces) come through verbatim.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

/// The final per-device trace path and the temp path it is staged at.
fn trace_path(dir: &Path, device: usize) -> PathBuf {
    dir.join(format!("device_{device:05}.jsonl"))
}

fn trace_tmp_path(dir: &Path, device: usize) -> PathBuf {
    dir.join(format!("device_{device:05}.jsonl.tmp"))
}

/// Runs one attempt of one device: resolve its config (fault spec
/// derivation is seed-dependent, so this happens per attempt inside the
/// supervisor's `catch_unwind`), run its workload from the cohort's
/// pre-resolved shared resources, and condense the
/// [`powermgr::SimReport`] plus the detection probe into a
/// [`DeviceRecord`]. Empty `shared` resources (the reference path)
/// resolve through the threshold cache per construction instead —
/// byte-identical either way.
fn run_attempt(
    a: &DeviceAssignment<'_>,
    seed: u64,
    attempt: u64,
    trace_dir: Option<&Path>,
    shared: &SharedResources,
    assertions: Option<&trace::AssertionConfig>,
) -> Result<DeviceRecord, AttemptError> {
    let config = device_config(a, seed);
    let sim_err = |e: PmError| AttemptError::Contained(e.to_string());

    // A fresh monitor per attempt: verdicts never bleed across retries.
    // The spec validator vetted the config, so construction failing here
    // is an engine bug, not a device fault — fatal, never retried.
    let mut monitor = match assertions {
        None => None,
        Some(cfg) => Some(
            trace::AssertionMonitor::new(cfg)
                .map_err(|e| AttemptError::Fatal(FleetError::Spec(e)))?,
        ),
    };

    let report = match trace_dir {
        None => a
            .workload
            .run_observed(&config, seed, shared, None, monitor.as_mut())
            .map_err(sim_err)?,
        Some(dir) => {
            // Stage the trace at a temp path and rename only on
            // success: an interrupted or failed attempt never leaves a
            // truncated `device_NNNNN.jsonl` for `tracecat replay
            // --check` to trip over.
            let path = trace_path(dir, a.device);
            let tmp = trace_tmp_path(dir, a.device);
            let io_err = |what: &str, p: &Path, e: std::io::Error| {
                AttemptError::Fatal(FleetError::Io(format!("{what} {}: {e}", p.display())))
            };
            let file = fs::File::create(&tmp).map_err(|e| io_err("cannot create", &tmp, e))?;
            let mut sink = JsonlSink::new(BufWriter::new(file));
            let report = a
                .workload
                .run_observed(&config, seed, shared, Some(&mut sink), monitor.as_mut())
                .map_err(sim_err)?;
            sink.finish().map_err(|e| {
                AttemptError::Fatal(FleetError::Io(format!(
                    "trace write to {} failed: {e}",
                    tmp.display()
                )))
            })?;
            // Sync before promoting: a rename can hit disk before the
            // file contents, so an unsynced promote could survive a
            // crash as a valid-looking truncated trace.
            let file = sink
                .into_inner()
                .into_inner()
                .map_err(|e| io_err("cannot flush", &tmp, e.into_error()))?;
            file.sync_all()
                .map_err(|e| io_err("cannot sync", &tmp, e))?;
            trace::durable::promote(&tmp, &path).map_err(|e| io_err("cannot rename", &tmp, e))?;
            report
        }
    };

    let offered = report.frames_completed
        + report.robustness.arrivals_dropped
        + report.robustness.frames_dropped;
    let dropped = report.robustness.arrivals_dropped + report.robustness.frames_dropped;
    let drop_rate = if offered == 0 {
        0.0
    } else {
        dropped as f64 / offered as f64
    };

    Ok(DeviceRecord {
        device: a.device as u64,
        seed,
        workload: a.workload.to_string(),
        policy: a.policy_index as u64,
        governor: config.governor.label().to_string(),
        dpm: config.dpm.label().to_string(),
        faults: a.faults.to_string(),
        attempts: attempt,
        energy_kj: report.total_energy_kj(),
        mean_delay_s: report.mean_frame_delay_s(),
        drop_rate,
        detection_latency_frames: soa::probe_detection_latency(&config.governor, seed, shared)
            .map_err(AttemptError::Contained)?,
        frames_completed: report.frames_completed,
        duration_secs: report.duration_secs,
        deadline_miss_ratio: report.robustness.deadline_miss_ratio(),
        assertions: report.assertions.map(|r| DeviceAssertions::from_report(&r)),
    })
}

/// Expands a device assignment into the full [`SystemConfig`],
/// mirroring the single-device CLI: fault presets bring the
/// graceful-degradation supervisor and a bounded frame buffer. The
/// fault spec derives from the attempt seed, so a retried flaky device
/// re-rolls its failure.
fn device_config(a: &DeviceAssignment<'_>, seed: u64) -> SystemConfig {
    let faults = a.faults.spec(seed);
    let (supervisor, buffer_capacity) = if faults.is_some() {
        (Some(SupervisorConfig::default()), Some(FAULT_BUFFER_FRAMES))
    } else {
        (None, None)
    };
    SystemConfig {
        governor: a.policy.governor.clone(),
        dpm: a.policy.dpm.clone(),
        faults,
        supervisor,
        buffer_capacity,
        ..SystemConfig::default()
    }
}

/// Streams `fleet.jsonl` as the fold progresses — start, one
/// start/done-or-failed pair per device in device order, checkpoint
/// markers at their true positions, done — staged at a temp path and
/// promoted durably (fsync + rename + directory fsync) on success, so
/// a crash or failed run never leaves a valid-looking truncated log.
struct FleetLog {
    out: BufWriter<fs::File>,
    tmp: PathBuf,
    path: PathBuf,
}

impl FleetLog {
    fn create(dir: &Path, spec: &FleetSpec) -> Result<FleetLog, FleetError> {
        let path = dir.join("fleet.jsonl");
        let tmp = dir.join("fleet.jsonl.tmp");
        let file = fs::File::create(&tmp)
            .map_err(|e| FleetError::Io(format!("cannot create {}: {e}", tmp.display())))?;
        let mut log = FleetLog {
            out: BufWriter::new(file),
            tmp,
            path,
        };
        log.push(&FleetEvent::FleetStart {
            name: spec.name.clone(),
            devices: spec.devices as u64,
            base_seed: spec.base_seed,
        })?;
        Ok(log)
    }

    fn push(&mut self, event: &FleetEvent) -> Result<(), FleetError> {
        let mut line = event.to_json().dump();
        line.push('\n');
        self.out
            .write_all(line.as_bytes())
            .map_err(|e| FleetError::Io(format!("cannot write {}: {e}", self.tmp.display())))
    }

    fn outcome(&mut self, outcome: &DeviceOutcome) -> Result<(), FleetError> {
        match outcome {
            DeviceOutcome::Completed(r) => {
                self.push(&FleetEvent::DeviceStart {
                    device: r.device,
                    seed: r.seed,
                    workload: r.workload.clone(),
                    governor: r.governor.clone(),
                    dpm: r.dpm.clone(),
                    faults: r.faults.clone(),
                })?;
                self.push(&FleetEvent::DeviceDone {
                    device: r.device,
                    frames_completed: r.frames_completed,
                    energy_j: r.energy_kj * 1000.0,
                    mean_delay_s: r.mean_delay_s,
                })
            }
            DeviceOutcome::Failed(f) => {
                self.push(&FleetEvent::DeviceStart {
                    device: f.device,
                    seed: f.seed,
                    workload: f.workload.clone(),
                    governor: f.governor.clone(),
                    dpm: f.dpm.clone(),
                    faults: f.faults.clone(),
                })?;
                self.push(&FleetEvent::DeviceFailed {
                    device: f.device,
                    seed: f.seed,
                    attempts: f.attempts,
                    error: f.error.clone(),
                })
            }
        }
    }

    fn checkpoint(&mut self, done: u64) -> Result<(), FleetError> {
        self.push(&FleetEvent::FleetCheckpoint { done })
    }

    fn finish(mut self, completed: u64) -> Result<(), FleetError> {
        self.push(&FleetEvent::FleetDone { devices: completed })?;
        let FleetLog { out, tmp, path } = self;
        let io_err = |what: &str, p: &Path, e: String| {
            FleetError::Io(format!("{what} {}: {e}", p.display()))
        };
        let file = out
            .into_inner()
            .map_err(|e| io_err("cannot flush", &tmp, e.to_string()))?;
        file.sync_all()
            .map_err(|e| io_err("cannot sync", &tmp, e.to_string()))?;
        trace::durable::promote(&tmp, &path)
            .map_err(|e| io_err("cannot rename", &tmp, e.to_string()))
    }

    fn abandon(self) {
        let FleetLog { out, tmp, .. } = self;
        drop(out);
        let _ = fs::remove_file(&tmp);
    }
}
