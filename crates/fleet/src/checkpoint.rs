//! Checkpoint/resume for long fleet runs.
//!
//! A checkpoint is the ordered prefix of device outcomes written so
//! far, snapshotted atomically (temp file + rename) every few batches
//! so a killed process loses at most one checkpoint interval of work.
//! Resuming skips the recorded prefix and re-runs only the remaining
//! devices; because every device's outcome is a pure function of the
//! spec, the resumed report is byte-identical to an uninterrupted run.
//!
//! On-disk format (`fleet.ckpt` in the checkpoint directory):
//!
//! ```text
//! {"kind":"fleet_checkpoint","version":1,"spec_digest":…,"done":N,"checksum":…}
//! {"kind":"ok","device":0,…}      ← N outcome lines, device order
//! {"kind":"fail","device":1,…}
//! ```
//!
//! Two properties make resume trustworthy:
//!
//! * **Integrity**: the header carries an FNV-1a checksum of the
//!   outcome payload and a digest of the spec; a truncated file, a
//!   flipped bit, or a checkpoint from a different spec is rejected
//!   with a typed error rather than silently corrupting the report.
//! * **Bit-exactness**: every `f64` is stored as its IEEE-754 bit
//!   pattern (the JSON layer's decimal round-trip would lose NaN and
//!   collapse payload bytes), so a resumed report's bytes match the
//!   uninterrupted run's exactly.

use std::fs;
use std::path::{Path, PathBuf};

use simcore::json::Json;

use crate::report::{DeviceFailure, DeviceOutcome, DeviceRecord};
use crate::spec::FleetSpec;
use crate::FleetError;

/// Format version; bumped on any incompatible layout change.
pub const CHECKPOINT_VERSION: u64 = 1;

/// File name of the checkpoint inside its directory.
pub const CHECKPOINT_FILE: &str = "fleet.ckpt";

/// The checkpoint path for a directory.
#[must_use]
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join(CHECKPOINT_FILE)
}

/// FNV-1a 64-bit over `bytes` — dependency-free and stable across
/// platforms, which is all an integrity stamp needs.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest of the spec a checkpoint belongs to. The `Debug` form covers
/// every field (seed, axes, failure policy), so any spec edit — even a
/// changed `on_error` — invalidates old checkpoints instead of quietly
/// mixing outcomes from two different fleets.
#[must_use]
pub fn spec_digest(spec: &FleetSpec) -> u64 {
    fnv1a64(format!("{spec:?}").as_bytes())
}

/// Writes an atomic checkpoint of the ordered outcome prefix.
///
/// The payload goes to `fleet.ckpt.tmp` first and is renamed into
/// place, so a crash mid-write leaves either the previous checkpoint or
/// none — never a torn file.
///
/// # Errors
///
/// Returns [`FleetError::Io`] when the directory or file cannot be
/// written.
pub fn write_checkpoint(
    dir: &Path,
    spec: &FleetSpec,
    outcomes: &[DeviceOutcome],
) -> Result<(), FleetError> {
    fs::create_dir_all(dir).map_err(|e| {
        FleetError::Io(format!(
            "cannot create checkpoint dir {}: {e}",
            dir.display()
        ))
    })?;
    let mut payload = String::new();
    for o in outcomes {
        payload.push_str(&encode_outcome(o).dump());
        payload.push('\n');
    }
    let header = Json::obj(vec![
        ("kind".into(), Json::Str("fleet_checkpoint".into())),
        ("version".into(), Json::Int(CHECKPOINT_VERSION as i64)),
        ("spec_digest".into(), Json::Int(spec_digest(spec) as i64)),
        ("done".into(), Json::Int(outcomes.len() as i64)),
        (
            "checksum".into(),
            Json::Int(fnv1a64(payload.as_bytes()) as i64),
        ),
    ]);
    let mut text = header.dump();
    text.push('\n');
    text.push_str(&payload);

    let path = checkpoint_path(dir);
    let tmp = path.with_extension("ckpt.tmp");
    fs::write(&tmp, text)
        .map_err(|e| FleetError::Io(format!("cannot write {}: {e}", tmp.display())))?;
    fs::rename(&tmp, &path)
        .map_err(|e| FleetError::Io(format!("cannot rename {} into place: {e}", tmp.display())))
}

/// Loads and verifies a checkpoint for `spec`.
///
/// `Ok(None)` when the directory holds no checkpoint yet (a resume of a
/// run that died before its first snapshot simply starts from device
/// 0).
///
/// # Errors
///
/// [`FleetError::Io`] when the file exists but cannot be read;
/// [`FleetError::Checkpoint`] when it fails verification: wrong
/// version, a digest from a different spec, a checksum mismatch
/// (truncation/corruption), more outcomes than the spec has devices, or
/// outcomes that are not the contiguous device prefix `0..N`.
pub fn load_checkpoint(
    dir: &Path,
    spec: &FleetSpec,
) -> Result<Option<Vec<DeviceOutcome>>, FleetError> {
    let path = checkpoint_path(dir);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(FleetError::Io(format!(
                "cannot read {}: {e}",
                path.display()
            )))
        }
    };
    let bad = |msg: String| FleetError::Checkpoint(format!("{}: {msg}", path.display()));

    let (header_line, payload) = text
        .split_once('\n')
        .ok_or_else(|| bad("missing header line".into()))?;
    let header = Json::parse(header_line).map_err(|e| bad(format!("malformed header: {e}")))?;
    if header.get("kind").and_then(Json::as_str) != Some("fleet_checkpoint") {
        return Err(bad("not a fleet checkpoint".into()));
    }
    let version = int_field(&header, "version").map_err(&bad)?;
    if version != CHECKPOINT_VERSION {
        return Err(bad(format!(
            "version {version} is not the supported {CHECKPOINT_VERSION}"
        )));
    }
    let digest = int_field(&header, "spec_digest").map_err(&bad)?;
    if digest != spec_digest(spec) {
        return Err(bad(
            "spec digest mismatch (checkpoint belongs to a different fleet spec)".into(),
        ));
    }
    let checksum = int_field(&header, "checksum").map_err(&bad)?;
    if checksum != fnv1a64(payload.as_bytes()) {
        return Err(bad(
            "payload checksum mismatch (truncated or corrupted checkpoint)".into(),
        ));
    }
    let done = int_field(&header, "done").map_err(&bad)? as usize;
    if done > spec.devices {
        return Err(bad(format!(
            "records {done} devices but the spec has only {}",
            spec.devices
        )));
    }

    let mut outcomes = Vec::with_capacity(done);
    for (lineno, line) in payload.lines().enumerate() {
        let json =
            Json::parse(line).map_err(|e| bad(format!("outcome line {}: {e}", lineno + 1)))?;
        let outcome =
            decode_outcome(&json).map_err(|e| bad(format!("outcome line {}: {e}", lineno + 1)))?;
        if outcome.device() != lineno as u64 {
            return Err(bad(format!(
                "outcome line {} is device {} (checkpoints must be the contiguous prefix)",
                lineno + 1,
                outcome.device()
            )));
        }
        outcomes.push(outcome);
    }
    if outcomes.len() != done {
        return Err(bad(format!(
            "header promises {done} outcomes, payload has {}",
            outcomes.len()
        )));
    }
    Ok(Some(outcomes))
}

/// Encodes an `f64` as its bit pattern (see module docs).
fn bits(v: f64) -> Json {
    Json::Int(v.to_bits() as i64)
}

fn encode_outcome(outcome: &DeviceOutcome) -> Json {
    match outcome {
        DeviceOutcome::Completed(r) => Json::obj(vec![
            ("kind".into(), Json::Str("ok".into())),
            ("device".into(), Json::Int(r.device as i64)),
            ("seed".into(), Json::Int(r.seed as i64)),
            ("workload".into(), Json::Str(r.workload.clone())),
            ("policy".into(), Json::Int(r.policy as i64)),
            ("governor".into(), Json::Str(r.governor.clone())),
            ("dpm".into(), Json::Str(r.dpm.clone())),
            ("faults".into(), Json::Str(r.faults.clone())),
            ("attempts".into(), Json::Int(r.attempts as i64)),
            ("energy_kj_bits".into(), bits(r.energy_kj)),
            ("mean_delay_s_bits".into(), bits(r.mean_delay_s)),
            ("drop_rate_bits".into(), bits(r.drop_rate)),
            (
                "detection_latency_frames_bits".into(),
                r.detection_latency_frames.map_or(Json::Null, bits),
            ),
            (
                "frames_completed".into(),
                Json::Int(r.frames_completed as i64),
            ),
            ("duration_secs_bits".into(), bits(r.duration_secs)),
            (
                "deadline_miss_ratio_bits".into(),
                bits(r.deadline_miss_ratio),
            ),
        ]),
        DeviceOutcome::Failed(f) => Json::obj(vec![
            ("kind".into(), Json::Str("fail".into())),
            ("device".into(), Json::Int(f.device as i64)),
            ("seed".into(), Json::Int(f.seed as i64)),
            ("workload".into(), Json::Str(f.workload.clone())),
            ("policy".into(), Json::Int(f.policy as i64)),
            ("governor".into(), Json::Str(f.governor.clone())),
            ("dpm".into(), Json::Str(f.dpm.clone())),
            ("faults".into(), Json::Str(f.faults.clone())),
            ("attempts".into(), Json::Int(f.attempts as i64)),
            ("error".into(), Json::Str(f.error.clone())),
        ]),
    }
}

fn decode_outcome(json: &Json) -> Result<DeviceOutcome, String> {
    match json.get("kind").and_then(Json::as_str) {
        Some("ok") => Ok(DeviceOutcome::Completed(DeviceRecord {
            device: int_field(json, "device")?,
            seed: int_field(json, "seed")?,
            workload: str_field(json, "workload")?,
            policy: int_field(json, "policy")?,
            governor: str_field(json, "governor")?,
            dpm: str_field(json, "dpm")?,
            faults: str_field(json, "faults")?,
            attempts: int_field(json, "attempts")?,
            energy_kj: f64_bits_field(json, "energy_kj_bits")?,
            mean_delay_s: f64_bits_field(json, "mean_delay_s_bits")?,
            drop_rate: f64_bits_field(json, "drop_rate_bits")?,
            detection_latency_frames: match json.get("detection_latency_frames_bits") {
                Some(Json::Null) => None,
                _ => Some(f64_bits_field(json, "detection_latency_frames_bits")?),
            },
            frames_completed: int_field(json, "frames_completed")?,
            duration_secs: f64_bits_field(json, "duration_secs_bits")?,
            deadline_miss_ratio: f64_bits_field(json, "deadline_miss_ratio_bits")?,
        })),
        Some("fail") => Ok(DeviceOutcome::Failed(DeviceFailure {
            device: int_field(json, "device")?,
            seed: int_field(json, "seed")?,
            workload: str_field(json, "workload")?,
            policy: int_field(json, "policy")?,
            governor: str_field(json, "governor")?,
            dpm: str_field(json, "dpm")?,
            faults: str_field(json, "faults")?,
            attempts: int_field(json, "attempts")?,
            error: str_field(json, "error")?,
        })),
        Some(other) => Err(format!("unknown outcome kind `{other}`")),
        None => Err("missing \"kind\"".into()),
    }
}

/// Reads a `u64` stored as `Json::Int` (two's-complement cast for
/// values above `i64::MAX`, e.g. full-width seeds and bit patterns).
fn int_field(json: &Json, name: &'static str) -> Result<u64, String> {
    match json.get(name) {
        Some(Json::Int(i)) => Ok(*i as u64),
        _ => Err(format!("missing \"{name}\"")),
    }
}

fn str_field(json: &Json, name: &'static str) -> Result<String, String> {
    json.get(name)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing \"{name}\""))
}

fn f64_bits_field(json: &Json, name: &'static str) -> Result<f64, String> {
    int_field(json, name).map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OnError;
    use faults::FaultPreset;
    use powermgr::config::{DpmKind, GovernorKind};
    use powermgr::scenario::Workload;

    fn spec() -> FleetSpec {
        FleetSpec {
            name: "ckpt".into(),
            devices: 4,
            base_seed: 9,
            workloads: vec![Workload::Session],
            policies: vec![crate::PolicySpec {
                governor: GovernorKind::MaxPerformance,
                dpm: DpmKind::None,
            }],
            faults: vec![FaultPreset::Off],
            on_error: OnError::Continue,
        }
    }

    fn outcomes() -> Vec<DeviceOutcome> {
        vec![
            DeviceOutcome::Completed(DeviceRecord {
                device: 0,
                seed: u64::MAX - 3, // exercises the two's-complement cast
                workload: "session".into(),
                policy: 0,
                governor: "max".into(),
                dpm: "none".into(),
                faults: "off".into(),
                attempts: 1,
                energy_kj: 1.25,
                mean_delay_s: f64::NAN, // bit-exact even for NaN
                drop_rate: 0.125,
                detection_latency_frames: None,
                frames_completed: 100,
                duration_secs: 60.0,
                deadline_miss_ratio: 0.0,
            }),
            DeviceOutcome::Failed(DeviceFailure {
                device: 1,
                seed: 7,
                workload: "session".into(),
                policy: 0,
                governor: "max".into(),
                dpm: "none".into(),
                faults: "poison".into(),
                attempts: 3,
                error: "injected".into(),
            }),
        ]
    }

    fn bit_eq(a: &DeviceOutcome, b: &DeviceOutcome) -> bool {
        // PartialEq is false for NaN fields; compare the encoded forms,
        // which carry exact bit patterns.
        encode_outcome(a) == encode_outcome(b)
    }

    #[test]
    fn round_trips_bit_exactly_including_nan() {
        let dir = std::env::temp_dir().join(format!("dvsdpm-ckpt-{}", std::process::id()));
        let spec = spec();
        let want = outcomes();
        write_checkpoint(&dir, &spec, &want).expect("write");
        let got = load_checkpoint(&dir, &spec)
            .expect("load")
            .expect("present");
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!(bit_eq(g, w), "round-trip changed {w:?} into {g:?}");
        }
        // No temp file left behind.
        assert!(!checkpoint_path(&dir).with_extension("ckpt.tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_checkpoint_is_none_not_an_error() {
        let dir = std::env::temp_dir().join(format!("dvsdpm-ckpt-none-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        assert!(load_checkpoint(&dir, &spec()).expect("ok").is_none());
    }

    #[test]
    fn verification_rejects_corruption_and_foreign_specs() {
        let dir = std::env::temp_dir().join(format!("dvsdpm-ckpt-bad-{}", std::process::id()));
        let spec = spec();
        write_checkpoint(&dir, &spec, &outcomes()).expect("write");

        // A different spec (changed on_error) must be rejected.
        let mut other = spec.clone();
        other.on_error = OnError::FailFast;
        let err = load_checkpoint(&dir, &other).expect_err("digest mismatch");
        assert!(err.to_string().contains("digest mismatch"), "{err}");

        // Flip one payload byte: checksum mismatch.
        let path = checkpoint_path(&dir);
        let good = fs::read_to_string(&path).expect("read");
        let truncated = &good[..good.len() - 2];
        fs::write(&path, truncated).expect("write corrupt");
        let err = load_checkpoint(&dir, &spec).expect_err("checksum mismatch");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        // Wrong version.
        fs::write(&path, good.replacen("\"version\":1", "\"version\":99", 1))
            .expect("write version");
        let err = load_checkpoint(&dir, &spec).expect_err("version mismatch");
        assert!(err.to_string().contains("version"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_prefix_outcomes_are_rejected() {
        let dir = std::env::temp_dir().join(format!("dvsdpm-ckpt-gap-{}", std::process::id()));
        let spec = spec();
        let mut gapped = outcomes();
        if let DeviceOutcome::Failed(f) = &mut gapped[1] {
            f.device = 3; // hole at device 1
        }
        write_checkpoint(&dir, &spec, &gapped).expect("write");
        let err = load_checkpoint(&dir, &spec).expect_err("gap rejected");
        assert!(err.to_string().contains("contiguous prefix"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }
}
