//! Checkpoint/resume for long fleet runs.
//!
//! A checkpoint is the full [`FleetAccumulator`] state after the first
//! N devices, snapshotted durably (temp file + fsync + rename + parent
//! directory fsync) every few batches so a killed process loses at most
//! one checkpoint interval of work. Resuming restores the accumulator
//! and re-runs only the remaining devices; because every device's
//! outcome is a pure function of the spec and the accumulator folds
//! outcomes in device order, the resumed report is byte-identical to an
//! uninterrupted run — at *constant* checkpoint size, where the v1
//! format grew linearly with the outcome prefix.
//!
//! On-disk format (`fleet.ckpt` in the checkpoint directory):
//!
//! ```text
//! {"kind":"fleet_checkpoint","version":2,"spec_digest":…,"done":N,"checksum":…}
//! {"max_attempts":…,"completed":…,…,"records":[…],"records_truncated":…}
//! ```
//!
//! Two properties make resume trustworthy:
//!
//! * **Integrity**: the header carries an FNV-1a checksum of the
//!   payload line and a digest of the spec; a truncated file, a flipped
//!   bit, or a checkpoint from a different spec is rejected with a
//!   typed error rather than silently corrupting the report.
//!   `sync_all` before the rename means a post-crash file can only be
//!   the previous checkpoint or this one — never a valid-looking name
//!   over unsynced bytes.
//! * **Bit-exactness**: every `f64` is stored as its IEEE-754 bit
//!   pattern (the JSON layer's decimal round-trip would lose NaN and
//!   collapse payload bytes), so a resumed report's bytes match the
//!   uninterrupted run's exactly — including the quantile sketches,
//!   whose future compactions depend on the exact restored items.

use std::fs;
use std::path::{Path, PathBuf};

use simcore::json::Json;
use simcore::stats::{OnlineStats, QuantileSketch};

use crate::accum::{CohortAcc, FleetAccumulator, MetricAcc};
use crate::report::{DeviceAssertions, DeviceRecord, FailureSample, SloSummary};
use crate::spec::FleetSpec;
use crate::FleetError;

/// Format version; bumped on any incompatible layout change.
/// Version 2 replaced the v1 outcome-prefix payload with serialized
/// accumulator state (constant-size checkpoints).
pub const CHECKPOINT_VERSION: u64 = 2;

/// File name of the checkpoint inside its directory.
pub const CHECKPOINT_FILE: &str = "fleet.ckpt";

/// The checkpoint path for a directory.
#[must_use]
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join(CHECKPOINT_FILE)
}

/// FNV-1a 64-bit over `bytes` — dependency-free and stable across
/// platforms, which is all an integrity stamp needs.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest of the spec a checkpoint belongs to. The `Debug` form covers
/// every field (seed, axes, failure policy), so any spec edit — even a
/// changed `on_error` — invalidates old checkpoints instead of quietly
/// mixing outcomes from two different fleets.
#[must_use]
pub fn spec_digest(spec: &FleetSpec) -> u64 {
    fnv1a64(format!("{spec:?}").as_bytes())
}

/// Writes a durable, atomic checkpoint of the accumulator state after
/// the first [`FleetAccumulator::devices`] devices.
///
/// The payload goes to `fleet.ckpt.tmp`, is synced to disk, renamed
/// into place, and the directory is synced (on Unix) — so a crash at
/// any point leaves either the previous checkpoint or this one, both
/// fully written; never a torn or unsynced file.
///
/// # Errors
///
/// Returns [`FleetError::Io`] when the directory or file cannot be
/// written.
pub fn write_checkpoint(
    dir: &Path,
    spec: &FleetSpec,
    acc: &FleetAccumulator,
) -> Result<(), FleetError> {
    fs::create_dir_all(dir).map_err(|e| {
        FleetError::Io(format!(
            "cannot create checkpoint dir {}: {e}",
            dir.display()
        ))
    })?;
    let mut payload = encode_accumulator(acc).dump();
    payload.push('\n');
    let header = Json::obj(vec![
        ("kind".into(), Json::Str("fleet_checkpoint".into())),
        ("version".into(), Json::Int(CHECKPOINT_VERSION as i64)),
        ("spec_digest".into(), Json::Int(spec_digest(spec) as i64)),
        ("done".into(), Json::Int(acc.devices() as i64)),
        (
            "checksum".into(),
            Json::Int(fnv1a64(payload.as_bytes()) as i64),
        ),
    ]);
    let mut text = header.dump();
    text.push('\n');
    text.push_str(&payload);

    let path = checkpoint_path(dir);
    let tmp = path.with_extension("ckpt.tmp");
    trace::durable::write_atomic(&path, &tmp, text.as_bytes())
        .map_err(|e| FleetError::Io(format!("cannot write {}: {e}", path.display())))
}

/// Loads and verifies a checkpoint for `spec`, restoring the
/// accumulator exactly as it was when written.
///
/// `Ok(None)` when the directory holds no checkpoint yet (a resume of a
/// run that died before its first snapshot simply starts from device
/// 0).
///
/// # Errors
///
/// [`FleetError::Io`] when the file exists but cannot be read;
/// [`FleetError::Checkpoint`] when it fails verification: wrong
/// version, a digest from a different spec, a checksum mismatch
/// (truncation/corruption), more devices than the spec has, or
/// accumulator state that is internally inconsistent (e.g. a sketch
/// whose level weights do not sum to its count).
pub fn load_checkpoint(
    dir: &Path,
    spec: &FleetSpec,
) -> Result<Option<FleetAccumulator>, FleetError> {
    let path = checkpoint_path(dir);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(FleetError::Io(format!(
                "cannot read {}: {e}",
                path.display()
            )))
        }
    };
    let bad = |msg: String| FleetError::Checkpoint(format!("{}: {msg}", path.display()));

    let (header_line, payload) = text
        .split_once('\n')
        .ok_or_else(|| bad("missing header line".into()))?;
    let header = Json::parse(header_line).map_err(|e| bad(format!("malformed header: {e}")))?;
    if header.get("kind").and_then(Json::as_str) != Some("fleet_checkpoint") {
        return Err(bad("not a fleet checkpoint".into()));
    }
    let version = int_field(&header, "version").map_err(&bad)?;
    if version != CHECKPOINT_VERSION {
        return Err(bad(format!(
            "version {version} is not the supported {CHECKPOINT_VERSION}"
        )));
    }
    let digest = int_field(&header, "spec_digest").map_err(&bad)?;
    if digest != spec_digest(spec) {
        return Err(bad(
            "spec digest mismatch (checkpoint belongs to a different fleet spec)".into(),
        ));
    }
    let checksum = int_field(&header, "checksum").map_err(&bad)?;
    if checksum != fnv1a64(payload.as_bytes()) {
        return Err(bad(
            "payload checksum mismatch (truncated or corrupted checkpoint)".into(),
        ));
    }
    let done = int_field(&header, "done").map_err(&bad)?;
    if done > spec.devices as u64 {
        return Err(bad(format!(
            "records {done} devices but the spec has only {}",
            spec.devices
        )));
    }

    let json = Json::parse(payload.trim_end())
        .map_err(|e| bad(format!("malformed accumulator payload: {e}")))?;
    let acc = decode_accumulator(&json).map_err(&bad)?;
    if acc.devices() != done {
        return Err(bad(format!(
            "header promises {done} devices, accumulator holds {}",
            acc.devices()
        )));
    }
    if acc.cohorts.len() != spec.policies.len() {
        return Err(bad(format!(
            "accumulator has {} cohort slots, spec has {} policies",
            acc.cohorts.len(),
            spec.policies.len()
        )));
    }
    Ok(Some(acc))
}

/// Encodes an `f64` as its bit pattern (see module docs).
fn bits(v: f64) -> Json {
    Json::Int(v.to_bits() as i64)
}

fn encode_stats(s: &OnlineStats) -> Json {
    Json::obj(vec![
        ("count".into(), Json::Int(s.count() as i64)),
        ("mean_bits".into(), bits(s.mean())),
        ("m2_bits".into(), bits(s.m2())),
        ("min_bits".into(), bits(s.min())),
        ("max_bits".into(), bits(s.max())),
        ("sum_bits".into(), bits(s.sum())),
    ])
}

fn decode_stats(json: &Json) -> Result<OnlineStats, String> {
    Ok(OnlineStats::from_raw(
        int_field(json, "count")?,
        f64_bits_field(json, "mean_bits")?,
        f64_bits_field(json, "m2_bits")?,
        f64_bits_field(json, "min_bits")?,
        f64_bits_field(json, "max_bits")?,
        f64_bits_field(json, "sum_bits")?,
    ))
}

fn encode_sketch(s: &QuantileSketch) -> Json {
    let (capacity, count, err_ranks, levels) = s.to_parts();
    Json::obj(vec![
        ("capacity".into(), Json::Int(capacity as i64)),
        ("count".into(), Json::Int(count as i64)),
        ("err_ranks".into(), Json::Int(err_ranks as i64)),
        (
            "levels".into(),
            Json::Arr(
                levels
                    .into_iter()
                    .map(|(items, keep_odd)| {
                        Json::obj(vec![
                            ("keep_odd".into(), Json::Bool(keep_odd)),
                            (
                                "items_bits".into(),
                                Json::Arr(items.into_iter().map(bits).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decode_sketch(json: &Json) -> Result<QuantileSketch, String> {
    let capacity = usize::try_from(int_field(json, "capacity")?).map_err(|e| e.to_string())?;
    let count = int_field(json, "count")?;
    let err_ranks = int_field(json, "err_ranks")?;
    let mut levels = Vec::new();
    for (i, level) in json
        .get("levels")
        .and_then(Json::as_array)
        .ok_or("missing \"levels\"")?
        .iter()
        .enumerate()
    {
        let keep_odd = level
            .get("keep_odd")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("level {i}: missing \"keep_odd\""))?;
        let items = level
            .get("items_bits")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("level {i}: missing \"items_bits\""))?
            .iter()
            .map(|v| {
                v.as_i64()
                    .map(|b| f64::from_bits(b as u64))
                    .ok_or_else(|| format!("level {i}: non-integer item bits"))
            })
            .collect::<Result<Vec<f64>, String>>()?;
        levels.push((items, keep_odd));
    }
    QuantileSketch::from_parts(capacity, count, err_ranks, levels)
}

fn encode_metric(m: &MetricAcc) -> Json {
    Json::obj(vec![
        ("stats".into(), encode_stats(&m.stats)),
        ("sketch".into(), encode_sketch(&m.sketch)),
    ])
}

fn decode_metric(json: &Json) -> Result<MetricAcc, String> {
    let stats = decode_stats(json.get("stats").ok_or("missing \"stats\"")?)?;
    let sketch = decode_sketch(json.get("sketch").ok_or("missing \"sketch\"")?)?;
    if stats.count() != sketch.count() {
        return Err(format!(
            "metric stats count {} disagrees with sketch count {}",
            stats.count(),
            sketch.count()
        ));
    }
    Ok(MetricAcc { stats, sketch })
}

fn encode_slo(s: &SloSummary) -> Json {
    Json::obj(vec![
        ("monitored".into(), Json::Int(s.monitored as i64)),
        ("violating".into(), Json::Int(s.violating as i64)),
        ("delay".into(), Json::Int(s.delay as i64)),
        ("oscillation".into(), Json::Int(s.oscillation as i64)),
        ("occupancy".into(), Json::Int(s.occupancy as i64)),
        (
            "energy_monotone".into(),
            Json::Int(s.energy_monotone as i64),
        ),
    ])
}

fn decode_slo(json: &Json) -> Result<SloSummary, String> {
    let slo = SloSummary {
        monitored: int_field(json, "monitored")?,
        violating: int_field(json, "violating")?,
        delay: int_field(json, "delay")?,
        oscillation: int_field(json, "oscillation")?,
        occupancy: int_field(json, "occupancy")?,
        energy_monotone: int_field(json, "energy_monotone")?,
    };
    if slo.violating > slo.monitored {
        return Err(format!(
            "slo claims {} violating devices out of {} monitored",
            slo.violating, slo.monitored
        ));
    }
    Ok(slo)
}

fn encode_cohort(c: &CohortAcc) -> Json {
    Json::obj(vec![
        ("devices".into(), Json::Int(c.devices as i64)),
        ("failed".into(), Json::Int(c.failed as i64)),
        ("survivors".into(), Json::Int(c.survivors as i64)),
        ("governor".into(), Json::Str(c.governor.clone())),
        ("dpm".into(), Json::Str(c.dpm.clone())),
        ("sum_energy_kj_bits".into(), bits(c.sum_energy_kj)),
        ("sum_delay_s_bits".into(), bits(c.sum_delay_s)),
        ("sum_drop_rate_bits".into(), bits(c.sum_drop_rate)),
        ("slo".into(), encode_slo(&c.slo)),
    ])
}

fn decode_cohort(json: &Json) -> Result<CohortAcc, String> {
    let devices = int_field(json, "devices")?;
    let failed = int_field(json, "failed")?;
    let survivors = int_field(json, "survivors")?;
    if failed + survivors != devices {
        return Err(format!(
            "cohort devices {devices} != failed {failed} + survivors {survivors}"
        ));
    }
    let slo = decode_slo(json.get("slo").ok_or("missing \"slo\"")?)?;
    if slo.monitored > survivors {
        return Err(format!(
            "cohort slo monitors {} devices but only {survivors} survived",
            slo.monitored
        ));
    }
    Ok(CohortAcc {
        devices,
        failed,
        survivors,
        governor: str_field(json, "governor")?,
        dpm: str_field(json, "dpm")?,
        sum_energy_kj: f64_bits_field(json, "sum_energy_kj_bits")?,
        sum_delay_s: f64_bits_field(json, "sum_delay_s_bits")?,
        sum_drop_rate: f64_bits_field(json, "sum_drop_rate_bits")?,
        slo,
    })
}

fn encode_sample(s: &FailureSample) -> Json {
    Json::obj(vec![
        ("device".into(), Json::Int(s.device as i64)),
        ("attempts".into(), Json::Int(s.attempts as i64)),
        ("error".into(), Json::Str(s.error.clone())),
    ])
}

fn decode_sample(json: &Json) -> Result<FailureSample, String> {
    Ok(FailureSample {
        device: int_field(json, "device")?,
        attempts: int_field(json, "attempts")?,
        error: str_field(json, "error")?,
    })
}

fn encode_accumulator(acc: &FleetAccumulator) -> Json {
    Json::obj(vec![
        ("max_attempts".into(), Json::Int(acc.max_attempts as i64)),
        ("completed".into(), Json::Int(acc.completed as i64)),
        ("failed".into(), Json::Int(acc.failed as i64)),
        ("retried".into(), Json::Int(acc.retried as i64)),
        ("recovered".into(), Json::Int(acc.recovered as i64)),
        ("quarantined".into(), Json::Int(acc.quarantined as i64)),
        (
            "retry_attempts".into(),
            Json::Int(acc.retry_attempts as i64),
        ),
        (
            "first_errors".into(),
            Json::Arr(acc.first_errors.iter().map(encode_sample).collect()),
        ),
        (
            "cohorts".into(),
            Json::Arr(acc.cohorts.iter().map(encode_cohort).collect()),
        ),
        ("energy_kj".into(), encode_metric(&acc.energy_kj)),
        ("mean_delay_s".into(), encode_metric(&acc.mean_delay_s)),
        ("drop_rate".into(), encode_metric(&acc.drop_rate)),
        (
            "detection_latency_frames".into(),
            encode_metric(&acc.detection_latency_frames),
        ),
        (
            "records".into(),
            Json::Arr(acc.records.iter().map(encode_record).collect()),
        ),
        (
            "records_truncated".into(),
            Json::Int(acc.records_truncated as i64),
        ),
    ])
}

fn decode_accumulator(json: &Json) -> Result<FleetAccumulator, String> {
    let completed = int_field(json, "completed")?;
    let failed = int_field(json, "failed")?;
    let first_errors = json
        .get("first_errors")
        .and_then(Json::as_array)
        .ok_or("missing \"first_errors\"")?
        .iter()
        .map(decode_sample)
        .collect::<Result<Vec<FailureSample>, String>>()?;
    let cohorts = json
        .get("cohorts")
        .and_then(Json::as_array)
        .ok_or("missing \"cohorts\"")?
        .iter()
        .map(decode_cohort)
        .collect::<Result<Vec<CohortAcc>, String>>()?;
    if cohorts.iter().map(|c| c.devices).sum::<u64>() != completed + failed {
        return Err("cohort device counts do not sum to completed + failed".into());
    }
    let records = json
        .get("records")
        .and_then(Json::as_array)
        .ok_or("missing \"records\"")?
        .iter()
        .map(decode_record)
        .collect::<Result<Vec<DeviceRecord>, String>>()?;
    let acc = FleetAccumulator {
        max_attempts: int_field(json, "max_attempts")?,
        completed,
        failed,
        retried: int_field(json, "retried")?,
        recovered: int_field(json, "recovered")?,
        quarantined: int_field(json, "quarantined")?,
        retry_attempts: int_field(json, "retry_attempts")?,
        first_errors,
        cohorts,
        energy_kj: decode_metric(json.get("energy_kj").ok_or("missing \"energy_kj\"")?)?,
        mean_delay_s: decode_metric(json.get("mean_delay_s").ok_or("missing \"mean_delay_s\"")?)?,
        drop_rate: decode_metric(json.get("drop_rate").ok_or("missing \"drop_rate\"")?)?,
        detection_latency_frames: decode_metric(
            json.get("detection_latency_frames")
                .ok_or("missing \"detection_latency_frames\"")?,
        )?,
        records,
        records_truncated: int_field(json, "records_truncated")?,
    };
    if acc.energy_kj.stats.count() > completed {
        return Err("energy metric counts more devices than completed".into());
    }
    Ok(acc)
}

fn encode_record(r: &DeviceRecord) -> Json {
    Json::obj(vec![
        ("device".into(), Json::Int(r.device as i64)),
        ("seed".into(), Json::Int(r.seed as i64)),
        ("workload".into(), Json::Str(r.workload.clone())),
        ("policy".into(), Json::Int(r.policy as i64)),
        ("governor".into(), Json::Str(r.governor.clone())),
        ("dpm".into(), Json::Str(r.dpm.clone())),
        ("faults".into(), Json::Str(r.faults.clone())),
        ("attempts".into(), Json::Int(r.attempts as i64)),
        ("energy_kj_bits".into(), bits(r.energy_kj)),
        ("mean_delay_s_bits".into(), bits(r.mean_delay_s)),
        ("drop_rate_bits".into(), bits(r.drop_rate)),
        (
            "detection_latency_frames_bits".into(),
            r.detection_latency_frames.map_or(Json::Null, bits),
        ),
        (
            "frames_completed".into(),
            Json::Int(r.frames_completed as i64),
        ),
        ("duration_secs_bits".into(), bits(r.duration_secs)),
        (
            "deadline_miss_ratio_bits".into(),
            bits(r.deadline_miss_ratio),
        ),
        (
            "assertions".into(),
            match &r.assertions {
                None => Json::Null,
                Some(a) => Json::obj(vec![
                    ("delay".into(), Json::Int(a.delay as i64)),
                    ("oscillation".into(), Json::Int(a.oscillation as i64)),
                    ("occupancy".into(), Json::Int(a.occupancy as i64)),
                    (
                        "energy_monotone".into(),
                        Json::Int(a.energy_monotone as i64),
                    ),
                ]),
            },
        ),
    ])
}

fn decode_record(json: &Json) -> Result<DeviceRecord, String> {
    Ok(DeviceRecord {
        device: int_field(json, "device")?,
        seed: int_field(json, "seed")?,
        workload: str_field(json, "workload")?,
        policy: int_field(json, "policy")?,
        governor: str_field(json, "governor")?,
        dpm: str_field(json, "dpm")?,
        faults: str_field(json, "faults")?,
        attempts: int_field(json, "attempts")?,
        energy_kj: f64_bits_field(json, "energy_kj_bits")?,
        mean_delay_s: f64_bits_field(json, "mean_delay_s_bits")?,
        drop_rate: f64_bits_field(json, "drop_rate_bits")?,
        detection_latency_frames: match json.get("detection_latency_frames_bits") {
            Some(Json::Null) => None,
            _ => Some(f64_bits_field(json, "detection_latency_frames_bits")?),
        },
        frames_completed: int_field(json, "frames_completed")?,
        duration_secs: f64_bits_field(json, "duration_secs_bits")?,
        deadline_miss_ratio: f64_bits_field(json, "deadline_miss_ratio_bits")?,
        assertions: match json.get("assertions") {
            Some(Json::Null) => None,
            Some(v) => Some(DeviceAssertions {
                delay: int_field(v, "delay")?,
                oscillation: int_field(v, "oscillation")?,
                occupancy: int_field(v, "occupancy")?,
                energy_monotone: int_field(v, "energy_monotone")?,
            }),
            None => return Err("missing \"assertions\"".into()),
        },
    })
}

/// Reads a `u64` stored as `Json::Int` (two's-complement cast for
/// values above `i64::MAX`, e.g. full-width seeds and bit patterns).
fn int_field(json: &Json, name: &'static str) -> Result<u64, String> {
    match json.get(name) {
        Some(Json::Int(i)) => Ok(*i as u64),
        _ => Err(format!("missing \"{name}\"")),
    }
}

fn str_field(json: &Json, name: &'static str) -> Result<String, String> {
    json.get(name)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing \"{name}\""))
}

fn f64_bits_field(json: &Json, name: &'static str) -> Result<f64, String> {
    int_field(json, name).map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{DeviceFailure, DeviceOutcome};
    use crate::spec::OnError;
    use faults::FaultPreset;
    use powermgr::config::{DpmKind, GovernorKind};
    use powermgr::scenario::Workload;

    fn spec() -> FleetSpec {
        FleetSpec {
            name: "ckpt".into(),
            devices: 4,
            base_seed: 9,
            workloads: vec![Workload::Session],
            policies: vec![crate::PolicySpec {
                governor: GovernorKind::MaxPerformance,
                dpm: DpmKind::None,
            }],
            faults: vec![FaultPreset::Off],
            on_error: OnError::Continue,
            assertions: None,
        }
    }

    fn outcomes() -> Vec<DeviceOutcome> {
        vec![
            DeviceOutcome::Completed(DeviceRecord {
                device: 0,
                seed: u64::MAX - 3, // exercises the two's-complement cast
                workload: "session".into(),
                policy: 0,
                governor: "max".into(),
                dpm: "none".into(),
                faults: "off".into(),
                attempts: 1,
                energy_kj: 1.25,
                mean_delay_s: 0.5,
                drop_rate: 0.125,
                // NaN is filtered by the metric accumulators but must
                // survive the record sample bit-exactly.
                detection_latency_frames: Some(f64::NAN),
                frames_completed: 100,
                duration_secs: 60.0,
                deadline_miss_ratio: 0.0,
                // Monitored device: the violation counts must survive
                // the round-trip and land back in the cohort SLO.
                assertions: Some(DeviceAssertions {
                    delay: 3,
                    oscillation: 1,
                    occupancy: 0,
                    energy_monotone: 2,
                }),
            }),
            DeviceOutcome::Failed(DeviceFailure {
                device: 1,
                seed: 7,
                workload: "session".into(),
                policy: 0,
                governor: "max".into(),
                dpm: "none".into(),
                faults: "poison".into(),
                attempts: 3,
                error: "injected".into(),
            }),
        ]
    }

    fn accumulated(outcomes: Vec<DeviceOutcome>) -> FleetAccumulator {
        let mut acc = FleetAccumulator::new(1, 3);
        for o in outcomes {
            acc.push(o);
        }
        acc
    }

    /// The restored accumulator must not merely *look* equal — it must
    /// produce bit-identical behaviour forever after. Comparing the
    /// re-encoded forms covers every bit pattern, NaN included.
    fn bit_eq(a: &FleetAccumulator, b: &FleetAccumulator) -> bool {
        encode_accumulator(a).dump() == encode_accumulator(b).dump()
    }

    #[test]
    fn round_trips_accumulator_state_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("dvsdpm-ckpt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spec = spec();
        let want = accumulated(outcomes());
        write_checkpoint(&dir, &spec, &want).expect("write");
        let got = load_checkpoint(&dir, &spec)
            .expect("load")
            .expect("present");
        assert!(bit_eq(&got, &want), "round-trip changed the accumulator");
        assert_eq!(got.devices(), 2);
        // The restored accumulator continues identically: pushing the
        // same future outcomes yields byte-identical reports.
        let mut live = accumulated(outcomes());
        let mut restored = got;
        for acc in [&mut live, &mut restored] {
            let mut extra = outcomes();
            if let DeviceOutcome::Completed(r) = &mut extra[0] {
                r.device = 2;
                r.energy_kj = 9.75;
            }
            acc.push(extra.swap_remove(0));
        }
        assert!(bit_eq(&live, &restored), "futures diverged after restore");
        // No temp file left behind.
        assert!(!checkpoint_path(&dir).with_extension("ckpt.tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_checkpoint_is_none_not_an_error() {
        let dir = std::env::temp_dir().join(format!("dvsdpm-ckpt-none-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        assert!(load_checkpoint(&dir, &spec()).expect("ok").is_none());
    }

    #[test]
    fn verification_rejects_corruption_and_foreign_specs() {
        let dir = std::env::temp_dir().join(format!("dvsdpm-ckpt-bad-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spec = spec();
        write_checkpoint(&dir, &spec, &accumulated(outcomes())).expect("write");

        // A different spec (changed on_error) must be rejected.
        let mut other = spec.clone();
        other.on_error = OnError::FailFast;
        let err = load_checkpoint(&dir, &other).expect_err("digest mismatch");
        assert!(err.to_string().contains("digest mismatch"), "{err}");

        // Truncate the payload: checksum mismatch.
        let path = checkpoint_path(&dir);
        let good = fs::read_to_string(&path).expect("read");
        let truncated = &good[..good.len() - 2];
        fs::write(&path, truncated).expect("write corrupt");
        let err = load_checkpoint(&dir, &spec).expect_err("checksum mismatch");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        // Wrong version (v1 checkpoints are rejected, not misread).
        fs::write(&path, good.replacen("\"version\":2", "\"version\":1", 1))
            .expect("write version");
        let err = load_checkpoint(&dir, &spec).expect_err("version mismatch");
        assert!(err.to_string().contains("version"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inconsistent_accumulator_state_is_rejected() {
        let dir = std::env::temp_dir().join(format!("dvsdpm-ckpt-incons-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spec = spec();
        let mut acc = accumulated(outcomes());
        // Claim an extra completion the cohorts know nothing about: the
        // decoder's cross-checks must catch it even though header
        // checksum and digest are valid (we re-write the checkpoint, so
        // both are freshly computed over the corrupt state).
        acc.completed += 1;
        write_checkpoint(&dir, &spec, &acc).expect("write");
        let err = load_checkpoint(&dir, &spec).expect_err("inconsistency rejected");
        assert!(
            err.to_string().contains("do not sum"),
            "unexpected error: {err}"
        );
        fs::remove_dir_all(&dir).ok();
    }
}
