//! Fleet-scale batched simulation: N independent SmartBadge devices —
//! each a seed-forked [`powermgr::SystemSimulator`] run with its own
//! workload mix, DVS/DPM policy, and fault preset — executed over the
//! deterministic parallel engine and aggregated into one
//! [`FleetReport`] of percentile distributions and per-policy cohort
//! comparisons (the paper's Table 5, at population scale).
//!
//! The contract: a fleet run is a pure function of its [`FleetSpec`].
//! Worker count changes wall-clock time only — the serialized report is
//! byte-identical at `--jobs 1` and `--jobs 1024`. Change-point
//! calibration cost is paid once per distinct detector configuration
//! via the process-wide threshold cache, not once per device.
//!
//! Failures are part of the contract too: each device runs supervised
//! (panics caught, typed errors contained), and the spec's [`OnError`]
//! policy decides whether one failing device aborts the run
//! (`fail_fast`), is recorded in a partial report (`continue`), or is
//! deterministically retried first (`retry:<n>`). Long runs can
//! checkpoint and resume ([`engine::RunOptions`]) with byte-identical
//! results.
//!
//! ```
//! use fleet::{run_fleet, FleetSpec, OnError, PolicySpec};
//! use powermgr::config::{DpmKind, GovernorKind};
//! use powermgr::scenario::Workload;
//! use simcore::par::Jobs;
//!
//! let spec = FleetSpec {
//!     name: "doc".into(),
//!     devices: 2,
//!     base_seed: 42,
//!     workloads: vec![Workload::Mp3("A".into())],
//!     policies: vec![
//!         PolicySpec { governor: GovernorKind::MaxPerformance, dpm: DpmKind::None },
//!         PolicySpec { governor: GovernorKind::Ideal, dpm: DpmKind::None },
//!     ],
//!     faults: vec![faults::FaultPreset::Off],
//!     on_error: OnError::FailFast,
//!     assertions: None,
//! };
//! let report = run_fleet(&spec, Jobs::Count(2))?;
//! assert_eq!(report.devices, 2);
//! assert_eq!(report.cohorts.len(), 2);
//! assert!(!report.partial);
//! # Ok::<(), fleet::FleetError>(())
//! ```

use std::fmt;

pub mod accum;
pub mod checkpoint;
pub mod engine;
pub mod report;
pub mod soa;
pub mod spec;

pub use accum::{FleetAccumulator, MetricAcc, RECORD_SAMPLE_CAP, SKETCH_CAPACITY};
pub use engine::{run_device, run_fleet, run_fleet_opts, run_fleet_with, RunOptions};
pub use report::{
    CohortHealth, CohortSummary, DeviceAssertions, DeviceFailure, DeviceOutcome, DeviceRecord,
    FailureSample, FleetHealth, FleetReport, MetricSummary, SloSummary,
};
pub use soa::{cohort_key, probe_detection_latency, CohortResources};
pub use spec::{DeviceAssignment, FleetSpec, OnError, PolicySpec};

/// Errors from parsing a fleet spec or running a fleet.
#[derive(Debug)]
pub enum FleetError {
    /// The spec is malformed or violates a structural invariant.
    Spec(String),
    /// A device simulation failed.
    Sim(powermgr::PmError),
    /// A device exhausted its attempts under the `fail_fast` policy.
    Device {
        /// Device index within the fleet.
        device: u64,
        /// Attempts the device consumed.
        attempts: u64,
        /// The last attempt's error message.
        error: String,
    },
    /// A resume checkpoint failed verification.
    Checkpoint(String),
    /// Trace or checkpoint output could not be written or read.
    Io(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Spec(msg) => write!(f, "fleet spec: {msg}"),
            FleetError::Sim(e) => write!(f, "device simulation failed: {e}"),
            FleetError::Device {
                device,
                attempts,
                error,
            } => write!(
                f,
                "device {device} failed after {attempts} attempt(s) (on_error: fail_fast): {error}"
            ),
            FleetError::Checkpoint(msg) => write!(f, "fleet checkpoint: {msg}"),
            FleetError::Io(msg) => write!(f, "fleet io: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Sim(e) => Some(e),
            FleetError::Spec(_)
            | FleetError::Device { .. }
            | FleetError::Checkpoint(_)
            | FleetError::Io(_) => None,
        }
    }
}

impl From<powermgr::PmError> for FleetError {
    fn from(e: powermgr::PmError) -> Self {
        FleetError::Sim(e)
    }
}
