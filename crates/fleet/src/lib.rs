//! Fleet-scale batched simulation: N independent SmartBadge devices —
//! each a seed-forked [`powermgr::SystemSimulator`] run with its own
//! workload mix, DVS/DPM policy, and fault preset — executed over the
//! deterministic parallel engine and aggregated into one
//! [`FleetReport`] of percentile distributions and per-policy cohort
//! comparisons (the paper's Table 5, at population scale).
//!
//! The contract: a fleet run is a pure function of its [`FleetSpec`].
//! Worker count changes wall-clock time only — the serialized report is
//! byte-identical at `--jobs 1` and `--jobs 1024`. Change-point
//! calibration cost is paid once per distinct detector configuration
//! via the process-wide threshold cache, not once per device.
//!
//! ```
//! use fleet::{run_fleet, FleetSpec, PolicySpec};
//! use powermgr::config::{DpmKind, GovernorKind};
//! use powermgr::scenario::Workload;
//! use simcore::par::Jobs;
//!
//! let spec = FleetSpec {
//!     name: "doc".into(),
//!     devices: 2,
//!     base_seed: 42,
//!     workloads: vec![Workload::Mp3("A".into())],
//!     policies: vec![
//!         PolicySpec { governor: GovernorKind::MaxPerformance, dpm: DpmKind::None },
//!         PolicySpec { governor: GovernorKind::Ideal, dpm: DpmKind::None },
//!     ],
//!     faults: vec![faults::FaultPreset::Off],
//! };
//! let report = run_fleet(&spec, Jobs::Count(2))?;
//! assert_eq!(report.devices, 2);
//! assert_eq!(report.cohorts.len(), 2);
//! # Ok::<(), fleet::FleetError>(())
//! ```

use std::fmt;

pub mod engine;
pub mod report;
pub mod spec;

pub use engine::{run_fleet, run_fleet_with};
pub use report::{CohortSummary, DeviceRecord, FleetReport, MetricSummary};
pub use spec::{DeviceAssignment, FleetSpec, PolicySpec};

/// Errors from parsing a fleet spec or running a fleet.
#[derive(Debug)]
pub enum FleetError {
    /// The spec is malformed or violates a structural invariant.
    Spec(String),
    /// A device simulation failed.
    Sim(powermgr::PmError),
    /// Trace output could not be written.
    Io(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Spec(msg) => write!(f, "fleet spec: {msg}"),
            FleetError::Sim(e) => write!(f, "device simulation failed: {e}"),
            FleetError::Io(msg) => write!(f, "fleet trace: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Sim(e) => Some(e),
            FleetError::Spec(_) | FleetError::Io(_) => None,
        }
    }
}

impl From<powermgr::PmError> for FleetError {
    fn from(e: powermgr::PmError) -> Self {
        FleetError::Sim(e)
    }
}
