//! Fleet-level aggregation: per-device records rolled up into
//! percentile distributions and per-policy cohort comparisons (the
//! paper's Table 5 energy/delay trade-off, reproduced at fleet scale).
//!
//! Everything here is a pure function of the device records, which are
//! themselves a pure function of the spec — so the serialized report is
//! byte-identical at any `--jobs` count. Deliberately absent: the
//! process-global [`detect::cache`] hit counters. Those accumulate
//! across every fleet run sharing the process (tests, benches), so
//! embedding them would break golden byte-equality; they belong in
//! `BENCH_fleet.json` and CLI diagnostics instead.

use std::fmt;

use simcore::impl_to_json;
use simcore::json::{Json, ToJson};
use simcore::stats::exact_quantile;

/// Distribution of one metric over the fleet: mean, extremes, and the
/// percentiles the capacity-planning plots need.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl_to_json!(MetricSummary {
    mean,
    min,
    max,
    p10,
    p50,
    p90,
    p99,
});

impl MetricSummary {
    /// Summarizes `values`, ignoring non-finite entries; `None` when
    /// nothing finite remains (e.g. a metric no device reports).
    #[must_use]
    pub fn from_values(values: &[f64]) -> Option<MetricSummary> {
        let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        finite.sort_by(f64::total_cmp);
        let mean = finite.iter().sum::<f64>() / finite.len() as f64;
        Some(MetricSummary {
            mean,
            min: finite[0],
            max: finite[finite.len() - 1],
            p10: exact_quantile(&finite, 0.10),
            p50: exact_quantile(&finite, 0.50),
            p90: exact_quantile(&finite, 0.90),
            p99: exact_quantile(&finite, 0.99),
        })
    }
}

/// The outcome of one device's run, in fleet-report form.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRecord {
    /// Device index within the fleet.
    pub device: u64,
    /// The device's forked RNG seed.
    pub seed: u64,
    /// Workload label (`mp3:…` / `mpeg:…` / `session`).
    pub workload: String,
    /// Index into the spec's policy list (the cohort key).
    pub policy: u64,
    /// Governor label.
    pub governor: &'static str,
    /// DPM policy label.
    pub dpm: &'static str,
    /// Fault-preset name.
    pub faults: &'static str,
    /// Total energy, kJ.
    pub energy_kj: f64,
    /// Mean total frame delay, seconds.
    pub mean_delay_s: f64,
    /// Dropped fraction of offered frames (arrivals + decoded drops).
    pub drop_rate: f64,
    /// Frames the probe needed to detect a 10 → 60 frames/s rate step;
    /// `None` for governors that do no online detection.
    pub detection_latency_frames: Option<f64>,
    /// Frames decoded to completion.
    pub frames_completed: u64,
    /// Simulated duration, seconds.
    pub duration_secs: f64,
    /// Fraction of frame deadlines missed.
    pub deadline_miss_ratio: f64,
}

impl_to_json!(DeviceRecord {
    device,
    seed,
    workload,
    policy,
    governor,
    dpm,
    faults,
    energy_kj,
    mean_delay_s,
    drop_rate,
    detection_latency_frames,
    frames_completed,
    duration_secs,
    deadline_miss_ratio,
});

/// Aggregate outcome of every device sharing one policy slot — the
/// fleet-scale analogue of one row of the paper's Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortSummary {
    /// Index into the spec's policy list.
    pub policy: u64,
    /// Governor label.
    pub governor: &'static str,
    /// DPM policy label.
    pub dpm: &'static str,
    /// Devices in the cohort.
    pub devices: u64,
    /// Mean energy over the cohort, kJ.
    pub mean_energy_kj: f64,
    /// Mean frame delay over the cohort, seconds.
    pub mean_delay_s: f64,
    /// Mean drop rate over the cohort.
    pub mean_drop_rate: f64,
    /// Energy factor versus the `max`/`none` baseline cohort
    /// (baseline energy ÷ cohort energy, Table 5's "×" column);
    /// `None` when the fleet has no baseline cohort.
    pub savings_vs_baseline: Option<f64>,
}

impl_to_json!(CohortSummary {
    policy,
    governor,
    dpm,
    devices,
    mean_energy_kj,
    mean_delay_s,
    mean_drop_rate,
    savings_vs_baseline,
});

/// The aggregate report for one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Fleet name from the spec.
    pub name: String,
    /// Number of devices simulated.
    pub devices: u64,
    /// Base seed from the spec.
    pub base_seed: u64,
    /// Energy distribution over the fleet, kJ.
    pub energy_kj: MetricSummary,
    /// Mean-frame-delay distribution, seconds.
    pub mean_delay_s: MetricSummary,
    /// Drop-rate distribution.
    pub drop_rate: MetricSummary,
    /// Detection-latency distribution in frames, over the devices whose
    /// governor does online detection; `None` when no device does.
    pub detection_latency_frames: Option<MetricSummary>,
    /// Per-policy cohorts, in spec order.
    pub cohorts: Vec<CohortSummary>,
    /// Every device's record, in device order.
    pub records: Vec<DeviceRecord>,
}

impl_to_json!(FleetReport {
    name,
    devices,
    base_seed,
    energy_kj,
    mean_delay_s,
    drop_rate,
    detection_latency_frames,
    cohorts,
    records,
});

impl FleetReport {
    /// Builds the aggregate report from per-device records.
    ///
    /// `policies` is the number of policy slots in the spec; cohorts
    /// come out in slot order so the report layout matches the spec.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty (the spec validator rejects
    /// zero-device fleets before any records exist).
    #[must_use]
    pub fn build(
        name: &str,
        base_seed: u64,
        policies: usize,
        records: Vec<DeviceRecord>,
    ) -> FleetReport {
        assert!(
            !records.is_empty(),
            "a fleet report needs at least one device"
        );
        let metric = |f: fn(&DeviceRecord) -> f64| {
            let values: Vec<f64> = records.iter().map(f).collect();
            MetricSummary::from_values(&values).expect("device metrics are finite")
        };
        let detection: Vec<f64> = records
            .iter()
            .filter_map(|r| r.detection_latency_frames)
            .collect();

        let mut cohorts = Vec::with_capacity(policies);
        for slot in 0..policies as u64 {
            let members: Vec<&DeviceRecord> = records.iter().filter(|r| r.policy == slot).collect();
            let Some(first) = members.first() else {
                continue; // more policies than devices: slot never assigned
            };
            let mean = |f: fn(&DeviceRecord) -> f64| {
                members.iter().map(|r| f(r)).sum::<f64>() / members.len() as f64
            };
            cohorts.push(CohortSummary {
                policy: slot,
                governor: first.governor,
                dpm: first.dpm,
                devices: members.len() as u64,
                mean_energy_kj: mean(|r| r.energy_kj),
                mean_delay_s: mean(|r| r.mean_delay_s),
                mean_drop_rate: mean(|r| r.drop_rate),
                savings_vs_baseline: None,
            });
        }
        let baseline = cohorts
            .iter()
            .find(|c| c.governor == "max" && c.dpm == "none")
            .map(|c| c.mean_energy_kj);
        if let Some(base) = baseline {
            for c in &mut cohorts {
                c.savings_vs_baseline = (c.mean_energy_kj > 0.0).then(|| base / c.mean_energy_kj);
            }
        }

        FleetReport {
            name: name.to_string(),
            devices: records.len() as u64,
            base_seed,
            energy_kj: metric(|r| r.energy_kj),
            mean_delay_s: metric(|r| r.mean_delay_s),
            drop_rate: metric(|r| r.drop_rate),
            detection_latency_frames: MetricSummary::from_values(&detection),
            cohorts,
            records,
        }
    }

    /// Pretty-printed JSON document, the canonical on-disk form.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        self.to_json().pretty()
    }

    /// Parses a report back from its JSON form (used by `--check`-style
    /// tooling and the determinism tests; only the scalar headline
    /// fields are needed, so unknown fields are ignored).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn headline_from_json(text: &str) -> Result<(String, u64, f64), String> {
        let json = Json::parse(text).map_err(|e| e.to_string())?;
        let name = json
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing `name`")?
            .to_string();
        let devices = json
            .get("devices")
            .and_then(Json::as_u64)
            .ok_or("missing `devices`")?;
        let mean_energy = json
            .get("energy_kj")
            .and_then(|m| m.get("mean"))
            .and_then(Json::as_f64)
            .ok_or("missing `energy_kj.mean`")?;
        Ok((name, devices, mean_energy))
    }
}

impl fmt::Display for FleetReport {
    /// Human-readable summary for the CLI: fleet-wide distributions
    /// followed by one Table-5-style row per cohort.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet `{}`: {} devices, base seed {}",
            self.name, self.devices, self.base_seed
        )?;
        let row = |f: &mut fmt::Formatter<'_>, label: &str, m: &MetricSummary| {
            writeln!(
                f,
                "  {label:<18} mean {:>9.4}  p10 {:>9.4}  p50 {:>9.4}  p90 {:>9.4}  p99 {:>9.4}  max {:>9.4}",
                m.mean, m.p10, m.p50, m.p90, m.p99, m.max
            )
        };
        row(f, "energy (kJ)", &self.energy_kj)?;
        row(f, "mean delay (s)", &self.mean_delay_s)?;
        row(f, "drop rate", &self.drop_rate)?;
        match &self.detection_latency_frames {
            Some(m) => row(f, "detection (frames)", m)?,
            None => writeln!(f, "  detection (frames) n/a (no detecting governor)")?,
        }
        writeln!(f, "  cohorts:")?;
        for c in &self.cohorts {
            write!(
                f,
                "    [{}] {:<13} + {:<16} {:>5} devices  {:>9.4} kJ  {:>7.4} s  drop {:>6.4}",
                c.policy,
                c.governor,
                c.dpm,
                c.devices,
                c.mean_energy_kj,
                c.mean_delay_s,
                c.mean_drop_rate
            )?;
            match c.savings_vs_baseline {
                Some(x) => writeln!(f, "  {x:>5.2}x vs max/none")?,
                None => writeln!(f)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(device: u64, policy: u64, energy_kj: f64, detect: Option<f64>) -> DeviceRecord {
        DeviceRecord {
            device,
            seed: device * 1000 + 1,
            workload: "session".into(),
            policy,
            governor: if policy == 0 { "change-point" } else { "max" },
            dpm: if policy == 0 { "break-even" } else { "none" },
            faults: "off",
            energy_kj,
            mean_delay_s: 0.05 * (device + 1) as f64,
            drop_rate: 0.0,
            detection_latency_frames: detect,
            frames_completed: 100,
            duration_secs: 60.0,
            deadline_miss_ratio: 0.0,
        }
    }

    #[test]
    fn summary_percentiles_and_baseline_savings() {
        let records = vec![
            record(0, 0, 1.0, Some(30.0)),
            record(1, 1, 4.0, None),
            record(2, 0, 2.0, Some(50.0)),
            record(3, 1, 4.0, None),
        ];
        let report = FleetReport::build("t", 42, 2, records);
        assert_eq!(report.devices, 4);
        assert!((report.energy_kj.mean - 2.75).abs() < 1e-12);
        assert_eq!(report.energy_kj.min, 1.0);
        assert_eq!(report.energy_kj.max, 4.0);
        // Detection distribution covers only the detecting devices.
        let det = report.detection_latency_frames.as_ref().expect("probe ran");
        assert_eq!(det.min, 30.0);
        assert_eq!(det.max, 50.0);
        // Cohorts in slot order; savings measured against max/none.
        assert_eq!(report.cohorts.len(), 2);
        assert_eq!(report.cohorts[0].devices, 2);
        assert!((report.cohorts[0].mean_energy_kj - 1.5).abs() < 1e-12);
        let savings = report.cohorts[0]
            .savings_vs_baseline
            .expect("baseline present");
        assert!((savings - 4.0 / 1.5).abs() < 1e-12);
        assert!((report.cohorts[1].savings_vs_baseline.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_baseline_cohort_means_no_savings_column() {
        let report = FleetReport::build("t", 1, 1, vec![record(0, 0, 1.0, None)]);
        assert_eq!(report.cohorts[0].savings_vs_baseline, None);
        assert_eq!(report.detection_latency_frames, None);
    }

    #[test]
    fn json_round_trips_headline_fields() {
        let report = FleetReport::build("pilot", 9, 1, vec![record(0, 0, 2.5, None)]);
        let text = report.to_json_pretty();
        let (name, devices, mean_energy) =
            FleetReport::headline_from_json(&text).expect("own output parses");
        assert_eq!(name, "pilot");
        assert_eq!(devices, 1);
        assert!((mean_energy - 2.5).abs() < 1e-12);
        // Null detection latency serializes as JSON null, not NaN.
        assert!(text.contains("\"detection_latency_frames\": null"));
    }

    #[test]
    fn from_values_filters_non_finite_and_handles_empty() {
        assert_eq!(MetricSummary::from_values(&[]), None);
        assert_eq!(MetricSummary::from_values(&[f64::NAN, f64::INFINITY]), None);
        let m = MetricSummary::from_values(&[3.0, f64::NAN, 1.0, 2.0]).expect("finite data");
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 3.0);
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert!((m.p50 - 2.0).abs() < 1e-12);
    }
}
