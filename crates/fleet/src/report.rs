//! Fleet-level aggregation: per-device records rolled up into
//! percentile distributions and per-policy cohort comparisons (the
//! paper's Table 5 energy/delay trade-off, reproduced at fleet scale).
//!
//! Everything here is a pure function of the device records, which are
//! themselves a pure function of the spec — so the serialized report is
//! byte-identical at any `--jobs` count. Deliberately absent: the
//! process-global [`detect::cache`] hit counters. Those accumulate
//! across every fleet run sharing the process (tests, benches), so
//! embedding them would break golden byte-equality; they belong in
//! `BENCH_fleet.json` and CLI diagnostics instead.

use std::fmt;

use simcore::impl_to_json;
use simcore::json::{Json, ToJson};

use crate::accum::MetricAcc;

/// Distribution of one metric over the fleet: mean, extremes, and the
/// percentiles the capacity-planning plots need.
///
/// Percentiles come from a bounded deterministic
/// [`simcore::stats::QuantileSketch`]: exact whenever the observation
/// count stayed within the sketch capacity (`rank_error == 0`), and
/// within `rank_error × count` ranks of exact beyond that.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Finite observations summarized.
    pub count: u64,
    /// Worst-case percentile rank error as a fraction of `count`;
    /// `0.0` means the percentiles are exact.
    pub rank_error: f64,
}

impl_to_json!(MetricSummary {
    mean,
    min,
    max,
    p10,
    p50,
    p90,
    p99,
    count,
    rank_error,
});

impl MetricSummary {
    /// Summarizes `values`, ignoring non-finite entries; `None` when
    /// nothing finite remains (e.g. a metric no device reports).
    ///
    /// The sketch behind the summary is sized to hold every value, so
    /// this entry point is always exact (`rank_error == 0`).
    #[must_use]
    pub fn from_values(values: &[f64]) -> Option<MetricSummary> {
        let mut acc = MetricAcc::new(values.len().max(2));
        for &v in values {
            acc.push(v);
        }
        acc.summary()
    }
}

/// Per-invariant assertion-violation counts for one monitored device —
/// the constant-size slice of its `SimReport` assertion verdict that
/// the fleet rollup folds (field order matches
/// [`trace::AssertionReport::INVARIANTS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceAssertions {
    /// Eq. 5 delay-constraint violations.
    pub delay: u64,
    /// V/f oscillation-rate violations.
    pub oscillation: u64,
    /// Buffer-occupancy watchdog violations.
    pub occupancy: u64,
    /// Voltage-monotonicity violations.
    pub energy_monotone: u64,
}

impl_to_json!(DeviceAssertions {
    delay,
    oscillation,
    occupancy,
    energy_monotone,
});

impl DeviceAssertions {
    /// Extracts the violation counts from a monitor's verdict.
    #[must_use]
    pub fn from_report(report: &trace::AssertionReport) -> DeviceAssertions {
        let [delay, oscillation, occupancy, energy_monotone] = report.violation_counts();
        DeviceAssertions {
            delay,
            oscillation,
            occupancy,
            energy_monotone,
        }
    }

    /// Total violations across all invariants.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.delay + self.oscillation + self.occupancy + self.energy_monotone
    }
}

/// SLO rollup of assertion monitoring over a set of devices (one
/// cohort, or the whole fleet): how many devices were monitored, how
/// many violated anything, and the per-invariant violation totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SloSummary {
    /// Surviving devices that ran with a monitor attached.
    pub monitored: u64,
    /// Monitored devices with at least one violation.
    pub violating: u64,
    /// Total Eq. 5 delay-constraint violations.
    pub delay: u64,
    /// Total V/f oscillation-rate violations.
    pub oscillation: u64,
    /// Total buffer-occupancy watchdog violations.
    pub occupancy: u64,
    /// Total voltage-monotonicity violations.
    pub energy_monotone: u64,
}

impl_to_json!(SloSummary {
    monitored,
    violating,
    delay,
    oscillation,
    occupancy,
    energy_monotone,
});

impl SloSummary {
    /// Folds one monitored device's counts into the rollup.
    pub fn fold(&mut self, device: &DeviceAssertions) {
        self.monitored += 1;
        if device.total() > 0 {
            self.violating += 1;
        }
        self.delay += device.delay;
        self.oscillation += device.oscillation;
        self.occupancy += device.occupancy;
        self.energy_monotone += device.energy_monotone;
    }

    /// Total violations across all invariants.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.delay + self.oscillation + self.occupancy + self.energy_monotone
    }

    /// Merges another rollup (cohort → fleet aggregation).
    pub fn merge(&mut self, other: &SloSummary) {
        self.monitored += other.monitored;
        self.violating += other.violating;
        self.delay += other.delay;
        self.oscillation += other.oscillation;
        self.occupancy += other.occupancy;
        self.energy_monotone += other.energy_monotone;
    }
}

/// The successful outcome of one device's run, in fleet-report form.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRecord {
    /// Device index within the fleet.
    pub device: u64,
    /// The RNG seed of the attempt that produced this record (the
    /// device seed for attempt 1, a retry fork afterwards).
    pub seed: u64,
    /// Workload label (`mp3:…` / `mpeg:…` / `session`).
    pub workload: String,
    /// Index into the spec's policy list (the cohort key).
    pub policy: u64,
    /// Governor label.
    pub governor: String,
    /// DPM policy label.
    pub dpm: String,
    /// Fault-preset name (`flaky:<pct>` keeps its parameter).
    pub faults: String,
    /// Attempts consumed, 1 for a first-try success.
    pub attempts: u64,
    /// Total energy, kJ.
    pub energy_kj: f64,
    /// Mean total frame delay, seconds.
    pub mean_delay_s: f64,
    /// Dropped fraction of offered frames (arrivals + decoded drops).
    pub drop_rate: f64,
    /// Frames the probe needed to detect a 10 → 60 frames/s rate step;
    /// `None` for governors that do no online detection.
    pub detection_latency_frames: Option<f64>,
    /// Frames decoded to completion.
    pub frames_completed: u64,
    /// Simulated duration, seconds.
    pub duration_secs: f64,
    /// Fraction of frame deadlines missed.
    pub deadline_miss_ratio: f64,
    /// Per-invariant assertion-violation counts; `None` when the run
    /// was not monitored (the key is then omitted from the JSON form,
    /// keeping unmonitored reports byte-identical to earlier versions).
    pub assertions: Option<DeviceAssertions>,
}

// Hand-written (not `impl_to_json!`) so `assertions: None` omits the
// key entirely instead of emitting `null` — unmonitored fleet reports
// must stay byte-identical to the pre-assertion golden files.
impl ToJson for DeviceRecord {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("device".to_string(), self.device.to_json()),
            ("seed".to_string(), self.seed.to_json()),
            ("workload".to_string(), self.workload.to_json()),
            ("policy".to_string(), self.policy.to_json()),
            ("governor".to_string(), self.governor.to_json()),
            ("dpm".to_string(), self.dpm.to_json()),
            ("faults".to_string(), self.faults.to_json()),
            ("attempts".to_string(), self.attempts.to_json()),
            ("energy_kj".to_string(), self.energy_kj.to_json()),
            ("mean_delay_s".to_string(), self.mean_delay_s.to_json()),
            ("drop_rate".to_string(), self.drop_rate.to_json()),
            (
                "detection_latency_frames".to_string(),
                self.detection_latency_frames.to_json(),
            ),
            (
                "frames_completed".to_string(),
                self.frames_completed.to_json(),
            ),
            ("duration_secs".to_string(), self.duration_secs.to_json()),
            (
                "deadline_miss_ratio".to_string(),
                self.deadline_miss_ratio.to_json(),
            ),
        ];
        if let Some(a) = &self.assertions {
            fields.push(("assertions".to_string(), a.to_json()));
        }
        Json::obj(fields)
    }
}

/// The failed outcome of one device's run: every attempt the failure
/// policy allowed ended in a typed error or a caught panic.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceFailure {
    /// Device index within the fleet.
    pub device: u64,
    /// The seed of the *last* attempt.
    pub seed: u64,
    /// Workload label.
    pub workload: String,
    /// Index into the spec's policy list (the cohort key).
    pub policy: u64,
    /// Governor label.
    pub governor: String,
    /// DPM policy label.
    pub dpm: String,
    /// Fault-preset name.
    pub faults: String,
    /// Attempts consumed before the device was given up on.
    pub attempts: u64,
    /// The last attempt's error message (`panic: …` for caught panics).
    pub error: String,
}

impl_to_json!(DeviceFailure {
    device,
    seed,
    workload,
    policy,
    governor,
    dpm,
    faults,
    attempts,
    error,
});

/// What one device's supervised run ultimately produced.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceOutcome {
    /// The device completed (possibly after retries).
    Completed(DeviceRecord),
    /// The device failed every attempt its policy allowed.
    Failed(DeviceFailure),
}

impl DeviceOutcome {
    /// The device index this outcome belongs to.
    #[must_use]
    pub fn device(&self) -> u64 {
        match self {
            DeviceOutcome::Completed(r) => r.device,
            DeviceOutcome::Failed(f) => f.device,
        }
    }

    /// Attempts the device consumed.
    #[must_use]
    pub fn attempts(&self) -> u64 {
        match self {
            DeviceOutcome::Completed(r) => r.attempts,
            DeviceOutcome::Failed(f) => f.attempts,
        }
    }

    /// The policy slot (cohort key) of the device.
    #[must_use]
    pub fn policy(&self) -> u64 {
        match self {
            DeviceOutcome::Completed(r) => r.policy,
            DeviceOutcome::Failed(f) => f.policy,
        }
    }
}

/// One failure, sampled into the report so a partial fleet names what
/// went wrong without carrying every failed device's full story.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureSample {
    /// Device index.
    pub device: u64,
    /// Attempts consumed.
    pub attempts: u64,
    /// The last attempt's error message.
    pub error: String,
}

impl_to_json!(FailureSample {
    device,
    attempts,
    error,
});

/// Failure statistics for the devices sharing one policy slot.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortHealth {
    /// Index into the spec's policy list.
    pub policy: u64,
    /// Devices assigned to the slot.
    pub devices: u64,
    /// Devices whose final outcome was failure.
    pub failed: u64,
    /// `failed / devices`.
    pub failure_rate: f64,
}

impl_to_json!(CohortHealth {
    policy,
    devices,
    failed,
    failure_rate,
});

/// Fleet-wide failure accounting: how many devices failed, retried,
/// recovered, or were quarantined, per cohort and overall. Derived
/// purely from the ordered outcomes, so it is byte-identical at any
/// `--jobs` count.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetHealth {
    /// The spec's failure policy, in its parseable form.
    pub on_error: String,
    /// Devices the fleet was asked to run.
    pub devices: u64,
    /// Devices that completed (possibly after retries).
    pub completed: u64,
    /// Devices whose final outcome was failure.
    pub failed: u64,
    /// Devices that needed more than one attempt, whatever the outcome.
    pub retried: u64,
    /// Devices that completed only after at least one retry.
    pub recovered: u64,
    /// Devices that burned every attempt the policy allowed and still
    /// failed — they are excluded from every survivor statistic.
    pub quarantined: u64,
    /// Extra attempts consumed beyond each device's first.
    pub retry_attempts: u64,
    /// `failed / devices`.
    pub failure_rate: f64,
    /// Per-policy failure rates, in slot order (only slots with at
    /// least one assigned device appear).
    pub cohorts: Vec<CohortHealth>,
    /// The first few failures in device order (at most
    /// [`FleetHealth::MAX_ERROR_SAMPLES`]).
    pub first_errors: Vec<FailureSample>,
}

impl_to_json!(FleetHealth {
    on_error,
    devices,
    completed,
    failed,
    retried,
    recovered,
    quarantined,
    retry_attempts,
    failure_rate,
    cohorts,
    first_errors,
});

impl FleetHealth {
    /// Cap on [`FleetHealth::first_errors`]: enough to diagnose, small
    /// enough that a million-device meltdown stays readable.
    pub const MAX_ERROR_SAMPLES: usize = 5;

    /// Builds health statistics from the ordered outcomes.
    #[must_use]
    pub fn build(
        on_error: &str,
        policies: usize,
        max_attempts: u64,
        outcomes: &[DeviceOutcome],
    ) -> FleetHealth {
        let devices = outcomes.len() as u64;
        let mut completed = 0u64;
        let mut failed = 0u64;
        let mut retried = 0u64;
        let mut recovered = 0u64;
        let mut quarantined = 0u64;
        let mut retry_attempts = 0u64;
        let mut first_errors = Vec::new();
        for o in outcomes {
            retry_attempts += o.attempts().saturating_sub(1);
            if o.attempts() > 1 {
                retried += 1;
            }
            match o {
                DeviceOutcome::Completed(r) => {
                    completed += 1;
                    if r.attempts > 1 {
                        recovered += 1;
                    }
                }
                DeviceOutcome::Failed(f) => {
                    failed += 1;
                    if f.attempts >= max_attempts {
                        quarantined += 1;
                    }
                    if first_errors.len() < Self::MAX_ERROR_SAMPLES {
                        first_errors.push(FailureSample {
                            device: f.device,
                            attempts: f.attempts,
                            error: f.error.clone(),
                        });
                    }
                }
            }
        }
        let mut cohorts = Vec::new();
        for slot in 0..policies as u64 {
            let members = outcomes.iter().filter(|o| o.policy() == slot);
            let (mut n, mut bad) = (0u64, 0u64);
            for m in members {
                n += 1;
                if matches!(m, DeviceOutcome::Failed(_)) {
                    bad += 1;
                }
            }
            if n > 0 {
                cohorts.push(CohortHealth {
                    policy: slot,
                    devices: n,
                    failed: bad,
                    failure_rate: bad as f64 / n as f64,
                });
            }
        }
        FleetHealth {
            on_error: on_error.to_string(),
            devices,
            completed,
            failed,
            retried,
            recovered,
            quarantined,
            retry_attempts,
            failure_rate: if devices == 0 {
                0.0
            } else {
                failed as f64 / devices as f64
            },
            cohorts,
            first_errors,
        }
    }
}

/// Aggregate outcome of every device sharing one policy slot — the
/// fleet-scale analogue of one row of the paper's Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortSummary {
    /// Index into the spec's policy list.
    pub policy: u64,
    /// Governor label.
    pub governor: String,
    /// DPM policy label.
    pub dpm: String,
    /// Surviving devices in the cohort (failed devices are counted in
    /// [`FleetHealth::cohorts`], not here).
    pub devices: u64,
    /// Mean energy over the cohort, kJ.
    pub mean_energy_kj: f64,
    /// Mean frame delay over the cohort, seconds.
    pub mean_delay_s: f64,
    /// Mean drop rate over the cohort.
    pub mean_drop_rate: f64,
    /// Energy factor versus the `max`/`none` baseline cohort
    /// (baseline energy ÷ cohort energy, Table 5's "×" column);
    /// `None` when the fleet has no baseline cohort.
    pub savings_vs_baseline: Option<f64>,
    /// Assertion SLO rollup over the cohort's survivors; `None` (and
    /// omitted from JSON) when no device in the cohort was monitored.
    pub slo: Option<SloSummary>,
}

// Hand-written so `slo: None` omits the key — see `DeviceRecord`.
impl ToJson for CohortSummary {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("policy".to_string(), self.policy.to_json()),
            ("governor".to_string(), self.governor.to_json()),
            ("dpm".to_string(), self.dpm.to_json()),
            ("devices".to_string(), self.devices.to_json()),
            ("mean_energy_kj".to_string(), self.mean_energy_kj.to_json()),
            ("mean_delay_s".to_string(), self.mean_delay_s.to_json()),
            ("mean_drop_rate".to_string(), self.mean_drop_rate.to_json()),
            (
                "savings_vs_baseline".to_string(),
                self.savings_vs_baseline.to_json(),
            ),
        ];
        if let Some(slo) = &self.slo {
            fields.push(("slo".to_string(), slo.to_json()));
        }
        Json::obj(fields)
    }
}

/// The aggregate report for one fleet run.
///
/// A report with `partial: true` summarizes *survivors only*: every
/// percentile, cohort mean, and record belongs to a device that
/// completed; the failures are accounted for in [`FleetHealth`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Fleet name from the spec.
    pub name: String,
    /// Number of devices the spec asked for (completed + failed).
    pub devices: u64,
    /// Base seed from the spec.
    pub base_seed: u64,
    /// `true` when at least one device failed: the summaries below
    /// cover the surviving subset, not the whole fleet.
    pub partial: bool,
    /// Energy distribution over the surviving fleet, kJ; `None` when no
    /// device survived.
    pub energy_kj: Option<MetricSummary>,
    /// Mean-frame-delay distribution, seconds; `None` when no device
    /// survived.
    pub mean_delay_s: Option<MetricSummary>,
    /// Drop-rate distribution; `None` when no device survived.
    pub drop_rate: Option<MetricSummary>,
    /// Detection-latency distribution in frames, over the surviving
    /// devices whose governor does online detection; `None` when none
    /// does.
    pub detection_latency_frames: Option<MetricSummary>,
    /// Per-policy cohorts over survivors, in spec order.
    pub cohorts: Vec<CohortSummary>,
    /// Failure accounting for the whole fleet.
    pub health: FleetHealth,
    /// Surviving device records in device order — all of them for
    /// fleets up to [`crate::accum::RECORD_SAMPLE_CAP`], a leading
    /// sample beyond that (the summaries above always cover the whole
    /// fleet).
    pub records: Vec<DeviceRecord>,
    /// Surviving records dropped beyond the sample cap; `0` means
    /// `records` is complete.
    pub records_truncated: u64,
    /// Fleet-wide assertion SLO rollup (the per-cohort rollups merged);
    /// `None` (and omitted from JSON) when no device was monitored.
    pub slo: Option<SloSummary>,
}

// Hand-written so `slo: None` omits the key — see `DeviceRecord`.
impl ToJson for FleetReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), self.name.to_json()),
            ("devices".to_string(), self.devices.to_json()),
            ("base_seed".to_string(), self.base_seed.to_json()),
            ("partial".to_string(), self.partial.to_json()),
            ("energy_kj".to_string(), self.energy_kj.to_json()),
            ("mean_delay_s".to_string(), self.mean_delay_s.to_json()),
            ("drop_rate".to_string(), self.drop_rate.to_json()),
            (
                "detection_latency_frames".to_string(),
                self.detection_latency_frames.to_json(),
            ),
        ];
        if let Some(slo) = &self.slo {
            fields.push(("slo".to_string(), slo.to_json()));
        }
        fields.push(("cohorts".to_string(), self.cohorts.to_json()));
        fields.push(("health".to_string(), self.health.to_json()));
        fields.push(("records".to_string(), self.records.to_json()));
        fields.push((
            "records_truncated".to_string(),
            self.records_truncated.to_json(),
        ));
        Json::obj(fields)
    }
}

impl FleetReport {
    /// Builds the aggregate report from per-device outcomes.
    ///
    /// `policies` is the number of policy slots in the spec; cohorts
    /// come out in slot order so the report layout matches the spec.
    /// `on_error` and `max_attempts` describe the failure policy the
    /// outcomes were produced under (echoed into [`FleetHealth`]).
    ///
    /// This is a convenience wrapper that streams the outcomes through
    /// a [`crate::FleetAccumulator`]; the engine feeds the accumulator
    /// directly so records never pile up in memory.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty (the spec validator rejects
    /// zero-device fleets before any outcomes exist).
    #[must_use]
    pub fn build(
        name: &str,
        base_seed: u64,
        policies: usize,
        on_error: &str,
        max_attempts: u64,
        outcomes: Vec<DeviceOutcome>,
    ) -> FleetReport {
        assert!(
            !outcomes.is_empty(),
            "a fleet report needs at least one device"
        );
        let mut acc = crate::FleetAccumulator::new(policies, max_attempts);
        for o in outcomes {
            acc.push(o);
        }
        acc.finish(name, base_seed, on_error)
    }

    /// Pretty-printed JSON document, the canonical on-disk form.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        self.to_json().pretty()
    }

    /// Parses a report back from its JSON form (used by `--check`-style
    /// tooling and the determinism tests; only the scalar headline
    /// fields are needed, so unknown fields are ignored).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn headline_from_json(text: &str) -> Result<(String, u64, f64), String> {
        let json = Json::parse(text).map_err(|e| e.to_string())?;
        let name = json
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing `name`")?
            .to_string();
        let devices = json
            .get("devices")
            .and_then(Json::as_u64)
            .ok_or("missing `devices`")?;
        let mean_energy = json
            .get("energy_kj")
            .and_then(|m| m.get("mean"))
            .and_then(Json::as_f64)
            .ok_or("missing `energy_kj.mean`")?;
        Ok((name, devices, mean_energy))
    }
}

impl fmt::Display for FleetReport {
    /// Human-readable summary for the CLI: fleet-wide distributions
    /// followed by one Table-5-style row per cohort, plus a health
    /// section whenever anything failed or retried.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet `{}`: {} devices, base seed {}{}",
            self.name,
            self.devices,
            self.base_seed,
            if self.partial {
                " [PARTIAL: survivors only]"
            } else {
                ""
            }
        )?;
        let row = |f: &mut fmt::Formatter<'_>, label: &str, m: Option<&MetricSummary>| {
            match m {
            Some(m) => writeln!(
                f,
                "  {label:<18} mean {:>9.4}  p10 {:>9.4}  p50 {:>9.4}  p90 {:>9.4}  p99 {:>9.4}  max {:>9.4}",
                m.mean, m.p10, m.p50, m.p90, m.p99, m.max
            ),
            None => writeln!(f, "  {label:<18} n/a (no surviving device)"),
        }
        };
        row(f, "energy (kJ)", self.energy_kj.as_ref())?;
        row(f, "mean delay (s)", self.mean_delay_s.as_ref())?;
        row(f, "drop rate", self.drop_rate.as_ref())?;
        match &self.detection_latency_frames {
            Some(m) => row(f, "detection (frames)", Some(m))?,
            None => writeln!(f, "  detection (frames) n/a (no detecting governor)")?,
        }
        if let Some(slo) = &self.slo {
            writeln!(
                f,
                "  assertions         {} monitored, {} violating, {} violation(s) \
                 [delay {}, oscillation {}, occupancy {}, energy {}]",
                slo.monitored,
                slo.violating,
                slo.total_violations(),
                slo.delay,
                slo.oscillation,
                slo.occupancy,
                slo.energy_monotone
            )?;
        }
        let h = &self.health;
        if h.failed > 0 || h.retried > 0 {
            writeln!(
                f,
                "  health ({}): {} completed, {} failed ({:.1}%), {} retried, {} recovered, {} quarantined",
                h.on_error,
                h.completed,
                h.failed,
                h.failure_rate * 100.0,
                h.retried,
                h.recovered,
                h.quarantined
            )?;
            for s in &h.first_errors {
                writeln!(
                    f,
                    "    device {} failed after {} attempt(s): {}",
                    s.device, s.attempts, s.error
                )?;
            }
        }
        writeln!(f, "  cohorts:")?;
        for c in &self.cohorts {
            write!(
                f,
                "    [{}] {:<13} + {:<16} {:>5} devices  {:>9.4} kJ  {:>7.4} s  drop {:>6.4}",
                c.policy,
                c.governor,
                c.dpm,
                c.devices,
                c.mean_energy_kj,
                c.mean_delay_s,
                c.mean_drop_rate
            )?;
            if let Some(x) = c.savings_vs_baseline {
                write!(f, "  {x:>5.2}x vs max/none")?;
            }
            if let Some(slo) = &c.slo {
                write!(
                    f,
                    "  slo {}/{} violating ({} viol)",
                    slo.violating,
                    slo.monitored,
                    slo.total_violations()
                )?;
            }
            writeln!(f)?;
        }
        if self.records_truncated > 0 {
            writeln!(
                f,
                "  records: leading sample of {} ({} more folded into the summaries)",
                self.records.len(),
                self.records_truncated
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(device: u64, policy: u64, energy_kj: f64, detect: Option<f64>) -> DeviceRecord {
        DeviceRecord {
            device,
            seed: device * 1000 + 1,
            workload: "session".into(),
            policy,
            governor: if policy == 0 { "change-point" } else { "max" }.into(),
            dpm: if policy == 0 { "break-even" } else { "none" }.into(),
            faults: "off".into(),
            attempts: 1,
            energy_kj,
            mean_delay_s: 0.05 * (device + 1) as f64,
            drop_rate: 0.0,
            detection_latency_frames: detect,
            frames_completed: 100,
            duration_secs: 60.0,
            deadline_miss_ratio: 0.0,
            assertions: None,
        }
    }

    fn failure(device: u64, policy: u64, attempts: u64) -> DeviceFailure {
        DeviceFailure {
            device,
            seed: device * 1000 + 7,
            workload: "session".into(),
            policy,
            governor: "change-point".into(),
            dpm: "break-even".into(),
            faults: "poison".into(),
            attempts,
            error: format!("device {device} went sideways"),
        }
    }

    fn ok(r: DeviceRecord) -> DeviceOutcome {
        DeviceOutcome::Completed(r)
    }

    fn build_clean(name: &str, policies: usize, records: Vec<DeviceRecord>) -> FleetReport {
        FleetReport::build(
            name,
            42,
            policies,
            "fail_fast",
            1,
            records.into_iter().map(ok).collect(),
        )
    }

    #[test]
    fn summary_percentiles_and_baseline_savings() {
        let records = vec![
            record(0, 0, 1.0, Some(30.0)),
            record(1, 1, 4.0, None),
            record(2, 0, 2.0, Some(50.0)),
            record(3, 1, 4.0, None),
        ];
        let report = build_clean("t", 2, records);
        assert_eq!(report.devices, 4);
        assert!(!report.partial);
        let energy = report.energy_kj.as_ref().expect("survivors");
        assert!((energy.mean - 2.75).abs() < 1e-12);
        assert_eq!(energy.min, 1.0);
        assert_eq!(energy.max, 4.0);
        // Detection distribution covers only the detecting devices.
        let det = report.detection_latency_frames.as_ref().expect("probe ran");
        assert_eq!(det.min, 30.0);
        assert_eq!(det.max, 50.0);
        // Cohorts in slot order; savings measured against max/none.
        assert_eq!(report.cohorts.len(), 2);
        assert_eq!(report.cohorts[0].devices, 2);
        assert!((report.cohorts[0].mean_energy_kj - 1.5).abs() < 1e-12);
        let savings = report.cohorts[0]
            .savings_vs_baseline
            .expect("baseline present");
        assert!((savings - 4.0 / 1.5).abs() < 1e-12);
        assert!((report.cohorts[1].savings_vs_baseline.unwrap() - 1.0).abs() < 1e-12);
        // A clean fleet has a quiet health section.
        assert_eq!(report.health.failed, 0);
        assert_eq!(report.health.completed, 4);
        assert!(report.health.first_errors.is_empty());
    }

    #[test]
    fn no_baseline_cohort_means_no_savings_column() {
        let report = build_clean("t", 1, vec![record(0, 0, 1.0, None)]);
        assert_eq!(report.cohorts[0].savings_vs_baseline, None);
        assert_eq!(report.detection_latency_frames, None);
    }

    #[test]
    fn json_round_trips_headline_fields() {
        let report = build_clean("pilot", 1, vec![record(0, 0, 2.5, None)]);
        let text = report.to_json_pretty();
        let (name, devices, mean_energy) =
            FleetReport::headline_from_json(&text).expect("own output parses");
        assert_eq!(name, "pilot");
        assert_eq!(devices, 1);
        assert!((mean_energy - 2.5).abs() < 1e-12);
        // Null detection latency serializes as JSON null, not NaN.
        assert!(text.contains("\"detection_latency_frames\": null"));
    }

    #[test]
    fn partial_report_summarizes_survivors_and_counts_failures() {
        let mut rec = record(1, 0, 2.0, Some(40.0));
        rec.attempts = 3; // recovered after two retries
        let outcomes = vec![
            ok(record(0, 0, 1.0, Some(30.0))),
            ok(rec),
            DeviceOutcome::Failed(failure(2, 1, 3)),
            DeviceOutcome::Failed(failure(3, 1, 2)),
            ok(record(4, 1, 4.0, None)),
        ];
        let report = FleetReport::build("chaos", 42, 2, "retry:2", 3, outcomes);
        assert!(report.partial);
        assert_eq!(report.devices, 5);
        assert_eq!(report.records.len(), 3, "failed devices carry no record");
        // Survivor-only percentiles: the failed cohort-1 devices do not
        // drag the energy summary.
        let energy = report.energy_kj.as_ref().expect("survivors");
        assert_eq!(energy.max, 4.0);
        assert!((energy.mean - (1.0 + 2.0 + 4.0) / 3.0).abs() < 1e-12);
        // Health: counts + cohort rates + ordered samples.
        let h = &report.health;
        assert_eq!(h.on_error, "retry:2");
        assert_eq!((h.completed, h.failed), (3, 2));
        assert_eq!(h.retried, 3, "recovered device + both failures");
        assert_eq!(h.recovered, 1);
        assert_eq!(h.quarantined, 1, "only the 3-attempt failure exhausted");
        assert_eq!(h.retry_attempts, 2 + 2 + 1);
        assert!((h.failure_rate - 0.4).abs() < 1e-12);
        assert_eq!(h.cohorts.len(), 2);
        assert_eq!(h.cohorts[0].failed, 0);
        assert_eq!(h.cohorts[1].devices, 3);
        assert_eq!(h.cohorts[1].failed, 2);
        assert!((h.cohorts[1].failure_rate - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.first_errors.len(), 2);
        assert_eq!(h.first_errors[0].device, 2);
        // Display carries the partial marker and the health line.
        let text = report.to_string();
        assert!(text.contains("PARTIAL"), "{text}");
        assert!(text.contains("2 failed"), "{text}");
        assert!(text.contains("went sideways"), "{text}");
    }

    #[test]
    fn all_failed_fleet_has_no_summaries_but_full_health() {
        let outcomes = vec![
            DeviceOutcome::Failed(failure(0, 0, 1)),
            DeviceOutcome::Failed(failure(1, 0, 1)),
        ];
        let report = FleetReport::build("doom", 42, 1, "continue", 1, outcomes);
        assert!(report.partial);
        assert_eq!(report.energy_kj, None);
        assert_eq!(report.mean_delay_s, None);
        assert_eq!(report.drop_rate, None);
        assert!(report.cohorts.is_empty());
        assert_eq!(report.health.failed, 2);
        assert_eq!(report.health.quarantined, 2);
        let text = report.to_string();
        assert!(text.contains("no surviving device"), "{text}");
        // The JSON form survives the absence of every summary.
        assert!(report.to_json_pretty().contains("\"energy_kj\": null"));
    }

    #[test]
    fn error_samples_are_capped() {
        let outcomes: Vec<DeviceOutcome> = (0..20)
            .map(|i| DeviceOutcome::Failed(failure(i, 0, 1)))
            .collect();
        let health = FleetHealth::build("continue", 1, 1, &outcomes);
        assert_eq!(health.first_errors.len(), FleetHealth::MAX_ERROR_SAMPLES);
        assert_eq!(health.first_errors[0].device, 0);
        assert_eq!(health.failed, 20);
    }

    #[test]
    fn slo_rollup_appears_only_for_monitored_fleets() {
        // Unmonitored fleet: neither the records nor the summaries grow
        // any assertion keys — byte-compatible with older reports.
        let clean = build_clean("t", 1, vec![record(0, 0, 1.0, None)]);
        assert_eq!(clean.slo, None);
        let text = clean.to_json_pretty();
        assert!(!text.contains("\"slo\""), "{text}");
        assert!(!text.contains("\"assertions\""), "{text}");
        // Monitored fleet: device counts fold into cohort + fleet SLO.
        let mut noisy = record(0, 0, 1.0, None);
        noisy.assertions = Some(DeviceAssertions {
            delay: 2,
            oscillation: 0,
            occupancy: 1,
            energy_monotone: 0,
        });
        let mut quiet = record(1, 0, 2.0, None);
        quiet.assertions = Some(DeviceAssertions::default());
        let report = build_clean("t", 1, vec![noisy, quiet]);
        let slo = report.slo.as_ref().expect("fleet rollup");
        assert_eq!((slo.monitored, slo.violating), (2, 1));
        assert_eq!((slo.delay, slo.occupancy), (2, 1));
        assert_eq!(slo.total_violations(), 3);
        assert_eq!(report.cohorts[0].slo.as_ref(), Some(slo));
        let text = report.to_json_pretty();
        assert!(text.contains("\"slo\""), "{text}");
        assert!(text.contains("\"assertions\""), "{text}");
        let shown = report.to_string();
        assert!(shown.contains("2 monitored, 1 violating"), "{shown}");
        assert!(shown.contains("slo 1/2 violating (3 viol)"), "{shown}");
    }

    #[test]
    fn from_values_filters_non_finite_and_handles_empty() {
        assert_eq!(MetricSummary::from_values(&[]), None);
        assert_eq!(MetricSummary::from_values(&[f64::NAN, f64::INFINITY]), None);
        let m = MetricSummary::from_values(&[3.0, f64::NAN, 1.0, 2.0]).expect("finite data");
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 3.0);
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert!((m.p50 - 2.0).abs() < 1e-12);
    }
}
