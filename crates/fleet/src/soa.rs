//! Structure-of-arrays cohort stepping for the fleet engine.
//!
//! A fleet enumerates the `workloads × policies × faults` cross product
//! round-robin, so consecutive device indices alternate between
//! configurations. Stepping them in index order is the worst case for
//! locality: every device re-resolves its policy's threshold table
//! through the process-wide cache (a hash of the full calibration key
//! plus shard traffic per lookup) and thrashes the detector tables
//! between cohorts.
//!
//! This module restructures the inner loop around *cohorts* — the
//! groups of devices sharing one cross-product slot:
//!
//! * [`CohortResources::prepare`] resolves every policy's shared
//!   threshold table **once per run** (one cache lookup per policy, not
//!   per device) and hands the [`SharedResources`] to each device
//!   construction, so the per-device hot path performs zero cache
//!   traffic.
//! * [`cohort_key`] is the schedule key for
//!   [`simcore::par::par_try_fold_range_batched_by`]: within a batch,
//!   devices of the same cohort are claimed back-to-back by one worker,
//!   so a cohort's threshold table and detector structures stay hot
//!   while the whole cohort steps.
//! * [`probe_detection_latency`] is the detection-latency probe
//!   rewritten as a run-to-next-decision kernel: inter-arrival samples
//!   are drawn in blocks through [`Exponential::fill`] (the AVX2 `ln4`
//!   path where available) instead of one scalar draw per observation,
//!   and the detector consumes the block until its first decision.
//!
//! Byte-identity is preserved at every step: `fill` is bit-identical to
//! sequential sampling (asserted in `simcore::dist`), the probe RNG is
//! a discarded local fork (over-drawing a block past the decision point
//! is invisible), the shared table is the *same* `Arc` the detector
//! would have resolved itself, and scheduling only permutes claim order
//! — results still fold in ascending device order. The differential
//! tests in `tests/soa_differential.rs` hold the whole pipeline to
//! byte-equal reports against the per-device reference path.

use std::cell::RefCell;
use std::sync::Arc;

use detect::{ChangePointDetector, EmaEstimator, RateEstimator};
use powermgr::config::GovernorKind;
use powermgr::{PmError, SharedResources};
use simcore::dist::Exponential;
use simcore::rng::SimRng;

use crate::spec::FleetSpec;

/// Detection-latency probe: rate step the probe replays, in frames/s.
pub const PROBE_SLOW_RATE: f64 = 10.0;
/// Post-step rate of the probe, frames/s (the paper's fig. 10 step).
pub const PROBE_FAST_RATE: f64 = 60.0;
/// Slow samples fed before the step so detector windows are warm.
pub const PROBE_PREFILL: usize = 150;
/// Upper bound on post-step samples; a detector that has not reacted
/// by then is reported at the cap rather than scanning forever.
pub const PROBE_CAP: usize = 600;

/// Per-policy shared resources, resolved once per fleet run and reused
/// by every device of the policy's cohorts.
#[derive(Debug, Clone, Default)]
pub struct CohortResources {
    /// Indexed by [`crate::spec::DeviceAssignment::policy_index`].
    shared: Vec<SharedResources>,
}

impl CohortResources {
    /// Resolves every policy's shared resources up front: one threshold
    /// cache lookup (and at most one calibration) per distinct
    /// change-point configuration, zero per device.
    ///
    /// Resolution failures are *not* surfaced here: a policy whose
    /// calibration fails gets empty resources, so each of its devices
    /// re-attempts resolution itself and the failure is contained (and
    /// retried) under the spec's `on_error` policy exactly as it was
    /// before cohort stepping existed.
    #[must_use]
    pub fn prepare(spec: &FleetSpec) -> CohortResources {
        CohortResources {
            shared: spec
                .policies
                .iter()
                .map(|p| SharedResources::resolve_governor(&p.governor).unwrap_or_default())
                .collect(),
        }
    }

    /// The shared resources of policy `policy_index`; empty resources
    /// for indexes this run never prepared (the reference path).
    #[must_use]
    pub fn for_policy(&self, policy_index: usize) -> &SharedResources {
        static EMPTY: SharedResources = SharedResources {
            threshold_table: None,
        };
        self.shared.get(policy_index).unwrap_or(&EMPTY)
    }
}

/// The cohort schedule key of `device`: its slot in the
/// `workloads × policies × faults` cross product. Devices with equal
/// keys run the same workload, policy, and fault preset, so scheduling
/// them consecutively keeps one configuration's tables hot.
#[must_use]
pub fn cohort_key(spec: &FleetSpec, device: usize) -> u64 {
    let combos = spec.workloads.len() * spec.policies.len() * spec.faults.len();
    (device % combos.max(1)) as u64
}

thread_local! {
    /// Reusable block-sample buffer: one allocation per worker thread,
    /// not one per probed device.
    static PROBE_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Measures how many post-step samples the device's detector needs to
/// register a 10 → 60 frames/s arrival-rate step (the paper's fig. 10
/// workload transition), on a probe stream forked from the attempt
/// seed. `Ok(None)` for governors with no online detector (ideal knows
/// the future, max never looks).
///
/// Inter-arrival samples are drawn in blocks ([`Exponential::fill`])
/// and fed to the detector until its first decision — bit-identical to
/// the scalar one-draw-per-observation loop, because `fill` matches
/// sequential sampling bitwise and the block's unused tail only
/// advances a local RNG fork that is discarded anyway.
///
/// When `shared` carries a pre-resolved threshold table (the cohort
/// path), the change-point detector is built directly from it; with
/// empty resources it resolves through the cache exactly as
/// [`ChangePointDetector::new`] always has.
///
/// # Errors
///
/// Returns a contained, human-readable message for invalid probe rates
/// or detector construction failures.
pub fn probe_detection_latency(
    governor: &GovernorKind,
    seed: u64,
    shared: &SharedResources,
) -> Result<Option<f64>, String> {
    let mut rng = SimRng::seed_from(seed).fork("fleet/detect-probe");
    let probe =
        |rate: f64| Exponential::new(rate).map_err(|e| format!("detection probe rate {rate}: {e}"));
    let slow = probe(PROBE_SLOW_RATE)?;
    let fast = probe(PROBE_FAST_RATE)?;

    match governor {
        GovernorKind::Ideal | GovernorKind::MaxPerformance => Ok(None),
        GovernorKind::ChangePoint(cfg) => {
            let mut det = match &shared.threshold_table {
                Some(table) => ChangePointDetector::with_shared_table(
                    PROBE_SLOW_RATE,
                    Arc::clone(table),
                    cfg.check_interval,
                ),
                None => ChangePointDetector::new(PROBE_SLOW_RATE, cfg.clone()),
            }
            .map_err(|e| PmError::from(e).to_string())?;
            Ok(Some(PROBE_SCRATCH.with(|scratch| {
                let mut buf = scratch.borrow_mut();
                buf.resize(PROBE_PREFILL.max(PROBE_CAP), 0.0);
                slow.fill(&mut rng, &mut buf[..PROBE_PREFILL]);
                for &dt in &buf[..PROBE_PREFILL] {
                    let _ = det.observe(dt);
                }
                fast.fill(&mut rng, &mut buf[..PROBE_CAP]);
                for (n, &dt) in buf[..PROBE_CAP].iter().enumerate() {
                    if det.observe(dt).is_some() {
                        return (n + 1) as f64;
                    }
                }
                PROBE_CAP as f64
            })))
        }
        GovernorKind::ExpAverage { gain } => {
            let mut est = EmaEstimator::new(PROBE_SLOW_RATE, *gain)
                .map_err(|e| PmError::from(e).to_string())?;
            Ok(Some(PROBE_SCRATCH.with(|scratch| {
                let mut buf = scratch.borrow_mut();
                buf.resize(PROBE_PREFILL.max(PROBE_CAP), 0.0);
                slow.fill(&mut rng, &mut buf[..PROBE_PREFILL]);
                for &dt in &buf[..PROBE_PREFILL] {
                    let _ = est.observe(dt);
                }
                fast.fill(&mut rng, &mut buf[..PROBE_CAP]);
                // The EMA re-estimates continuously; "detected" is the
                // first sample where its estimate is within 10% of the
                // new rate.
                for (n, &dt) in buf[..PROBE_CAP].iter().enumerate() {
                    let _ = est.observe(dt);
                    if est.current_rate() >= 0.9 * PROBE_FAST_RATE {
                        return (n + 1) as f64;
                    }
                }
                PROBE_CAP as f64
            })))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{OnError, PolicySpec};
    use powermgr::config::DpmKind;
    use powermgr::scenario::Workload;
    use simcore::dist::Sample;

    /// The scalar reference probe: one draw per observation, early exit
    /// at the decision — the loop the block kernel replaced.
    fn reference_probe(governor: &GovernorKind, seed: u64) -> Option<f64> {
        let mut rng = SimRng::seed_from(seed).fork("fleet/detect-probe");
        let slow = Exponential::new(PROBE_SLOW_RATE).unwrap();
        let fast = Exponential::new(PROBE_FAST_RATE).unwrap();
        match governor {
            GovernorKind::Ideal | GovernorKind::MaxPerformance => None,
            GovernorKind::ChangePoint(cfg) => {
                let mut det = ChangePointDetector::new(PROBE_SLOW_RATE, cfg.clone()).unwrap();
                for _ in 0..PROBE_PREFILL {
                    let _ = det.observe(slow.sample(&mut rng));
                }
                for n in 1..=PROBE_CAP {
                    if det.observe(fast.sample(&mut rng)).is_some() {
                        return Some(n as f64);
                    }
                }
                Some(PROBE_CAP as f64)
            }
            GovernorKind::ExpAverage { gain } => {
                let mut est = EmaEstimator::new(PROBE_SLOW_RATE, *gain).unwrap();
                for _ in 0..PROBE_PREFILL {
                    let _ = est.observe(slow.sample(&mut rng));
                }
                for n in 1..=PROBE_CAP {
                    let _ = est.observe(fast.sample(&mut rng));
                    if est.current_rate() >= 0.9 * PROBE_FAST_RATE {
                        return Some(n as f64);
                    }
                }
                Some(PROBE_CAP as f64)
            }
        }
    }

    #[test]
    fn blocked_probe_matches_scalar_reference_bitwise() {
        let governors = [
            GovernorKind::quick_change_point(),
            GovernorKind::ExpAverage { gain: 0.05 },
            GovernorKind::Ideal,
            GovernorKind::MaxPerformance,
        ];
        for kind in &governors {
            let shared = SharedResources::resolve_governor(kind).unwrap();
            for seed in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
                let want = reference_probe(kind, seed);
                let via_shared = probe_detection_latency(kind, seed, &shared).unwrap();
                let via_cache =
                    probe_detection_latency(kind, seed, &SharedResources::default()).unwrap();
                assert_eq!(
                    want.map(f64::to_bits),
                    via_shared.map(f64::to_bits),
                    "{kind:?} seed {seed}: shared-table probe diverged"
                );
                assert_eq!(
                    want.map(f64::to_bits),
                    via_cache.map(f64::to_bits),
                    "{kind:?} seed {seed}: cache-path probe diverged"
                );
            }
        }
    }

    fn spec_with_policies(policies: Vec<PolicySpec>) -> FleetSpec {
        FleetSpec {
            name: "soa-test".into(),
            devices: 24,
            base_seed: 7,
            workloads: vec![Workload::Mp3("A".into()), Workload::Session],
            policies,
            faults: vec![faults::FaultPreset::Off],
            on_error: OnError::FailFast,
            assertions: None,
        }
    }

    #[test]
    fn prepare_resolves_each_change_point_policy_to_the_cached_table() {
        let kind = GovernorKind::quick_change_point();
        let spec = spec_with_policies(vec![
            PolicySpec {
                governor: kind.clone(),
                dpm: DpmKind::None,
            },
            PolicySpec {
                governor: GovernorKind::MaxPerformance,
                dpm: DpmKind::None,
            },
            PolicySpec {
                governor: kind.clone(),
                dpm: DpmKind::parse("timeout:1.0").unwrap(),
            },
        ]);
        let res = CohortResources::prepare(&spec);
        let t0 = res
            .for_policy(0)
            .threshold_table
            .as_ref()
            .expect("change-point resolves a table");
        let t2 = res
            .for_policy(2)
            .threshold_table
            .as_ref()
            .expect("change-point resolves a table");
        assert!(
            Arc::ptr_eq(t0, t2),
            "identical detector configs share one cached table"
        );
        assert!(res.for_policy(1).threshold_table.is_none());
        // Out-of-range (the reference path's pseudo-index): empty.
        assert!(res.for_policy(99).threshold_table.is_none());

        // The prepared Arc is the very table a detector would resolve.
        let GovernorKind::ChangePoint(cfg) = &kind else {
            unreachable!()
        };
        let det = ChangePointDetector::new(PROBE_SLOW_RATE, cfg.clone()).unwrap();
        assert!(Arc::ptr_eq(t0, &det.shared_table()));
    }

    #[test]
    fn cohort_key_groups_cross_product_slots() {
        let spec = spec_with_policies(vec![
            PolicySpec {
                governor: GovernorKind::MaxPerformance,
                dpm: DpmKind::None,
            },
            PolicySpec {
                governor: GovernorKind::Ideal,
                dpm: DpmKind::None,
            },
        ]);
        let combos = spec.workloads.len() * spec.policies.len() * spec.faults.len();
        assert_eq!(combos, 4);
        for device in 0..spec.devices {
            assert_eq!(
                cohort_key(&spec, device),
                (device % combos) as u64,
                "device {device}"
            );
            // Same key ⇒ same assignment slot.
            let twin = device + combos;
            let (a, b) = (spec.assignment(device), spec.assignment(twin));
            assert_eq!(cohort_key(&spec, device), cohort_key(&spec, twin));
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.policy_index, b.policy_index);
            assert_eq!(a.faults, b.faults);
        }
    }
}
