//! Fleet specification: how many devices, which workloads, which
//! policies, which fault presets — and the deterministic rule that maps
//! a device index onto one combination of the three plus a forked seed.
//!
//! A spec is usually loaded from a JSON document:
//!
//! ```json
//! {
//!   "name": "pilot",
//!   "devices": 1000,
//!   "base_seed": 42,
//!   "workloads": ["mp3:ACEFBD", "mpeg:football"],
//!   "policies": [
//!     { "governor": "change-point", "dpm": "break-even" },
//!     { "governor": "max", "dpm": "none" }
//!   ],
//!   "faults": ["off", "wlan"]
//! }
//! ```
//!
//! Devices enumerate the `workloads × policies × faults` cross product
//! round-robin (workloads vary fastest, then policies, then fault
//! presets), so any device count covers every combination as evenly as
//! possible and each cohort stays comparable.

use std::fmt;

use faults::FaultPreset;
use powermgr::config::{DpmKind, GovernorKind};
use powermgr::scenario::Workload;
use simcore::json::Json;
use simcore::rng::SimRng;

use crate::FleetError;

/// One DVS + DPM policy combination assigned to a cohort of devices.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySpec {
    /// DVS detection strategy.
    pub governor: GovernorKind,
    /// DPM policy for idle periods.
    pub dpm: DpmKind,
}

/// Upper bound on `retry(N)`: retry seeds are forked as
/// `fork_indexed("fleet/retry", device * RETRY_STRIDE + attempt)`, so
/// the attempt index must stay below the stride for streams to be
/// collision-free across devices.
pub const MAX_RETRIES: u32 = 8;

/// Seed-stream stride per device for retry attempts (see
/// [`MAX_RETRIES`]). Public so tests can assert the fork labels.
pub const RETRY_STRIDE: u64 = 16;

/// What the fleet engine does when one device's simulation fails —
/// whether by typed error or by panic (both are contained the same
/// way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnError {
    /// Abort the whole run on the first failing device (the
    /// pre-supervision behaviour, and the default).
    FailFast,
    /// Record the failure and keep going; the report is marked
    /// `partial` and summarizes survivors only.
    Continue,
    /// Retry the device up to `N` extra attempts on deterministically
    /// forked seeds, then record it as failed and keep going.
    Retry(u32),
}

impl OnError {
    /// Parses `fail_fast`, `continue`, or `retry:<n>` / `retry(<n>)`
    /// with `1 <= n <=` [`MAX_RETRIES`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the expected forms.
    pub fn parse(s: &str) -> Result<OnError, String> {
        let retry_arg = s
            .strip_prefix("retry:")
            .or_else(|| s.strip_prefix("retry(").and_then(|r| r.strip_suffix(')')));
        if let Some(n) = retry_arg {
            let n: u32 = n
                .parse()
                .ok()
                .filter(|n| (1..=MAX_RETRIES).contains(n))
                .ok_or_else(|| {
                    format!("retry policy needs a count in 1..={MAX_RETRIES}, got `{n}`")
                })?;
            return Ok(OnError::Retry(n));
        }
        match s {
            "fail_fast" => Ok(OnError::FailFast),
            "continue" => Ok(OnError::Continue),
            other => Err(format!(
                "unknown on_error policy `{other}` (expected fail_fast|continue|retry:<n>)"
            )),
        }
    }

    /// Total attempts a device may consume under this policy (1 plus
    /// any retries).
    #[must_use]
    pub fn max_attempts(self) -> u32 {
        match self {
            OnError::FailFast | OnError::Continue => 1,
            OnError::Retry(n) => 1 + n,
        }
    }
}

impl fmt::Display for OnError {
    /// Formats back to the parseable `fail_fast`/`continue`/`retry:<n>`
    /// form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnError::FailFast => f.write_str("fail_fast"),
            OnError::Continue => f.write_str("continue"),
            OnError::Retry(n) => write!(f, "retry:{n}"),
        }
    }
}

/// A complete fleet description: the device count plus the axes of the
/// workload/policy/fault cross product.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Human-readable fleet name, echoed into the report.
    pub name: String,
    /// Number of simulated devices.
    pub devices: usize,
    /// Base seed; every device forks its own stream from this.
    pub base_seed: u64,
    /// Workload axis (must be non-empty).
    pub workloads: Vec<Workload>,
    /// Policy axis (must be non-empty).
    pub policies: Vec<PolicySpec>,
    /// Fault-preset axis (must be non-empty; `[Off]` for clean runs).
    pub faults: Vec<FaultPreset>,
    /// Failure policy: what one failing device does to the run.
    pub on_error: OnError,
    /// Streaming invariant set every device is monitored against
    /// (`None`, the default, attaches no monitor and keeps the
    /// monomorphized untraced fast path).
    pub assertions: Option<trace::AssertionConfig>,
}

/// The resolved configuration of one device: its seed and its slot in
/// the workload/policy/fault cross product.
#[derive(Debug, Clone)]
pub struct DeviceAssignment<'a> {
    /// Device index within the fleet.
    pub device: usize,
    /// This device's independent RNG seed, forked from the base seed.
    pub seed: u64,
    /// Workload the device runs.
    pub workload: &'a Workload,
    /// Index into [`FleetSpec::policies`] (the cohort key).
    pub policy_index: usize,
    /// The policy itself.
    pub policy: &'a PolicySpec,
    /// Fault preset injected into the run.
    pub faults: FaultPreset,
}

impl FleetSpec {
    /// Parses a fleet spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Spec`] for malformed JSON, unknown keys,
    /// missing or mistyped fields, unknown workload/governor/dpm/fault
    /// names, or an empty axis.
    pub fn parse(text: &str) -> Result<FleetSpec, FleetError> {
        let json = Json::parse(text).map_err(|e| FleetError::Spec(format!("invalid JSON: {e}")))?;
        let Json::Obj(pairs) = &json else {
            return Err(FleetError::Spec("fleet spec must be a JSON object".into()));
        };
        for (key, _) in pairs {
            if !matches!(
                key.as_str(),
                "name"
                    | "devices"
                    | "base_seed"
                    | "workloads"
                    | "policies"
                    | "faults"
                    | "on_error"
                    | "assertions"
            ) {
                return Err(FleetError::Spec(format!(
                    "unknown key `{key}` (expected name|devices|base_seed|workloads|policies|faults|on_error|assertions)"
                )));
            }
        }

        let name = match json.get("name") {
            None => "fleet".to_string(),
            Some(v) => v
                .as_str()
                .ok_or_else(|| FleetError::Spec("`name` must be a string".into()))?
                .to_string(),
        };
        let devices = json
            .get("devices")
            .ok_or_else(|| FleetError::Spec("missing required key `devices`".into()))?
            .as_u64()
            .ok_or_else(|| FleetError::Spec("`devices` must be a non-negative integer".into()))?
            as usize;
        let base_seed = match json.get("base_seed") {
            None => 42,
            Some(v) => v.as_u64().ok_or_else(|| {
                FleetError::Spec("`base_seed` must be a non-negative integer".into())
            })?,
        };

        let workloads = string_axis(&json, "workloads")?
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Workload::parse(s).map_err(|e| FleetError::Spec(format!("workloads[{i}]: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let policy_items = json
            .get("policies")
            .ok_or_else(|| FleetError::Spec("missing required key `policies`".into()))?
            .as_array()
            .ok_or_else(|| FleetError::Spec("`policies` must be an array of objects".into()))?;
        let mut policies = Vec::with_capacity(policy_items.len());
        for (i, item) in policy_items.iter().enumerate() {
            let Json::Obj(fields) = item else {
                return Err(FleetError::Spec(format!(
                    "policies[{i}] must be an object with `governor` and `dpm` keys"
                )));
            };
            for (key, _) in fields {
                if !matches!(key.as_str(), "governor" | "dpm") {
                    return Err(FleetError::Spec(format!(
                        "policies[{i}]: unknown key `{key}` (expected governor|dpm)"
                    )));
                }
            }
            let governor = match item.get("governor") {
                None => GovernorKind::change_point(),
                Some(v) => {
                    let s = v.as_str().ok_or_else(|| {
                        FleetError::Spec(format!("policies[{i}].governor must be a string"))
                    })?;
                    GovernorKind::parse(s)
                        .map_err(|e| FleetError::Spec(format!("policies[{i}]: {e}")))?
                }
            };
            let dpm = match item.get("dpm") {
                None => DpmKind::None,
                Some(v) => {
                    let s = v.as_str().ok_or_else(|| {
                        FleetError::Spec(format!("policies[{i}].dpm must be a string"))
                    })?;
                    DpmKind::parse(s)
                        .map_err(|e| FleetError::Spec(format!("policies[{i}]: {e}")))?
                }
            };
            policies.push(PolicySpec { governor, dpm });
        }

        let faults = match json.get("faults") {
            None => vec![FaultPreset::Off],
            Some(_) => string_axis(&json, "faults")?
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    FaultPreset::parse(s).map_err(|e| FleetError::Spec(format!("faults[{i}]: {e}")))
                })
                .collect::<Result<Vec<_>, _>>()?,
        };

        let on_error = match json.get("on_error") {
            None => OnError::FailFast,
            Some(v) => {
                let s = v
                    .as_str()
                    .ok_or_else(|| FleetError::Spec("`on_error` must be a string".into()))?;
                OnError::parse(s).map_err(|e| FleetError::Spec(format!("on_error: {e}")))?
            }
        };

        // Strict like every other block: unknown keys, missing fields,
        // and invalid (negative/NaN) bounds are all hard errors.
        let assertions = match json.get("assertions") {
            None => None,
            Some(v) => Some(trace::AssertionConfig::from_json(v).map_err(FleetError::Spec)?),
        };

        let spec = FleetSpec {
            name,
            devices,
            base_seed,
            workloads,
            policies,
            faults,
            on_error,
            assertions,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the structural invariants the engine relies on.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Spec`] when `devices` is zero or any axis
    /// of the cross product is empty.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.devices == 0 {
            return Err(FleetError::Spec(
                "`devices` must be positive (an empty fleet has no report)".into(),
            ));
        }
        if self.workloads.is_empty() {
            return Err(FleetError::Spec("`workloads` must be non-empty".into()));
        }
        if self.policies.is_empty() {
            return Err(FleetError::Spec("`policies` must be non-empty".into()));
        }
        if self.faults.is_empty() {
            return Err(FleetError::Spec(
                "`faults` must be non-empty (use [\"off\"] for clean runs)".into(),
            ));
        }
        if let OnError::Retry(n) = self.on_error {
            if n == 0 || n > MAX_RETRIES {
                return Err(FleetError::Spec(format!(
                    "`on_error` retry count must be in 1..={MAX_RETRIES}, got {n}"
                )));
            }
        }
        if let Some(assertions) = &self.assertions {
            assertions.validate().map_err(FleetError::Spec)?;
        }
        Ok(())
    }

    /// The seed of device `device`: a labelled, indexed fork of the
    /// base seed, so every device draws from an independent stream and
    /// the mapping is stable under any execution order.
    #[must_use]
    pub fn device_seed(&self, device: usize) -> u64 {
        SimRng::seed_from(self.base_seed)
            .fork_indexed("fleet/device", device as u64)
            .seed()
    }

    /// The seed of retry `attempt` (1-based) of device `device`: a
    /// labelled fork indexed by `device * RETRY_STRIDE + attempt`, so
    /// every (device, attempt) pair draws an independent stream that is
    /// a pure function of the two indices — report bytes stay identical
    /// at any `--jobs` count even when retries fire.
    ///
    /// Attempt 0 is the regular [`Self::device_seed`].
    #[must_use]
    pub fn retry_seed(&self, device: usize, attempt: u32) -> u64 {
        if attempt == 0 {
            return self.device_seed(device);
        }
        SimRng::seed_from(self.base_seed)
            .fork_indexed(
                "fleet/retry",
                device as u64 * RETRY_STRIDE + u64::from(attempt),
            )
            .seed()
    }

    /// Resolves device `device` to its slot in the cross product.
    ///
    /// Workloads vary fastest, then policies, then fault presets;
    /// indices past the full cross product wrap around.
    #[must_use]
    pub fn assignment(&self, device: usize) -> DeviceAssignment<'_> {
        let (w, p, f) = (self.workloads.len(), self.policies.len(), self.faults.len());
        let idx = device % (w * p * f);
        let workload = idx % w;
        let policy_index = (idx / w) % p;
        let fault = idx / (w * p);
        DeviceAssignment {
            device,
            seed: self.device_seed(device),
            workload: &self.workloads[workload],
            policy_index,
            policy: &self.policies[policy_index],
            faults: self.faults[fault],
        }
    }
}

/// Reads a required non-empty array-of-strings field.
fn string_axis<'a>(json: &'a Json, key: &str) -> Result<Vec<&'a str>, FleetError> {
    let items = json
        .get(key)
        .ok_or_else(|| FleetError::Spec(format!("missing required key `{key}`")))?
        .as_array()
        .ok_or_else(|| FleetError::Spec(format!("`{key}` must be an array of strings")))?;
    items
        .iter()
        .enumerate()
        .map(|(i, v)| {
            v.as_str()
                .ok_or_else(|| FleetError::Spec(format!("{key}[{i}] must be a string")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "name": "pilot",
        "devices": 12,
        "base_seed": 7,
        "workloads": ["mp3:AB", "session"],
        "policies": [
            { "governor": "change-point", "dpm": "break-even" },
            { "governor": "max", "dpm": "none" },
            { "governor": "ema:0.03", "dpm": "timeout:1.5" }
        ],
        "faults": ["off", "wlan"]
    }"#;

    #[test]
    fn parses_a_full_spec_and_enumerates_the_cross_product() {
        let spec = FleetSpec::parse(SPEC).expect("valid spec");
        assert_eq!(spec.name, "pilot");
        assert_eq!(spec.devices, 12);
        assert_eq!(spec.base_seed, 7);
        assert_eq!(spec.workloads.len(), 2);
        assert_eq!(spec.policies.len(), 3);
        assert_eq!(spec.faults.len(), 2);

        // Workloads vary fastest, then policies, then faults; index 12
        // wraps back to the first combination (with a fresh seed).
        let a0 = spec.assignment(0);
        assert_eq!(a0.workload.to_string(), "mp3:AB");
        assert_eq!(a0.policy_index, 0);
        assert_eq!(a0.faults, FaultPreset::Off);
        let a1 = spec.assignment(1);
        assert_eq!(a1.workload.to_string(), "session");
        assert_eq!(a1.policy_index, 0);
        let a2 = spec.assignment(2);
        assert_eq!(a2.policy_index, 1);
        let a6 = spec.assignment(6);
        assert_eq!(a6.faults, FaultPreset::Wlan);
        let a12 = spec.assignment(12);
        assert_eq!(a12.workload.to_string(), "mp3:AB");
        assert_eq!(a12.policy_index, 0);
        assert_eq!(a12.faults, FaultPreset::Off);
        assert_ne!(a12.seed, a0.seed, "wrapped device must keep its own seed");

        // Seeds are pairwise distinct and stable.
        let seeds: Vec<u64> = (0..12).map(|i| spec.device_seed(i)).collect();
        for (i, s) in seeds.iter().enumerate() {
            assert_eq!(
                seeds.iter().filter(|t| *t == s).count(),
                1,
                "seed {i} repeats"
            );
        }
        assert_eq!(
            seeds,
            (0..12).map(|i| spec.device_seed(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn defaults_fill_in_name_seed_and_faults() {
        let spec =
            FleetSpec::parse(r#"{ "devices": 3, "workloads": ["session"], "policies": [{}] }"#)
                .expect("minimal spec");
        assert_eq!(spec.name, "fleet");
        assert_eq!(spec.base_seed, 42);
        assert_eq!(spec.faults, vec![FaultPreset::Off]);
        assert_eq!(
            spec.policies[0],
            PolicySpec {
                governor: GovernorKind::change_point(),
                dpm: DpmKind::None,
            }
        );
    }

    #[test]
    fn rejects_malformed_specs_with_actionable_errors() {
        let cases: &[(&str, &str)] = &[
            ("not json", "invalid JSON"),
            ("[1, 2]", "must be a JSON object"),
            (
                r#"{ "devices": 1, "workloads": ["session"], "policies": [{}], "extra": 1 }"#,
                "unknown key `extra`",
            ),
            (
                r#"{ "workloads": ["session"], "policies": [{}] }"#,
                "missing required key `devices`",
            ),
            (
                r#"{ "devices": 0, "workloads": ["session"], "policies": [{}] }"#,
                "`devices` must be positive",
            ),
            (
                r#"{ "devices": 1, "workloads": [], "policies": [{}] }"#,
                "`workloads` must be non-empty",
            ),
            (
                r#"{ "devices": 1, "workloads": ["session"], "policies": [] }"#,
                "`policies` must be non-empty",
            ),
            (
                r#"{ "devices": 1, "workloads": ["flac"], "policies": [{}] }"#,
                "workloads[0]: unknown workload",
            ),
            (
                r#"{ "devices": 1, "workloads": ["session"], "policies": [{ "governor": "psychic" }] }"#,
                "policies[0]: unknown governor `psychic`",
            ),
            (
                r#"{ "devices": 1, "workloads": ["session"], "policies": [{ "dpm": "nap" }] }"#,
                "policies[0]: unknown dpm `nap`",
            ),
            (
                r#"{ "devices": 1, "workloads": ["session"], "policies": [{ "sleep": 1 }] }"#,
                "policies[0]: unknown key `sleep`",
            ),
            (
                r#"{ "devices": 1, "workloads": ["session"], "policies": [{}], "faults": ["gremlins"] }"#,
                "faults[0]: unknown fault preset",
            ),
            (
                r#"{ "devices": 1, "workloads": ["session"], "policies": [{}], "faults": [] }"#,
                "`faults` must be non-empty",
            ),
        ];
        for (text, want) in cases {
            let err = FleetSpec::parse(text).expect_err(text);
            let msg = err.to_string();
            assert!(
                msg.contains(want),
                "spec {text:?}: got {msg:?}, want {want:?}"
            );
        }
    }

    #[test]
    fn parses_an_assertions_block_and_rejects_bad_ones_strictly() {
        let spec = FleetSpec::parse(
            r#"{
                "devices": 2, "workloads": ["mp3:A"], "policies": [{}],
                "assertions": {
                    "delay": { "bound_s": 0.3, "tolerance": 1.0 },
                    "oscillation": { "max_switches": 10, "window_s": 1.0 },
                    "occupancy": { "max": 64 },
                    "energy_monotone": true
                }
            }"#,
        )
        .expect("valid assertions block");
        let assertions = spec.assertions.expect("block parsed");
        assert_eq!(assertions.delay.unwrap().bound_s, 0.3);
        assert_eq!(assertions.oscillation.unwrap().max_switches, 10);

        // No block → no monitoring.
        let bare =
            FleetSpec::parse(r#"{ "devices": 1, "workloads": ["mp3:A"], "policies": [{}] }"#)
                .unwrap();
        assert!(bare.assertions.is_none());

        let bad: &[(&str, &str)] = &[
            (
                r#"{"delay": {"bound_s": 0.3, "slack": 2}}"#,
                "unknown key `slack`",
            ),
            (r#"{"watchdog": {}}"#, "unknown key `watchdog`"),
            (
                r#"{"delay": {"bound_s": 0.3, "tolerance": -0.5}}"#,
                "tolerance must be finite and >= 0",
            ),
            (r#"{"delay": {"bound_s": -1.0}}"#, "bound_s must be finite"),
            (
                r#"{"oscillation": {"max_switches": 0, "window_s": 1.0}}"#,
                "max_switches must be >= 1",
            ),
            (
                r#"{"occupancy": {"max": 1.5}}"#,
                "must be a non-negative integer",
            ),
            (r#"[]"#, "assertions must be an object"),
        ];
        for (block, want) in bad {
            let text = format!(
                r#"{{ "devices": 1, "workloads": ["mp3:A"], "policies": [{{}}], "assertions": {block} }}"#
            );
            let msg = FleetSpec::parse(&text).expect_err(&text).to_string();
            assert!(msg.contains(want), "{block}: got {msg:?}, want {want:?}");
        }
    }
}
