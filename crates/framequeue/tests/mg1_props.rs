//! Differential and edge-case properties of the M/G/1 queue model.
//!
//! The Pollaczek–Khinchine formula with `c² = 1` must agree with the
//! M/M/1 closed form everywhere in the stable region — not just at the
//! three spot-check points of the unit tests — and the guard rails must
//! hold at the edges: zero/invalid rates are rejected, vanishing
//! utilization degenerates to the bare service time, and `ρ → 1` is a
//! typed `Unstable` error, never `∞` or `NaN` leaking into the DVS
//! policy's frequency inversion.

use framequeue::{mg1, mm1, QueueError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Differential agreement: exponential-service M/G/1 is M/M/1.
    #[test]
    fn pk_with_unit_scv_matches_mm1_everywhere(
        lam in 0.1f64..200.0,
        headroom in 1.0001f64..50.0,
    ) {
        let mu = lam * headroom; // stable by construction
        let pk = mg1::mean_delay(lam, mu, 1.0).expect("stable M/G/1");
        let mm = mm1::mean_delay(lam, mu).expect("stable M/M/1");
        prop_assert!(
            (pk - mm).abs() < 1e-9,
            "λ={lam}, μ={mu}: P-K {pk} vs M/M/1 {mm}"
        );
    }

    /// The two inversions agree too: the service rate P-K bisection
    /// finds for `c² = 1` matches the M/M/1 closed form
    /// `λ_D = λ_U + 1/W`.
    #[test]
    fn pk_inversion_with_unit_scv_matches_mm1_closed_form(
        lam in 0.1f64..100.0,
        target in 0.01f64..2.0,
    ) {
        let pk = mg1::service_rate_for_delay(lam, target, 1.0).expect("invertible");
        let mm = mm1::service_rate_for_delay(lam, target).expect("invertible");
        prop_assert!(
            (pk - mm).abs() / mm < 1e-6,
            "λ={lam}, W={target}: P-K {pk} vs M/M/1 {mm}"
        );
    }

    /// Stability guard: anywhere at or beyond ρ = 1 the model returns
    /// the typed `Unstable` error — it never fabricates a non-finite
    /// delay.
    #[test]
    fn unstable_region_is_a_typed_error_not_infinity(
        lam in 0.1f64..100.0,
        excess in 0.0f64..10.0,
        scv in 0.0f64..4.0,
    ) {
        let mu = lam - excess.min(lam * 0.5); // μ ≤ λ: unstable or invalid
        let result = mg1::mean_delay(lam, mu, scv);
        match result {
            Err(QueueError::Unstable { arrival_rate, service_rate }) => {
                prop_assert!(arrival_rate >= service_rate);
            }
            Err(QueueError::InvalidParameter { .. }) => {} // μ hit 0 exactly
            Ok(w) => prop_assert!(
                false,
                "λ={lam}, μ={mu} accepted with delay {w}"
            ),
        }
    }

    /// Approaching ρ = 1 from below stays finite and monotone: delay
    /// only grows as the stability margin shrinks.
    #[test]
    fn delay_is_finite_and_monotone_near_saturation(
        lam in 1.0f64..100.0,
        scv in 0.0f64..4.0,
    ) {
        let mut last = 0.0f64;
        for margin in [1e-1, 1e-3, 1e-6, 1e-9] {
            let mu = lam * (1.0 + margin);
            let w = mg1::mean_delay(lam, mu, scv).expect("still stable");
            prop_assert!(w.is_finite(), "margin {margin}: delay {w}");
            prop_assert!(w >= last, "delay shrank as ρ → 1");
            last = w;
        }
    }
}

// A heavier sweep of the same differential property, for the nightly
// `--include-ignored` run.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(20_000))]

    #[test]
    #[ignore = "nightly: 50x the default case count"]
    fn pk_mm1_agreement_heavy(
        lam in 0.001f64..2000.0,
        headroom in 1.000001f64..500.0,
    ) {
        let mu = lam * headroom;
        let pk = mg1::mean_delay(lam, mu, 1.0).expect("stable M/G/1");
        let mm = mm1::mean_delay(lam, mu).expect("stable M/M/1");
        prop_assert!(
            (pk - mm).abs() < 1e-9 * mm.max(1.0),
            "λ={lam}, μ={mu}: P-K {pk} vs M/M/1 {mm}"
        );
    }
}

/// Zero utilization is not silently mapped to `W = 1/λ_D`: a zero
/// arrival rate is rejected outright (the estimator never reports 0),
/// while a vanishingly small one degenerates smoothly to the bare
/// service time.
#[test]
fn zero_and_vanishing_utilization() {
    for scv in [0.0, 1.0, 2.5] {
        assert!(matches!(
            mg1::mean_delay(0.0, 10.0, scv),
            Err(QueueError::InvalidParameter {
                name: "arrival_rate",
                ..
            })
        ));
        assert!(matches!(
            mg1::mean_delay(-3.0, 10.0, scv),
            Err(QueueError::InvalidParameter {
                name: "arrival_rate",
                ..
            })
        ));
        let w = mg1::mean_delay(1e-300, 10.0, scv).expect("stable");
        assert!(
            (w - 0.1).abs() < 1e-12,
            "scv {scv}: ρ → 0 should give 1/λ_D, got {w}"
        );
    }
}

/// The ρ → 1 guard is exact: one ULP below the service rate is still a
/// value, equality is already an `Unstable` error.
#[test]
fn saturation_boundary_is_exact() {
    let mu = 30.0f64;
    let just_below = f64::from_bits(mu.to_bits() - 1);
    let w = mg1::mean_delay(just_below, mu, 1.0).expect("one ULP of margin is stable");
    assert!(w.is_finite() && w > 0.0);
    assert!(matches!(
        mg1::mean_delay(mu, mu, 1.0),
        Err(QueueError::Unstable { .. })
    ));
}

/// Non-finite parameters are invalid-parameter errors in every slot,
/// including the `scv` that only M/G/1 has.
#[test]
fn non_finite_inputs_are_rejected() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert!(mg1::mean_delay(bad, 10.0, 1.0).is_err());
        assert!(mg1::mean_delay(5.0, bad, 1.0).is_err());
        assert!(mg1::mean_delay(5.0, 10.0, bad).is_err());
        assert!(mg1::service_rate_for_delay(bad, 0.1, 1.0).is_err());
        assert!(mg1::service_rate_for_delay(5.0, bad, 1.0).is_err());
        assert!(mg1::service_rate_for_delay(5.0, 0.1, bad).is_err());
    }
    assert!(mg1::mean_delay(5.0, 10.0, -0.1).is_err());
}
