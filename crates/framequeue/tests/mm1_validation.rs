//! Validation of the analytical queue models against a discrete-event
//! simulation of the actual queue — the ground truth behind the DVS
//! policy's Eq. 5 inversion.

use framequeue::{mg1, mm1};
use proptest::prelude::*;
use simcore::dist::{Exponential, Sample, Uniform};
use simcore::rng::SimRng;
use simcore::stats::BatchMeans;

/// Simulates a single-server FIFO queue via the Lindley recursion:
/// `depart_i = max(arrive_i, depart_{i−1}) + service_i`. Returns the
/// batch-means accumulator over the per-job times in system (batch size
/// 1000, so autocorrelation is absorbed into the CI machinery).
fn simulate_queue_bm<A: Sample, S: Sample>(
    arrivals: &A,
    services: &S,
    n: usize,
    seed: u64,
) -> BatchMeans {
    let mut rng_a = SimRng::seed_from(seed).fork("arrivals");
    let mut rng_s = SimRng::seed_from(seed).fork("services");
    let mut bm = BatchMeans::new(1000);
    let mut t_arrive = 0.0f64;
    let mut depart = 0.0f64;
    for _ in 0..n {
        t_arrive += arrivals.sample(&mut rng_a);
        depart = t_arrive.max(depart) + services.sample(&mut rng_s);
        bm.push(depart - t_arrive);
    }
    bm
}

/// Mean time in system over `n` jobs.
fn simulate_queue<A: Sample, S: Sample>(arrivals: &A, services: &S, n: usize, seed: u64) -> f64 {
    simulate_queue_bm(arrivals, services, n, seed).mean()
}

#[test]
fn mm1_formula_matches_simulation() {
    for &(lam, mu) in &[(20.0, 30.0), (10.0, 40.0), (25.0, 28.0)] {
        let arrivals = Exponential::new(lam).expect("valid");
        let services = Exponential::new(mu).expect("valid");
        let bm = simulate_queue_bm(&arrivals, &services, 200_000, 7);
        let analytical = mm1::mean_delay(lam, mu).expect("stable");
        let rel = (bm.mean() - analytical).abs() / analytical;
        assert!(
            rel < 0.05,
            "λ={lam}, μ={mu}: simulated {:.4} vs analytical {analytical:.4}",
            bm.mean()
        );
        // Statistically principled check: the analytical value sits
        // within (a small multiple of) the batch-means 95% interval.
        let half = bm.ci95_halfwidth().expect("many batches");
        assert!(
            (bm.mean() - analytical).abs() < 4.0 * half,
            "λ={lam}, μ={mu}: |{:.4} − {analytical:.4}| > 4×{half:.4}",
            bm.mean()
        );
    }
}

#[test]
fn mg1_formula_matches_simulation_for_uniform_service() {
    // Uniform service on [a, b]: mean (a+b)/2, SCV = (b−a)²/12 / mean².
    let (lam, a, b) = (20.0, 0.02, 0.04);
    let mean = 0.5 * (a + b);
    let scv = (b - a) * (b - a) / 12.0 / (mean * mean);
    let arrivals = Exponential::new(lam).expect("valid");
    let services = Uniform::new(a, b).expect("valid");
    let simulated = simulate_queue(&arrivals, &services, 200_000, 8);
    let analytical = mg1::mean_delay(lam, 1.0 / mean, scv).expect("stable");
    let rel = (simulated - analytical).abs() / analytical;
    assert!(
        rel < 0.05,
        "simulated {simulated:.4} vs P-K {analytical:.4} (scv {scv:.3})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The M/M/1 formula tracks simulation across random stable
    /// parameter choices.
    #[test]
    fn mm1_tracks_simulation_everywhere(
        lam in 5.0f64..40.0,
        headroom in 1.2f64..4.0,
        seed in 0u64..100,
    ) {
        let mu = lam * headroom;
        let arrivals = Exponential::new(lam).expect("valid");
        let services = Exponential::new(mu).expect("valid");
        let simulated = simulate_queue(&arrivals, &services, 60_000, seed);
        let analytical = mm1::mean_delay(lam, mu).expect("stable");
        let rel = (simulated - analytical).abs() / analytical;
        prop_assert!(rel < 0.15, "λ={lam:.1}, μ={mu:.1}: {simulated:.4} vs {analytical:.4}");
    }
}
