//! Operational FIFO frame buffer with delay and occupancy statistics.
//!
//! The SmartBadge buffers arriving frames until the decoder pulls them
//! (paper Section 2.3: frames "do not have priority", so the queue is a
//! plain FIFO of frames awaiting service). [`FrameBuffer`] additionally
//! records the statistics the experiments report: per-frame queueing
//! delay and the time-weighted mean/peak occupancy.

use simcore::stats::{OnlineStats, TimeWeighted};
use simcore::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// What a bounded buffer does when a frame arrives while it is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPolicy {
    /// Reject the arriving frame; queued frames are untouched.
    DropNewest,
    /// Evict the oldest queued frame to make room for the arrival
    /// (fresher data is worth more in a streaming decoder).
    DropOldest,
}

/// A FIFO buffer of frames with built-in statistics.
///
/// Generic over the frame payload so any crate can use it without
/// circular dependencies.
///
/// # Example
///
/// ```
/// use framequeue::FrameBuffer;
/// use simcore::time::{SimDuration, SimTime};
///
/// let mut buf: FrameBuffer<u32> = FrameBuffer::new();
/// let t0 = SimTime::ZERO;
/// buf.push(t0, 7);
/// let t1 = t0 + SimDuration::from_millis(40);
/// let (frame, waited) = buf.pop(t1).expect("one frame queued");
/// assert_eq!(frame, 7);
/// assert_eq!(waited, SimDuration::from_millis(40));
/// ```
#[derive(Debug, Clone)]
pub struct FrameBuffer<T> {
    queue: VecDeque<(SimTime, T)>,
    delays: OnlineStats,
    occupancy: TimeWeighted,
    last_change: SimTime,
    peak: usize,
    total_pushed: u64,
    total_popped: u64,
    capacity: Option<usize>,
    policy: DropPolicy,
    total_dropped: u64,
}

impl<T> FrameBuffer<T> {
    /// Creates an empty, unbounded buffer.
    #[must_use]
    pub fn new() -> Self {
        FrameBuffer {
            queue: VecDeque::new(),
            delays: OnlineStats::new(),
            occupancy: TimeWeighted::new(),
            last_change: SimTime::ZERO,
            peak: 0,
            total_pushed: 0,
            total_popped: 0,
            capacity: None,
            policy: DropPolicy::DropNewest,
            total_dropped: 0,
        }
    }

    /// Creates an empty buffer holding at most `capacity` frames; an
    /// [`offer`](Self::offer) to a full buffer resolves via `policy`.
    ///
    /// A `capacity` of zero drops every offered frame.
    #[must_use]
    pub fn bounded(capacity: usize, policy: DropPolicy) -> Self {
        FrameBuffer {
            capacity: Some(capacity),
            policy,
            ..FrameBuffer::new()
        }
    }

    /// Enqueues a frame arriving at `now`.
    ///
    /// Unconditional: ignores any capacity bound (use
    /// [`offer`](Self::offer) to respect it).
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the buffer's last recorded event (time
    /// must move forward).
    pub fn push(&mut self, now: SimTime, frame: T) {
        self.advance(now);
        self.queue.push_back((now, frame));
        self.peak = self.peak.max(self.queue.len());
        self.total_pushed += 1;
    }

    /// Offers a frame arriving at `now`, respecting the capacity bound.
    ///
    /// Returns the frame that was dropped, if any: the offered frame
    /// itself under [`DropPolicy::DropNewest`], or the evicted oldest
    /// frame under [`DropPolicy::DropOldest`]. Unbounded buffers never
    /// drop. Dropped frames are counted in
    /// [`total_dropped`](Self::total_dropped) and do not enter the delay
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the buffer's last recorded event.
    pub fn offer(&mut self, now: SimTime, frame: T) -> Option<T> {
        let Some(cap) = self.capacity else {
            self.push(now, frame);
            return None;
        };
        if self.queue.len() < cap {
            self.push(now, frame);
            return None;
        }
        self.advance(now);
        self.total_dropped += 1;
        match self.policy {
            DropPolicy::DropNewest => Some(frame),
            DropPolicy::DropOldest => {
                let evicted = self.queue.pop_front().map(|(_, f)| f);
                self.queue.push_back((now, frame));
                self.total_pushed += 1;
                evicted
            }
        }
    }

    /// The capacity bound, if any.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Total frames dropped by [`offer`](Self::offer) on a full buffer.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.total_dropped
    }

    /// Dequeues the oldest frame at `now`, returning it with the time it
    /// spent waiting. Returns `None` if the buffer is empty.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the buffer's last recorded event.
    pub fn pop(&mut self, now: SimTime) -> Option<(T, SimDuration)> {
        self.advance(now);
        let (arrived, frame) = self.queue.pop_front()?;
        let waited = now.saturating_since(arrived);
        self.delays.push(waited.as_secs_f64());
        self.total_popped += 1;
        Some((frame, waited))
    }

    /// Arrival time of the oldest queued frame, if any.
    #[must_use]
    pub fn peek_arrival(&self) -> Option<SimTime> {
        self.queue.front().map(|(t, _)| *t)
    }

    /// Number of frames currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` if no frames are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Largest occupancy seen so far.
    #[must_use]
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// Total frames ever pushed.
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Total frames ever popped.
    #[must_use]
    pub fn total_popped(&self) -> u64 {
        self.total_popped
    }

    /// Statistics of per-frame queueing delays (seconds), over popped
    /// frames.
    #[must_use]
    pub fn delay_stats(&self) -> &OnlineStats {
        &self.delays
    }

    /// Time-weighted mean occupancy up to the last recorded event.
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        self.occupancy.mean()
    }

    /// Folds the elapsed interval into the occupancy integral; called
    /// automatically by `push`/`pop`, and callable at the end of a run to
    /// account for the final quiet interval.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last recorded event.
    pub fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.last_change,
            "buffer time must not go backwards: {now} < {last}",
            last = self.last_change
        );
        let dt = now - self.last_change;
        if !dt.is_zero() {
            self.occupancy.add(self.queue.len() as f64, dt);
            self.last_change = now;
        }
    }
}

impl<T> Default for FrameBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn fifo_order() {
        let mut b = FrameBuffer::new();
        b.push(t(0), 'a');
        b.push(t(1), 'b');
        b.push(t(2), 'c');
        assert_eq!(b.pop(t(3)).unwrap().0, 'a');
        assert_eq!(b.pop(t(4)).unwrap().0, 'b');
        assert_eq!(b.pop(t(5)).unwrap().0, 'c');
        assert!(b.pop(t(6)).is_none());
    }

    #[test]
    fn waiting_time_measured() {
        let mut b = FrameBuffer::new();
        b.push(t(10), 1u8);
        let (_, waited) = b.pop(t(25)).unwrap();
        assert_eq!(waited, SimDuration::from_millis(15));
        assert!((b.delay_stats().mean() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn occupancy_statistics() {
        let mut b = FrameBuffer::new();
        b.push(t(0), 0u8); // 1 frame from 0..10
        b.push(t(10), 1); // 2 frames from 10..20
        b.pop(t(20)); // 1 frame from 20..40
        b.pop(t(40)); // 0 frames afterwards
        b.advance(t(50));
        // integral = 1*10 + 2*10 + 1*20 + 0*10 = 50 frame·ms over 50 ms
        assert!((b.mean_occupancy() - 1.0).abs() < 1e-9);
        assert_eq!(b.peak_occupancy(), 2);
    }

    #[test]
    fn counters_track_totals() {
        let mut b = FrameBuffer::new();
        for i in 0..5 {
            b.push(t(i), i);
        }
        for i in 5..8 {
            b.pop(t(i));
        }
        assert_eq!(b.total_pushed(), 5);
        assert_eq!(b.total_popped(), 3);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn peek_arrival_sees_oldest() {
        let mut b = FrameBuffer::new();
        assert_eq!(b.peek_arrival(), None);
        b.push(t(3), ());
        b.push(t(7), ());
        assert_eq!(b.peek_arrival(), Some(t(3)));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_cannot_go_backwards() {
        let mut b = FrameBuffer::new();
        b.push(t(10), ());
        b.push(t(5), ());
    }

    #[test]
    fn zero_wait_pop() {
        let mut b = FrameBuffer::new();
        b.push(t(4), ());
        let (_, waited) = b.pop(t(4)).unwrap();
        assert_eq!(waited, SimDuration::ZERO);
    }

    #[test]
    fn unbounded_offer_never_drops() {
        let mut b = FrameBuffer::new();
        for i in 0..100 {
            assert_eq!(b.offer(t(i), i), None);
        }
        assert_eq!(b.total_dropped(), 0);
        assert_eq!(b.capacity(), None);
        assert_eq!(b.len(), 100);
    }

    #[test]
    fn drop_newest_rejects_the_arrival() {
        let mut b = FrameBuffer::bounded(2, DropPolicy::DropNewest);
        assert_eq!(b.offer(t(0), 'a'), None);
        assert_eq!(b.offer(t(1), 'b'), None);
        assert_eq!(b.offer(t(2), 'c'), Some('c'));
        assert_eq!(b.total_dropped(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.pop(t(3)).unwrap().0, 'a');
        // Room again: the next offer is accepted.
        assert_eq!(b.offer(t(4), 'd'), None);
        assert_eq!(b.capacity(), Some(2));
    }

    #[test]
    fn drop_oldest_evicts_the_queue_head() {
        let mut b = FrameBuffer::bounded(2, DropPolicy::DropOldest);
        b.offer(t(0), 'a');
        b.offer(t(1), 'b');
        assert_eq!(b.offer(t(2), 'c'), Some('a'));
        assert_eq!(b.total_dropped(), 1);
        assert_eq!(b.pop(t(3)).unwrap().0, 'b');
        assert_eq!(b.pop(t(4)).unwrap().0, 'c');
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut b = FrameBuffer::bounded(0, DropPolicy::DropNewest);
        assert_eq!(b.offer(t(0), 1u8), Some(1));
        assert_eq!(b.offer(t(1), 2u8), Some(2));
        assert_eq!(b.total_dropped(), 2);
        assert!(b.is_empty());
    }

    #[test]
    fn dropped_frames_skip_delay_statistics() {
        let mut b = FrameBuffer::bounded(1, DropPolicy::DropNewest);
        b.offer(t(0), 'a');
        b.offer(t(1), 'b'); // dropped
        b.pop(t(10));
        assert_eq!(b.delay_stats().count(), 1);
        assert_eq!(b.total_pushed(), 1);
        assert_eq!(b.total_popped(), 1);
    }
}
