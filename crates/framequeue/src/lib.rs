#![warn(missing_docs)]
//! Frame buffer and queueing-theory models.
//!
//! Portable streaming devices buffer frames that have arrived over the
//! wireless link but have not been decoded yet (paper Section 2.3). Two
//! views of that buffer live here:
//!
//! * [`buffer`] — the operational FIFO [`buffer::FrameBuffer`] used by the
//!   system simulator, with delay and occupancy statistics,
//! * [`mm1`] — the analytical M/M/1 model the DVS policy uses to pick the
//!   service (decode) rate that holds the mean buffered-frame delay
//!   constant (paper Eq. 5),
//! * [`mg1`] — the M/G/1 Pollaczek–Khinchine extension used by the
//!   ablation study of the queue-model choice (the paper notes that for
//!   general distributions "M/M/1 queue model is not applicable, so
//!   another method of frequency and voltage adjustment is needed").
//!
//! # Example
//!
//! ```
//! use framequeue::mm1;
//!
//! # fn main() -> Result<(), framequeue::QueueError> {
//! // Frames arrive at 24 fr/s; we want 0.1 s mean total delay.
//! let required = mm1::service_rate_for_delay(24.0, 0.1)?;
//! assert!((required - 34.0).abs() < 1e-9); // λ_D = λ_U + 1/delay
//! let delay = mm1::mean_delay(24.0, required)?;
//! assert!((delay - 0.1).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod buffer;
pub mod mg1;
pub mod mm1;

pub use buffer::{DropPolicy, FrameBuffer};

use std::error::Error;
use std::fmt;

/// Errors from the queueing models.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueError {
    /// A rate or delay parameter was non-positive or non-finite.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The queue is unstable: the service rate does not exceed the
    /// arrival rate, so no finite mean delay exists.
    Unstable {
        /// Arrival rate λ_U, frames/second.
        arrival_rate: f64,
        /// Service rate λ_D, frames/second.
        service_rate: f64,
    },
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::InvalidParameter { name, value } => {
                write!(f, "invalid queue parameter `{name}` = {value}")
            }
            QueueError::Unstable {
                arrival_rate,
                service_rate,
            } => write!(
                f,
                "unstable queue: service rate {service_rate} must exceed arrival rate {arrival_rate}"
            ),
        }
    }
}

impl Error for QueueError {}

pub(crate) fn check_rate(name: &'static str, value: f64) -> Result<f64, QueueError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(QueueError::InvalidParameter { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = QueueError::Unstable {
            arrival_rate: 30.0,
            service_rate: 20.0,
        };
        assert!(e.to_string().contains("unstable"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueueError>();
    }
}
