//! M/G/1 queue (Pollaczek–Khinchine) extension.
//!
//! The paper's frequency-setting policy assumes exponential service times
//! so the M/M/1 Eq. 5 applies, and notes that "when general distributions
//! are used, M/M/1 queue model is not applicable, so another method of
//! frequency and voltage adjustment is needed". This module supplies that
//! other method: for Poisson arrivals and a *general* service-time
//! distribution with mean `1/λ_D` and squared coefficient of variation
//! `c²`, the Pollaczek–Khinchine formula gives the mean total delay
//!
//! ```text
//! W = 1/λ_D + ρ (1 + c²) / (2 λ_D (1 − ρ)),   ρ = λ_U/λ_D
//! ```
//!
//! For `c² = 1` (exponential service) this reduces exactly to the M/M/1
//! result, which the tests verify. The `ablation_queue_model` bench
//! compares DVS driven by each model on the high-variance MPEG workload.

use crate::{check_rate, QueueError};

/// Mean total time in system for an M/G/1 queue with arrival rate
/// `arrival_rate`, service rate `service_rate` (1/mean service time) and
/// squared coefficient of variation `scv` of the service time.
///
/// # Errors
///
/// Returns an error if a rate is invalid, `scv` is negative or
/// non-finite, or the queue is unstable.
pub fn mean_delay(arrival_rate: f64, service_rate: f64, scv: f64) -> Result<f64, QueueError> {
    let lu = check_rate("arrival_rate", arrival_rate)?;
    let ld = check_rate("service_rate", service_rate)?;
    if !(scv.is_finite() && scv >= 0.0) {
        return Err(QueueError::InvalidParameter {
            name: "scv",
            value: scv,
        });
    }
    if lu >= ld {
        return Err(QueueError::Unstable {
            arrival_rate: lu,
            service_rate: ld,
        });
    }
    let rho = lu / ld;
    Ok(1.0 / ld + rho * (1.0 + scv) / (2.0 * ld * (1.0 - rho)))
}

/// The minimum service rate holding the M/G/1 mean total delay at
/// `target_delay`, found by bisection (the delay is strictly decreasing
/// in the service rate).
///
/// # Errors
///
/// Returns an error if a parameter is invalid.
pub fn service_rate_for_delay(
    arrival_rate: f64,
    target_delay: f64,
    scv: f64,
) -> Result<f64, QueueError> {
    let lu = check_rate("arrival_rate", arrival_rate)?;
    let w = check_rate("target_delay", target_delay)?;
    if !(scv.is_finite() && scv >= 0.0) {
        return Err(QueueError::InvalidParameter {
            name: "scv",
            value: scv,
        });
    }
    // Bracket: delay → ∞ as λ_D → λ_U⁺, and delay → 0 as λ_D → ∞.
    let mut lo = lu * (1.0 + 1e-9);
    let mut hi = lu + 2.0 / w + lu * (1.0 + scv); // generous upper bound
    debug_assert!(mean_delay(lu, hi, scv)? <= w);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mean_delay(lu, mid, scv)? > w {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1;

    #[test]
    fn reduces_to_mm1_when_scv_is_one() {
        for (lu, ld) in [(20.0, 30.0), (5.0, 6.0), (40.0, 100.0)] {
            let mg1 = mean_delay(lu, ld, 1.0).unwrap();
            let mm1 = mm1::mean_delay(lu, ld).unwrap();
            assert!((mg1 - mm1).abs() < 1e-12, "{lu}/{ld}: {mg1} vs {mm1}");
        }
    }

    #[test]
    fn deterministic_service_halves_waiting() {
        // c² = 0 halves the waiting component relative to exponential.
        let (lu, ld) = (20.0, 30.0);
        let w_exp = mean_delay(lu, ld, 1.0).unwrap() - 1.0 / ld;
        let w_det = mean_delay(lu, ld, 0.0).unwrap() - 1.0 / ld;
        assert!((w_det - 0.5 * w_exp).abs() < 1e-12);
    }

    #[test]
    fn higher_variance_means_longer_delay() {
        let (lu, ld) = (20.0, 30.0);
        let w1 = mean_delay(lu, ld, 1.0).unwrap();
        let w3 = mean_delay(lu, ld, 3.0).unwrap();
        assert!(w3 > w1);
    }

    #[test]
    fn inversion_achieves_target() {
        for scv in [0.0, 1.0, 2.5] {
            let ld = service_rate_for_delay(24.0, 0.1, scv).unwrap();
            let w = mean_delay(24.0, ld, scv).unwrap();
            assert!((w - 0.1).abs() < 1e-6, "scv {scv}: got {w}");
        }
    }

    #[test]
    fn inversion_matches_mm1_closed_form() {
        let ld_pk = service_rate_for_delay(24.0, 0.1, 1.0).unwrap();
        let ld_mm1 = mm1::service_rate_for_delay(24.0, 0.1).unwrap();
        assert!((ld_pk - ld_mm1).abs() < 1e-6);
    }

    #[test]
    fn high_variance_requires_faster_service() {
        let ld_low = service_rate_for_delay(24.0, 0.1, 0.5).unwrap();
        let ld_high = service_rate_for_delay(24.0, 0.1, 3.0).unwrap();
        assert!(ld_high > ld_low);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(mean_delay(0.0, 10.0, 1.0).is_err());
        assert!(mean_delay(10.0, 10.0, 1.0).is_err());
        assert!(mean_delay(5.0, 10.0, -1.0).is_err());
        assert!(mean_delay(f64::INFINITY, 10.0, 1.0).is_err());
        assert!(mean_delay(5.0, f64::NAN, 1.0).is_err());
        assert!(service_rate_for_delay(5.0, 0.0, 1.0).is_err());
        assert!(service_rate_for_delay(5.0, 0.1, f64::NAN).is_err());
        assert!(service_rate_for_delay(f64::NEG_INFINITY, 0.1, 1.0).is_err());
        assert!(service_rate_for_delay(5.0, f64::INFINITY, 1.0).is_err());
    }
}
