//! M/M/1 queue formulas.
//!
//! With exponential interarrivals (rate `λ_U`) and exponential service
//! times (rate `λ_D`), the frame buffer behaves as an M/M/1 queue (paper
//! Section 2.3). The paper's Eq. 5 gives the mean **total** frame delay
//! (waiting + decoding):
//!
//! ```text
//! W = 1 / (λ_D − λ_U)
//! ```
//!
//! The DVS policy inverts this: to hold `W` constant when `λ_U` changes,
//! it needs `λ_D = λ_U + 1/W`, then maps that decode rate back onto a CPU
//! frequency through the application performance curve.

use crate::{check_rate, QueueError};

/// Server utilization `ρ = λ_U / λ_D`.
///
/// # Errors
///
/// Returns an error if either rate is invalid or the queue is unstable
/// (`λ_U ≥ λ_D`).
pub fn utilization(arrival_rate: f64, service_rate: f64) -> Result<f64, QueueError> {
    let (lu, ld) = check_stable(arrival_rate, service_rate)?;
    Ok(lu / ld)
}

/// Mean total time a frame spends in the system (waiting + decoding):
/// `W = 1/(λ_D − λ_U)` (paper Eq. 5).
///
/// # Errors
///
/// Returns an error if either rate is invalid or the queue is unstable.
pub fn mean_delay(arrival_rate: f64, service_rate: f64) -> Result<f64, QueueError> {
    let (lu, ld) = check_stable(arrival_rate, service_rate)?;
    Ok(1.0 / (ld - lu))
}

/// Mean number of frames in the system: `L = ρ/(1−ρ) = λ_U·W`
/// (Little's law).
///
/// # Errors
///
/// Returns an error if either rate is invalid or the queue is unstable.
pub fn mean_in_system(arrival_rate: f64, service_rate: f64) -> Result<f64, QueueError> {
    let (lu, ld) = check_stable(arrival_rate, service_rate)?;
    Ok(lu / (ld - lu))
}

/// Mean number of frames waiting (excluding the one in service):
/// `L_q = ρ²/(1−ρ)`.
///
/// # Errors
///
/// Returns an error if either rate is invalid or the queue is unstable.
pub fn mean_waiting(arrival_rate: f64, service_rate: f64) -> Result<f64, QueueError> {
    let (lu, ld) = check_stable(arrival_rate, service_rate)?;
    let rho = lu / ld;
    Ok(rho * rho / (1.0 - rho))
}

/// The service (decode) rate needed to hold the mean total delay at
/// `target_delay` seconds for arrival rate `λ_U`: `λ_D = λ_U + 1/W`.
///
/// This is the core DVS inversion of paper Eq. 5.
///
/// # Errors
///
/// Returns an error if `arrival_rate` or `target_delay` is non-positive
/// or non-finite.
pub fn service_rate_for_delay(arrival_rate: f64, target_delay: f64) -> Result<f64, QueueError> {
    let lu = check_rate("arrival_rate", arrival_rate)?;
    let w = check_rate("target_delay", target_delay)?;
    Ok(lu + 1.0 / w)
}

/// Probability that the system holds more than `n` frames:
/// `P(N > n) = ρ^{n+1}`. Useful for sizing the frame buffer.
///
/// # Errors
///
/// Returns an error if either rate is invalid or the queue is unstable.
pub fn prob_more_than(arrival_rate: f64, service_rate: f64, n: usize) -> Result<f64, QueueError> {
    let rho = utilization(arrival_rate, service_rate)?;
    // `n as i32` wraps for n > i32::MAX, which would flip the exponent
    // sign and report a tail probability *above* smaller-n values. Keep
    // the exact integer power where it fits and fall back to `powf`
    // (monotone, exact enough at such extremes) otherwise.
    match i32::try_from(n) {
        Ok(i) if i < i32::MAX => Ok(rho.powi(i + 1)),
        _ => Ok(rho.powf(n as f64 + 1.0)),
    }
}

fn check_stable(arrival_rate: f64, service_rate: f64) -> Result<(f64, f64), QueueError> {
    let lu = check_rate("arrival_rate", arrival_rate)?;
    let ld = check_rate("service_rate", service_rate)?;
    if lu >= ld {
        return Err(QueueError::Unstable {
            arrival_rate: lu,
            service_rate: ld,
        });
    }
    Ok((lu, ld))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_delay() {
        // Paper's Figure 9 working point: 0.1 s delay at ~2 extra frames.
        let w = mean_delay(20.0, 30.0).unwrap();
        assert!((w - 0.1).abs() < 1e-12);
    }

    #[test]
    fn inversion_roundtrips() {
        for lu in [6.0, 16.0, 24.0, 44.0] {
            for w in [0.05, 0.1, 1.0] {
                let ld = service_rate_for_delay(lu, w).unwrap();
                assert!((mean_delay(lu, ld).unwrap() - w).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn littles_law_holds() {
        let (lu, ld) = (18.0, 25.0);
        let l = mean_in_system(lu, ld).unwrap();
        let w = mean_delay(lu, ld).unwrap();
        assert!((l - lu * w).abs() < 1e-12);
    }

    #[test]
    fn waiting_plus_in_service_equals_total() {
        let (lu, ld) = (18.0, 25.0);
        let l = mean_in_system(lu, ld).unwrap();
        let lq = mean_waiting(lu, ld).unwrap();
        let rho = utilization(lu, ld).unwrap();
        assert!((l - (lq + rho)).abs() < 1e-12);
    }

    #[test]
    fn ten_fr_delay_means_buffered_frames() {
        // Paper: "average buffered frame delay of 0.1 seconds ... corresponds
        // to an average of 2 extra frames of video buffered" — at ~20 fr/s,
        // L = λ·W = 2.
        let lu = 20.0;
        let ld = service_rate_for_delay(lu, 0.1).unwrap();
        let frames = mean_in_system(lu, ld).unwrap();
        assert!((frames - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unstable_queue_is_rejected() {
        assert!(matches!(
            mean_delay(30.0, 30.0),
            Err(QueueError::Unstable { .. })
        ));
        assert!(matches!(
            mean_delay(31.0, 30.0),
            Err(QueueError::Unstable { .. })
        ));
    }

    #[test]
    fn invalid_rates_are_rejected() {
        assert!(mean_delay(0.0, 30.0).is_err());
        assert!(mean_delay(20.0, f64::NAN).is_err());
        assert!(mean_delay(f64::INFINITY, 30.0).is_err());
        assert!(service_rate_for_delay(-5.0, 0.1).is_err());
        assert!(service_rate_for_delay(5.0, 0.0).is_err());
        assert!(service_rate_for_delay(f64::NAN, 0.1).is_err());
        assert!(service_rate_for_delay(5.0, f64::NEG_INFINITY).is_err());
        assert!(prob_more_than(20.0, f64::NAN, 3).is_err());
    }

    #[test]
    fn occupancy_tail_decays_geometrically() {
        let p1 = prob_more_than(20.0, 30.0, 1).unwrap();
        let p2 = prob_more_than(20.0, 30.0, 2).unwrap();
        let rho = utilization(20.0, 30.0).unwrap();
        assert!((p2 / p1 - rho).abs() < 1e-12);
    }

    #[test]
    fn occupancy_tail_handles_huge_n_without_wrapping() {
        // Pre-fix, `n as i32` wrapped: n = i32::MAX as usize gave the
        // exponent i32::MIN, so ρ^(n+1) came back *huge* instead of ~0.
        let rho = utilization(20.0, 30.0).unwrap();
        for n in [
            i32::MAX as usize - 1,
            i32::MAX as usize,
            i32::MAX as usize + 1,
            u32::MAX as usize,
            usize::MAX,
        ] {
            let p = prob_more_than(20.0, 30.0, n).unwrap();
            assert!(
                (0.0..=1.0).contains(&p),
                "P(N > {n}) = {p} must be a probability"
            );
            assert!(p <= rho, "tail must keep decaying, got {p} for n = {n}");
        }
        // Monotonicity across the powi→powf switchover.
        let before = prob_more_than(20.0, 30.0, i32::MAX as usize - 2).unwrap();
        let after = prob_more_than(20.0, 30.0, i32::MAX as usize + 2).unwrap();
        assert!(after <= before);
    }

    #[test]
    fn higher_service_rate_lowers_delay() {
        let w1 = mean_delay(20.0, 25.0).unwrap();
        let w2 = mean_delay(20.0, 40.0).unwrap();
        assert!(w2 < w1);
    }
}
