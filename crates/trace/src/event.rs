//! Typed simulator events and their JSONL wire format.
//!
//! Every [`Event`] is a small `Copy` enum variant stamped with the
//! [`SimTime`] at which it occurred. Constructing one never allocates,
//! so the simulator can build events unconditionally on its hot path
//! and let the attached sink decide whether anything further happens.
//!
//! The wire format is one JSON object per line (JSONL). Timestamps
//! serialize as integer nanoseconds — the simulator's native clock —
//! so a parsed trace reconstructs time *exactly*, with no float
//! round-trip involved.

use simcore::json::{Json, ToJson};
use simcore::time::{SimDuration, SimTime};

/// Operating mode of the simulated system, as carried by mode-boundary
/// events. Indices double as the metrics-registry series keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceMode {
    /// CPU busy decoding a frame.
    Decoding,
    /// Awake but idle.
    Idle,
    /// Light sleep (fast wake).
    Standby,
    /// Deep sleep (slow wake).
    Off,
    /// Transitioning from sleep back to idle.
    Waking,
}

impl TraceMode {
    /// All modes, in index order.
    pub const ALL: [TraceMode; 5] = [
        TraceMode::Decoding,
        TraceMode::Idle,
        TraceMode::Standby,
        TraceMode::Off,
        TraceMode::Waking,
    ];

    /// Stable small-integer key (`0..5`) for registry series.
    #[must_use]
    pub fn index(self) -> u32 {
        match self {
            TraceMode::Decoding => 0,
            TraceMode::Idle => 1,
            TraceMode::Standby => 2,
            TraceMode::Off => 3,
            TraceMode::Waking => 4,
        }
    }

    /// Inverse of [`TraceMode::index`].
    #[must_use]
    pub fn from_index(index: u32) -> Option<TraceMode> {
        TraceMode::ALL.get(index as usize).copied()
    }

    /// Human-readable label; matches the simulator report's mode keys.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceMode::Decoding => "decoding",
            TraceMode::Idle => "idle",
            TraceMode::Standby => "standby",
            TraceMode::Off => "off",
            TraceMode::Waking => "waking",
        }
    }
}

/// Which sleep state a [`Event::SleepEnter`] transition targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SleepKind {
    /// Light sleep: clocks gated, fast wake.
    Standby,
    /// Deep sleep: power removed, slow wake.
    Off,
}

impl SleepKind {
    /// The mode the system occupies while in this sleep state.
    #[must_use]
    pub fn mode(self) -> TraceMode {
        match self {
            SleepKind::Standby => TraceMode::Standby,
            SleepKind::Off => TraceMode::Off,
        }
    }

    fn label(self) -> &'static str {
        match self {
            SleepKind::Standby => "standby",
            SleepKind::Off => "off",
        }
    }

    fn parse(s: &str) -> Option<SleepKind> {
        match s {
            "standby" => Some(SleepKind::Standby),
            "off" => Some(SleepKind::Off),
            _ => None,
        }
    }
}

/// Which rate stream a [`Event::RateChange`] detection fired on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Frame inter-arrival rate.
    Arrival,
    /// Frame service (decode) rate.
    Service,
}

impl StreamKind {
    fn label(self) -> &'static str {
        match self {
            StreamKind::Arrival => "arrival",
            StreamKind::Service => "service",
        }
    }

    fn parse(s: &str) -> Option<StreamKind> {
        match s {
            "arrival" => Some(StreamKind::Arrival),
            "service" => Some(StreamKind::Service),
            _ => None,
        }
    }
}

/// A structured simulator event, stamped with its simulation time.
///
/// Frequencies are carried as tenths of a MHz (`u32`), the same
/// quantization the report's residency histogram uses; voltages as
/// millivolts. Both are exact integers on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Simulation run began.
    RunStart {
        /// Event timestamp.
        at: SimTime,
    },
    /// System entered the awake-idle mode.
    IdleEnter {
        /// Event timestamp.
        at: SimTime,
    },
    /// System started decoding a frame.
    DecodeStart {
        /// Event timestamp.
        at: SimTime,
        /// Operating frequency during the decode, in tenths of a MHz.
        freq_tenths_mhz: u32,
    },
    /// The DVS layer committed a frequency/voltage switch.
    FreqSwitch {
        /// Event timestamp.
        at: SimTime,
        /// Previous frequency, tenths of a MHz.
        from_tenths_mhz: u32,
        /// New frequency, tenths of a MHz.
        to_tenths_mhz: u32,
        /// Previous core voltage, millivolts.
        from_mv: u32,
        /// New core voltage, millivolts.
        to_mv: u32,
    },
    /// A rate estimator reported a change in arrival or service rate.
    RateChange {
        /// Event timestamp.
        at: SimTime,
        /// Which stream changed.
        stream: StreamKind,
        /// The stream's new rate estimate (events per second).
        new_rate: f64,
        /// Peak log-likelihood ratio of the change-point test, when the
        /// detecting estimator computes one.
        ln_p_max: Option<f64>,
        /// Calibrated detection threshold the statistic cleared, when
        /// the detecting estimator uses one.
        threshold: Option<f64>,
    },
    /// The DPM layer put the system into a sleep state.
    SleepEnter {
        /// Event timestamp.
        at: SimTime,
        /// Which sleep state was entered.
        state: SleepKind,
    },
    /// The system began waking from sleep.
    WakeStart {
        /// Event timestamp.
        at: SimTime,
        /// Wake-up latency: the system reaches idle at `at + latency`.
        latency: SimDuration,
    },
    /// The bounded frame buffer dropped an arriving frame.
    BufferDrop {
        /// Event timestamp.
        at: SimTime,
        /// Buffer occupancy after the drop.
        occupancy: u32,
    },
    /// The supervisor entered (`entered = true`) or left degraded mode.
    Degraded {
        /// Event timestamp.
        at: SimTime,
        /// `true` when degradation began, `false` when it was lifted.
        entered: bool,
    },
    /// A frame finished decoding.
    FrameDone {
        /// Event timestamp.
        at: SimTime,
        /// Queueing delay the frame experienced, seconds.
        delay_s: f64,
        /// Frequency the frame was decoded at, tenths of a MHz.
        freq_tenths_mhz: u32,
    },
    /// Simulation run ended; `at` is the end of the accounted interval.
    RunEnd {
        /// Event timestamp.
        at: SimTime,
    },
}

impl Event {
    /// The simulation time stamped on the event.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match *self {
            Event::RunStart { at }
            | Event::IdleEnter { at }
            | Event::DecodeStart { at, .. }
            | Event::FreqSwitch { at, .. }
            | Event::RateChange { at, .. }
            | Event::SleepEnter { at, .. }
            | Event::WakeStart { at, .. }
            | Event::BufferDrop { at, .. }
            | Event::Degraded { at, .. }
            | Event::FrameDone { at, .. }
            | Event::RunEnd { at } => at,
        }
    }

    /// The filterable category the event belongs to.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        match self {
            Event::RunStart { .. } | Event::RunEnd { .. } => EventKind::Run,
            Event::IdleEnter { .. } | Event::DecodeStart { .. } => EventKind::Mode,
            Event::FreqSwitch { .. } => EventKind::Freq,
            Event::RateChange { .. } => EventKind::Rate,
            Event::SleepEnter { .. } => EventKind::Sleep,
            Event::WakeStart { .. } => EventKind::Wake,
            Event::BufferDrop { .. } => EventKind::Drop,
            Event::Degraded { .. } => EventKind::Degrade,
            Event::FrameDone { .. } => EventKind::Frame,
        }
    }

    /// The event's wire name (the `"kind"` field of its JSON object).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::IdleEnter { .. } => "idle_enter",
            Event::DecodeStart { .. } => "decode_start",
            Event::FreqSwitch { .. } => "freq_switch",
            Event::RateChange { .. } => "rate_change",
            Event::SleepEnter { .. } => "sleep_enter",
            Event::WakeStart { .. } => "wake_start",
            Event::BufferDrop { .. } => "buffer_drop",
            Event::Degraded { .. } => "degraded",
            Event::FrameDone { .. } => "frame_done",
            Event::RunEnd { .. } => "run_end",
        }
    }

    /// Decodes one event from its parsed JSON object.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<Event, String> {
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing \"kind\"")?;
        let at = time_field(json, "t")?;
        let ev = match kind {
            "run_start" => Event::RunStart { at },
            "idle_enter" => Event::IdleEnter { at },
            "decode_start" => Event::DecodeStart {
                at,
                freq_tenths_mhz: u32_field(json, "freq_tenths_mhz")?,
            },
            "freq_switch" => Event::FreqSwitch {
                at,
                from_tenths_mhz: u32_field(json, "from_tenths_mhz")?,
                to_tenths_mhz: u32_field(json, "to_tenths_mhz")?,
                from_mv: u32_field(json, "from_mv")?,
                to_mv: u32_field(json, "to_mv")?,
            },
            "rate_change" => Event::RateChange {
                at,
                stream: json
                    .get("stream")
                    .and_then(Json::as_str)
                    .and_then(StreamKind::parse)
                    .ok_or("bad \"stream\"")?,
                new_rate: f64_field(json, "new_rate")?,
                ln_p_max: opt_f64_field(json, "ln_p_max"),
                threshold: opt_f64_field(json, "threshold"),
            },
            "sleep_enter" => Event::SleepEnter {
                at,
                state: json
                    .get("state")
                    .and_then(Json::as_str)
                    .and_then(SleepKind::parse)
                    .ok_or("bad \"state\"")?,
            },
            "wake_start" => Event::WakeStart {
                at,
                latency: SimDuration::from_nanos(
                    json.get("latency_ns")
                        .and_then(Json::as_u64)
                        .ok_or("bad \"latency_ns\"")?,
                ),
            },
            "buffer_drop" => Event::BufferDrop {
                at,
                occupancy: u32_field(json, "occupancy")?,
            },
            "degraded" => Event::Degraded {
                at,
                entered: json
                    .get("entered")
                    .and_then(Json::as_bool)
                    .ok_or("bad \"entered\"")?,
            },
            "frame_done" => Event::FrameDone {
                at,
                delay_s: f64_field(json, "delay_s")?,
                freq_tenths_mhz: u32_field(json, "freq_tenths_mhz")?,
            },
            "run_end" => Event::RunEnd { at },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(ev)
    }
}

fn time_field(json: &Json, key: &str) -> Result<SimTime, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .map(SimTime::from_nanos)
        .ok_or_else(|| format!("bad {key:?}"))
}

fn u32_field(json: &Json, key: &str) -> Result<u32, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| format!("bad {key:?}"))
}

fn f64_field(json: &Json, key: &str) -> Result<f64, String> {
    json.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("bad {key:?}"))
}

fn opt_f64_field(json: &Json, key: &str) -> Option<f64> {
    json.get(key).and_then(Json::as_f64)
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("kind".into(), Json::Str(self.name().into())),
            ("t".into(), Json::Int(self.at().as_nanos() as i64)),
        ];
        match *self {
            Event::RunStart { .. } | Event::IdleEnter { .. } | Event::RunEnd { .. } => {}
            Event::DecodeStart {
                freq_tenths_mhz, ..
            } => {
                pairs.push(("freq_tenths_mhz".into(), freq_tenths_mhz.to_json()));
            }
            Event::FreqSwitch {
                from_tenths_mhz,
                to_tenths_mhz,
                from_mv,
                to_mv,
                ..
            } => {
                pairs.push(("from_tenths_mhz".into(), from_tenths_mhz.to_json()));
                pairs.push(("to_tenths_mhz".into(), to_tenths_mhz.to_json()));
                pairs.push(("from_mv".into(), from_mv.to_json()));
                pairs.push(("to_mv".into(), to_mv.to_json()));
            }
            Event::RateChange {
                stream,
                new_rate,
                ln_p_max,
                threshold,
                ..
            } => {
                pairs.push(("stream".into(), Json::Str(stream.label().into())));
                pairs.push(("new_rate".into(), new_rate.to_json()));
                pairs.push(("ln_p_max".into(), ln_p_max.to_json()));
                pairs.push(("threshold".into(), threshold.to_json()));
            }
            Event::SleepEnter { state, .. } => {
                pairs.push(("state".into(), Json::Str(state.label().into())));
            }
            Event::WakeStart { latency, .. } => {
                pairs.push(("latency_ns".into(), Json::Int(latency.as_nanos() as i64)));
            }
            Event::BufferDrop { occupancy, .. } => {
                pairs.push(("occupancy".into(), occupancy.to_json()));
            }
            Event::Degraded { entered, .. } => {
                pairs.push(("entered".into(), Json::Bool(entered)));
            }
            Event::FrameDone {
                delay_s,
                freq_tenths_mhz,
                ..
            } => {
                pairs.push(("delay_s".into(), delay_s.to_json()));
                pairs.push(("freq_tenths_mhz".into(), freq_tenths_mhz.to_json()));
            }
        }
        Json::Obj(pairs)
    }
}

/// Filterable event category, used by `--trace-filter` and `tracecat
/// filter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// `run_start` / `run_end` markers.
    Run,
    /// Mode boundaries: `idle_enter`, `decode_start`.
    Mode,
    /// `freq_switch`.
    Freq,
    /// `rate_change`.
    Rate,
    /// `sleep_enter`.
    Sleep,
    /// `wake_start`.
    Wake,
    /// `buffer_drop`.
    Drop,
    /// `degraded`.
    Degrade,
    /// `frame_done`.
    Frame,
}

impl EventKind {
    /// All kinds, in bit order.
    pub const ALL: [EventKind; 9] = [
        EventKind::Run,
        EventKind::Mode,
        EventKind::Freq,
        EventKind::Rate,
        EventKind::Sleep,
        EventKind::Wake,
        EventKind::Drop,
        EventKind::Degrade,
        EventKind::Frame,
    ];

    /// The kind's filter name, as accepted by [`KindSet::parse`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Run => "run",
            EventKind::Mode => "mode",
            EventKind::Freq => "freq",
            EventKind::Rate => "rate",
            EventKind::Sleep => "sleep",
            EventKind::Wake => "wake",
            EventKind::Drop => "drop",
            EventKind::Degrade => "degrade",
            EventKind::Frame => "frame",
        }
    }

    fn bit(self) -> u16 {
        1 << (EventKind::ALL.iter().position(|&k| k == self).unwrap_or(0) as u16)
    }
}

/// A set of [`EventKind`]s, stored as a bitmask. Used to filter traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KindSet(u16);

impl KindSet {
    /// The empty set.
    pub const EMPTY: KindSet = KindSet(0);

    /// The set containing every kind.
    #[must_use]
    pub fn all() -> KindSet {
        EventKind::ALL
            .iter()
            .fold(KindSet::EMPTY, |s, &k| s.with(k))
    }

    /// Returns the set with `kind` added.
    #[must_use]
    pub fn with(self, kind: EventKind) -> KindSet {
        KindSet(self.0 | kind.bit())
    }

    /// `true` if `kind` is in the set.
    #[must_use]
    pub fn contains(self, kind: EventKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// `true` if no kind is in the set.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Parses a comma-separated kind list, e.g. `"freq,sleep"`.
    ///
    /// # Errors
    ///
    /// Returns the first unrecognized name, with the valid vocabulary.
    pub fn parse(list: &str) -> Result<KindSet, String> {
        let mut set = KindSet::EMPTY;
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let kind = EventKind::ALL
                .iter()
                .copied()
                .find(|k| k.name() == name)
                .ok_or_else(|| {
                    let valid: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
                    format!("unknown event kind {name:?} (valid: {})", valid.join(", "))
                })?;
            set = set.with(kind);
        }
        if set.is_empty() {
            return Err("empty event-kind list".into());
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStart { at: SimTime::ZERO },
            Event::IdleEnter { at: SimTime::ZERO },
            Event::DecodeStart {
                at: SimTime::from_nanos(1_500),
                freq_tenths_mhz: 2212,
            },
            Event::FreqSwitch {
                at: SimTime::from_nanos(1_500),
                from_tenths_mhz: 1032,
                to_tenths_mhz: 2212,
                from_mv: 1100,
                to_mv: 1650,
            },
            Event::RateChange {
                at: SimTime::from_nanos(2_000),
                stream: StreamKind::Arrival,
                new_rate: 38.75,
                ln_p_max: Some(12.5),
                threshold: Some(9.25),
            },
            Event::RateChange {
                at: SimTime::from_nanos(2_100),
                stream: StreamKind::Service,
                new_rate: 120.0,
                ln_p_max: None,
                threshold: None,
            },
            Event::SleepEnter {
                at: SimTime::from_nanos(9_000),
                state: SleepKind::Off,
            },
            Event::WakeStart {
                at: SimTime::from_nanos(12_345),
                latency: SimDuration::from_nanos(640_000),
            },
            Event::BufferDrop {
                at: SimTime::from_nanos(13_000),
                occupancy: 64,
            },
            Event::Degraded {
                at: SimTime::from_nanos(14_000),
                entered: true,
            },
            Event::FrameDone {
                at: SimTime::from_nanos(15_000),
                delay_s: 0.002_5,
                freq_tenths_mhz: 2212,
            },
            Event::RunEnd {
                at: SimTime::from_nanos(20_000),
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for ev in sample_events() {
            let json = ev.to_json();
            let reparsed = Json::parse(&json.dump()).expect("event JSON parses");
            let back = Event::from_json(&reparsed).expect("event decodes");
            assert_eq!(ev, back, "{}", ev.name());
        }
    }

    #[test]
    fn timestamps_are_exact_integer_nanos() {
        let ev = Event::RunEnd {
            at: SimTime::from_nanos(123_456_789_012_345),
        };
        let json = Json::parse(&ev.to_json().dump()).unwrap();
        assert_eq!(
            json.get("t").and_then(Json::as_u64),
            Some(123_456_789_012_345)
        );
    }

    #[test]
    fn kind_set_parses_and_filters() {
        let set = KindSet::parse("freq, sleep").unwrap();
        assert!(set.contains(EventKind::Freq));
        assert!(set.contains(EventKind::Sleep));
        assert!(!set.contains(EventKind::Frame));
        assert!(KindSet::parse("bogus").is_err());
        assert!(KindSet::parse("").is_err());
        assert!(KindSet::all().contains(EventKind::Degrade));
        for ev in sample_events() {
            assert!(KindSet::all().contains(ev.kind()));
        }
    }

    #[test]
    fn unknown_kind_and_missing_fields_are_rejected() {
        let bad = Json::parse(r#"{"kind":"warp_drive","t":1}"#).unwrap();
        assert!(Event::from_json(&bad).is_err());
        let missing = Json::parse(r#"{"kind":"frame_done","t":1}"#).unwrap();
        assert!(Event::from_json(&missing).is_err());
        let no_time = Json::parse(r#"{"kind":"run_start"}"#).unwrap();
        assert!(Event::from_json(&no_time).is_err());
    }

    #[test]
    fn mode_indices_round_trip() {
        for mode in TraceMode::ALL {
            assert_eq!(TraceMode::from_index(mode.index()), Some(mode));
        }
        assert_eq!(TraceMode::from_index(99), None);
    }
}
