//! Structured event tracing and metrics for the DVS/DPM simulator.
//!
//! The paper's claims (Simunic et al., DAC 2001) are *time-series*
//! claims — frequency trajectories tracking arrival-rate changes,
//! idle-interval distributions driving shutdown decisions — but an
//! end-of-run report only shows their averages. This crate adds the
//! observability layer underneath the simulator:
//!
//! * [`Event`] — a typed, `Copy`, allocation-free event vocabulary
//!   covering frequency/voltage switches, rate-change detections (with
//!   the change-point statistic and threshold), sleep/wake transitions,
//!   buffer drops, supervisor degradations, and frame completions,
//!   each stamped with a [`simcore::time::SimTime`];
//! * [`TraceSink`] — where events go: [`NullSink`] (overhead baseline),
//!   [`RingSink`] (preallocated, most-recent-N), [`JsonlSink`] (one
//!   JSON object per line), [`FilteredSink`] (kind mask);
//! * [`MetricsRegistry`] — named counters/gauges/time-weighted series
//!   the simulator's report is assembled from, with residency kept in
//!   integer nanoseconds so trace replay reconstructs it bit-exactly;
//! * [`replay`] — rebuilds the run aggregates from a parsed event
//!   stream alone (the `tracecat` CLI's engine).
//!
//! The crate depends only on `simcore` (the workspace builds offline).

#![warn(missing_docs)]

pub mod assert;
pub mod durable;
pub mod event;
pub mod fleet;
pub mod registry;
pub mod replay;
pub mod sink;

pub use assert::{
    eq5_delay_bound, AssertionConfig, AssertionMonitor, AssertionReport, DelayBound,
    InvariantReport, OccupancyBound, OscillationBound, ViolationSample,
};
pub use event::{Event, EventKind, KindSet, SleepKind, StreamKind, TraceMode};
pub use fleet::{parse_fleet_jsonl, FleetEvent};
pub use registry::{ns_to_secs, MetricsRegistry};
pub use replay::{replay, ReplaySummary};
pub use sink::{FilteredSink, JsonlSink, NullSink, RingSink, TraceSink};

use simcore::json::Json;

/// Parses a JSONL trace (one event object per non-empty line).
///
/// # Errors
///
/// Returns `"line N: <cause>"` for the first malformed line.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let json = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let event = Event::from_json(&json).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(event);
    }
    Ok(events)
}

/// Verifies that `events` are in non-decreasing time order.
///
/// Replay-side consumers ([`replay()`], `tracecat replay --check`,
/// `tracecat assert`) **reject** disordered traces instead of
/// re-sorting them: a trace whose timestamps run backwards was either
/// truncated/corrupted or concatenated from multiple runs, and sorting
/// it would silently manufacture a plausible-looking stream that no
/// simulator ever produced.
///
/// # Errors
///
/// Names the first offending event (1-based, matching JSONL line
/// numbering for traces without blank lines) and both timestamps.
pub fn ensure_time_ordered(events: &[Event]) -> Result<(), String> {
    for (i, pair) in events.windows(2).enumerate() {
        if pair[1].at() < pair[0].at() {
            return Err(format!(
                "trace is out of time order: event {} ({} at t={}ns) precedes event {} ({} at t={}ns)",
                i + 2,
                pair[1].name(),
                pair[1].at().as_nanos(),
                i + 1,
                pair[0].name(),
                pair[0].at().as_nanos(),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::json::ToJson;
    use simcore::time::SimTime;

    #[test]
    fn parse_jsonl_round_trips_a_stream() {
        let events = vec![
            Event::RunStart { at: SimTime::ZERO },
            Event::FrameDone {
                at: SimTime::from_nanos(10),
                delay_s: 1.5e-9,
                freq_tenths_mhz: 591,
            },
            Event::RunEnd {
                at: SimTime::from_nanos(20),
            },
        ];
        let mut text = String::new();
        for ev in &events {
            text.push_str(&ev.to_json().dump());
            text.push('\n');
        }
        text.push('\n'); // trailing blank line is tolerated
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn parse_jsonl_reports_the_offending_line() {
        let err = parse_jsonl("{\"kind\":\"run_start\",\"t\":0}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn time_order_check_accepts_ties_and_names_the_regression() {
        let ordered = vec![
            Event::RunStart { at: SimTime::ZERO },
            Event::IdleEnter {
                at: SimTime::from_nanos(5),
            },
            Event::RunEnd {
                at: SimTime::from_nanos(5), // ties are legal
            },
        ];
        assert!(ensure_time_ordered(&ordered).is_ok());
        assert!(ensure_time_ordered(&[]).is_ok());

        let disordered = vec![
            Event::RunStart {
                at: SimTime::from_nanos(10),
            },
            Event::RunEnd {
                at: SimTime::from_nanos(9),
            },
        ];
        let err = ensure_time_ordered(&disordered).unwrap_err();
        assert!(
            err.contains("event 2") && err.contains("t=9ns") && err.contains("t=10ns"),
            "{err}"
        );
    }
}
