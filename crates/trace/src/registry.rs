//! Named metrics registry: counters, gauges, and time-weighted series.
//!
//! The registry is the simulator's single source of truth for run
//! statistics — `SimReport` is assembled *from* it rather than from
//! scattered per-struct fields. Three metric shapes cover everything
//! the report needs:
//!
//! * **counters** — monotonically increasing `u64` event counts
//!   (frames completed, frequency switches, sleeps, …);
//! * **gauges** — instantaneous `f64` values (peak queue depth);
//! * **time-weighted series** — per-key residency accumulators, kept in
//!   integer **nanoseconds** keyed by a small `u32` (operating mode
//!   index, frequency in tenths of a MHz).
//!
//! Residency is integrated in integer nanoseconds on purpose: integer
//! addition is associative, so a trace replay that integrates the same
//! intervals in coarser chunks reproduces the histogram *bit-exactly*,
//! and the nanosecond totals of any realistic run (≤ ~10⁴ s ≈ 10¹³ ns)
//! convert to `f64` seconds without rounding surprises at report time.
//!
//! Metric names are `&'static str` so registering and bumping a metric
//! never allocates after its first touch.

use simcore::json::{Json, ToJson};
use std::collections::BTreeMap;

/// Converts integer nanoseconds to seconds.
///
/// This is *the* conversion used by both the simulator's report
/// assembly and trace replay; sharing it guarantees the two produce
/// identical `f64` values from identical nanosecond totals.
#[must_use]
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Registry of named counters, gauges, and time-weighted series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    series: BTreeMap<&'static str, BTreeMap<u32, u64>>,
    elapsed_ns: u64,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to counter `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Current value of counter `name` (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Raises gauge `name` to `value` if `value` is larger (or the
    /// gauge was unset).
    pub fn gauge_max(&mut self, name: &'static str, value: f64) {
        let g = self.gauges.entry(name).or_insert(value);
        if value > *g {
            *g = value;
        }
    }

    /// Current value of gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Adds `ns` nanoseconds to bucket `key` of time-weighted series
    /// `name`.
    pub fn add_span_ns(&mut self, name: &'static str, key: u32, ns: u64) {
        *self.series.entry(name).or_default().entry(key).or_insert(0) += ns;
    }

    /// The buckets of series `name`, keyed by `u32`, in nanoseconds.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&BTreeMap<u32, u64>> {
        self.series.get(name)
    }

    /// Total nanoseconds accumulated across all buckets of `name`.
    #[must_use]
    pub fn series_total_ns(&self, name: &str) -> u64 {
        self.series.get(name).map_or(0, |s| s.values().sum())
    }

    /// Advances the registry's wall clock by `ns` nanoseconds.
    pub fn advance_ns(&mut self, ns: u64) {
        self.elapsed_ns += ns;
    }

    /// Total simulated nanoseconds the registry clock has advanced.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        self.elapsed_ns
    }

    /// The registry clock in seconds (via [`ns_to_secs`]).
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        ns_to_secs(self.elapsed_ns)
    }
}

impl ToJson for MetricsRegistry {
    fn to_json(&self) -> Json {
        let counters: BTreeMap<String, u64> = self
            .counters
            .iter()
            .map(|(k, v)| ((*k).to_owned(), *v))
            .collect();
        let gauges: BTreeMap<String, f64> = self
            .gauges
            .iter()
            .map(|(k, v)| ((*k).to_owned(), *v))
            .collect();
        let series: BTreeMap<String, Json> = self
            .series
            .iter()
            .map(|(k, buckets)| ((*k).to_owned(), buckets.to_json()))
            .collect();
        Json::obj(vec![
            ("counters".into(), counters.to_json()),
            ("gauges".into(), gauges.to_json()),
            ("series_ns".into(), series.to_json()),
            ("elapsed_ns".into(), Json::Int(self.elapsed_ns as i64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.counter("frames"), 0);
        reg.inc("frames");
        reg.add("frames", 2);
        assert_eq!(reg.counter("frames"), 3);
    }

    #[test]
    fn gauge_max_keeps_the_peak() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_max("depth", 3.0);
        reg.gauge_max("depth", 1.0);
        reg.gauge_max("depth", 7.5);
        assert_eq!(reg.gauge("depth"), Some(7.5));
        assert_eq!(reg.gauge("missing"), None);
    }

    #[test]
    fn series_accumulate_in_integer_nanos() {
        let mut reg = MetricsRegistry::new();
        reg.add_span_ns("mode", 0, 1_000);
        reg.add_span_ns("mode", 1, 500);
        reg.add_span_ns("mode", 0, 250);
        assert_eq!(reg.series("mode").unwrap()[&0], 1_250);
        assert_eq!(reg.series_total_ns("mode"), 1_750);
        assert_eq!(reg.series_total_ns("absent"), 0);
    }

    #[test]
    fn chunked_and_fine_grained_integration_agree_exactly() {
        // The associativity property the trace replay relies on: many
        // small spans and one big span of the same total are identical.
        let mut fine = MetricsRegistry::new();
        for _ in 0..1_000 {
            fine.add_span_ns("mode", 2, 333);
            fine.advance_ns(333);
        }
        let mut coarse = MetricsRegistry::new();
        coarse.add_span_ns("mode", 2, 333_000);
        coarse.advance_ns(333_000);
        assert_eq!(fine, coarse);
        assert_eq!(
            fine.elapsed_secs().to_bits(),
            coarse.elapsed_secs().to_bits()
        );
    }

    #[test]
    fn ns_to_secs_is_exact_for_realistic_magnitudes() {
        // Totals below 2^53 ns (~104 days) convert without precision loss.
        let ns = 86_400_000_000_000u64; // one day
        assert_eq!(ns_to_secs(ns), 86_400.0);
        assert!(((1u64 << 53) as f64) > 1e16 * 0.9);
    }

    #[test]
    fn registry_serializes_to_json() {
        let mut reg = MetricsRegistry::new();
        reg.inc("frames");
        reg.set_gauge("peak", 4.0);
        reg.add_span_ns("mode", 0, 42);
        reg.advance_ns(42);
        let json = Json::parse(&reg.to_json().dump()).unwrap();
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("frames"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(json.get("elapsed_ns").and_then(Json::as_u64), Some(42));
    }
}
