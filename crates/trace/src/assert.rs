//! Streaming assertion monitors over trace event streams.
//!
//! The paper's governor makes checkable promises: the Eq. 5 delay
//! constraint `W = 1/(λ_D − λ_U)` held within tolerance, no V/f
//! oscillation above a rate bound, frame-buffer occupancy inside the
//! watchdog limit, and voltage (hence per-mode energy) monotone in
//! frequency. [`AssertionMonitor`] evaluates those invariants *during*
//! a run, one event at a time, with zero allocation on the hot path:
//! every per-invariant state machine is fixed-size and preallocated at
//! construction. The monitor implements [`TraceSink`], so it attaches
//! anywhere a sink does; [`AssertionMonitor::check`] replays a parsed
//! event stream through the identical code, which is what makes the
//! online and offline (`tracecat assert`) verdicts agree bit-for-bit.

use crate::event::Event;
use crate::sink::TraceSink;
use simcore::json::{Json, ToJson};
use simcore::time::{SimTime, NANOS_PER_SEC};
use std::fmt;

/// Capacity of the energy-monotonicity operating-point table. The
/// SA-1100 exposes 11 operating points; 32 leaves generous headroom for
/// future hardware tables while keeping the state machine fixed-size.
const ENERGY_TABLE_CAP: usize = 32;

/// Computes the Eq. 5 M/M/1 delay bound `W = 1/(λ_D − λ_U)` in seconds
/// from a decoding (service) rate `λ_D` and an arrival rate `λ_U`, both
/// in events per second.
///
/// # Errors
///
/// Returns an error unless both rates are finite, `λ_U` is
/// non-negative, and `λ_D > λ_U` (the queue must be stable).
pub fn eq5_delay_bound(lambda_d: f64, lambda_u: f64) -> Result<f64, String> {
    if !lambda_d.is_finite() || !lambda_u.is_finite() {
        return Err(format!(
            "Eq. 5 rates must be finite (lambda_d={lambda_d}, lambda_u={lambda_u})"
        ));
    }
    if lambda_u < 0.0 {
        return Err(format!(
            "arrival rate lambda_u must be >= 0, got {lambda_u}"
        ));
    }
    if lambda_d <= lambda_u {
        return Err(format!(
            "Eq. 5 needs lambda_d > lambda_u for a stable queue \
             (lambda_d={lambda_d}, lambda_u={lambda_u})"
        ));
    }
    Ok(1.0 / (lambda_d - lambda_u))
}

/// Delay-constraint invariant: every completed frame's delay must stay
/// within `bound_s * (1 + tolerance)` seconds (Eq. 5 bound plus slack).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayBound {
    /// The Eq. 5 delay bound `W` in seconds (or any explicit target).
    pub bound_s: f64,
    /// Fractional slack on top of the bound; `0.5` allows `1.5 × W`.
    pub tolerance: f64,
}

impl DelayBound {
    /// The effective per-frame limit in seconds.
    #[must_use]
    pub fn allowed_s(&self) -> f64 {
        self.bound_s * (1.0 + self.tolerance)
    }
}

/// Oscillation invariant: no more than `max_switches` V/f switches may
/// land inside any `window_s`-second window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscillationBound {
    /// Maximum number of [`Event::FreqSwitch`] events per window.
    pub max_switches: u32,
    /// Window length in seconds.
    pub window_s: f64,
}

/// Occupancy invariant: a [`Event::BufferDrop`] must never report a
/// post-drop occupancy above `max_occupancy` frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyBound {
    /// Watchdog limit on buffer occupancy, in frames.
    pub max_occupancy: u32,
}

/// The declarative invariant set an [`AssertionMonitor`] evaluates.
///
/// Each invariant is optional; [`AssertionConfig::default`] enables
/// nothing. [`AssertionConfig::paper`] enables all four with bounds
/// from the paper's MP3/MPEG experiments.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AssertionConfig {
    /// Per-frame delay constraint (Eq. 5 bound with slack).
    pub delay: Option<DelayBound>,
    /// V/f switch-rate bound.
    pub oscillation: Option<OscillationBound>,
    /// Frame-buffer occupancy watchdog.
    pub occupancy: Option<OccupancyBound>,
    /// Require supply voltage monotone non-decreasing in frequency.
    pub energy_monotone: bool,
}

impl AssertionConfig {
    /// The paper-derived default invariant set: Eq. 5 delay bound at the
    /// MP3 target delay (0.2 s) with 4× slack, at most 40 V/f switches
    /// per second (one per MP3 frame would be ~38/s), occupancy within
    /// the 64-frame fault-preset buffer, and monotone voltage.
    #[must_use]
    pub fn paper() -> AssertionConfig {
        AssertionConfig {
            delay: Some(DelayBound {
                bound_s: 0.2,
                tolerance: 4.0,
            }),
            oscillation: Some(OscillationBound {
                max_switches: 40,
                window_s: 1.0,
            }),
            occupancy: Some(OccupancyBound { max_occupancy: 64 }),
            energy_monotone: true,
        }
    }

    /// True when no invariant is enabled (a monitor would be a no-op).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.delay.is_none()
            && self.oscillation.is_none()
            && self.occupancy.is_none()
            && !self.energy_monotone
    }

    /// Validates every enabled invariant's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field for NaN/negative
    /// tolerances, non-positive or non-finite bounds and windows, and a
    /// zero switch budget.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(d) = &self.delay {
            if !d.bound_s.is_finite() || d.bound_s <= 0.0 {
                return Err(format!(
                    "delay bound_s must be finite and > 0, got {}",
                    d.bound_s
                ));
            }
            if !d.tolerance.is_finite() || d.tolerance < 0.0 {
                return Err(format!(
                    "delay tolerance must be finite and >= 0, got {}",
                    d.tolerance
                ));
            }
        }
        if let Some(o) = &self.oscillation {
            if o.max_switches == 0 {
                return Err("oscillation max_switches must be >= 1".to_owned());
            }
            if !o.window_s.is_finite() || o.window_s <= 0.0 {
                return Err(format!(
                    "oscillation window_s must be finite and > 0, got {}",
                    o.window_s
                ));
            }
        }
        // OccupancyBound { max_occupancy: 0 } is valid: it flags every drop.
        Ok(())
    }

    /// Parses the `assertions` JSON block (fleet spec / CLI config file).
    ///
    /// Unknown keys are rejected at every level, so a typo'd invariant
    /// fails loudly instead of silently monitoring nothing. The `delay`
    /// block takes either an explicit `bound_s` or the Eq. 5 rate pair
    /// `lambda_d`/`lambda_u` (exclusive), plus an optional `tolerance`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown key, missing field, or
    /// invalid value.
    pub fn from_json(json: &Json) -> Result<AssertionConfig, String> {
        let pairs = match json {
            Json::Obj(pairs) => pairs,
            _ => return Err("assertions must be an object".to_owned()),
        };
        let mut config = AssertionConfig::default();
        for (key, value) in pairs {
            match key.as_str() {
                "delay" => config.delay = Some(parse_delay(value)?),
                "oscillation" => config.oscillation = Some(parse_oscillation(value)?),
                "occupancy" => config.occupancy = Some(parse_occupancy(value)?),
                "energy_monotone" => {
                    config.energy_monotone = value
                        .as_bool()
                        .ok_or_else(|| "assertions.energy_monotone must be a bool".to_owned())?;
                }
                other => {
                    return Err(format!(
                        "unknown key `{other}` in assertions \
                         (expected delay|oscillation|occupancy|energy_monotone)"
                    ))
                }
            }
        }
        config.validate()?;
        Ok(config)
    }
}

impl ToJson for AssertionConfig {
    /// Serializes only the enabled invariants, in declaration order —
    /// `AssertionConfig::from_json(&c.to_json())` round-trips.
    fn to_json(&self) -> Json {
        let mut pairs = Vec::new();
        if let Some(d) = &self.delay {
            pairs.push((
                "delay".to_owned(),
                Json::obj(vec![
                    ("bound_s".to_owned(), Json::Num(d.bound_s)),
                    ("tolerance".to_owned(), Json::Num(d.tolerance)),
                ]),
            ));
        }
        if let Some(o) = &self.oscillation {
            pairs.push((
                "oscillation".to_owned(),
                Json::obj(vec![
                    ("max_switches".to_owned(), o.max_switches.to_json()),
                    ("window_s".to_owned(), Json::Num(o.window_s)),
                ]),
            ));
        }
        if let Some(o) = &self.occupancy {
            pairs.push((
                "occupancy".to_owned(),
                Json::obj(vec![("max".to_owned(), o.max_occupancy.to_json())]),
            ));
        }
        if self.energy_monotone {
            pairs.push(("energy_monotone".to_owned(), Json::Bool(true)));
        }
        Json::obj(pairs)
    }
}

fn expect_obj<'j>(json: &'j Json, what: &str) -> Result<&'j [(String, Json)], String> {
    match json {
        Json::Obj(pairs) => Ok(pairs),
        _ => Err(format!("assertions.{what} must be an object")),
    }
}

fn expect_f64(value: &Json, what: &str) -> Result<f64, String> {
    value
        .as_f64()
        .ok_or_else(|| format!("assertions.{what} must be a number"))
}

fn parse_delay(json: &Json) -> Result<DelayBound, String> {
    let mut bound_s = None;
    let mut lambda_d = None;
    let mut lambda_u = None;
    let mut tolerance = 0.0;
    for (key, value) in expect_obj(json, "delay")? {
        match key.as_str() {
            "bound_s" => bound_s = Some(expect_f64(value, "delay.bound_s")?),
            "lambda_d" => lambda_d = Some(expect_f64(value, "delay.lambda_d")?),
            "lambda_u" => lambda_u = Some(expect_f64(value, "delay.lambda_u")?),
            "tolerance" => tolerance = expect_f64(value, "delay.tolerance")?,
            other => {
                return Err(format!(
                    "unknown key `{other}` in assertions.delay \
                     (expected bound_s|lambda_d|lambda_u|tolerance)"
                ))
            }
        }
    }
    let bound_s = match (bound_s, lambda_d, lambda_u) {
        (Some(b), None, None) => b,
        (None, Some(d), Some(u)) => {
            eq5_delay_bound(d, u).map_err(|e| format!("assertions.delay: {e}"))?
        }
        (Some(_), _, _) => {
            return Err(
                "assertions.delay takes either bound_s or lambda_d/lambda_u, not both".to_owned(),
            )
        }
        _ => {
            return Err("assertions.delay needs bound_s, or both lambda_d and lambda_u".to_owned())
        }
    };
    Ok(DelayBound { bound_s, tolerance })
}

fn parse_oscillation(json: &Json) -> Result<OscillationBound, String> {
    let mut max_switches = None;
    let mut window_s = None;
    for (key, value) in expect_obj(json, "oscillation")? {
        match key.as_str() {
            "max_switches" => {
                max_switches = Some(
                    value
                        .as_u64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| {
                            "assertions.oscillation.max_switches must be a non-negative integer"
                                .to_owned()
                        })?,
                );
            }
            "window_s" => window_s = Some(expect_f64(value, "oscillation.window_s")?),
            other => {
                return Err(format!(
                    "unknown key `{other}` in assertions.oscillation \
                     (expected max_switches|window_s)"
                ))
            }
        }
    }
    Ok(OscillationBound {
        max_switches: max_switches.ok_or("assertions.oscillation needs max_switches")?,
        window_s: window_s.ok_or("assertions.oscillation needs window_s")?,
    })
}

fn parse_occupancy(json: &Json) -> Result<OccupancyBound, String> {
    let mut max = None;
    for (key, value) in expect_obj(json, "occupancy")? {
        match key.as_str() {
            "max" => {
                max = Some(
                    value
                        .as_u64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| {
                            "assertions.occupancy.max must be a non-negative integer".to_owned()
                        })?,
                );
            }
            other => {
                return Err(format!(
                    "unknown key `{other}` in assertions.occupancy (expected max)"
                ))
            }
        }
    }
    Ok(OccupancyBound {
        max_occupancy: max.ok_or("assertions.occupancy needs max")?,
    })
}

/// The first event that violated an invariant: when, the observed
/// value, and the limit it crossed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViolationSample {
    /// Timestamp of the violating event.
    pub at: SimTime,
    /// Observed value (seconds, switch rate, frames, or millivolts).
    pub value: f64,
    /// The limit the value exceeded, in the same unit.
    pub limit: f64,
}

simcore::impl_to_json!(ViolationSample { at, value, limit });

/// Per-invariant outcome: how many events were checked, how many
/// violated, the first violation, and the worst observed margin
/// (`value / limit`; above 1.0 means the limit was crossed).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InvariantReport {
    /// Number of events this invariant examined.
    pub checked: u64,
    /// Number of checks that violated the limit.
    pub violations: u64,
    /// The first violating event, if any.
    pub first_violation: Option<ViolationSample>,
    /// Maximum `value / limit` ratio seen across all checks (0.0 if
    /// nothing was checked).
    pub worst_margin: f64,
}

impl ToJson for InvariantReport {
    /// `first_violation` is omitted (not `null`) when absent, so clean
    /// and violating reports are visually distinct at a glance.
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("checked".to_owned(), self.checked.to_json()),
            ("violations".to_owned(), self.violations.to_json()),
        ];
        if let Some(first) = &self.first_violation {
            pairs.push(("first_violation".to_owned(), first.to_json()));
        }
        pairs.push(("worst_margin".to_owned(), Json::Num(self.worst_margin)));
        Json::obj(pairs)
    }
}

/// What an [`AssertionMonitor`] concluded: one [`InvariantReport`] per
/// *enabled* invariant (disabled ones stay `None` and are omitted from
/// JSON), attached to `SimReport` and rolled up per cohort in fleets.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AssertionReport {
    /// Eq. 5 delay-constraint outcome.
    pub delay: Option<InvariantReport>,
    /// V/f oscillation-rate outcome.
    pub oscillation: Option<InvariantReport>,
    /// Buffer-occupancy watchdog outcome.
    pub occupancy: Option<InvariantReport>,
    /// Voltage-monotone-in-frequency outcome.
    pub energy_monotone: Option<InvariantReport>,
}

impl AssertionReport {
    /// Invariant wire names, in report order — shared by JSON output,
    /// the fleet SLO rollup, and checkpoint encoding.
    pub const INVARIANTS: [&'static str; 4] =
        ["delay", "oscillation", "occupancy", "energy_monotone"];

    /// Per-invariant violation counts in [`Self::INVARIANTS`] order
    /// (0 for disabled invariants) — the constant-size fleet rollup row.
    #[must_use]
    pub fn violation_counts(&self) -> [u64; 4] {
        [
            self.delay.map_or(0, |r| r.violations),
            self.oscillation.map_or(0, |r| r.violations),
            self.occupancy.map_or(0, |r| r.violations),
            self.energy_monotone.map_or(0, |r| r.violations),
        ]
    }

    /// Total violations across all invariants.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.violation_counts().iter().sum()
    }

    /// True when no enabled invariant recorded a violation.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }

    fn rows(&self) -> [(&'static str, Option<InvariantReport>); 4] {
        [
            ("delay", self.delay),
            ("oscillation", self.oscillation),
            ("occupancy", self.occupancy),
            ("energy_monotone", self.energy_monotone),
        ]
    }
}

impl ToJson for AssertionReport {
    /// Serializes only the enabled invariants, in declaration order.
    fn to_json(&self) -> Json {
        Json::obj(
            self.rows()
                .iter()
                .filter_map(|(name, report)| report.map(|r| ((*name).to_owned(), r.to_json())))
                .collect(),
        )
    }
}

impl fmt::Display for AssertionReport {
    /// One line: overall verdict, then `violations/checked` per enabled
    /// invariant with the worst margin.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "clean")?;
        } else {
            write!(f, "{} violation(s)", self.total_violations())?;
        }
        for (name, report) in self.rows() {
            if let Some(r) = report {
                write!(
                    f,
                    " | {name} {}/{} worst {:.3}",
                    r.violations, r.checked, r.worst_margin
                )?;
            }
        }
        Ok(())
    }
}

/// Shared per-invariant accounting: checked/violation counters, first
/// violating sample, worst margin. All checks funnel through
/// [`Gauge::observe`] so every invariant reports identically.
#[derive(Debug, Clone, Copy, Default)]
struct Gauge {
    checked: u64,
    violations: u64,
    first: Option<ViolationSample>,
    worst: f64,
}

impl Gauge {
    /// Records one check of `value` against `limit` (violation when
    /// `value > limit`). `limit` is positive for every configured
    /// invariant (validated), so the margin ratio is well defined.
    fn observe(&mut self, at: SimTime, value: f64, limit: f64) {
        self.checked += 1;
        let margin = value / limit;
        if margin > self.worst {
            self.worst = margin;
        }
        if value > limit {
            self.violations += 1;
            if self.first.is_none() {
                self.first = Some(ViolationSample { at, value, limit });
            }
        }
    }

    /// Records an event this invariant examined without a comparable
    /// limit (e.g. the first operating point ever seen).
    fn tick(&mut self) {
        self.checked += 1;
    }

    fn report(&self) -> InvariantReport {
        InvariantReport {
            checked: self.checked,
            violations: self.violations,
            first_violation: self.first,
            worst_margin: self.worst,
        }
    }
}

#[derive(Debug)]
struct DelayState {
    gauge: Gauge,
    allowed_s: f64,
}

#[derive(Debug)]
struct OscState {
    gauge: Gauge,
    window_s: f64,
    window_ns: u64,
    /// Ring of the last `max_switches` switch timestamps (ns). A new
    /// switch closing a span shorter than the window with the oldest
    /// entry means `max_switches + 1` switches landed inside one window.
    ring: Box<[u64]>,
    head: usize,
    len: usize,
}

impl OscState {
    fn observe_switch(&mut self, at: SimTime) {
        let now = at.as_nanos();
        if self.len == self.ring.len() {
            let oldest = self.ring[self.head];
            let span = now.saturating_sub(oldest);
            // value/limit as rates: (n+1)/span vs (n+1)/window — the
            // shared gauge sees window/span so margin > 1 ⇔ too fast.
            let span_s = span as f64 / NANOS_PER_SEC as f64;
            let observed = if span_s > 0.0 {
                self.window_s / span_s
            } else {
                f64::INFINITY
            };
            self.gauge.observe(
                at,
                if span < self.window_ns {
                    observed
                } else {
                    observed.min(1.0)
                },
                1.0,
            );
            self.ring[self.head] = now;
            self.head = (self.head + 1) % self.ring.len();
        } else {
            self.gauge.tick();
            let tail = (self.head + self.len) % self.ring.len();
            self.ring[tail] = now;
            self.len += 1;
        }
    }
}

#[derive(Debug)]
struct OccState {
    gauge: Gauge,
    max: u32,
}

#[derive(Debug)]
struct EnergyState {
    gauge: Gauge,
    /// Observed operating points `(freq_tenths_mhz, millivolts)`,
    /// insertion-capped at [`ENERGY_TABLE_CAP`]; order is irrelevant
    /// because every new pair is compared against every stored one.
    table: [(u32, u32); ENERGY_TABLE_CAP],
    table_len: usize,
}

impl EnergyState {
    /// Checks one `(frequency, voltage)` pair against every operating
    /// point seen so far: voltage must be non-decreasing in frequency
    /// (P ∝ f·V², so a voltage inversion breaks energy monotonicity),
    /// and one frequency must not report two voltages.
    fn observe_pair(&mut self, at: SimTime, freq: u32, mv: u32) {
        if mv == 0 {
            // A zero voltage would poison the margin ratio; treat the
            // pair as unusable rather than divide by zero.
            self.gauge.tick();
            return;
        }
        let mut worst: Option<(f64, f64)> = None; // (value, limit) mv pair
        let mut known = false;
        for &(f2, v2) in &self.table[..self.table_len] {
            let (value, limit) = match f2.cmp(&freq) {
                std::cmp::Ordering::Less => (f64::from(v2), f64::from(mv)),
                std::cmp::Ordering::Greater => (f64::from(mv), f64::from(v2)),
                std::cmp::Ordering::Equal => {
                    known = true;
                    let (hi, lo) = (mv.max(v2), mv.min(v2));
                    (f64::from(hi), f64::from(lo))
                }
            };
            let replace = match worst {
                Some((wv, wl)) => value * wl > wv * limit,
                None => true,
            };
            if replace {
                worst = Some((value, limit));
            }
        }
        match worst {
            Some((value, limit)) => self.gauge.observe(at, value, limit),
            None => self.gauge.tick(),
        }
        if !known && self.table_len < ENERGY_TABLE_CAP {
            self.table[self.table_len] = (freq, mv);
            self.table_len += 1;
        }
    }
}

/// A streaming invariant checker that plugs in wherever a
/// [`TraceSink`] does.
///
/// Construction validates the config and performs the only allocations
/// the monitor will ever make (the oscillation ring); feeding events
/// through [`AssertionMonitor::observe`] (or [`TraceSink::record`]) is
/// allocation-free.
#[derive(Debug)]
pub struct AssertionMonitor {
    delay: Option<DelayState>,
    oscillation: Option<OscState>,
    occupancy: Option<OccState>,
    energy: Option<EnergyState>,
}

impl AssertionMonitor {
    /// Builds a monitor for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`AssertionConfig::validate`]'s error for invalid bounds.
    pub fn new(config: &AssertionConfig) -> Result<AssertionMonitor, String> {
        config.validate()?;
        Ok(AssertionMonitor {
            delay: config.delay.map(|d| DelayState {
                gauge: Gauge::default(),
                allowed_s: d.allowed_s(),
            }),
            oscillation: config.oscillation.map(|o| OscState {
                gauge: Gauge::default(),
                window_s: o.window_s,
                window_ns: SimTime::from_secs_f64(o.window_s).as_nanos(),
                ring: vec![0u64; o.max_switches as usize].into_boxed_slice(),
                head: 0,
                len: 0,
            }),
            occupancy: config.occupancy.map(|o| OccState {
                gauge: Gauge::default(),
                max: o.max_occupancy,
            }),
            energy: config.energy_monotone.then(|| EnergyState {
                gauge: Gauge::default(),
                table: [(0, 0); ENERGY_TABLE_CAP],
                table_len: 0,
            }),
        })
    }

    /// Feeds one event through every enabled invariant.
    pub fn observe(&mut self, event: &Event) {
        match *event {
            Event::FrameDone { at, delay_s, .. } => {
                if let Some(d) = &mut self.delay {
                    d.gauge.observe(at, delay_s, d.allowed_s);
                }
            }
            Event::FreqSwitch {
                at,
                from_tenths_mhz,
                to_tenths_mhz,
                from_mv,
                to_mv,
            } => {
                if let Some(o) = &mut self.oscillation {
                    o.observe_switch(at);
                }
                if let Some(e) = &mut self.energy {
                    e.observe_pair(at, from_tenths_mhz, from_mv);
                    e.observe_pair(at, to_tenths_mhz, to_mv);
                }
            }
            Event::BufferDrop { at, occupancy } => {
                if let Some(o) = &mut self.occupancy {
                    o.gauge.observe(at, f64::from(occupancy), f64::from(o.max));
                }
            }
            _ => {}
        }
    }

    /// The verdict so far. Cheap; callable mid-stream or at the end.
    #[must_use]
    pub fn report(&self) -> AssertionReport {
        AssertionReport {
            delay: self.delay.as_ref().map(|d| d.gauge.report()),
            oscillation: self.oscillation.as_ref().map(|o| o.gauge.report()),
            occupancy: self.occupancy.as_ref().map(|o| o.gauge.report()),
            energy_monotone: self.energy.as_ref().map(|e| e.gauge.report()),
        }
    }

    /// Offline verdict for a parsed event stream: exactly what an
    /// online monitor with the same `config` would have reported had it
    /// been attached to the run that produced `events`.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid config or an out-of-time-order
    /// stream (see [`crate::ensure_time_ordered`] — offline replay
    /// rejects disordered traces rather than re-sorting them, because a
    /// re-sorted stream could mask the very anomaly being checked).
    pub fn check(config: &AssertionConfig, events: &[Event]) -> Result<AssertionReport, String> {
        crate::ensure_time_ordered(events)?;
        let mut monitor = AssertionMonitor::new(config)?;
        for event in events {
            monitor.observe(event);
        }
        Ok(monitor.report())
    }
}

impl TraceSink for AssertionMonitor {
    fn record(&mut self, event: &Event) {
        self.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn frame(at: f64, delay_s: f64) -> Event {
        Event::FrameDone {
            at: t(at),
            delay_s,
            freq_tenths_mhz: 1000,
        }
    }

    fn switch(at: f64, from: (u32, u32), to: (u32, u32)) -> Event {
        Event::FreqSwitch {
            at: t(at),
            from_tenths_mhz: from.0,
            to_tenths_mhz: to.0,
            from_mv: from.1,
            to_mv: to.1,
        }
    }

    #[test]
    fn eq5_bound_matches_the_paper_formula() {
        assert!((eq5_delay_bound(100.0, 95.0).unwrap() - 0.2).abs() < 1e-12);
        assert!(eq5_delay_bound(95.0, 100.0).is_err());
        assert!(eq5_delay_bound(100.0, 100.0).is_err());
        assert!(eq5_delay_bound(f64::NAN, 1.0).is_err());
        assert!(eq5_delay_bound(100.0, -1.0).is_err());
    }

    #[test]
    fn delay_invariant_trips_only_above_the_allowed_bound() {
        let config = AssertionConfig {
            delay: Some(DelayBound {
                bound_s: 0.2,
                tolerance: 0.5,
            }),
            ..AssertionConfig::default()
        };
        let mut m = AssertionMonitor::new(&config).unwrap();
        m.observe(&frame(1.0, 0.25));
        m.observe(&frame(2.0, 0.30)); // exactly the limit: not a violation
        m.observe(&frame(3.0, 0.31));
        let r = m.report().delay.unwrap();
        assert_eq!((r.checked, r.violations), (3, 1));
        let first = r.first_violation.unwrap();
        assert_eq!(first.at, t(3.0));
        assert!((first.value - 0.31).abs() < 1e-12);
        assert!((r.worst_margin - 0.31 / 0.30).abs() < 1e-12);
    }

    #[test]
    fn oscillation_invariant_needs_more_than_max_switches_in_window() {
        let config = AssertionConfig {
            oscillation: Some(OscillationBound {
                max_switches: 2,
                window_s: 1.0,
            }),
            ..AssertionConfig::default()
        };
        let a = (1000, 1200);
        let b = (2000, 1400);
        // Three switches spread over > 1 s: clean.
        let mut m = AssertionMonitor::new(&config).unwrap();
        for at in [0.0, 0.6, 1.2] {
            m.observe(&switch(at, a, b));
        }
        assert!(m.report().is_clean());
        // Three switches inside 1 s: the third one violates.
        let mut m = AssertionMonitor::new(&config).unwrap();
        for at in [0.0, 0.3, 0.6, 2.0] {
            m.observe(&switch(at, a, b));
        }
        let r = m.report().oscillation.unwrap();
        assert_eq!((r.checked, r.violations), (4, 1));
        assert_eq!(r.first_violation.unwrap().at, t(0.6));
    }

    #[test]
    fn occupancy_invariant_flags_overflow_drops() {
        let config = AssertionConfig {
            occupancy: Some(OccupancyBound { max_occupancy: 8 }),
            ..AssertionConfig::default()
        };
        let mut m = AssertionMonitor::new(&config).unwrap();
        m.observe(&Event::BufferDrop {
            at: t(1.0),
            occupancy: 8,
        });
        m.observe(&Event::BufferDrop {
            at: t(2.0),
            occupancy: 9,
        });
        let r = m.report().occupancy.unwrap();
        assert_eq!((r.checked, r.violations), (2, 1));
        assert!((r.worst_margin - 9.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn energy_invariant_catches_voltage_inversions_and_same_freq_drift() {
        let config = AssertionConfig {
            energy_monotone: true,
            ..AssertionConfig::default()
        };
        // Monotone ladder: clean.
        let mut m = AssertionMonitor::new(&config).unwrap();
        m.observe(&switch(1.0, (590, 1000), (1000, 1300)));
        m.observe(&switch(2.0, (1000, 1300), (2000, 1500)));
        assert!(m.report().is_clean());
        assert_eq!(m.report().energy_monotone.unwrap().checked, 4);
        // Inversion: higher frequency at lower voltage.
        let mut m = AssertionMonitor::new(&config).unwrap();
        m.observe(&switch(1.0, (590, 1000), (1000, 1300)));
        m.observe(&switch(2.0, (1000, 1300), (2000, 900)));
        let r = m.report().energy_monotone.unwrap();
        assert!(r.violations > 0);
        assert!((r.worst_margin - 1300.0 / 900.0).abs() < 1e-12);
        // Same frequency, two voltages.
        let mut m = AssertionMonitor::new(&config).unwrap();
        m.observe(&switch(1.0, (590, 1000), (1000, 1300)));
        m.observe(&switch(2.0, (1000, 1250), (2000, 1500)));
        assert!(m.report().energy_monotone.unwrap().violations > 0);
    }

    #[test]
    fn disabled_invariants_are_absent_from_report_and_json() {
        let config = AssertionConfig {
            occupancy: Some(OccupancyBound { max_occupancy: 4 }),
            ..AssertionConfig::default()
        };
        let m = AssertionMonitor::new(&config).unwrap();
        let report = m.report();
        assert!(report.delay.is_none() && report.energy_monotone.is_none());
        assert_eq!(
            report.to_json().dump(),
            r#"{"occupancy":{"checked":0,"violations":0,"worst_margin":0.0}}"#
        );
    }

    #[test]
    fn config_json_round_trips_and_rejects_unknown_keys_and_bad_values() {
        let config = AssertionConfig {
            delay: Some(DelayBound {
                bound_s: 0.25,
                tolerance: 1.0,
            }),
            oscillation: Some(OscillationBound {
                max_switches: 7,
                window_s: 0.5,
            }),
            occupancy: Some(OccupancyBound { max_occupancy: 64 }),
            energy_monotone: true,
        };
        let json = config.to_json();
        assert_eq!(AssertionConfig::from_json(&json).unwrap(), config);

        for bad in [
            r#"{"deIay":{"bound_s":0.2}}"#,
            r#"{"delay":{"bound_s":0.2,"slack":1.0}}"#,
            r#"{"delay":{"tolerance":1.0}}"#,
            r#"{"delay":{"bound_s":0.2,"lambda_d":100.0,"lambda_u":95.0}}"#,
            r#"{"delay":{"bound_s":-0.2}}"#,
            r#"{"delay":{"bound_s":0.2,"tolerance":-0.5}}"#,
            r#"{"delay":{"bound_s":null}}"#,
            r#"{"oscillation":{"max_switches":0,"window_s":1.0}}"#,
            r#"{"oscillation":{"max_switches":5,"window_s":0.0}}"#,
            r#"{"oscillation":{"max_switches":5}}"#,
            r#"{"occupancy":{"max":-3}}"#,
            r#"{"occupancy":{}}"#,
            r#"{"energy_monotone":"yes"}"#,
            r#"[1,2]"#,
        ] {
            let json = Json::parse(bad).unwrap();
            assert!(AssertionConfig::from_json(&json).is_err(), "{bad}");
        }

        // NaN tolerances can't arrive via JSON (no NaN literal) but must
        // still be rejected when constructed programmatically.
        let nan = AssertionConfig {
            delay: Some(DelayBound {
                bound_s: 0.2,
                tolerance: f64::NAN,
            }),
            ..AssertionConfig::default()
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn eq5_rate_pair_config_computes_the_bound() {
        let json =
            Json::parse(r#"{"delay":{"lambda_d":100.0,"lambda_u":95.0,"tolerance":0.5}}"#).unwrap();
        let config = AssertionConfig::from_json(&json).unwrap();
        let d = config.delay.unwrap();
        assert!((d.bound_s - 0.2).abs() < 1e-12);
        assert!((d.allowed_s() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn offline_check_matches_online_observation_and_rejects_disorder() {
        let config = AssertionConfig::paper();
        let events = vec![
            Event::RunStart { at: SimTime::ZERO },
            switch(0.1, (590, 1000), (2000, 1500)),
            frame(0.2, 0.05),
            frame(0.5, 5.0),
            Event::RunEnd { at: t(1.0) },
        ];
        let mut online = AssertionMonitor::new(&config).unwrap();
        for ev in &events {
            online.observe(ev);
        }
        let offline = AssertionMonitor::check(&config, &events).unwrap();
        assert_eq!(
            online.report().to_json().dump(),
            offline.to_json().dump(),
            "online and offline verdicts must be bit-identical"
        );
        assert_eq!(offline.total_violations(), 1);

        let mut disordered = events.clone();
        disordered.swap(2, 3);
        let err = AssertionMonitor::check(&config, &disordered).unwrap_err();
        assert!(err.contains("out of time order"), "{err}");
    }

    #[test]
    fn monitor_observation_allocates_nothing() {
        // The zero-alloc claim is enforced for the full simulator loop in
        // crates/core/tests/alloc_run.rs; here a cheap structural proof:
        // a long stream leaves the monitor's state footprint unchanged.
        let config = AssertionConfig::paper();
        let mut m = AssertionMonitor::new(&config).unwrap();
        let mut at = SimTime::ZERO;
        for i in 0..10_000u32 {
            at = at.saturating_add(SimDuration::from_nanos(1_000_000));
            m.observe(&Event::FrameDone {
                at,
                delay_s: 0.01 + f64::from(i % 7) * 0.001,
                freq_tenths_mhz: 590 + (i % 5),
            });
            m.observe(&switch(at.as_secs_f64(), (590, 1000), (2000, 1500)));
        }
        let r = m.report();
        assert_eq!(r.delay.unwrap().violations, 0);
        assert!(r.oscillation.unwrap().checked == 10_000);
    }
}
