//! Durable atomic file writes for crash-safe artifacts.
//!
//! The fleet engine promotes staged files (`foo.tmp` → `foo`) so readers
//! never observe a partially written checkpoint or trace. Rename alone is
//! not enough for crash safety: `fs::write` + `fs::rename` can commit the
//! *rename* to disk before the file *contents*, so a power loss can leave
//! a valid-looking name over unsynced (empty or garbage) bytes. Every
//! promotion here syncs the staged file first, then renames, then — on
//! Unix — syncs the parent directory so the rename itself is durable.

use std::fs;
use std::io::Write;
use std::path::Path;

/// Writes `bytes` to `tmp_path`, syncs them to disk, then atomically
/// renames over `final_path` (and syncs the parent directory on Unix).
///
/// # Errors
///
/// Returns the first I/O error; the temp file is removed on failure so
/// a retry does not observe a stale partial write.
pub fn write_atomic(final_path: &Path, tmp_path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let result = (|| {
        let mut file = fs::File::create(tmp_path)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(tmp_path, final_path)?;
        sync_parent_dir(final_path);
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(tmp_path);
    }
    result
}

/// Promotes an already-written-and-synced staged file into place:
/// rename, then parent-directory sync. The caller is responsible for
/// having called [`std::fs::File::sync_all`] on the staged file.
///
/// # Errors
///
/// Returns the rename error, if any.
pub fn promote(tmp_path: &Path, final_path: &Path) -> std::io::Result<()> {
    fs::rename(tmp_path, final_path)?;
    sync_parent_dir(final_path);
    Ok(())
}

/// Best-effort fsync of `path`'s parent directory so a just-committed
/// rename survives power loss. Directory fsync is a Unix concept; on
/// other platforms (and on filesystems that reject opening directories)
/// this is a no-op — the rename is still atomic, just not yet durable.
pub fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("trace_durable_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn write_atomic_round_trips_and_leaves_no_temp() {
        let dir = temp_dir("round_trip");
        let final_path = dir.join("artifact.json");
        let tmp_path = dir.join("artifact.json.tmp");
        write_atomic(&final_path, &tmp_path, b"{\"ok\":true}\n").expect("write");
        assert_eq!(fs::read(&final_path).unwrap(), b"{\"ok\":true}\n");
        assert!(!tmp_path.exists(), "temp file must be consumed by rename");
        // Overwrite is atomic too: the old contents are fully replaced.
        write_atomic(&final_path, &tmp_path, b"v2").expect("overwrite");
        assert_eq!(fs::read(&final_path).unwrap(), b"v2");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_cleans_up_on_failure() {
        let dir = temp_dir("cleanup");
        let missing = dir.join("no_such_subdir").join("artifact");
        let tmp_path = dir.join("artifact.tmp");
        // Rename into a missing directory fails after the temp write.
        write_atomic(&missing, &tmp_path, b"data").expect_err("rename must fail");
        assert!(!tmp_path.exists(), "failed write must not leave a temp");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn promote_moves_a_staged_file_into_place() {
        let dir = temp_dir("promote");
        let tmp_path = dir.join("staged.tmp");
        let final_path = dir.join("staged");
        fs::write(&tmp_path, b"staged bytes").unwrap();
        promote(&tmp_path, &final_path).expect("promote");
        assert_eq!(fs::read(&final_path).unwrap(), b"staged bytes");
        assert!(!tmp_path.exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
