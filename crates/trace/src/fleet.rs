//! Fleet-level trace events.
//!
//! A fleet run (`crates/fleet`) simulates many devices; its trace
//! output is two-layered: each device optionally records its own
//! [`Event`](crate::Event) JSONL stream, and the fleet engine records a
//! *fleet-level* JSONL log of [`FleetEvent`]s — one `device_start`
//! followed by `device_done` or `device_failed` per device, plus a
//! `fleet_checkpoint` marker per resume snapshot, bracketed by
//! `fleet_start` and `fleet_done`. The log is written in device-index
//! order after the
//! parallel run completes, so it is byte-identical at any `--jobs`
//! count, like everything else the engine emits.
//!
//! The wire format mirrors [`Event`]: one JSON object per line with a
//! `"kind"` discriminator, round-tripped by [`FleetEvent::from_json`]
//! and [`parse_fleet_jsonl`].

use simcore::json::{Json, ToJson};

/// One fleet-level event.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetEvent {
    /// The fleet run began.
    FleetStart {
        /// Fleet spec name.
        name: String,
        /// Number of devices in the fleet.
        devices: u64,
        /// The fleet's base seed (each device forks its own stream).
        base_seed: u64,
    },
    /// One device's simulation was dispatched.
    DeviceStart {
        /// Device index within the fleet.
        device: u64,
        /// The device's forked seed.
        seed: u64,
        /// Workload name (e.g. `mp3:AB`).
        workload: String,
        /// Governor label.
        governor: String,
        /// DPM policy label.
        dpm: String,
        /// Fault preset name.
        faults: String,
    },
    /// One device's simulation completed.
    DeviceDone {
        /// Device index within the fleet.
        device: u64,
        /// Frames the device decoded.
        frames_completed: u64,
        /// Total energy, joules.
        energy_j: f64,
        /// Mean total frame delay, seconds.
        mean_delay_s: f64,
    },
    /// One device failed every attempt its failure policy allowed; the
    /// fleet carried on without it (or aborted, under `fail_fast`).
    DeviceFailed {
        /// Device index within the fleet.
        device: u64,
        /// The seed of the last attempt.
        seed: u64,
        /// Attempts consumed before giving up.
        attempts: u64,
        /// The last attempt's error message.
        error: String,
    },
    /// The engine wrote a resume checkpoint of the outcome prefix.
    FleetCheckpoint {
        /// Devices whose outcomes the checkpoint covers (`0..done`).
        done: u64,
    },
    /// The whole fleet completed.
    FleetDone {
        /// Number of devices that completed.
        devices: u64,
    },
}

impl FleetEvent {
    /// The wire-format `"kind"` discriminator.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FleetEvent::FleetStart { .. } => "fleet_start",
            FleetEvent::DeviceStart { .. } => "device_start",
            FleetEvent::DeviceDone { .. } => "device_done",
            FleetEvent::DeviceFailed { .. } => "device_failed",
            FleetEvent::FleetCheckpoint { .. } => "fleet_checkpoint",
            FleetEvent::FleetDone { .. } => "fleet_done",
        }
    }

    /// Decodes one fleet event from its JSON object form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(json: &Json) -> Result<FleetEvent, String> {
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing \"kind\"")?;
        let ev = match kind {
            "fleet_start" => FleetEvent::FleetStart {
                name: str_field(json, "name")?,
                devices: u64_field(json, "devices")?,
                base_seed: u64_field(json, "base_seed")?,
            },
            "device_start" => FleetEvent::DeviceStart {
                device: u64_field(json, "device")?,
                seed: u64_field(json, "seed")?,
                workload: str_field(json, "workload")?,
                governor: str_field(json, "governor")?,
                dpm: str_field(json, "dpm")?,
                faults: str_field(json, "faults")?,
            },
            "device_done" => FleetEvent::DeviceDone {
                device: u64_field(json, "device")?,
                frames_completed: u64_field(json, "frames_completed")?,
                energy_j: f64_field(json, "energy_j")?,
                mean_delay_s: f64_field(json, "mean_delay_s")?,
            },
            "device_failed" => FleetEvent::DeviceFailed {
                device: u64_field(json, "device")?,
                seed: u64_field(json, "seed")?,
                attempts: u64_field(json, "attempts")?,
                error: str_field(json, "error")?,
            },
            "fleet_checkpoint" => FleetEvent::FleetCheckpoint {
                done: u64_field(json, "done")?,
            },
            "fleet_done" => FleetEvent::FleetDone {
                devices: u64_field(json, "devices")?,
            },
            other => return Err(format!("unknown fleet event kind `{other}`")),
        };
        Ok(ev)
    }
}

impl ToJson for FleetEvent {
    fn to_json(&self) -> Json {
        let mut pairs = vec![("kind".to_string(), Json::Str(self.name().to_string()))];
        match self {
            FleetEvent::FleetStart {
                name,
                devices,
                base_seed,
            } => {
                pairs.push(("name".into(), name.to_json()));
                pairs.push(("devices".into(), devices.to_json()));
                pairs.push(("base_seed".into(), base_seed.to_json()));
            }
            FleetEvent::DeviceStart {
                device,
                seed,
                workload,
                governor,
                dpm,
                faults,
            } => {
                pairs.push(("device".into(), device.to_json()));
                pairs.push(("seed".into(), seed.to_json()));
                pairs.push(("workload".into(), workload.to_json()));
                pairs.push(("governor".into(), governor.to_json()));
                pairs.push(("dpm".into(), dpm.to_json()));
                pairs.push(("faults".into(), faults.to_json()));
            }
            FleetEvent::DeviceDone {
                device,
                frames_completed,
                energy_j,
                mean_delay_s,
            } => {
                pairs.push(("device".into(), device.to_json()));
                pairs.push(("frames_completed".into(), frames_completed.to_json()));
                pairs.push(("energy_j".into(), energy_j.to_json()));
                pairs.push(("mean_delay_s".into(), mean_delay_s.to_json()));
            }
            FleetEvent::DeviceFailed {
                device,
                seed,
                attempts,
                error,
            } => {
                pairs.push(("device".into(), device.to_json()));
                pairs.push(("seed".into(), seed.to_json()));
                pairs.push(("attempts".into(), attempts.to_json()));
                pairs.push(("error".into(), error.to_json()));
            }
            FleetEvent::FleetCheckpoint { done } => {
                pairs.push(("done".into(), done.to_json()));
            }
            FleetEvent::FleetDone { devices } => {
                pairs.push(("devices".into(), devices.to_json()));
            }
        }
        Json::obj(pairs)
    }
}

/// Parses a fleet-level JSONL log back into events. Blank lines are
/// skipped; any malformed line aborts with its line number.
///
/// # Errors
///
/// Returns a message naming the offending line.
pub fn parse_fleet_jsonl(text: &str) -> Result<Vec<FleetEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(FleetEvent::from_json(&json).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(events)
}

fn str_field(json: &Json, name: &'static str) -> Result<String, String> {
    json.get(name)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing \"{name}\""))
}

fn u64_field(json: &Json, name: &'static str) -> Result<u64, String> {
    // `ToJson` serializes u64 as `Json::Int(v as i64)`, so values above
    // `i64::MAX` (full-width seeds in particular) come back negative;
    // reverse the two's-complement cast rather than rejecting them.
    match json.get(name) {
        Some(Json::Int(i)) => Ok(*i as u64),
        _ => Err(format!("missing \"{name}\"")),
    }
}

fn f64_field(json: &Json, name: &'static str) -> Result<f64, String> {
    json.get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing \"{name}\""))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<FleetEvent> {
        vec![
            FleetEvent::FleetStart {
                name: "smoke".into(),
                devices: 3,
                base_seed: 42,
            },
            FleetEvent::DeviceStart {
                device: 0,
                seed: 17,
                workload: "mp3:AB".into(),
                governor: "change-point".into(),
                dpm: "break-even".into(),
                faults: "off".into(),
            },
            FleetEvent::DeviceDone {
                device: 0,
                frames_completed: 1234,
                energy_j: 56.25,
                mean_delay_s: 0.125,
            },
            FleetEvent::DeviceFailed {
                device: 1,
                seed: u64::MAX - 7,
                attempts: 3,
                error: "injected panic: boom".into(),
            },
            FleetEvent::FleetCheckpoint { done: 2 },
            FleetEvent::FleetDone { devices: 3 },
        ]
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        let text: String = samples()
            .iter()
            .map(|e| e.to_json().dump() + "\n")
            .collect();
        let back = parse_fleet_jsonl(&text).expect("parses");
        assert_eq!(back, samples());
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let err = parse_fleet_jsonl("{\"kind\":\"fleet_start\"}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_fleet_jsonl("{\"kind\":\"warp_drive\"}\n").unwrap_err();
        assert!(err.contains("warp_drive"), "{err}");
        let ok = parse_fleet_jsonl("\n\n").expect("blank lines skipped");
        assert!(ok.is_empty());
    }
}
