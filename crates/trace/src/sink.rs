//! Trace sinks: where emitted events go.
//!
//! The simulator holds an `Option<&mut dyn TraceSink>`; with no sink
//! attached it never formats or stores anything. The implementations
//! here cover the three standard destinations:
//!
//! * [`NullSink`] — accepts and discards every event; the baseline for
//!   measuring instrumentation overhead.
//! * [`RingSink`] — a preallocated in-memory ring that keeps the most
//!   recent `capacity` events and counts the rest as dropped. Recording
//!   into a non-full ring does not allocate.
//! * [`JsonlSink`] — serializes each event as one JSON line into any
//!   [`std::io::Write`]. The first I/O error is remembered ("sticky")
//!   and reported by [`TraceSink::finish`]; later records are ignored
//!   rather than panicking mid-simulation.
//! * [`FilteredSink`] — wraps another sink, forwarding only the event
//!   kinds in a [`KindSet`].

use crate::event::{Event, KindSet};
use simcore::json::ToJson;
use std::io::Write;

/// Destination for simulator events.
pub trait TraceSink {
    /// Records one event. Must not panic; I/O failures are deferred to
    /// [`TraceSink::finish`].
    fn record(&mut self, event: &Event);

    /// Flushes buffered output and reports the first error encountered,
    /// if any. The default does nothing and succeeds.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first failure.
    fn finish(&mut self) -> Result<(), String> {
        Ok(())
    }
}

/// A sink that discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &Event) {}
}

/// A bounded in-memory sink keeping the most recent events.
///
/// Storage is preallocated up front; once full, each new event
/// overwrites the oldest and increments [`RingSink::dropped`].
#[derive(Debug)]
pub struct RingSink {
    buf: Vec<Event>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Number of events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if no events have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(*event);
        } else {
            self.buf[self.head] = *event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// A sink writing one JSON object per line to a [`Write`] target.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    error: Option<String>,
    written: u64,
    /// Reusable serialization buffer: each record clears and refills it
    /// instead of allocating a fresh `String` per event.
    line: String,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `writer`; callers wanting buffering should pass a
    /// [`std::io::BufWriter`].
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer,
            error: None,
            written: 0,
            line: String::new(),
        }
    }

    /// Number of events successfully serialized.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Consumes the sink, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        event.to_json().dump_into(&mut self.line);
        self.line.push('\n');
        if let Err(e) = self.writer.write_all(self.line.as_bytes()) {
            self.error = Some(format!("trace write failed: {e}"));
        } else {
            self.written += 1;
        }
    }

    fn finish(&mut self) -> Result<(), String> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        self.writer
            .flush()
            .map_err(|e| format!("trace flush failed: {e}"))
    }
}

/// A sink forwarding only the event kinds in a [`KindSet`].
#[derive(Debug)]
pub struct FilteredSink<S: TraceSink> {
    inner: S,
    keep: KindSet,
}

impl<S: TraceSink> FilteredSink<S> {
    /// Wraps `inner`, keeping only events whose kind is in `keep`.
    pub fn new(inner: S, keep: KindSet) -> FilteredSink<S> {
        FilteredSink { inner, keep }
    }

    /// Consumes the filter, returning the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSink> TraceSink for FilteredSink<S> {
    fn record(&mut self, event: &Event) {
        if self.keep.contains(event.kind()) {
            self.inner.record(event);
        }
    }

    fn finish(&mut self) -> Result<(), String> {
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use simcore::time::SimTime;

    fn ev(n: u64) -> Event {
        Event::FrameDone {
            at: SimTime::from_nanos(n),
            delay_s: 0.0,
            freq_tenths_mhz: 591,
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut ring = RingSink::new(3);
        assert!(ring.is_empty());
        for n in 0..5 {
            ring.record(&ev(n));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let times: Vec<u64> = ring.events().iter().map(|e| e.at().as_nanos()).collect();
        assert_eq!(times, vec![2, 3, 4], "oldest first, newest kept");
        assert!(ring.finish().is_ok());
    }

    #[test]
    fn ring_capacity_zero_is_clamped() {
        let mut ring = RingSink::new(0);
        ring.record(&ev(1));
        ring.record(&ev(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn jsonl_writes_one_parseable_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&ev(7));
        sink.record(&Event::RunEnd {
            at: SimTime::from_nanos(9),
        });
        assert!(sink.finish().is_ok());
        assert_eq!(sink.written(), 2);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let events = crate::parse_jsonl(&text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], ev(7));
    }

    struct FailWriter;
    impl Write for FailWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_io_errors_are_sticky_and_reported_at_finish() {
        let mut sink = JsonlSink::new(FailWriter);
        sink.record(&ev(1));
        sink.record(&ev(2)); // must not panic after the first failure
        assert_eq!(sink.written(), 0);
        let err = sink.finish().unwrap_err();
        assert!(err.contains("disk full"), "{err}");
    }

    #[test]
    fn filtered_sink_forwards_only_selected_kinds() {
        let keep = KindSet::EMPTY.with(EventKind::Run);
        let mut sink = FilteredSink::new(RingSink::new(8), keep);
        sink.record(&ev(1)); // Frame: filtered out
        sink.record(&Event::RunStart { at: SimTime::ZERO });
        assert!(sink.finish().is_ok());
        let inner = sink.into_inner();
        assert_eq!(inner.len(), 1);
        assert!(matches!(inner.events()[0], Event::RunStart { .. }));
    }
}
