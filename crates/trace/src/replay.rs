//! Trace replay: reconstructing run aggregates from events alone.
//!
//! A traced run's JSONL stream contains every mode boundary, frequency
//! switch, and frame completion. [`replay`] integrates those boundary
//! events into the same integer-nanosecond residency buckets the live
//! simulator keeps, so the reconstructed aggregates match the run's
//! `SimReport` **exactly** — counters as equal integers, residency and
//! delay statistics as bit-equal `f64`s (integer addition is
//! associative, and the delay stream is pushed through the same
//! Welford accumulator in the same order).

use crate::event::{Event, TraceMode};
use crate::registry::ns_to_secs;
use simcore::json::{Json, ToJson};
use simcore::stats::OnlineStats;
use simcore::time::SimTime;
use std::collections::BTreeMap;

/// Aggregates reconstructed from a trace by [`replay`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySummary {
    /// Frames that finished decoding (`frame_done` events).
    pub frames_completed: u64,
    /// Committed frequency/voltage switches.
    pub freq_switches: u64,
    /// Rate-change detections (arrival + service).
    pub rate_changes: u64,
    /// Sleep-state entries.
    pub sleeps: u64,
    /// Wake-ups from sleep.
    pub wakes: u64,
    /// Frames dropped by the bounded buffer.
    pub buffer_drops: u64,
    /// Times the supervisor entered degraded operation.
    pub degraded_entries: u64,
    /// Residency per operating mode, integer nanoseconds.
    pub mode_ns: BTreeMap<u32, u64>,
    /// Residency per decode frequency (tenths of a MHz), nanoseconds.
    pub freq_ns: BTreeMap<u32, u64>,
    /// Per-frame queueing-delay statistics, in event order.
    pub delays: OnlineStats,
    /// Timestamp of the last event (the accounted end of the run).
    pub end: SimTime,
}

impl ReplaySummary {
    /// Mode residency in seconds, keyed by [`TraceMode`].
    #[must_use]
    pub fn mode_secs(&self) -> BTreeMap<TraceMode, f64> {
        self.mode_ns
            .iter()
            .filter_map(|(&k, &ns)| TraceMode::from_index(k).map(|m| (m, ns_to_secs(ns))))
            .collect()
    }

    /// Frequency residency in seconds, keyed by tenths of a MHz —
    /// the exact shape of `SimReport::freq_residency`.
    #[must_use]
    pub fn freq_secs(&self) -> BTreeMap<u32, f64> {
        self.freq_ns
            .iter()
            .map(|(&k, &ns)| (k, ns_to_secs(ns)))
            .collect()
    }

    /// Total accounted time in seconds.
    #[must_use]
    pub fn duration_secs(&self) -> f64 {
        ns_to_secs(self.mode_ns.values().sum())
    }
}

impl ToJson for ReplaySummary {
    fn to_json(&self) -> Json {
        let mode_secs: BTreeMap<String, f64> = self
            .mode_secs()
            .into_iter()
            .map(|(m, s)| (m.label().to_owned(), s))
            .collect();
        Json::obj(vec![
            ("frames_completed".into(), self.frames_completed.to_json()),
            ("freq_switches".into(), self.freq_switches.to_json()),
            ("rate_changes".into(), self.rate_changes.to_json()),
            ("sleeps".into(), self.sleeps.to_json()),
            ("wakes".into(), self.wakes.to_json()),
            ("buffer_drops".into(), self.buffer_drops.to_json()),
            ("degraded_entries".into(), self.degraded_entries.to_json()),
            ("duration_secs".into(), self.duration_secs().to_json()),
            ("mode_secs".into(), mode_secs.to_json()),
            ("freq_residency".into(), self.freq_secs().to_json()),
            ("mean_delay_s".into(), self.delays.mean().to_json()),
            ("max_delay_s".into(), self.delays.max().to_json()),
            ("end_ns".into(), Json::Int(self.end.as_nanos() as i64)),
        ])
    }
}

/// Integrates a time-ordered event stream into run aggregates.
///
/// Only mode-boundary events (`run_start`, `idle_enter`,
/// `decode_start`, `sleep_enter`, `wake_start`, `run_end`) advance the
/// residency clock; the frequency active during each decoding span is
/// the one carried by its `decode_start`. Events must be in
/// non-decreasing time order, which is how every sink receives them.
#[must_use]
pub fn replay(events: &[Event]) -> ReplaySummary {
    let mut summary = ReplaySummary {
        frames_completed: 0,
        freq_switches: 0,
        rate_changes: 0,
        sleeps: 0,
        wakes: 0,
        buffer_drops: 0,
        degraded_entries: 0,
        mode_ns: BTreeMap::new(),
        freq_ns: BTreeMap::new(),
        delays: OnlineStats::new(),
        end: SimTime::ZERO,
    };
    // Integration state: the mode and decode frequency in effect since
    // `prev`, pending the next boundary event.
    let mut mode: Option<TraceMode> = None;
    let mut freq_tenths: u32 = 0;
    let mut prev = SimTime::ZERO;

    for ev in events {
        match *ev {
            Event::RunStart { at } => {
                close_span(&mut summary, mode, freq_tenths, &mut prev, at);
                mode = Some(TraceMode::Idle);
            }
            Event::IdleEnter { at } => {
                close_span(&mut summary, mode, freq_tenths, &mut prev, at);
                mode = Some(TraceMode::Idle);
            }
            Event::DecodeStart {
                at,
                freq_tenths_mhz,
            } => {
                close_span(&mut summary, mode, freq_tenths, &mut prev, at);
                mode = Some(TraceMode::Decoding);
                freq_tenths = freq_tenths_mhz;
            }
            Event::SleepEnter { at, state } => {
                close_span(&mut summary, mode, freq_tenths, &mut prev, at);
                mode = Some(state.mode());
                summary.sleeps += 1;
            }
            Event::WakeStart { at, .. } => {
                close_span(&mut summary, mode, freq_tenths, &mut prev, at);
                mode = Some(TraceMode::Waking);
                summary.wakes += 1;
            }
            Event::RunEnd { at } => {
                close_span(&mut summary, mode, freq_tenths, &mut prev, at);
                mode = None;
            }
            Event::FreqSwitch { .. } => summary.freq_switches += 1,
            Event::RateChange { .. } => summary.rate_changes += 1,
            Event::BufferDrop { .. } => summary.buffer_drops += 1,
            Event::Degraded { entered, .. } => {
                if entered {
                    summary.degraded_entries += 1;
                }
            }
            Event::FrameDone { delay_s, .. } => {
                summary.frames_completed += 1;
                summary.delays.push(delay_s);
            }
        }
        summary.end = summary.end.max(ev.at());
    }
    summary
}

/// Closes the residency span `[prev, at)` against the mode/frequency in
/// effect, then advances `prev`.
fn close_span(
    summary: &mut ReplaySummary,
    mode: Option<TraceMode>,
    freq_tenths: u32,
    prev: &mut SimTime,
    at: SimTime,
) {
    let ns = at.saturating_since(*prev).as_nanos();
    if let Some(m) = mode {
        if ns > 0 {
            *summary.mode_ns.entry(m.index()).or_insert(0) += ns;
            if m == TraceMode::Decoding {
                *summary.freq_ns.entry(freq_tenths).or_insert(0) += ns;
            }
        }
    }
    *prev = at;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SleepKind;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn replay_integrates_mode_and_frequency_residency() {
        let events = vec![
            Event::RunStart { at: t(0) },
            Event::IdleEnter { at: t(0) },
            Event::DecodeStart {
                at: t(100),
                freq_tenths_mhz: 2212,
            },
            Event::FrameDone {
                at: t(400),
                delay_s: 3e-7,
                freq_tenths_mhz: 2212,
            },
            Event::IdleEnter { at: t(400) },
            Event::SleepEnter {
                at: t(600),
                state: SleepKind::Standby,
            },
            Event::WakeStart {
                at: t(900),
                latency: simcore::time::SimDuration::from_nanos(50),
            },
            Event::IdleEnter { at: t(950) },
            Event::RunEnd { at: t(1000) },
        ];
        let s = replay(&events);
        assert_eq!(s.frames_completed, 1);
        assert_eq!(s.sleeps, 1);
        assert_eq!(s.wakes, 1);
        assert_eq!(s.mode_ns[&TraceMode::Decoding.index()], 300);
        assert_eq!(s.mode_ns[&TraceMode::Idle.index()], 100 + 200 + 50);
        assert_eq!(s.mode_ns[&TraceMode::Standby.index()], 300);
        assert_eq!(s.mode_ns[&TraceMode::Waking.index()], 50);
        assert_eq!(s.freq_ns[&2212], 300);
        assert_eq!(s.end, t(1000));
        assert_eq!(s.duration_secs(), 1e-6);
        assert_eq!(s.delays.count(), 1);
    }

    #[test]
    fn non_boundary_events_do_not_advance_the_clock() {
        let events = vec![
            Event::RunStart { at: t(0) },
            Event::DecodeStart {
                at: t(0),
                freq_tenths_mhz: 591,
            },
            Event::BufferDrop {
                at: t(40),
                occupancy: 3,
            },
            Event::Degraded {
                at: t(50),
                entered: true,
            },
            Event::Degraded {
                at: t(60),
                entered: false,
            },
            Event::RunEnd { at: t(100) },
        ];
        let s = replay(&events);
        assert_eq!(s.mode_ns[&TraceMode::Decoding.index()], 100);
        assert_eq!(s.buffer_drops, 1);
        assert_eq!(s.degraded_entries, 1);
    }

    #[test]
    fn empty_trace_replays_to_zeroes() {
        let s = replay(&[]);
        assert_eq!(s.frames_completed, 0);
        assert!(s.mode_ns.is_empty());
        assert_eq!(s.duration_secs(), 0.0);
    }
}
