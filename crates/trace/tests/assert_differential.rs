//! Differential suite for the assertion monitors: the *online* verdict
//! (an [`AssertionMonitor`] fed event-by-event while the simulator
//! runs) must agree **bit-for-bit** with the *offline* verdict
//! ([`AssertionMonitor::check`] replaying the recorded trace — the same
//! entry point `tracecat assert` uses), for every combination of seed,
//! governor, fault preset, and calibration worker count.
//!
//! Any divergence means the monitor's state machines depend on
//! something other than the event stream (allocation, ordering,
//! threading) — exactly the bug class this suite exists to catch.

use powermgr::config::{DpmKind, GovernorKind, SupervisorConfig, SystemConfig};
use powermgr::scenario::Workload;
use powermgr::SharedResources;
use simcore::json::ToJson;
use trace::{
    AssertionConfig, AssertionMonitor, AssertionReport, DelayBound, OccupancyBound,
    OscillationBound, RingSink,
};

/// Enough capacity for every event of an `mp3:AB` run; the tests assert
/// nothing was dropped, so the offline replay sees the full stream.
const RING_CAPACITY: usize = 1 << 21;

fn config_for(governor: &GovernorKind, preset: faults::FaultPreset, seed: u64) -> SystemConfig {
    let faults = preset.spec(seed);
    let (supervisor, buffer_capacity) = if faults.is_some() {
        (Some(SupervisorConfig::default()), Some(64))
    } else {
        (None, None)
    };
    SystemConfig {
        governor: governor.clone(),
        dpm: DpmKind::parse("break-even").expect("known policy"),
        faults,
        supervisor,
        buffer_capacity,
        ..SystemConfig::default()
    }
}

/// A deliberately tight invariant set so violating traces are part of
/// the differential corpus, not just clean ones: a delay bound most
/// frames miss, a one-switch oscillation budget, a zero-occupancy
/// watchdog.
fn strict_config() -> AssertionConfig {
    AssertionConfig {
        delay: Some(DelayBound {
            bound_s: 1e-6,
            tolerance: 0.0,
        }),
        oscillation: Some(OscillationBound {
            max_switches: 1,
            window_s: 10.0,
        }),
        occupancy: Some(OccupancyBound { max_occupancy: 0 }),
        energy_monotone: true,
    }
}

/// Runs one case online (monitor attached to the live run) and offline
/// (check over the recorded trace) and requires bit-identical verdicts.
/// Returns the shared verdict for cross-case assertions.
fn one_case(
    workload: &Workload,
    governor: &GovernorKind,
    preset: faults::FaultPreset,
    seed: u64,
    assertions: &AssertionConfig,
) -> AssertionReport {
    let config = config_for(governor, preset, seed);
    let shared = SharedResources::default();
    let mut sink = RingSink::new(RING_CAPACITY);
    let mut monitor = AssertionMonitor::new(assertions).expect("valid config");
    let report = workload
        .run_observed(&config, seed, &shared, Some(&mut sink), Some(&mut monitor))
        .expect("monitored run succeeds");
    assert_eq!(sink.dropped(), 0, "ring too small for the full trace");

    let online = report.assertions.expect("monitor attached");
    let offline = AssertionMonitor::check(assertions, &sink.events())
        .expect("recorded trace is well-formed and time-ordered");
    assert_eq!(
        online.to_json().dump(),
        offline.to_json().dump(),
        "online/offline verdicts diverge: {workload} {} {preset:?} seed {seed}",
        governor.label(),
    );
    assert_eq!(online, offline);
    online
}

fn governors() -> Vec<GovernorKind> {
    vec![
        GovernorKind::quick_change_point(),
        GovernorKind::Ideal,
        GovernorKind::MaxPerformance,
    ]
}

#[test]
fn online_and_offline_verdicts_agree_across_the_matrix() {
    let workload = Workload::Mp3("AB".to_owned());
    let paper = AssertionConfig::paper();
    let strict = strict_config();
    let mut violating_cases = 0usize;
    for governor in &governors() {
        for preset in [faults::FaultPreset::Off, faults::FaultPreset::Wlan] {
            for seed in [1u64, 42] {
                let clean = one_case(&workload, governor, preset, seed, &paper);
                assert!(
                    clean.delay.expect("delay enabled").checked > 100,
                    "delay invariant saw too few frames"
                );
                let strict_verdict = one_case(&workload, governor, preset, seed, &strict);
                if !strict_verdict.is_clean() {
                    violating_cases += 1;
                }
            }
        }
    }
    // The strict config must actually produce violating traces, or the
    // differential corpus never exercises the violation bookkeeping.
    assert!(
        violating_cases > 0,
        "strict invariant set tripped on no case — corpus is all-clean"
    );
}

/// Worker-thread count must never leak into verdicts: threshold
/// calibration parallelism is bit-deterministic, and the monitor sees
/// the same stream regardless.
#[test]
fn verdicts_are_identical_at_jobs_1_2_8() {
    let workload = Workload::Mp3("AB".to_owned());
    let governor = GovernorKind::quick_change_point();
    let strict = strict_config();
    let mut reference: Option<String> = None;
    for jobs in [1usize, 2, 8] {
        simcore::par::set_default_jobs(jobs);
        let verdict = one_case(&workload, &governor, faults::FaultPreset::Wlan, 42, &strict);
        let bytes = verdict.to_json().dump();
        match &reference {
            None => reference = Some(bytes),
            Some(want) => assert_eq!(&bytes, want, "verdict changed at jobs {jobs}"),
        }
    }
}

/// Nightly many-seed sweep (`cargo test -- --include-ignored`): the
/// full matrix over 16 seeds per cell.
#[test]
#[ignore = "nightly: many-seed differential sweep"]
fn nightly_many_seed_differential_sweep() {
    let workload = Workload::Mp3("AB".to_owned());
    let paper = AssertionConfig::paper();
    let strict = strict_config();
    for governor in &governors() {
        for preset in [faults::FaultPreset::Off, faults::FaultPreset::Wlan] {
            for seed in 0u64..16 {
                one_case(&workload, governor, preset, seed, &paper);
                one_case(&workload, governor, preset, seed, &strict);
            }
        }
    }
}
