//! Property tests for the assertion monitors over *synthetic* event
//! streams (vendored mini-proptest, no simulator in the loop).
//!
//! Streams are built clean **by construction** against a fixed test
//! invariant set — frame delays under the bound, switches spaced wider
//! than the oscillation window allows to matter, occupancies under the
//! watchdog, voltages drawn from one monotone V(f) table. Each property
//! then injects exactly one violation of one invariant and requires the
//! verdict to trip **only** that invariant; clean streams must trip
//! nothing. Every case also replays the stream offline
//! ([`AssertionMonitor::check`]) and requires the verdict to match the
//! online monitor bit-for-bit.

use proptest::prelude::*;
use simcore::json::ToJson;
use simcore::time::SimTime;
use trace::{
    AssertionConfig, AssertionMonitor, AssertionReport, DelayBound, Event, OccupancyBound,
    OscillationBound, TraceSink,
};

/// The invariant set every property runs against. Deliberately small
/// numbers so injected violations are unambiguous:
/// delay bound 0.1 s (zero tolerance), at most 3 switches per 1 s
/// window, occupancy watchdog at 10, voltage monotone in frequency.
fn test_config() -> AssertionConfig {
    AssertionConfig {
        delay: Some(DelayBound {
            bound_s: 0.1,
            tolerance: 0.0,
        }),
        oscillation: Some(OscillationBound {
            max_switches: 3,
            window_s: 1.0,
        }),
        occupancy: Some(OccupancyBound { max_occupancy: 10 }),
        energy_monotone: true,
    }
}

/// Clean operating frequencies (tenths of a MHz). Distinct and few
/// enough that every pair fits the energy table, so the monotone
/// voltage map below is fully recorded.
const CLEAN_FREQS: [u32; 8] = [590, 740, 880, 1030, 1180, 1330, 1470, 1620];

/// The one true V(f): strictly increasing in `f`, one voltage per
/// frequency — streams that only use this map can never trip the
/// energy-monotone invariant.
fn clean_mv(freq_tenths_mhz: u32) -> u32 {
    800 + freq_tenths_mhz / 10
}

fn ns(nanos: u64) -> SimTime {
    SimTime::from_nanos(nanos)
}

fn switch_at(nanos: u64, from: u32, to: u32) -> Event {
    Event::FreqSwitch {
        at: ns(nanos),
        from_tenths_mhz: from,
        to_tenths_mhz: to,
        from_mv: clean_mv(from),
        to_mv: clean_mv(to),
    }
}

/// One generated stream element: a time gap (milliseconds) and a
/// payload drawn from the clean-by-construction distributions.
#[derive(Debug, Clone)]
enum Kind {
    /// `FrameDone` with a delay safely under the 0.1 s bound.
    Frame(f64),
    /// `BufferDrop` at an occupancy within the watchdog.
    Drop(u32),
    /// `FreqSwitch` between two clean operating points (indices into
    /// [`CLEAN_FREQS`]).
    Switch(usize, usize),
    /// Events no invariant examines — noise the monitor must ignore.
    Idle,
    Decode(usize),
}

fn kind() -> impl Strategy<Value = Kind> {
    let n = CLEAN_FREQS.len();
    prop_oneof![
        3 => (0.0f64..0.09).prop_map(Kind::Frame),
        1 => (0u32..11).prop_map(Kind::Drop),
        2 => (0..n, 0..n).prop_map(|(a, b)| Kind::Switch(a, b)),
        1 => Just(Kind::Idle),
        1 => (0..n).prop_map(Kind::Decode),
    ]
}

fn slots() -> impl Strategy<Value = Vec<(u64, Kind)>> {
    prop::collection::vec((1u64..50, kind()), 0..64)
}

/// Materializes a slot list into a strictly time-ordered clean stream
/// (without its `RunEnd`). Gaps are prefix-summed so order holds by
/// construction; every switch is pushed an extra 0.5 s out, so any
/// four consecutive switches span at least 1.5 s — wider than the 1 s
/// oscillation window. Returns the events and the final cursor time.
fn build_stream(slots: &[(u64, Kind)]) -> (Vec<Event>, u64) {
    let mut events = vec![Event::RunStart { at: SimTime::ZERO }];
    let mut cursor: u64 = 0;
    for (gap_ms, kind) in slots {
        cursor += gap_ms * 1_000_000;
        match *kind {
            Kind::Frame(delay_s) => events.push(Event::FrameDone {
                at: ns(cursor),
                delay_s,
                freq_tenths_mhz: CLEAN_FREQS[0],
            }),
            Kind::Drop(occupancy) => events.push(Event::BufferDrop {
                at: ns(cursor),
                occupancy,
            }),
            Kind::Switch(a, b) => {
                cursor += 500_000_000;
                events.push(switch_at(cursor, CLEAN_FREQS[a], CLEAN_FREQS[b]));
            }
            Kind::Idle => events.push(Event::IdleEnter { at: ns(cursor) }),
            Kind::Decode(a) => events.push(Event::DecodeStart {
                at: ns(cursor),
                freq_tenths_mhz: CLEAN_FREQS[a],
            }),
        }
    }
    (events, cursor)
}

fn finish(mut events: Vec<Event>, cursor: u64) -> Vec<Event> {
    events.push(Event::RunEnd {
        at: ns(cursor + 1_000_000),
    });
    events
}

/// Runs the stream through the monitor both ways — online via the
/// [`TraceSink`] interface and offline via [`AssertionMonitor::check`]
/// — and requires bit-identical verdicts before returning one.
fn verdict(events: &[Event]) -> AssertionReport {
    let config = test_config();
    let mut monitor = AssertionMonitor::new(&config).expect("valid test config");
    for event in events {
        monitor.record(event);
    }
    let online = monitor.report();
    let offline = AssertionMonitor::check(&config, events).expect("stream is time-ordered");
    assert_eq!(
        online.to_json().dump(),
        offline.to_json().dump(),
        "online and offline verdicts diverge on a synthetic stream"
    );
    assert_eq!(online, offline);
    online
}

fn counts(events: &[Event]) -> [u64; 4] {
    verdict(events).violation_counts()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clean_streams_never_trip_any_invariant(slots in slots()) {
        let (events, cursor) = build_stream(&slots);
        let events = finish(events, cursor);
        let report = verdict(&events);
        prop_assert!(
            report.is_clean(),
            "clean-by-construction stream tripped: {report}"
        );
        // The monitor must still have *checked* everything checkable.
        let frames = events
            .iter()
            .filter(|e| matches!(e, Event::FrameDone { .. }))
            .count() as u64;
        let drops = events
            .iter()
            .filter(|e| matches!(e, Event::BufferDrop { .. }))
            .count() as u64;
        prop_assert_eq!(report.delay.expect("enabled").checked, frames);
        prop_assert_eq!(report.occupancy.expect("enabled").checked, drops);
    }

    #[test]
    fn a_delay_spike_trips_exactly_the_delay_invariant(
        slots in slots(),
        spike in 0.2f64..1.0,
    ) {
        let (mut events, cursor) = build_stream(&slots);
        let at = cursor + 1_100_000_000;
        events.push(Event::FrameDone {
            at: ns(at),
            delay_s: spike,
            freq_tenths_mhz: CLEAN_FREQS[0],
        });
        let [delay, osc, occ, energy] = counts(&finish(events, at));
        prop_assert_eq!(delay, 1, "the spike must trip the delay bound once");
        prop_assert_eq!((osc, occ, energy), (0, 0, 0), "no other invariant may trip");
    }

    #[test]
    fn a_switch_burst_trips_exactly_the_oscillation_invariant(
        slots in slots(),
        burst_gap_ms in 10u64..30,
    ) {
        // Four switches inside ~0.1 s: one more than the budget allows
        // per window. Injected 1.1 s after the last clean event (past
        // the window), alternating between two *clean* operating points
        // so the energy invariant stays quiet.
        let (mut events, cursor) = build_stream(&slots);
        let mut at = cursor + 1_100_000_000;
        for i in 0..4u64 {
            let (a, b) = if i % 2 == 0 { (0, 5) } else { (5, 0) };
            events.push(switch_at(at, CLEAN_FREQS[a], CLEAN_FREQS[b]));
            at += burst_gap_ms * 1_000_000;
        }
        let [delay, osc, occ, energy] = counts(&finish(events, at));
        prop_assert_eq!(osc, 1, "the 4th burst switch must close a too-short window");
        prop_assert_eq!((delay, occ, energy), (0, 0, 0), "no other invariant may trip");
    }

    #[test]
    fn an_occupancy_overflow_trips_exactly_the_occupancy_invariant(
        slots in slots(),
        over in 11u32..101,
    ) {
        let (mut events, cursor) = build_stream(&slots);
        let at = cursor + 1_100_000_000;
        events.push(Event::BufferDrop {
            at: ns(at),
            occupancy: over,
        });
        let [delay, osc, occ, energy] = counts(&finish(events, at));
        prop_assert_eq!(occ, 1, "the overflow must trip the watchdog once");
        prop_assert_eq!((delay, osc, energy), (0, 0, 0), "no other invariant may trip");
    }

    #[test]
    fn a_voltage_inversion_trips_exactly_the_energy_invariant(
        slots in slots(),
        undervolt_mv in 100u32..200,
    ) {
        // A switch *up* in frequency (to a frequency outside the clean
        // set, so the bad pair can't collide with a recorded one) whose
        // target voltage lands *below* the source voltage. The source
        // pair is observed — and recorded — first, so the inverted pair
        // always has a higher-voltage lower-frequency point to violate
        // against, whatever the clean prefix contained.
        let (mut events, cursor) = build_stream(&slots);
        let at = cursor + 1_100_000_000;
        let from = CLEAN_FREQS[6];
        events.push(Event::FreqSwitch {
            at: ns(at),
            from_tenths_mhz: from,
            to_tenths_mhz: 1910,
            from_mv: clean_mv(from),
            to_mv: clean_mv(from) - undervolt_mv,
        });
        let [delay, osc, occ, energy] = counts(&finish(events, at));
        prop_assert_eq!(energy, 1, "the inverted pair must break voltage monotonicity");
        prop_assert_eq!((delay, osc, occ), (0, 0, 0), "no other invariant may trip");
    }
}
