//! Benchmarks of the full-system simulator and its substrates:
//! end-to-end clip simulation throughput, frame-buffer operations, and
//! the TISMDP solver.
//!
//! Plain timing harness (no external benchmark framework, so the
//! workspace builds offline): each case runs a few warm-up iterations,
//! then reports the mean wall-clock time over the measured iterations.

use dpm::costs::DpmCosts;
use dpm::idle::IdleMixture;
use dpm::tismdp::{TismdpConfig, TismdpPolicy};
use framequeue::FrameBuffer;
use hardware::SmartBadge;
use powermgr::config::{DpmKind, GovernorKind, SystemConfig};
use powermgr::scenario;
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};
use std::hint::black_box;
use std::time::Instant;

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..3 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed().as_secs_f64() / f64::from(iters);
    println!("{name:<40} {:>12.3} µs/iter", per_iter * 1e6);
}

fn bench_full_system() {
    // 100 s of MP3 clip A under the ideal governor: ~4000 frames.
    let config = SystemConfig {
        governor: GovernorKind::Ideal,
        dpm: DpmKind::None,
        ..SystemConfig::default()
    };
    bench("simulate_mp3_clip_100s_ideal", 20, || {
        let mut rng = SimRng::seed_from(1);
        let trace = workload::Mp3Clip::table2()[0].generate(&mut rng);
        black_box(scenario::run_trace(&trace, &config, 1).expect("runs"));
    });

    let config = SystemConfig {
        governor: GovernorKind::Ideal,
        dpm: DpmKind::Tismdp { delay_weight: 2.0 },
        ..SystemConfig::default()
    };
    bench("simulate_mp3_clip_100s_tismdp", 20, || {
        let mut rng = SimRng::seed_from(2);
        let trace = workload::Mp3Clip::table2()[0].generate(&mut rng);
        black_box(scenario::run_trace(&trace, &config, 2).expect("runs"));
    });
}

fn bench_frame_buffer() {
    bench("frame_buffer_push_pop_10k", 100, || {
        let mut buf: FrameBuffer<u64> = FrameBuffer::new();
        let mut t = SimTime::ZERO;
        for i in 0..10_000u64 {
            t += SimDuration::from_micros(37);
            buf.push(t, i);
            if i % 2 == 0 {
                t += SimDuration::from_micros(11);
                black_box(buf.pop(t));
            }
        }
        black_box(buf.len());
    });
}

fn bench_tismdp_solver() {
    let costs = DpmCosts::managed_subsystem(&SmartBadge::new());
    let idle = IdleMixture::streaming_default().expect("static params");
    bench("tismdp_solve_48_buckets", 50, || {
        black_box(TismdpPolicy::solve(&costs, &idle, TismdpConfig::default()).expect("solves"));
    });
}

fn main() {
    bench_full_system();
    bench_frame_buffer();
    bench_tismdp_solver();
}
