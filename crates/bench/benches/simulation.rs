//! Criterion benchmarks of the full-system simulator and its substrates:
//! end-to-end clip simulation throughput, frame-buffer operations, and
//! the TISMDP solver.

use criterion::{criterion_group, criterion_main, Criterion};
use dpm::costs::DpmCosts;
use dpm::idle::IdleMixture;
use dpm::tismdp::{TismdpConfig, TismdpPolicy};
use framequeue::FrameBuffer;
use hardware::SmartBadge;
use powermgr::config::{DpmKind, GovernorKind, SystemConfig};
use powermgr::scenario;
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};
use std::hint::black_box;
use workload::Mp3Clip;

fn bench_full_system(c: &mut Criterion) {
    // 100 s of MP3 clip A under the ideal governor: ~4000 frames.
    c.bench_function("simulate_mp3_clip_100s_ideal", |b| {
        let config = SystemConfig {
            governor: GovernorKind::Ideal,
            dpm: DpmKind::None,
            ..SystemConfig::default()
        };
        b.iter(|| {
            let mut rng = SimRng::seed_from(1);
            let trace = Mp3Clip::table2()[0].generate(&mut rng);
            black_box(scenario::run_trace(&trace, &config, 1).expect("runs"))
        });
    });

    c.bench_function("simulate_mp3_clip_100s_tismdp", |b| {
        let config = SystemConfig {
            governor: GovernorKind::Ideal,
            dpm: DpmKind::Tismdp { delay_weight: 2.0 },
            ..SystemConfig::default()
        };
        b.iter(|| {
            let mut rng = SimRng::seed_from(2);
            let trace = Mp3Clip::table2()[0].generate(&mut rng);
            black_box(scenario::run_trace(&trace, &config, 2).expect("runs"))
        });
    });
}

fn bench_frame_buffer(c: &mut Criterion) {
    c.bench_function("frame_buffer_push_pop_10k", |b| {
        b.iter(|| {
            let mut buf: FrameBuffer<u64> = FrameBuffer::new();
            let mut t = SimTime::ZERO;
            for i in 0..10_000u64 {
                t += SimDuration::from_micros(37);
                buf.push(t, i);
                if i % 2 == 0 {
                    t += SimDuration::from_micros(11);
                    black_box(buf.pop(t));
                }
            }
            black_box(buf.len())
        });
    });
}

fn bench_tismdp_solver(c: &mut Criterion) {
    let costs = DpmCosts::managed_subsystem(&SmartBadge::new());
    let idle = IdleMixture::streaming_default().expect("static params");
    c.bench_function("tismdp_solve_48_buckets", |b| {
        b.iter(|| {
            black_box(TismdpPolicy::solve(&costs, &idle, TismdpConfig::default()).expect("solves"))
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_full_system, bench_frame_buffer, bench_tismdp_solver
);
criterion_main!(benches);
