//! Criterion microbenchmarks of the detection hot paths: the per-sample
//! detector update, the windowed `ln P_max` maximization, and the offline
//! calibration. These are the operations that would run on the SA-1100
//! itself, so their cost is part of the paper's "extra computation"
//! trade-off discussion.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use detect::calibrate::{CalibrationConfig, ThresholdTable};
use detect::changepoint::{ChangePointConfig, ChangePointDetector};
use detect::ema::EmaEstimator;
use detect::estimator::RateEstimator;
use detect::likelihood::maximize_ln_p;
use detect::window::SampleWindow;
use simcore::dist::{Exponential, Sample};
use simcore::rng::SimRng;
use std::hint::black_box;

fn bench_detector_update(c: &mut Criterion) {
    let config = ChangePointConfig {
        calibration_trials: 500,
        ..ChangePointConfig::default()
    };
    let template = ChangePointDetector::new(25.0, config.clone()).expect("valid config");
    let table = template.table().clone();
    let dist = Exponential::new(25.0).expect("static rate");

    c.bench_function("change_point_observe", |b| {
        b.iter_batched(
            || {
                let mut det =
                    ChangePointDetector::with_table(25.0, table.clone(), config.check_interval)
                        .expect("valid detector");
                let mut rng = SimRng::seed_from(1);
                for _ in 0..config.window {
                    det.observe(dist.sample(&mut rng));
                }
                (det, rng)
            },
            |(mut det, mut rng)| {
                for _ in 0..100 {
                    black_box(det.observe(dist.sample(&mut rng)));
                }
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("ema_observe", |b| {
        let mut ema = EmaEstimator::new(25.0, 0.3).expect("valid gain");
        let mut rng = SimRng::seed_from(2);
        b.iter(|| {
            for _ in 0..100 {
                black_box(ema.observe(dist.sample(&mut rng)));
            }
        });
    });
}

fn bench_ln_p_max(c: &mut Criterion) {
    let dist = Exponential::new(1.0).expect("static rate");
    let mut rng = SimRng::seed_from(3);
    let mut window = SampleWindow::new(100);
    for _ in 0..100 {
        window.push(dist.sample(&mut rng));
    }
    c.bench_function("maximize_ln_p_m100_k10", |b| {
        b.iter(|| black_box(maximize_ln_p(&window, 1.0, 2.0, 10)));
    });
}

fn bench_calibration(c: &mut Criterion) {
    c.bench_function("calibrate_one_ratio_500_trials", |b| {
        b.iter(|| {
            let config = CalibrationConfig {
                trials: 500,
                ..CalibrationConfig::default()
            };
            let mut rng = SimRng::seed_from(4);
            black_box(ThresholdTable::calibrate(&[2.0], config, &mut rng).expect("calibrates"))
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_detector_update, bench_ln_p_max, bench_calibration
);
criterion_main!(benches);
