//! Microbenchmarks of the detection hot paths: the per-sample detector
//! update, the windowed `ln P_max` maximization, and the offline
//! calibration. These are the operations that would run on the SA-1100
//! itself, so their cost is part of the paper's "extra computation"
//! trade-off discussion.
//!
//! Plain timing harness (no external benchmark framework, so the
//! workspace builds offline): each case runs a few warm-up iterations,
//! then reports the mean wall-clock time over the measured iterations.

use detect::calibrate::{CalibrationConfig, ThresholdTable};
use detect::changepoint::{ChangePointConfig, ChangePointDetector};
use detect::ema::EmaEstimator;
use detect::estimator::RateEstimator;
use detect::likelihood::maximize_ln_p;
use detect::window::SampleWindow;
use simcore::dist::{Exponential, Sample};
use simcore::rng::SimRng;
use std::hint::black_box;
use std::time::Instant;

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..3 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed().as_secs_f64() / f64::from(iters);
    println!("{name:<40} {:>12.3} µs/iter", per_iter * 1e6);
}

fn bench_detector_update() {
    let config = ChangePointConfig {
        calibration_trials: 500,
        ..ChangePointConfig::default()
    };
    let template = ChangePointDetector::new(25.0, config.clone()).expect("valid config");
    let table = template.table().clone();
    let dist = Exponential::new(25.0).expect("static rate");

    bench("change_point_observe_x100", 200, || {
        let mut det = ChangePointDetector::with_table(25.0, table.clone(), config.check_interval)
            .expect("valid detector");
        let mut rng = SimRng::seed_from(1);
        for _ in 0..config.window {
            det.observe(dist.sample(&mut rng));
        }
        for _ in 0..100 {
            black_box(det.observe(dist.sample(&mut rng)));
        }
    });

    let mut ema = EmaEstimator::new(25.0, 0.3).expect("valid gain");
    let mut rng = SimRng::seed_from(2);
    bench("ema_observe_x100", 200, || {
        for _ in 0..100 {
            black_box(ema.observe(dist.sample(&mut rng)));
        }
    });
}

fn bench_ln_p_max() {
    let dist = Exponential::new(1.0).expect("static rate");
    let mut rng = SimRng::seed_from(3);
    let mut window = SampleWindow::new(100);
    for _ in 0..100 {
        window.push(dist.sample(&mut rng));
    }
    bench("maximize_ln_p_m100_k10", 1000, || {
        black_box(maximize_ln_p(&window, 1.0, 2.0, 10));
    });
}

fn bench_calibration() {
    bench("calibrate_one_ratio_500_trials", 20, || {
        let config = CalibrationConfig {
            trials: 500,
            ..CalibrationConfig::default()
        };
        let mut rng = SimRng::seed_from(4);
        black_box(ThresholdTable::calibrate(&[2.0], config, &mut rng).expect("calibrates"));
    });
}

fn main() {
    bench_detector_update();
    bench_ln_p_max();
    bench_calibration();
}
