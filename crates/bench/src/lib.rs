//! Shared helpers for the experiment-regeneration binaries.
//!
//! Every table and figure of the paper has a binary under `src/bin/`
//! that regenerates it (see `DESIGN.md` § 4 for the index). The binaries
//! print a human-readable table to stdout and, when `--json <path>` is
//! passed, also write machine-readable rows for `EXPERIMENTS.md`.

use powermgr::config::{DpmKind, GovernorKind, SystemConfig};
use simcore::json::ToJson;
use std::io::Write;
use std::path::Path;

/// The fixed base seed all experiment binaries derive their randomness
/// from, so printed tables are reproducible run-to-run.
pub const EXPERIMENT_SEED: u64 = 0xDAC_2001;

/// The paper-parameter change-point governor (window 100, 99.5 %
/// confidence, checked every 10 samples).
#[must_use]
pub fn paper_change_point() -> GovernorKind {
    GovernorKind::change_point()
}

/// The four governor columns of Tables 3 and 4, in paper order:
/// ideal, change-point, exponential average, maximum performance.
#[must_use]
pub fn table_governors() -> Vec<(&'static str, GovernorKind)> {
    vec![
        ("Ideal", GovernorKind::Ideal),
        ("Change Point", paper_change_point()),
        ("Exp. Ave.", GovernorKind::ExpAverage { gain: 0.5 }),
        ("Max", GovernorKind::MaxPerformance),
    ]
}

/// A config with the given governor and no DPM (the Table 3/4 setting:
/// DVS in isolation).
#[must_use]
pub fn dvs_only(governor: GovernorKind) -> SystemConfig {
    SystemConfig {
        governor,
        dpm: DpmKind::None,
        ..SystemConfig::default()
    }
}

/// Prints the standard experiment header.
pub fn header(id: &str, caption: &str) {
    println!("== {id} — {caption}");
    println!("   (reproduction of Simunic et al., DAC 2001; synthetic workloads, see DESIGN.md)");
    println!();
}

/// Writes `rows` as pretty JSON to `path`.
///
/// # Panics
///
/// Panics if the file cannot be written — experiment binaries want loud
/// failures, not silent truncation.
pub fn write_json<T: ToJson + ?Sized>(path: &Path, rows: &T) {
    let json = rows.to_json().pretty();
    let mut f = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    f.write_all(json.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("\n[json written to {}]", path.display());
}

/// Parses an optional `--json <path>` argument pair from `args`.
#[must_use]
pub fn json_path_from_args() -> Option<std::path::PathBuf> {
    flag_value("--json").map(std::path::PathBuf::from)
}

/// Whether the bare flag `name` appears in the process arguments.
#[must_use]
pub fn has_flag(name: &str) -> bool {
    std::env::args().skip(1).any(|a| a == name)
}

/// Peak resident-set size of this process so far, in MiB, read from the
/// `VmHWM` line of `/proc/self/status`. `VmHWM` is the kernel's
/// high-water mark: it only ever grows over the process lifetime, so a
/// reading taken after a run bounds every earlier moment of it too.
/// Returns `None` where the proc filesystem is unavailable (non-Linux).
#[must_use]
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Returns the value following `name` in the process arguments, if any.
#[must_use]
pub fn flag_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// The `n`-th positional (non-flag) process argument, skipping the
/// `--json`/`--jobs` value pairs the harness binaries share.
#[must_use]
pub fn positional_arg(n: usize) -> Option<String> {
    let mut args = std::env::args().skip(1);
    let mut seen = 0usize;
    while let Some(a) = args.next() {
        if a == "--json" || a == "--jobs" {
            let _ = args.next();
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        if seen == n {
            return Some(a);
        }
        seen += 1;
    }
    None
}

/// Installs the `--jobs N` process argument (if present) as the
/// process-wide parallelism default and returns the resolved job count.
///
/// Every experiment binary calls this first. Results are bit-identical
/// at any job count — the deterministic parallel engine guarantees it —
/// so `--jobs` only changes wall-clock time.
///
/// # Panics
///
/// Panics with a usage message if the `--jobs` value is not a positive
/// integer.
pub fn init_jobs_from_args() -> usize {
    if let Some(v) = flag_value("--jobs") {
        let n: usize = v
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| panic!("--jobs expects a positive integer, got `{v}`"));
        simcore::par::set_default_jobs(n);
    }
    simcore::par::default_jobs()
}

/// The chaos-sweep harness: randomized fault plans against the full
/// stack, one independent run per seed.
pub mod chaos {
    use faults::FaultSpec;
    use powermgr::config::{DpmKind, GovernorKind, SupervisorConfig, SystemConfig};
    use powermgr::metrics::ModeKey;
    use powermgr::scenario;
    use simcore::json::ToJson;
    use simcore::par::{par_map_range, Jobs};
    use simcore::rng::SimRng;

    /// The MP3 clip sequence every chaos run decodes.
    pub const LABELS: &str = "ACE";

    /// One seed's sweep outcome.
    #[derive(Debug, Clone, PartialEq)]
    pub struct ChaosRow {
        /// The sweep seed (fault plan and workload randomness).
        pub seed: u64,
        /// Total energy for the run, kJ.
        pub energy_kj: f64,
        /// Frames decoded to completion.
        pub frames_completed: u64,
        /// Frames lost to injected network faults.
        pub arrivals_dropped: u64,
        /// Frames shed by the bounded buffer.
        pub frames_dropped: u64,
        /// Fraction of completed frames that missed their deadline.
        pub deadline_miss_ratio: f64,
        /// Frequency-switch retries after injected switch faults.
        pub switch_retries: u64,
        /// Frequency switches abandoned after retry exhaustion.
        pub switch_failures: u64,
        /// Corrupted timing samples rejected by the supervisor.
        pub samples_rejected: u64,
        /// Times the supervisor entered degraded mode.
        pub degraded_entries: u64,
        /// Seconds spent in degraded mode.
        pub degraded_secs: f64,
        /// Invariant violations detected for this seed (0 = healthy).
        pub violations: u64,
    }

    simcore::impl_to_json!(ChaosRow {
        seed,
        energy_kj,
        frames_completed,
        arrivals_dropped,
        frames_dropped,
        deadline_miss_ratio,
        switch_retries,
        switch_failures,
        samples_rejected,
        degraded_entries,
        degraded_secs,
        violations,
    });

    fn chaos_config(spec: FaultSpec) -> SystemConfig {
        SystemConfig {
            governor: GovernorKind::quick_change_point(),
            dpm: DpmKind::None,
            faults: Some(spec),
            supervisor: Some(SupervisorConfig::default()),
            buffer_capacity: Some(64),
            ..SystemConfig::default()
        }
    }

    /// Runs one chaos seed and checks the harness invariants: frame
    /// accounting closes, mode residencies sum to the run duration,
    /// energy is finite and non-negative, miss ratios stay in `[0, 1]`,
    /// and a replay with the same seed reproduces the report
    /// byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns the simulation error message if the run itself fails.
    pub fn run_seed(seed: u64) -> Result<ChaosRow, String> {
        let mut rng = SimRng::seed_from(seed).fork("chaos-spec");
        let spec = FaultSpec::randomized(&mut rng);
        let report = scenario::run_mp3_sequence(LABELS, &chaos_config(spec.clone()), seed)
            .map_err(|e| e.to_string())?;

        // Invariant checks (mirrors tests/chaos.rs, but reported not
        // asserted, so one bad seed doesn't hide the rest).
        let mut violations = 0u64;
        let mut trace_rng = SimRng::seed_from(seed).fork("mp3-sequence");
        let generated = workload::mp3::sequence(LABELS, &mut trace_rng)
            .expect("known labels")
            .frames()
            .len() as u64;
        let r = report.robustness.clone();
        if report.frames_completed + r.arrivals_dropped + r.frames_dropped != generated {
            violations += 1;
        }
        let mode_secs: f64 = ModeKey::ALL.iter().map(|&m| report.mode_secs(m)).sum();
        if (mode_secs - report.duration_secs).abs() >= 1.0 {
            violations += 1;
        }
        if !report.total_energy_j().is_finite() || report.total_energy_j() < 0.0 {
            violations += 1;
        }
        if !(0.0..=1.0).contains(&r.deadline_miss_ratio()) {
            violations += 1;
        }
        let replay = scenario::run_mp3_sequence(LABELS, &chaos_config(spec), seed);
        match replay {
            Ok(b) if b.to_json().dump() == report.to_json().dump() => {}
            _ => violations += 1,
        }

        Ok(ChaosRow {
            seed,
            energy_kj: report.total_energy_kj(),
            frames_completed: report.frames_completed,
            arrivals_dropped: r.arrivals_dropped,
            frames_dropped: r.frames_dropped,
            deadline_miss_ratio: r.deadline_miss_ratio(),
            switch_retries: r.switch_retries,
            switch_failures: r.switch_failures,
            samples_rejected: r.samples_rejected,
            degraded_entries: r.degraded_entries,
            degraded_secs: r.degraded_secs,
            violations,
        })
    }

    /// Runs seeds `0..n_seeds` on the deterministic parallel engine.
    /// Results are in seed order and bit-identical at any job count
    /// (each seed's randomness is derived from the seed alone).
    #[must_use]
    pub fn sweep(n_seeds: u64, jobs: Jobs) -> Vec<Result<ChaosRow, String>> {
        par_map_range(jobs, n_seeds as usize, |i| run_seed(i as u64))
    }
}

/// Shared computation for Figures 4 and 5: normalized performance and
/// energy per frame vs CPU frequency.
pub mod perf_energy {
    use hardware::perf::PerformanceCurve;
    use hardware::SmartBadge;
    use powermgr::power::PowerProfile;
    use workload::MediaKind;

    /// One operating point's performance/energy pair.
    #[derive(Debug, Clone, Copy)]
    pub struct Row {
        /// CPU frequency, MHz.
        pub freq_mhz: f64,
        /// Normalized decode performance (1.0 at the top frequency).
        pub performance: f64,
        /// Energy per frame relative to the top frequency:
        /// `(P(f)·t(f)) / (P(f_max)·t(f_max))`.
        pub energy_ratio: f64,
    }

    simcore::impl_to_json!(Row {
        freq_mhz,
        performance,
        energy_ratio,
    });

    /// Computes the rows for one application curve.
    #[must_use]
    pub fn rows(badge: &SmartBadge, curve: &PerformanceCurve, kind: MediaKind) -> Vec<Row> {
        let max = badge.cpu().max_operating_point();
        let p_max = PowerProfile::decode(badge, max, kind, 1.0).total_mw();
        badge
            .cpu()
            .operating_points()
            .iter()
            .map(|&op| {
                let perf = curve.performance_at(op.freq_mhz);
                let p = PowerProfile::decode(badge, op, kind, perf).total_mw();
                Row {
                    freq_mhz: op.freq_mhz,
                    performance: perf,
                    energy_ratio: (p / perf) / p_max,
                }
            })
            .collect()
    }

    /// Prints the rows as the figure's table.
    pub fn print(rows: &[Row]) {
        println!(
            "{:>9} {:>13} {:>13}",
            "f (MHz)", "perf ratio", "energy ratio"
        );
        for r in rows {
            println!(
                "{:>9.1} {:>13.3} {:>13.3}",
                r.freq_mhz, r.performance, r.energy_ratio
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_columns_match_paper_order() {
        let names: Vec<&str> = table_governors().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["Ideal", "Change Point", "Exp. Ave.", "Max"]);
    }

    #[test]
    fn dvs_only_has_no_dpm() {
        let c = dvs_only(GovernorKind::MaxPerformance);
        assert_eq!(c.dpm.label(), "none");
    }

    #[test]
    fn perf_energy_rows_normalize_to_one_at_max() {
        let badge = hardware::SmartBadge::new();
        let curve = hardware::perf::PerformanceCurve::mpeg_on_sdram(badge.cpu());
        let rows = perf_energy::rows(&badge, &curve, workload::MediaKind::MpegVideo);
        let last = rows.last().unwrap();
        assert!((last.performance - 1.0).abs() < 1e-9);
        assert!((last.energy_ratio - 1.0).abs() < 1e-9);
        // DVS rationale: lower frequency means lower energy per frame.
        assert!(rows[0].energy_ratio < 1.0);
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("bench-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rows.json");
        write_json(&path, &vec![1, 2, 3]);
        let back = simcore::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, simcore::Json::parse("[1,2,3]").unwrap());
    }
}
