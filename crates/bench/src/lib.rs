//! Shared helpers for the experiment-regeneration binaries.
//!
//! Every table and figure of the paper has a binary under `src/bin/`
//! that regenerates it (see `DESIGN.md` § 4 for the index). The binaries
//! print a human-readable table to stdout and, when `--json <path>` is
//! passed, also write machine-readable rows for `EXPERIMENTS.md`.

use powermgr::config::{DpmKind, GovernorKind, SystemConfig};
use simcore::json::ToJson;
use std::io::Write;
use std::path::Path;

/// The fixed base seed all experiment binaries derive their randomness
/// from, so printed tables are reproducible run-to-run.
pub const EXPERIMENT_SEED: u64 = 0xDAC_2001;

/// The paper-parameter change-point governor (window 100, 99.5 %
/// confidence, checked every 10 samples).
#[must_use]
pub fn paper_change_point() -> GovernorKind {
    GovernorKind::change_point()
}

/// The four governor columns of Tables 3 and 4, in paper order:
/// ideal, change-point, exponential average, maximum performance.
#[must_use]
pub fn table_governors() -> Vec<(&'static str, GovernorKind)> {
    vec![
        ("Ideal", GovernorKind::Ideal),
        ("Change Point", paper_change_point()),
        ("Exp. Ave.", GovernorKind::ExpAverage { gain: 0.5 }),
        ("Max", GovernorKind::MaxPerformance),
    ]
}

/// A config with the given governor and no DPM (the Table 3/4 setting:
/// DVS in isolation).
#[must_use]
pub fn dvs_only(governor: GovernorKind) -> SystemConfig {
    SystemConfig {
        governor,
        dpm: DpmKind::None,
        ..SystemConfig::default()
    }
}

/// Prints the standard experiment header.
pub fn header(id: &str, caption: &str) {
    println!("== {id} — {caption}");
    println!("   (reproduction of Simunic et al., DAC 2001; synthetic workloads, see DESIGN.md)");
    println!();
}

/// Writes `rows` as pretty JSON to `path`.
///
/// # Panics
///
/// Panics if the file cannot be written — experiment binaries want loud
/// failures, not silent truncation.
pub fn write_json<T: ToJson + ?Sized>(path: &Path, rows: &T) {
    let json = rows.to_json().pretty();
    let mut f = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    f.write_all(json.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("\n[json written to {}]", path.display());
}

/// Parses an optional `--json <path>` argument pair from `args`.
#[must_use]
pub fn json_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next().map(std::path::PathBuf::from);
        }
    }
    None
}

/// Shared computation for Figures 4 and 5: normalized performance and
/// energy per frame vs CPU frequency.
pub mod perf_energy {
    use hardware::perf::PerformanceCurve;
    use hardware::SmartBadge;
    use powermgr::power::PowerProfile;
    use workload::MediaKind;

    /// One operating point's performance/energy pair.
    #[derive(Debug, Clone, Copy)]
    pub struct Row {
        /// CPU frequency, MHz.
        pub freq_mhz: f64,
        /// Normalized decode performance (1.0 at the top frequency).
        pub performance: f64,
        /// Energy per frame relative to the top frequency:
        /// `(P(f)·t(f)) / (P(f_max)·t(f_max))`.
        pub energy_ratio: f64,
    }

    simcore::impl_to_json!(Row {
        freq_mhz,
        performance,
        energy_ratio,
    });

    /// Computes the rows for one application curve.
    #[must_use]
    pub fn rows(badge: &SmartBadge, curve: &PerformanceCurve, kind: MediaKind) -> Vec<Row> {
        let max = badge.cpu().max_operating_point();
        let p_max = PowerProfile::decode(badge, max, kind, 1.0).total_mw();
        badge
            .cpu()
            .operating_points()
            .iter()
            .map(|&op| {
                let perf = curve.performance_at(op.freq_mhz);
                let p = PowerProfile::decode(badge, op, kind, perf).total_mw();
                Row {
                    freq_mhz: op.freq_mhz,
                    performance: perf,
                    energy_ratio: (p / perf) / p_max,
                }
            })
            .collect()
    }

    /// Prints the rows as the figure's table.
    pub fn print(rows: &[Row]) {
        println!(
            "{:>9} {:>13} {:>13}",
            "f (MHz)", "perf ratio", "energy ratio"
        );
        for r in rows {
            println!(
                "{:>9.1} {:>13.3} {:>13.3}",
                r.freq_mhz, r.performance, r.energy_ratio
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_columns_match_paper_order() {
        let names: Vec<&str> = table_governors().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["Ideal", "Change Point", "Exp. Ave.", "Max"]);
    }

    #[test]
    fn dvs_only_has_no_dpm() {
        let c = dvs_only(GovernorKind::MaxPerformance);
        assert_eq!(c.dpm.label(), "none");
    }

    #[test]
    fn perf_energy_rows_normalize_to_one_at_max() {
        let badge = hardware::SmartBadge::new();
        let curve = hardware::perf::PerformanceCurve::mpeg_on_sdram(badge.cpu());
        let rows = perf_energy::rows(&badge, &curve, workload::MediaKind::MpegVideo);
        let last = rows.last().unwrap();
        assert!((last.performance - 1.0).abs() < 1e-9);
        assert!((last.energy_ratio - 1.0).abs() < 1e-9);
        // DVS rationale: lower frequency means lower energy per frame.
        assert!(rows[0].energy_ratio < 1.0);
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("bench-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rows.json");
        write_json(&path, &vec![1, 2, 3]);
        let back = simcore::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, simcore::Json::parse("[1,2,3]").unwrap());
    }
}
