//! Model validation: the full-system simulator against M/M/1 theory.
//!
//! The paper's DVS policy is built on Eq. 5 holding for the real frame
//! buffer. This binary pins the simulator at a fixed operating point
//! (max-performance governor), feeds it a long exponential workload, and
//! compares the *measured* mean frame delay against the analytical
//! `1/(λ_D − λ_U)` — closing the loop between the event-driven system
//! model and the queueing theory that drives its decisions.

use hardware::perf::PerformanceCurve;
use hardware::CpuModel;
use powermgr::config::{DpmKind, GovernorKind, SystemConfig};
use powermgr::scenario;
use simcore::rng::SimRng;
use workload::schedule::RateSchedule;
use workload::MpegClip;

struct Row {
    arrival_rate: f64,
    service_rate: f64,
    utilization: f64,
    analytical_delay_s: f64,
    simulated_delay_s: f64,
    rel_error_pct: f64,
}

simcore::impl_to_json!(Row {
    arrival_rate,
    service_rate,
    utilization,
    analytical_delay_s,
    simulated_delay_s,
    rel_error_pct,
});

fn main() {
    bench::header(
        "Validation",
        "simulated frame delay vs M/M/1 Eq. 5 at a pinned operating point",
    );
    let config = SystemConfig {
        governor: GovernorKind::MaxPerformance,
        dpm: DpmKind::None,
        ..SystemConfig::default()
    };
    // At max frequency the MPEG curve's performance is exactly 1.0, so
    // the trace's service rate is the effective decode rate.
    let curve = PerformanceCurve::mpeg_on_sdram(&CpuModel::sa1100());
    assert!((curve.performance_at(221.2) - 1.0).abs() < 1e-12);

    println!(
        "{:>8} {:>8} {:>6} {:>14} {:>14} {:>9}",
        "λ_U fr/s", "λ_D fr/s", "ρ", "Eq.5 delay s", "simulated s", "err %"
    );
    let mut rows = Vec::new();
    let duration = 3000.0;
    for (arrival, service) in [(20.0, 60.0), (30.0, 60.0), (45.0, 60.0), (54.0, 60.0)] {
        let clip = MpegClip::new(
            "validation",
            RateSchedule::constant(arrival, duration).expect("valid"),
            RateSchedule::constant(service, duration).expect("valid"),
        );
        let mut rng = SimRng::seed_from(bench::EXPERIMENT_SEED).fork("validate-queueing");
        let trace = clip.generate(&mut rng);
        let report = scenario::run_trace(&trace, &config, bench::EXPERIMENT_SEED)
            .expect("validation scenario runs");
        let analytical = framequeue::mm1::mean_delay(arrival, service).expect("stable");
        let simulated = report.mean_frame_delay_s();
        let err = 100.0 * (simulated - analytical).abs() / analytical;
        println!(
            "{:>8.1} {:>8.1} {:>6.2} {:>14.4} {:>14.4} {:>9.1}",
            arrival,
            service,
            arrival / service,
            analytical,
            simulated,
            err
        );
        rows.push(Row {
            arrival_rate: arrival,
            service_rate: service,
            utilization: arrival / service,
            analytical_delay_s: analytical,
            simulated_delay_s: simulated,
            rel_error_pct: err,
        });
    }
    // MPEG decode times are *less* variable than exponential (GOP
    // structure, SCV ≈ 0.13), so the simulator should sit between the
    // M/G/1 prediction and the M/M/1 bound and below M/M/1 at high load.
    let worst = rows.iter().map(|r| r.rel_error_pct).fold(0.0f64, f64::max);
    let high_load = rows.last().expect("rows non-empty");
    let scv = 0.125;
    let pk = framequeue::mg1::mean_delay(high_load.arrival_rate, high_load.service_rate, scv)
        .expect("stable");
    println!(
        "\nat ρ = {:.2}: M/G/1(scv={scv}) predicts {pk:.4} s vs simulated {:.4} s",
        high_load.utilization, high_load.simulated_delay_s
    );
    println!(
        "Shape check: simulated delay within M/G/1…M/M/1 band at high load: {}",
        if high_load.simulated_delay_s >= pk * 0.8
            && high_load.simulated_delay_s <= high_load.analytical_delay_s * 1.2
        {
            "yes"
        } else {
            "NO"
        }
    );
    println!("(worst M/M/1 deviation across loads: {worst:.1} % — the GOP structure's");
    println!(" sub-exponential variance makes the real queue slightly faster than Eq. 5.)");
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
