//! Runs every table/figure regeneration binary in sequence by invoking
//! their logic through the shared crates, printing the complete
//! reproduction report. Convenience wrapper for `EXPERIMENTS.md`:
//!
//! ```text
//! cargo run --release -p bench --bin repro_all
//! ```
//!
//! Each individual experiment remains runnable on its own (see
//! `DESIGN.md` § 4 for the index). A `--jobs N` argument is forwarded
//! to every child binary that understands it.

use std::process::Command;

fn main() {
    let jobs = bench::flag_value("--jobs");
    let binaries = [
        "table1_components",
        "fig3_freq_voltage",
        "fig4_mp3_perf_energy",
        "fig5_mpeg_perf_energy",
        "fig6_interarrival_fit",
        "table2_clips",
        "fig7_tismdp_policy",
        "fig8_active_states",
        "fig9_rates_vs_freq",
        "fig10_detection",
        "table3_mp3_dvs",
        "table4_mpeg_dvs",
        "table5_dvs_dpm",
        "ablation_window",
        "ablation_rate_grid",
        "ablation_confidence",
        "ablation_queue_model",
        "ablation_dpm",
        "validate_queueing",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("exe directory");
    let mut failures = Vec::new();
    for bin in binaries {
        println!("\n{:=^78}\n", format!(" {bin} "));
        let path = dir.join(bin);
        let mut cmd = Command::new(&path);
        if let Some(n) = &jobs {
            cmd.args(["--jobs", n]);
        }
        let status = cmd.status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!(
                    "could not run {bin}: {e} (build with `cargo build --release -p bench` first)"
                );
                failures.push(bin);
            }
        }
    }
    println!("\n{:=^78}\n", " summary ");
    if failures.is_empty() {
        println!(
            "all {} experiments regenerated successfully",
            binaries.len()
        );
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
