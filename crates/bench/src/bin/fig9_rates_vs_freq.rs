//! Regenerates **Figure 9**: for the football clip, the decode rate the
//! CPU sustains at each frequency setting and the WLAN arrival rate that
//! frequency can serve while holding the mean buffered-frame delay at
//! 0.1 s (≈ 2 extra buffered frames) — the M/M/1 working curve of the
//! DVS policy.

use hardware::perf::PerformanceCurve;
use hardware::SmartBadge;
use workload::MpegClip;

struct Row {
    freq_mhz: f64,
    cpu_rate: f64,
    wlan_rate: f64,
}

simcore::impl_to_json!(Row {
    freq_mhz,
    cpu_rate,
    wlan_rate,
});

fn main() {
    bench::header(
        "Figure 9",
        "MPEG frame rates vs CPU frequency at 0.1 s mean delay (football)",
    );
    let badge = SmartBadge::new();
    let curve = PerformanceCurve::mpeg_on_sdram(badge.cpu());
    // Decode capability at maximum frequency: the clip's mean service rate.
    let capability = {
        let sched = MpegClip::football();
        let s = sched.service_schedule();
        s.mean_rate()
    };
    let delay = 0.1;

    println!(
        "{:>9} {:>16} {:>16}",
        "f (MHz)", "CPU rate (fr/s)", "WLAN rate (fr/s)"
    );
    let mut rows = Vec::new();
    for op in badge.cpu().operating_points() {
        let cpu_rate = curve.decode_rate(op.freq_mhz, capability);
        // Invert Eq. 5: λ_U = λ_D − 1/W (zero if the decode rate cannot
        // even cover the delay slack).
        let wlan_rate = (cpu_rate - 1.0 / delay).max(0.0);
        println!(
            "{:>9.1} {:>16.1} {:>16.1}",
            op.freq_mhz, cpu_rate, wlan_rate
        );
        rows.push(Row {
            freq_mhz: op.freq_mhz,
            cpu_rate,
            wlan_rate,
        });
    }
    println!(
        "\nShape check: both curves increase with frequency and CPU > WLAN by 1/W = {:.0} fr/s",
        1.0 / delay
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
