//! Ablation: detection window size `m`.
//!
//! The paper: "We found that a window of m = 100 is large enough. Larger
//! windows will cause longer execution times, while much shorter windows
//! do not contain statistically large enough sample and thus give
//! unstable results." This bench quantifies that trade-off: detection
//! latency and false-alarm rate for a 10 → 60 fr/s step across window
//! sizes.
//!
//! Trials run on the deterministic parallel engine (`--jobs N`); the
//! printed table is bit-identical at any job count.

use detect::changepoint::{ChangePointConfig, ChangePointDetector};
use detect::estimator::RateEstimator;
use simcore::dist::{Exponential, Sample};
use simcore::par::{par_map_range, Jobs};
use simcore::rng::SimRng;

struct Row {
    window: usize,
    mean_latency_frames: f64,
    missed: usize,
    false_alarms_per_1k: f64,
    rate_error_pct: f64,
}

simcore::impl_to_json!(Row {
    window,
    mean_latency_frames,
    missed,
    false_alarms_per_1k,
    rate_error_pct,
});

/// One trial's outcome: false alarms over the flat phase, flat samples
/// observed, and the detection (latency, relative rate error) if the
/// step was caught.
struct Trial {
    false_alarms: usize,
    flat_samples: usize,
    detection: Option<(f64, f64)>,
}

fn main() {
    bench::init_jobs_from_args();
    bench::header("Ablation", "change-point window size m (step 10 → 60 fr/s)");
    let windows = [20usize, 50, 100, 200];
    let trials = 60;
    println!(
        "{:>7} {:>16} {:>8} {:>18} {:>14}",
        "m", "latency (frames)", "missed", "false alarms /1k", "rate err (%)"
    );
    let mut rows = Vec::new();
    for &window in &windows {
        let config = ChangePointConfig {
            window,
            check_interval: (window / 10).max(1),
            k_step: (window / 10).max(1),
            calibration_trials: 1000,
            ..ChangePointConfig::default()
        };
        // Calibrate once (parallel, cached), share the table per trial.
        let template =
            ChangePointDetector::new(10.0, config.clone()).expect("ablation config is valid");
        let table = template.shared_table();
        let slow = Exponential::new(10.0).expect("static rate");
        let fast = Exponential::new(60.0).expect("static rate");

        let outcomes = par_map_range(Jobs::Auto, trials, |trial| {
            let mut rng = SimRng::seed_from(bench::EXPERIMENT_SEED)
                .fork_indexed("ablation-window", (window * 1000 + trial) as u64);
            let mut det =
                ChangePointDetector::with_shared_table(10.0, table.clone(), config.check_interval)
                    .expect("valid detector");
            let mut out = Trial {
                false_alarms: 0,
                flat_samples: 0,
                detection: None,
            };
            // Flat phase: count false alarms.
            for _ in 0..600 {
                if det.observe(slow.sample(&mut rng)).is_some() {
                    out.false_alarms += 1;
                    det.reset(10.0);
                }
                out.flat_samples += 1;
            }
            det.reset(10.0);
            for _ in 0..2 * window {
                det.observe(slow.sample(&mut rng));
            }
            // Step phase: measure latency.
            for i in 0..600 {
                if det.observe(fast.sample(&mut rng)).is_some() {
                    let err = (det.current_rate() - 60.0).abs() / 60.0;
                    out.detection = Some((f64::from(i), err));
                    break;
                }
            }
            out
        });

        let false_alarms: usize = outcomes.iter().map(|t| t.false_alarms).sum();
        let flat_samples: usize = outcomes.iter().map(|t| t.flat_samples).sum();
        let detections: Vec<(f64, f64)> = outcomes.iter().filter_map(|t| t.detection).collect();
        let missed = outcomes.len() - detections.len();
        let mean_latency =
            detections.iter().map(|&(l, _)| l).sum::<f64>() / detections.len().max(1) as f64;
        let rate_err = 100.0 * detections.iter().map(|&(_, e)| e).sum::<f64>()
            / detections.len().max(1) as f64;
        let fa_rate = 1000.0 * false_alarms as f64 / flat_samples as f64;
        println!(
            "{:>7} {:>16.1} {:>8} {:>18.2} {:>14.1}",
            window, mean_latency, missed, fa_rate, rate_err
        );
        rows.push(Row {
            window,
            mean_latency_frames: mean_latency,
            missed,
            false_alarms_per_1k: fa_rate,
            rate_error_pct: rate_err,
        });
    }
    println!("\nExpected: small windows fire fast but noisily; m = 100 is a good knee.");
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
