//! Regenerates **Figure 10**: detection of a 10 → 60 frames/s arrival
//! rate step at frame 100, comparing the ideal detector, exponential
//! moving averages (gains 0.3 and 0.5) and the paper's change-point
//! algorithm.
//!
//! The paper's observations to verify: the change-point detector locks
//! to the correct rate "within 10 frames of the ideal detection and is
//! more stable than the exponential moving average".

use detect::changepoint::{ChangePointConfig, ChangePointDetector};
use detect::ema::EmaEstimator;
use detect::estimator::RateEstimator;
use simcore::dist::{Exponential, Sample};
use simcore::rng::SimRng;

struct Row {
    frame: usize,
    ideal: f64,
    ema_03: f64,
    ema_05: f64,
    change_point: f64,
}

simcore::impl_to_json!(Row {
    frame,
    ideal,
    ema_03,
    ema_05,
    change_point,
});

fn main() {
    bench::header(
        "Figure 10",
        "rate-change detection: 10 → 60 fr/s step at frame 100",
    );

    let mut rng = SimRng::seed_from(bench::EXPERIMENT_SEED).fork("fig10");
    let slow = Exponential::new(10.0).expect("static rate");
    let fast = Exponential::new(60.0).expect("static rate");

    let mut cp = ChangePointDetector::new(10.0, ChangePointConfig::default())
        .expect("default config is valid");
    let mut ema03 = EmaEstimator::new(10.0, 0.3).expect("gain valid");
    let mut ema05 = EmaEstimator::new(10.0, 0.5).expect("gain valid");

    // Pre-fill the change-point window with the slow regime so frame 0 of
    // the plot starts from steady state, as the paper's figure does.
    for _ in 0..150 {
        let x = slow.sample(&mut rng);
        cp.observe(x);
        ema03.observe(x);
        ema05.observe(x);
    }

    let mut rows = Vec::new();
    let mut cp_detect_frame = None;
    for frame in 0..200usize {
        let truth = if frame < 100 { 10.0 } else { 60.0 };
        let x = if frame < 100 {
            slow.sample(&mut rng)
        } else {
            fast.sample(&mut rng)
        };
        if cp.observe(x).is_some() && frame >= 100 && cp_detect_frame.is_none() {
            cp_detect_frame = Some(frame);
        }
        ema03.observe(x);
        ema05.observe(x);
        rows.push(Row {
            frame,
            ideal: truth,
            ema_03: ema03.current_rate(),
            ema_05: ema05.current_rate(),
            change_point: cp.current_rate(),
        });
    }

    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>13}",
        "frame", "ideal", "EMA g=0.3", "EMA g=0.5", "change-point"
    );
    for r in rows.iter().step_by(5) {
        println!(
            "{:>6} {:>8.1} {:>10.1} {:>10.1} {:>13.1}",
            r.frame, r.ideal, r.ema_03, r.ema_05, r.change_point
        );
    }

    // Stability comparison after the step has settled (frames 130..200).
    let spread = |f: &dyn Fn(&Row) -> f64| {
        let tail: Vec<f64> = rows[130..].iter().map(f).collect();
        let lo = tail.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = tail.iter().cloned().fold(0.0, f64::max);
        hi - lo
    };
    let cp_spread = spread(&|r: &Row| r.change_point);
    let ema_spread = spread(&|r: &Row| r.ema_05);
    println!(
        "\ndetection latency  : {} frames after the step (paper: within ~10 of ideal)",
        cp_detect_frame.map_or("none".to_owned(), |f| (f - 100).to_string())
    );
    println!(
        "post-step spread   : change-point {cp_spread:.1} fr/s vs EMA(0.5) {ema_spread:.1} fr/s"
    );
    println!(
        "Shape check: change-point more stable than EMA: {}",
        if cp_spread < ema_spread { "yes" } else { "NO" }
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
