//! Ablation: candidate-rate grid Λ granularity, plus the CUSUM
//! streaming alternative (paper ref.\[17\]).
//!
//! The paper predefines "a set of possible rates Λ". A coarse grid
//! calibrates faster but relies on the post-detection tail MLE for rate
//! accuracy; a fine grid detects off-grid steps slightly sooner. The
//! two-sided CUSUM detector is included as the streaming baseline the
//! windowed test descends from.
//!
//! Trials run on the deterministic parallel engine (`--jobs N`); the
//! printed table is bit-identical at any job count.

use detect::changepoint::{ChangePointConfig, ChangePointDetector};
use detect::cusum::CusumDetector;
use detect::estimator::RateEstimator;
use simcore::dist::{Exponential, Sample};
use simcore::par::{par_map_range, Jobs};
use simcore::rng::SimRng;

struct Row {
    detector: String,
    candidates: usize,
    mean_latency_frames: f64,
    missed: usize,
    rate_error_pct: f64,
}

simcore::impl_to_json!(Row {
    detector,
    candidates,
    mean_latency_frames,
    missed,
    rate_error_pct,
});

fn measure(build: impl Fn() -> Box<dyn RateEstimator> + Sync, trials: usize) -> (f64, usize, f64) {
    let slow = Exponential::new(10.0).expect("static rate");
    let fast = Exponential::new(35.0).expect("off-grid step: 3.5x");
    let detections = par_map_range(Jobs::Auto, trials, |trial| {
        let mut rng =
            SimRng::seed_from(bench::EXPERIMENT_SEED).fork_indexed("ablation-grid", trial as u64);
        let mut det = build();
        for _ in 0..300 {
            det.observe(slow.sample(&mut rng));
        }
        for i in 0..600 {
            if det.observe(fast.sample(&mut rng)).is_some() {
                let err = (det.current_rate() - 35.0).abs() / 35.0;
                return Some((f64::from(i), err));
            }
        }
        None
    });
    let found: Vec<(f64, f64)> = detections.iter().filter_map(|&d| d).collect();
    let missed = detections.len() - found.len();
    (
        found.iter().map(|&(l, _)| l).sum::<f64>() / found.len().max(1) as f64,
        missed,
        100.0 * found.iter().map(|&(_, e)| e).sum::<f64>() / found.len().max(1) as f64,
    )
}

fn main() {
    bench::init_jobs_from_args();
    bench::header(
        "Ablation",
        "candidate-rate grid granularity + CUSUM baseline (step 10 → 35 fr/s)",
    );
    let grids: Vec<(&str, Vec<f64>)> = vec![
        ("coarse", vec![0.5, 2.0]),
        ("default", detect::calibrate::default_ratios()),
        (
            "fine",
            vec![
                0.2, 0.25, 0.33, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.1, 1.25, 1.4, 1.6, 2.0, 2.5, 3.0,
                3.5, 4.0, 5.0,
            ],
        ),
    ];
    println!(
        "{:<22} {:>11} {:>16} {:>8} {:>14}",
        "detector", "candidates", "latency (frames)", "missed", "rate err (%)"
    );
    let mut rows = Vec::new();
    for (name, ratios) in grids {
        let config = ChangePointConfig {
            ratios: ratios.clone(),
            calibration_trials: 1000,
            ..ChangePointConfig::default()
        };
        let template =
            ChangePointDetector::new(10.0, config.clone()).expect("valid ablation config");
        let table = template.shared_table();
        let (latency, missed, err) = measure(
            || {
                Box::new(
                    ChangePointDetector::with_shared_table(
                        10.0,
                        table.clone(),
                        config.check_interval,
                    )
                    .expect("valid detector"),
                )
            },
            60,
        );
        println!(
            "{:<22} {:>11} {:>16.1} {:>8} {:>14.1}",
            format!("change-point/{name}"),
            ratios.len(),
            latency,
            missed,
            err
        );
        rows.push(Row {
            detector: format!("change-point/{name}"),
            candidates: ratios.len(),
            mean_latency_frames: latency,
            missed,
            rate_error_pct: err,
        });
    }

    let (latency, missed, err) = measure(
        || Box::new(CusumDetector::new(10.0, 2.0, 8.0).expect("valid cusum")),
        60,
    );
    println!(
        "{:<22} {:>11} {:>16.1} {:>8} {:>14.1}",
        "cusum (streaming)", 2, latency, missed, err
    );
    rows.push(Row {
        detector: "cusum".to_owned(),
        candidates: 2,
        mean_latency_frames: latency,
        missed,
        rate_error_pct: err,
    });

    println!("\nExpected: grids beyond the default buy little; CUSUM is competitive on");
    println!("latency but lacks the windowed test's calibrated confidence level.");
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
