//! Regenerates **Table 4**: MPEG video DVS — energy and mean total frame
//! delay for the football (875 s) and terminator2 (1200 s) clips under
//! the four detection algorithms.
//!
//! Expected shape (paper): "the exponential average shows poor
//! performance and higher energy consumption due to its instability";
//! the change-point algorithm achieves significant savings with a very
//! small delay penalty.

use powermgr::scenario;

struct Row {
    clip: String,
    algorithm: String,
    energy_kj: f64,
    frame_delay_s: f64,
    freq_switches: u64,
}

simcore::impl_to_json!(Row {
    clip,
    algorithm,
    energy_kj,
    frame_delay_s,
    freq_switches,
});

fn main() {
    bench::header("Table 4", "MPEG video DVS (energy kJ / mean frame delay s)");
    let clips = ["football", "terminator2"];
    let mut rows = Vec::new();
    println!(
        "{:<12} {:<13} {:>11} {:>12} {:>10}",
        "clip", "algorithm", "energy kJ", "delay s", "switches"
    );
    for (ci, clip) in clips.iter().enumerate() {
        for (name, governor) in bench::table_governors() {
            let config = bench::dvs_only(governor);
            let seed = bench::EXPERIMENT_SEED + 100 + ci as u64;
            let report =
                scenario::run_mpeg_clip(clip, &config, seed).expect("table 4 scenario runs");
            println!(
                "{:<12} {:<13} {:>11.3} {:>12.3} {:>10}",
                clip,
                name,
                report.total_energy_kj(),
                report.mean_frame_delay_s(),
                report.freq_switches
            );
            rows.push(Row {
                clip: (*clip).to_owned(),
                algorithm: name.to_owned(),
                energy_kj: report.total_energy_kj(),
                frame_delay_s: report.mean_frame_delay_s(),
                freq_switches: report.freq_switches,
            });
        }
        println!();
    }

    let avg = |alg: &str, f: &dyn Fn(&Row) -> f64| {
        let v: Vec<f64> = rows.iter().filter(|r| r.algorithm == alg).map(f).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let e_ideal = avg("Ideal", &|r| r.energy_kj);
    let e_cp = avg("Change Point", &|r| r.energy_kj);
    let e_ema = avg("Exp. Ave.", &|r| r.energy_kj);
    let e_max = avg("Max", &|r| r.energy_kj);
    let d_cp = avg("Change Point", &|r| r.frame_delay_s);
    let d_ema = avg("Exp. Ave.", &|r| r.frame_delay_s);
    println!(
        "mean energy: ideal {e_ideal:.3}, change-point {e_cp:.3}, ema {e_ema:.3}, max {e_max:.3} kJ"
    );
    println!("mean delay : change-point {d_cp:.3} s, ema {d_ema:.3} s");
    println!(
        "Shape check: change-point close to ideal (≤20%): {}",
        if (e_cp - e_ideal) / e_ideal < 0.20 {
            "yes"
        } else {
            "NO"
        }
    );
    println!(
        "Shape check: change-point saves vs max: {}",
        if e_cp < e_max { "yes" } else { "NO" }
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
