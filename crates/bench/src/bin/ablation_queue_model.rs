//! Ablation: M/M/1 vs M/G/1 frequency selection.
//!
//! The paper's policy assumes exponential service (Eq. 5) and notes that
//! general service distributions need "another method of frequency and
//! voltage adjustment". MPEG decode times are *less* variable than
//! exponential (the GOP structure is deterministic, SCV ≈ 0.13), so the
//! Pollaczek–Khinchine inversion can run the CPU slightly slower for the
//! same delay target. This bench measures what that refinement buys.

use powermgr::config::{DpmKind, SystemConfig};
use powermgr::dvs::QueueModel;
use powermgr::scenario;
use simcore::rng::SimRng;
use workload::MpegClip;

struct Row {
    model: String,
    energy_kj: f64,
    frame_delay_s: f64,
}

simcore::impl_to_json!(Row {
    model,
    energy_kj,
    frame_delay_s,
});

fn measured_scv() -> f64 {
    // Estimate the decode-time SCV from a generated football trace,
    // normalizing out the scene-level rate (the within-scene variance is
    // what the queue sees at a fixed operating point).
    let clip = MpegClip::football();
    let trace = clip.generate(&mut SimRng::seed_from(bench::EXPERIMENT_SEED).fork("scv"));
    let normalized: Vec<f64> = trace
        .frames()
        .iter()
        .map(|f| f.work * f.true_service_rate)
        .collect();
    let mean = normalized.iter().sum::<f64>() / normalized.len() as f64;
    let var = normalized
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / normalized.len() as f64;
    var / (mean * mean)
}

fn main() {
    bench::header(
        "Ablation",
        "M/M/1 vs M/G/1 frequency selection (football, ideal detection)",
    );
    let scv = measured_scv();
    println!("measured MPEG decode-time SCV ≈ {scv:.3} (exponential would be 1.0)\n");

    let models: Vec<(String, QueueModel)> = vec![
        ("M/M/1 (paper Eq. 5)".to_owned(), QueueModel::Mm1),
        (format!("M/G/1 (scv={scv:.2})"), QueueModel::Mg1 { scv }),
        (
            "M/G/1 (scv=1, sanity)".to_owned(),
            QueueModel::Mg1 { scv: 1.0 },
        ),
    ];
    println!("{:<24} {:>11} {:>12}", "model", "energy kJ", "delay s");
    let mut rows = Vec::new();
    for (name, model) in models {
        let config = SystemConfig {
            governor: powermgr::config::GovernorKind::Ideal,
            dpm: DpmKind::None,
            queue_model: model,
            ..SystemConfig::default()
        };
        let report = scenario::run_mpeg_clip("football", &config, bench::EXPERIMENT_SEED)
            .expect("ablation scenario runs");
        println!(
            "{:<24} {:>11.3} {:>12.3}",
            name,
            report.total_energy_kj(),
            report.mean_frame_delay_s()
        );
        rows.push(Row {
            model: name,
            energy_kj: report.total_energy_kj(),
            frame_delay_s: report.mean_frame_delay_s(),
        });
    }
    println!("\nExpected: the low-variance M/G/1 saves a little energy at slightly");
    println!("higher (but still in-budget) delay; scv=1 matches M/M/1 exactly.");
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
