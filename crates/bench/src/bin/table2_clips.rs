//! Regenerates **Table 2**: the six MP3 audio clips with bit rate,
//! sample rate and decode rate, plus measured statistics from a
//! generated trace of each clip.

use simcore::rng::SimRng;
use workload::Mp3Clip;

struct Row {
    label: char,
    bit_rate_kbps: f64,
    sample_rate_khz: f64,
    decode_rate: f64,
    arrival_rate: f64,
    duration_secs: f64,
    measured_arrival_rate: f64,
}

simcore::impl_to_json!(Row {
    label,
    bit_rate_kbps,
    sample_rate_khz,
    decode_rate,
    arrival_rate,
    duration_secs,
    measured_arrival_rate,
});

fn main() {
    bench::header("Table 2", "MP3 audio clips (A–F)");
    println!(
        "{:>5} {:>10} {:>12} {:>14} {:>14} {:>9} {:>14}",
        "clip", "bit kb/s", "sample kHz", "decode fr/s", "arrival fr/s", "len s", "measured fr/s"
    );
    let mut rng = SimRng::seed_from(bench::EXPERIMENT_SEED).fork("table2");
    let mut rows = Vec::new();
    for clip in Mp3Clip::table2() {
        let trace = clip.generate(&mut rng);
        let row = Row {
            label: clip.label,
            bit_rate_kbps: clip.bit_rate_kbps,
            sample_rate_khz: clip.sample_rate_khz,
            decode_rate: clip.decode_rate,
            arrival_rate: clip.arrival_rate(),
            duration_secs: clip.duration_secs,
            measured_arrival_rate: trace.mean_arrival_rate(),
        };
        println!(
            "{:>5} {:>10.0} {:>12.2} {:>14.0} {:>14.1} {:>9.0} {:>14.1}",
            row.label,
            row.bit_rate_kbps,
            row.sample_rate_khz,
            row.decode_rate,
            row.arrival_rate,
            row.duration_secs,
            row.measured_arrival_rate
        );
        rows.push(row);
    }
    let total: f64 = rows.iter().map(|r| r.duration_secs).sum();
    println!("\ntotal audio: {total:.0} s (paper: 653 s)");
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
