//! Regenerates **Figure 6**: MPEG frame interarrival-time distribution —
//! "measured" (synthetic arrivals with a wireless packetization floor)
//! vs the fitted exponential, with the average CDF fitting error the
//! paper quotes (≈ 8 %).

use simcore::dist::{fit, Continuous, Exponential};
use simcore::rng::SimRng;
use workload::schedule::RateSchedule;
use workload::{arrivals, MpegClip};

struct Row {
    interarrival_s: f64,
    empirical_cdf: f64,
    exponential_cdf: f64,
}

simcore::impl_to_json!(Row {
    interarrival_s,
    empirical_cdf,
    exponential_cdf,
});

fn main() {
    bench::header(
        "Figure 6",
        "MPEG frame interarrival CDF: measured-like vs exponential fit",
    );

    // Arrivals at the football clip's mean rate with the WLAN jitter
    // model (2 ms packetization floor), over a long window.
    let mean_rate = MpegClip::football().arrival_schedule().mean_rate();
    let schedule = RateSchedule::constant(mean_rate, 2000.0).expect("static params valid");
    let mut rng = SimRng::seed_from(bench::EXPERIMENT_SEED).fork("fig6");
    let times = arrivals::generate_jittered(&schedule, &mut rng);
    let mut gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite gaps"));

    let fitted = Exponential::fit_mle(&gaps).expect("non-empty gaps");
    let err = fit::mean_abs_cdf_error(&gaps, &fitted);
    let ks = fit::ks_statistic(&gaps, &fitted);

    println!(
        "{:>16} {:>15} {:>17}",
        "interarrival (s)", "empirical CDF", "exponential CDF"
    );
    let n = gaps.len();
    let mut rows = Vec::new();
    for q in (1..20).map(|i| i as f64 / 20.0) {
        let idx = ((q * n as f64) as usize).min(n - 1);
        let x = gaps[idx];
        let row = Row {
            interarrival_s: x,
            empirical_cdf: (idx + 1) as f64 / n as f64,
            exponential_cdf: fitted.cdf(x),
        };
        println!(
            "{:>16.4} {:>15.3} {:>17.3}",
            row.interarrival_s, row.empirical_cdf, row.exponential_cdf
        );
        rows.push(row);
    }
    println!(
        "\nfitted rate       = {:.2} fr/s (true mean rate {mean_rate:.2})",
        fitted.rate()
    );
    println!("average fit error = {:.1} % (paper: ≈ 8 %)", err * 100.0);
    println!("KS distance       = {ks:.3}");
    println!(
        "Shape check: approximately exponential (error well under 20 %): {}",
        if err < 0.2 { "yes" } else { "NO" }
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
