//! Regenerates **Table 3**: MP3 audio DVS — energy and mean total frame
//! delay for the three clip sequences (ACEFBD, BADECF, CEDAFB) under the
//! four detection algorithms.
//!
//! Expected shape (paper): change-point ≈ ideal in energy with no
//! performance loss; exponential average worse on both axes; maximum
//! performance the most energy with the least delay.

use powermgr::scenario;

struct Row {
    sequence: String,
    algorithm: String,
    energy_kj: f64,
    frame_delay_s: f64,
    freq_switches: u64,
}

simcore::impl_to_json!(Row {
    sequence,
    algorithm,
    energy_kj,
    frame_delay_s,
    freq_switches,
});

fn main() {
    bench::header("Table 3", "MP3 audio DVS (energy kJ / mean frame delay s)");
    let sequences = ["ACEFBD", "BADECF", "CEDAFB"];
    let mut rows = Vec::new();
    println!(
        "{:<9} {:<13} {:>11} {:>12} {:>10}",
        "sequence", "algorithm", "energy kJ", "delay s", "switches"
    );
    for (si, seq) in sequences.iter().enumerate() {
        for (name, governor) in bench::table_governors() {
            let config = bench::dvs_only(governor);
            let seed = bench::EXPERIMENT_SEED + si as u64;
            let report =
                scenario::run_mp3_sequence(seq, &config, seed).expect("table 3 scenario runs");
            println!(
                "{:<9} {:<13} {:>11.3} {:>12.3} {:>10}",
                seq,
                name,
                report.total_energy_kj(),
                report.mean_frame_delay_s(),
                report.freq_switches
            );
            rows.push(Row {
                sequence: (*seq).to_owned(),
                algorithm: name.to_owned(),
                energy_kj: report.total_energy_kj(),
                frame_delay_s: report.mean_frame_delay_s(),
                freq_switches: report.freq_switches,
            });
        }
        println!();
    }

    // Shape checks across all sequences.
    let avg = |alg: &str, f: &dyn Fn(&Row) -> f64| {
        let v: Vec<f64> = rows.iter().filter(|r| r.algorithm == alg).map(f).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let e_ideal = avg("Ideal", &|r| r.energy_kj);
    let e_cp = avg("Change Point", &|r| r.energy_kj);
    let e_max = avg("Max", &|r| r.energy_kj);
    println!("mean energy: ideal {e_ideal:.3}, change-point {e_cp:.3}, max {e_max:.3} kJ");
    println!(
        "Shape check: change-point within 15% of ideal: {}",
        if (e_cp - e_ideal).abs() / e_ideal < 0.15 {
            "yes"
        } else {
            "NO"
        }
    );
    println!(
        "Shape check: max spends >1.3x ideal: {}",
        if e_max > 1.3 * e_ideal { "yes" } else { "NO" }
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
