//! Fleet-engine throughput benchmark.
//!
//! Runs the same fleet spec at `jobs = 1`, `N`, and `2N` (N = `--jobs`
//! or the machine default), verifies the serialized `FleetReport` is
//! byte-identical across all three, measures devices/second and the
//! threshold-cache hit ratio per run, and writes the rows to
//! `BENCH_fleet.json` (override with `--json PATH`).
//!
//! The hit ratio is the headline number for calibration sharing: every
//! change-point device looks the same detector config up in the
//! process-wide cache, so only the very first lookup of the process
//! misses and the steady-state ratio approaches 1.
//!
//! With `--rss-ceiling-mb C` the benchmark also reads the process peak
//! RSS (`VmHWM` from `/proc/self/status`) after every run and fails if
//! it ever exceeds `C` MiB. This is the fleet-scale memory gate: the
//! streaming accumulator summarizes and drops device results per batch,
//! so peak RSS stays bounded no matter how many devices the fleet has
//! (a million-device run fits in the same ceiling as a thousand-device
//! one). `--no-oversubscribe` drops the `2N` row so huge gating runs
//! only pay for `jobs = 1` and `jobs = N`.
//!
//! The run also measures **two-distinct-key calibration overlap**: two
//! detector configs that differ only by calibration seed are calibrated
//! cold, first back-to-back and then on two concurrent threads, and the
//! ratio of the two wall times is reported. Under the sharded
//! per-entry cache the two misses overlap (ratio → ~2 on ≥ 2 cores);
//! under the old one-big-lock cache they serialized (ratio ≈ 1)
//! regardless of cores.
//!
//! With `--check`, the run is gated against the checked-in
//! `BENCH_fleet_baseline.json` (override with `--baseline PATH`):
//! a single-thread devices/sec floor (relaxed by the baseline's
//! `tolerance`), a parallel-speedup floor applied only on machines
//! with ≥ 4 cores, and a two-key overlap floor applied only with
//! ≥ 2 cores. Exits non-zero on any regression.
//!
//! Usage: `bench_fleet [--devices N] [--jobs N] [--json PATH]
//!         [--rss-ceiling-mb C] [--no-oversubscribe]
//!         [--check] [--baseline PATH]`

use detect::calibrate::{default_ratios, CalibrationConfig};
use fleet::{run_fleet, FleetSpec};
use simcore::json::ToJson;
use simcore::par::Jobs;
use std::time::Instant;

struct Row {
    jobs: u64,
    devices: u64,
    cores: u64,
    /// `true` when `jobs > cores`: the row's threads time-share the
    /// available cores, so its speedup measures scheduling overhead,
    /// not parallel scaling.
    oversubscribed: bool,
    wall_ms: f64,
    devices_per_sec: f64,
    speedup: f64,
    /// Threshold-cache hit ratio over this run's lookups only.
    cache_hit_ratio: f64,
    /// Report bytes equal to the `jobs = 1` reference run.
    identical: bool,
    /// Process peak RSS (`VmHWM`) after this run, MiB; 0 if unreadable.
    peak_rss_mb: f64,
    /// The `--rss-ceiling-mb` gate this run was held to; 0 = ungated.
    rss_ceiling_mb: f64,
}

simcore::impl_to_json!(Row {
    jobs,
    devices,
    cores,
    oversubscribed,
    wall_ms,
    devices_per_sec,
    speedup,
    cache_hit_ratio,
    identical,
    peak_rss_mb,
    rss_ceiling_mb,
});

struct TwoKeyOverlap {
    cores: u64,
    /// Wall time of two cold calibrations on distinct keys run
    /// back-to-back on one thread, milliseconds.
    sequential_ms: f64,
    /// Wall time of two cold calibrations on two more distinct keys run
    /// on two concurrent threads, milliseconds.
    concurrent_ms: f64,
    /// `sequential_ms / concurrent_ms` — ~2 when distinct-key misses
    /// overlap on ≥ 2 cores, ~1 when they serialize (the old
    /// lock-held-across-calibration cache, or a 1-core machine).
    overlap: f64,
}

simcore::impl_to_json!(TwoKeyOverlap {
    cores,
    sequential_ms,
    concurrent_ms,
    overlap,
});

/// Times two cold-miss calibrations on distinct cache keys, sequential
/// vs concurrent. All four keys are unique to this process run (the
/// seeds are reserved for this benchmark), so every lookup is a true
/// miss; each calibration runs single-threaded internally so the
/// measurement isolates cross-key concurrency, not intra-calibration
/// parallelism.
fn bench_two_key_overlap(cores: u64) -> TwoKeyOverlap {
    let config = CalibrationConfig {
        trials: 3_000,
        ..CalibrationConfig::default()
    };
    let ratios = default_ratios();
    let calibrate = |seed: u64| {
        detect::cache::cached_table(&ratios, config, seed, Jobs::Count(1))
            .expect("benchmark calibration succeeds")
    };

    let t0 = Instant::now();
    calibrate(0xBE9C_2001);
    calibrate(0xBE9C_2002);
    let sequential_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| calibrate(0xBE9C_2003));
        s.spawn(|| calibrate(0xBE9C_2004));
    });
    let concurrent_ms = t0.elapsed().as_secs_f64() * 1e3;

    TwoKeyOverlap {
        cores,
        sequential_ms,
        concurrent_ms,
        overlap: sequential_ms / concurrent_ms,
    }
}

/// The benchmark fleet: short MP3 clips, three policies (change-point
/// to exercise the shared threshold cache, EMA and max as contrast),
/// clean devices only so the runtime is dominated by the engine.
fn spec(devices: usize) -> FleetSpec {
    FleetSpec::parse(&format!(
        r#"{{
            "name": "bench",
            "devices": {devices},
            "base_seed": {seed},
            "workloads": ["mp3:A"],
            "policies": [
                {{ "governor": "change-point", "dpm": "break-even" }},
                {{ "governor": "ema:0.05", "dpm": "timeout:1.0" }},
                {{ "governor": "max", "dpm": "none" }}
            ],
            "faults": ["off"]
        }}"#,
        seed = bench::EXPERIMENT_SEED,
    ))
    .expect("benchmark spec is valid")
}

fn main() {
    let jobs = bench::init_jobs_from_args();
    let devices: usize = bench::flag_value("--devices").map_or(1000, |v| {
        v.parse()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| panic!("--devices expects a positive integer, got `{v}`"))
    });
    let rss_ceiling_mb: Option<f64> = bench::flag_value("--rss-ceiling-mb").map(|v| {
        v.parse()
            .ok()
            .filter(|&c: &f64| c.is_finite() && c > 0.0)
            .unwrap_or_else(|| panic!("--rss-ceiling-mb expects a positive number, got `{v}`"))
    });
    bench::header(
        "Bench",
        "fleet engine: devices/second and threshold-cache sharing",
    );
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) as u64;
    let mut job_counts = vec![1, jobs, 2 * jobs];
    if bench::has_flag("--no-oversubscribe") {
        job_counts.truncate(2);
    }
    job_counts.dedup();
    let listed: Vec<String> = job_counts.iter().map(ToString::to_string).collect();
    println!(
        "[{devices} devices at jobs = {} on {cores} core(s)]",
        listed.join(", ")
    );

    // Warm the process-wide threshold cache outside the timed region:
    // the first change-point device of the process pays the one-off
    // calibration miss, which would otherwise swamp the jobs=1 row.
    let warmup = spec(3);
    let _ = run_fleet(&warmup, Jobs::Count(jobs)).expect("warmup runs");
    let spec = spec(devices);

    let mut rows: Vec<Row> = Vec::new();
    let mut reference: Option<String> = None;
    let mut baseline_ms = 0.0;
    for n in job_counts {
        let before = detect::cache::cache_stats_detailed();
        let t0 = Instant::now();
        let report = run_fleet(&spec, Jobs::Count(n)).expect("benchmark fleet runs");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let cache = detect::cache::cache_stats_detailed().since(&before);

        let bytes = report.to_json_pretty();
        let identical = match &reference {
            None => {
                baseline_ms = wall_ms;
                reference = Some(bytes);
                true
            }
            Some(reference) => *reference == bytes,
        };
        assert!(
            identical,
            "fleet report diverged between jobs=1 and jobs={n}"
        );

        let peak_rss_mb = bench::peak_rss_mb().unwrap_or(0.0);
        if let Some(ceiling) = rss_ceiling_mb {
            assert!(
                peak_rss_mb > 0.0,
                "--rss-ceiling-mb needs /proc/self/status (VmHWM) to enforce the gate"
            );
            assert!(
                peak_rss_mb <= ceiling,
                "peak RSS {peak_rss_mb:.1} MiB exceeded the {ceiling:.1} MiB ceiling \
                 after the jobs={n} run — aggregation is accumulating per-device state"
            );
        }

        rows.push(Row {
            jobs: n as u64,
            devices: devices as u64,
            cores,
            oversubscribed: n as u64 > cores,
            wall_ms,
            devices_per_sec: devices as f64 / (wall_ms / 1e3),
            speedup: baseline_ms / wall_ms,
            cache_hit_ratio: cache.hit_ratio(),
            identical,
            peak_rss_mb,
            rss_ceiling_mb: rss_ceiling_mb.unwrap_or(0.0),
        });
    }

    println!(
        "{:>5} {:>9} {:>12} {:>13} {:>9} {:>11} {:>10}",
        "jobs", "devices", "wall (ms)", "devices/sec", "speedup", "cache hits", "rss (MiB)"
    );
    for r in &rows {
        println!(
            "{:>5} {:>9} {:>12.1} {:>13.1} {:>8.2}x {:>11.3} {:>10.1}",
            r.jobs,
            r.devices,
            r.wall_ms,
            r.devices_per_sec,
            r.speedup,
            r.cache_hit_ratio,
            r.peak_rss_mb
        );
    }
    println!("\nReports verified byte-identical across all jobs counts.");
    if let Some(ceiling) = rss_ceiling_mb {
        let peak = bench::peak_rss_mb().unwrap_or(0.0);
        println!("Peak RSS {peak:.1} MiB stayed under the {ceiling:.1} MiB ceiling.");
    }
    for r in &rows {
        assert!(
            r.cache_hit_ratio >= 0.9,
            "threshold-cache hit ratio {:.3} at jobs={} fell below 0.9 — calibration is being repaid per device",
            r.cache_hit_ratio,
            r.jobs
        );
    }

    println!("\n[two-key calibration overlap: cold misses on distinct detector configs]");
    // On a single core two "concurrent" calibrations just timeshare, so
    // the sequential/concurrent ratio says nothing about the cache — skip
    // the measurement instead of reporting a meaningless overlap.
    let overlap = if cores >= 2 {
        let o = bench_two_key_overlap(cores);
        println!(
            "  sequential {:.1} ms, concurrent {:.1} ms — overlap {:.2}x on {} core(s)",
            o.sequential_ms, o.concurrent_ms, o.overlap, o.cores
        );
        Some(o)
    } else {
        println!("  skipped: overlap needs >= 2 cores, this machine has {cores}");
        None
    };

    let two_key_json = match &overlap {
        Some(o) => o.to_json(),
        None => simcore::Json::Obj(vec![
            ("cores".to_string(), simcore::Json::Int(cores as i64)),
            ("skipped".to_string(), simcore::Json::Bool(true)),
            (
                "reason".to_string(),
                simcore::Json::Str(
                    "two-key overlap requires >= 2 cores; on one core the \
                     sequential/concurrent ratio does not measure the cache"
                        .to_string(),
                ),
            ),
        ]),
    };
    let report = simcore::Json::Obj(vec![
        ("rows".to_string(), rows.to_json()),
        ("two_key_calibration".to_string(), two_key_json),
    ]);
    let path = bench::json_path_from_args()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_fleet.json"));
    bench::write_json(&path, &report);

    if bench::has_flag("--check") {
        let baseline = bench::flag_value("--baseline")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("BENCH_fleet_baseline.json"));
        check_against_baseline(&rows, overlap.as_ref(), &baseline);
    }
}

/// Gates the run against the checked-in devices/sec and overlap floors.
fn check_against_baseline(rows: &[Row], overlap: Option<&TwoKeyOverlap>, path: &std::path::Path) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
    let base = simcore::Json::parse(&text)
        .unwrap_or_else(|e| panic!("malformed baseline {}: {e}", path.display()));
    let get = |key: &str| {
        base.get(key)
            .and_then(simcore::Json::as_f64)
            .unwrap_or_else(|| panic!("baseline is missing `{key}`"))
    };
    let tolerance = get("tolerance");
    let mut failures = Vec::new();

    let j1 = rows
        .iter()
        .find(|r| r.jobs == 1)
        .expect("jobs=1 row always runs");
    let floor = get("min_devices_per_sec_j1");
    let relaxed = floor * (1.0 - tolerance);
    if j1.devices_per_sec < relaxed {
        failures.push(format!(
            "jobs=1 devices/sec {:.0} < floor {floor:.0} − {:.0}% tolerance = {relaxed:.0}",
            j1.devices_per_sec,
            tolerance * 100.0
        ));
    }

    // Parallel floors are machine-relative (both sides of each ratio
    // run in this process), so no tolerance — but they only make sense
    // with cores to scale onto.
    let cores = j1.cores;
    if cores >= 4 {
        let best = rows
            .iter()
            .filter(|r| !r.oversubscribed)
            .map(|r| r.speedup)
            .fold(0.0f64, f64::max);
        let min_speedup = get("min_parallel_speedup_4core");
        if best < min_speedup {
            failures.push(format!(
                "parallel speedup {best:.2}x < floor {min_speedup:.2}x on {cores} cores"
            ));
        }
    }
    if cores >= 2 {
        let o = overlap.expect("overlap is measured whenever cores >= 2");
        let min_overlap = get("min_two_key_overlap_2core");
        if o.overlap < min_overlap {
            failures.push(format!(
                "two-key calibration overlap {:.2}x < floor {min_overlap:.2}x on {cores} cores \
                 — distinct-key misses are serializing on the cache lock",
                o.overlap
            ));
        }
    }

    if failures.is_empty() {
        println!(
            "[gate] OK against {} (tolerance {:.0}%, {cores} core(s))",
            path.display(),
            tolerance * 100.0
        );
    } else {
        eprintln!("[gate] REGRESSION against {}:", path.display());
        for f in &failures {
            eprintln!("[gate]   {f}");
        }
        std::process::exit(1);
    }
}
