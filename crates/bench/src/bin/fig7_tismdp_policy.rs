//! Regenerates the substance of **Figure 7**: the time-indexed state
//! expansion of the idle state. The figure itself is a state diagram;
//! its content — that the optimal action *depends on the time already
//! spent idle* when idle periods are non-exponential — is printed here
//! as the solved TISMDP policy: one row per time bucket with the chosen
//! action, for the streaming idle mixture vs a memoryless control.

use dpm::costs::DpmCosts;
use dpm::idle::IdleMixture;
use dpm::tismdp::{TismdpConfig, TismdpPolicy};
use hardware::SmartBadge;

struct Row {
    model: String,
    first_standby_s: Option<f64>,
    first_off_s: Option<f64>,
    expected_cost_j: f64,
}

simcore::impl_to_json!(Row {
    model,
    first_standby_s,
    first_off_s,
    expected_cost_j,
});

fn describe(name: &str, policy: &TismdpPolicy) -> Row {
    use dpm::policy::SleepState;
    let sby = policy.first_command(SleepState::Standby);
    let off = policy.first_command(SleepState::Off);
    println!("{name}:");
    match (sby, off) {
        (None, None) => println!("  never sleeps"),
        _ => {
            if let Some(t) = sby {
                println!("  standby commanded after {:>8.3} s of idleness", t);
            }
            if let Some(t) = off {
                println!("  off     commanded after {:>8.3} s of idleness", t);
            }
        }
    }
    println!(
        "  expected cost per idle period: {:.4} J\n",
        policy.expected_cost()
    );
    Row {
        model: name.to_owned(),
        first_standby_s: sby,
        first_off_s: off,
        expected_cost_j: policy.expected_cost(),
    }
}

fn main() {
    bench::header(
        "Figure 7",
        "time-indexed idle states: the TISMDP policy's action per elapsed idle time",
    );
    let costs = DpmCosts::managed_subsystem(&SmartBadge::new());
    let config = TismdpConfig::default();

    // The streaming mixture: short lulls + heavy session gaps. Elapsed
    // time carries information, so the policy waits, then deepens.
    let mixture = IdleMixture::streaming_default().expect("static params");
    let mixed = TismdpPolicy::solve(&costs, &mixture, config).expect("solves on the mixture");
    let row_mixture = describe("short/long mixture (real streaming idle)", &mixed);

    // Memoryless control with the same mean: elapsed time carries no
    // information, so whatever is optimal is optimal immediately.
    let mean = {
        use simcore::dist::Continuous;
        mixture.mean()
    };
    let memoryless = simcore::dist::Exponential::new(1.0 / mean).expect("positive mean");
    let exp_policy =
        TismdpPolicy::solve(&costs, &memoryless, config).expect("solves on the exponential");
    let row_exp = describe(
        &format!("memoryless control (Exp, same mean {mean:.3} s)"),
        &exp_policy,
    );

    println!("The mixture policy defers sleeping past the short-gap regime and then");
    println!("deepens — the time index is doing real work. The memoryless control's");
    println!("decision cannot depend on elapsed time (it acts at the first bucket or");
    println!("never), which is exactly why the paper's models index idle time.");
    let wait_mixture = row_mixture.first_standby_s.or(row_mixture.first_off_s);
    let wait_exp = row_exp.first_standby_s.or(row_exp.first_off_s);
    let ok = match (wait_mixture, wait_exp) {
        (Some(m), Some(e)) => m > e + 1e-9,
        (Some(_), None) => true, // control never sleeps at all
        _ => false,
    };
    println!(
        "\nShape check: mixture policy waits longer than the memoryless control: {}",
        if ok { "yes" } else { "NO" }
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &vec![row_mixture, row_exp]);
    }
}
