//! Hot-path throughput benchmark with a CI regression gate.
//!
//! Measures the three loops the zero-allocation kernel rewrite targets,
//! all single-threaded so the numbers reflect kernel cost rather than
//! scheduling:
//!
//! 1. **Calibration** — Monte-Carlo trials/sec of the optimized
//!    [`trial_statistic`] versus the retained seed-era reference kernel
//!    ([`reference_trial_statistic`]), measured in the same run on the
//!    same RNG streams and verified bit-identical while timing.
//! 2. **Detector** — samples/sec through a fully-warm
//!    [`ChangePointDetector`] driven by a rate-stepping arrival stream.
//! 3. **Simulator** — traced events/sec of a full MP3 system simulation
//!    (change-point governor + break-even DPM).
//!
//! Results go to `BENCH_hotpath.json` (override with `--json PATH`).
//! With `--check`, the run is gated against the checked-in
//! `BENCH_hotpath_baseline.json` (override with `--baseline PATH`):
//! calibration speedup must meet its floor exactly, throughput floors
//! are relaxed by the baseline's `tolerance` to absorb machine-to-
//! machine variance, and the process exits non-zero on any regression.
//!
//! The reported threshold-cache stats are scoped to the **simulator
//! phase** (a [`detect::cache::CacheStats::since`] delta), not process
//! lifetime: the detector phase deliberately uses its own calibration
//! key (different trial count and seed), so lifetime totals mix two
//! unrelated one-off misses with the simulator's single warm hit and
//! bottom out at ~0.33 even when caching works perfectly. Phase-scoped,
//! a cold process shows exactly 1 miss (the warm-up calibration) and
//! 1 hit (the timed run): ratio 0.5, gated by
//! `min_threshold_cache_hit_ratio`.
//!
//! Usage: `bench_hotpath [--quick] [--check] [--json PATH] [--baseline PATH]`

use detect::calibrate::{
    default_ratios, reference_trial_statistic, trial_statistic, CalibrationConfig,
};
use detect::estimator::RateEstimator;
use detect::{ChangePointConfig, ChangePointDetector};
use dpm::policy::SleepState;
use powermgr::config::{DpmKind, GovernorKind, SystemConfig};
use powermgr::scenario;
use simcore::dist::{Exponential, Sample};
use simcore::rng::SimRng;
use std::time::Instant;
use trace::TraceSink;

struct HotpathReport {
    quick: bool,
    cores: u64,
    calibration_trials: u64,
    optimized_trials_per_sec: f64,
    reference_trials_per_sec: f64,
    /// Reference wall time ÷ optimized wall time over the identical
    /// trial set — the "≥ 2× vs the pre-PR kernel" number.
    calibration_speedup: f64,
    detector_samples: u64,
    detector_samples_per_sec: f64,
    simulator_events: u64,
    simulator_events_per_sec: f64,
    threshold_cache_hits: u64,
    threshold_cache_misses: u64,
    threshold_cache_hit_ratio: f64,
}

simcore::impl_to_json!(HotpathReport {
    quick,
    cores,
    calibration_trials,
    optimized_trials_per_sec,
    reference_trials_per_sec,
    calibration_speedup,
    detector_samples,
    detector_samples_per_sec,
    simulator_events,
    simulator_events_per_sec,
    threshold_cache_hits,
    threshold_cache_misses,
    threshold_cache_hit_ratio,
});

/// A trace sink that only counts records — the cheapest way to turn the
/// simulator's event stream into an events/sec denominator.
struct CountSink {
    count: u64,
}

impl TraceSink for CountSink {
    fn record(&mut self, _event: &trace::Event) {
        self.count += 1;
    }
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

fn bench_calibration(trials: u64) -> (f64, f64, f64) {
    let config = CalibrationConfig::default();
    let ratios = default_ratios();
    let root = SimRng::seed_from(bench::EXPERIMENT_SEED);
    let cell_rng = |t: u64| {
        root.fork_indexed("calibration-ratio", t % ratios.len() as u64)
            .fork_indexed("calibration-trial", t)
    };
    let ratio_of = |t: u64| ratios[(t % ratios.len() as u64) as usize];

    // Warm-up (sizes the optimized kernel's scratch arena) + bit-identity
    // spot check on the streams about to be timed.
    for t in 0..ratios.len() as u64 {
        let a = trial_statistic(ratio_of(t), config, cell_rng(t));
        let b = reference_trial_statistic(ratio_of(t), config, cell_rng(t));
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "optimized and reference kernels diverged at trial {t}"
        );
    }

    // Each kernel is timed three times and the fastest repetition kept:
    // external interference (scheduler, frequency steps) only ever adds
    // time, so the minimum is the noise-robust estimate and the gate
    // does not flake on a loaded machine. Every repetition replays the
    // identical RNG streams, so the bit-equality check holds throughout.
    let mut secs_new = f64::INFINITY;
    let mut secs_old = f64::INFINITY;
    for _ in 0..3 {
        let (acc_new, rep_new) = time(|| {
            let mut acc = 0.0f64;
            for t in 0..trials {
                acc += trial_statistic(ratio_of(t), config, cell_rng(t));
            }
            acc
        });
        let (acc_old, rep_old) = time(|| {
            let mut acc = 0.0f64;
            for t in 0..trials {
                acc += reference_trial_statistic(ratio_of(t), config, cell_rng(t));
            }
            acc
        });
        assert_eq!(
            acc_new.to_bits(),
            acc_old.to_bits(),
            "timed loops must compute the identical statistics"
        );
        secs_new = secs_new.min(rep_new);
        secs_old = secs_old.min(rep_old);
    }
    (
        trials as f64 / secs_new,
        trials as f64 / secs_old,
        secs_old / secs_new,
    )
}

fn bench_detector(samples: u64, calibration_trials: usize) -> (u64, f64) {
    let config = ChangePointConfig {
        calibration_trials,
        calibration_seed: bench::EXPERIMENT_SEED,
        ..ChangePointConfig::default()
    };
    let mut det = ChangePointDetector::new(25.0, config).expect("valid detector config");
    // Rate-stepping stream: every block the true rate moves, so the
    // bench exercises both the steady scan and the detect/re-estimate
    // path, like a real media trace.
    let rates = [25.0f64, 60.0, 10.0, 40.0];
    let mut rng = SimRng::seed_from(0xD37EC7);
    let block = (samples as usize / rates.len()).max(1);
    let mut changes = 0u64;
    let (fed, secs) = time(|| {
        let mut fed = 0u64;
        for (i, &rate) in rates.iter().enumerate() {
            let dist = Exponential::new(rate).expect("valid rate");
            let n = if i + 1 == rates.len() {
                samples as usize - block * (rates.len() - 1)
            } else {
                block
            };
            for _ in 0..n {
                if det.observe(dist.sample(&mut rng)).is_some() {
                    changes += 1;
                }
                fed += 1;
            }
        }
        fed
    });
    assert!(changes > 0, "the stepping stream must trigger detections");
    (fed, fed as f64 / secs)
}

fn bench_simulator(labels: &str, reps: u32) -> (u64, f64) {
    let config = SystemConfig {
        governor: GovernorKind::change_point(),
        dpm: DpmKind::BreakEven {
            state: SleepState::Standby,
        },
        ..SystemConfig::default()
    };
    let trace = scenario::build_mp3_sequence(labels, 42).expect("golden labels build");
    // Warm pass, traced: warms the threshold cache and counts the trace
    // events the scenario emits, which keeps the benchmark's historical
    // denominator (trace events per wall second). The timed passes below
    // run the monomorphized untraced kernel — the fleet's default path —
    // which emits nothing, so the count must come from here.
    let mut sink = CountSink { count: 0 };
    let warm = scenario::run_trace_traced(&trace, &config, 42, &mut sink).expect("warm run");
    assert!(warm.frames_completed > 0);
    // Each rep is the identical deterministic run, so the fastest rep is
    // the kernel's speed and the slower ones are scheduler/interrupt
    // noise — take the min rather than the mean.
    let mut best_secs = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let ((report, pops), secs) =
            time(|| scenario::run_trace_counted(&trace, &config, 42).expect("timed run"));
        assert!(pops > 0);
        best_secs = best_secs.min(secs);
        last = Some(report);
    }
    let last = last.expect("at least one rep");
    // Traced and untraced kernels must agree bit for bit; a divergence
    // here means the fast path is no longer the same simulation.
    use simcore::json::ToJson;
    assert_eq!(
        warm.to_json().dump(),
        last.to_json().dump(),
        "untraced fast path diverged from the traced run"
    );
    (sink.count, sink.count as f64 / best_secs)
}

/// Loads the regression floors from the baseline JSON.
fn check_against_baseline(report: &HotpathReport, path: &std::path::Path) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
    let base = simcore::Json::parse(&text)
        .unwrap_or_else(|e| panic!("malformed baseline {}: {e}", path.display()));
    let get = |key: &str| {
        base.get(key)
            .and_then(simcore::Json::as_f64)
            .unwrap_or_else(|| panic!("baseline is missing `{key}`"))
    };
    let tolerance = get("tolerance");
    let mut failures = Vec::new();
    // The speedup floor is machine-independent (both kernels run on the
    // same machine in the same process), so no tolerance is applied.
    let min_speedup = get("min_calibration_speedup");
    if report.calibration_speedup < min_speedup {
        failures.push(format!(
            "calibration speedup {:.2}x < floor {min_speedup:.2}x",
            report.calibration_speedup
        ));
    }
    // Exact count arithmetic (1 warm miss + 1 timed hit on a cold
    // process, hits only on a warm one), so no tolerance is applied.
    let min_hit_ratio = get("min_threshold_cache_hit_ratio");
    if report.threshold_cache_hit_ratio < min_hit_ratio {
        failures.push(format!(
            "simulator-phase threshold-cache hit ratio {:.3} < floor {min_hit_ratio:.3} \
             ({} hits / {} misses) — calibration is being repaid inside the phase",
            report.threshold_cache_hit_ratio,
            report.threshold_cache_hits,
            report.threshold_cache_misses
        ));
    }
    for (name, measured, floor) in [
        (
            "detector samples/sec",
            report.detector_samples_per_sec,
            get("min_detector_samples_per_sec"),
        ),
        (
            "simulator events/sec",
            report.simulator_events_per_sec,
            get("min_simulator_events_per_sec"),
        ),
    ] {
        let relaxed = floor * (1.0 - tolerance);
        if measured < relaxed {
            failures.push(format!(
                "{name} {measured:.0} < floor {floor:.0} − {:.0}% tolerance = {relaxed:.0}",
                tolerance * 100.0
            ));
        }
    }
    if failures.is_empty() {
        println!(
            "[gate] OK against {} (tolerance {:.0}%)",
            path.display(),
            tolerance * 100.0
        );
    } else {
        eprintln!("[gate] REGRESSION against {}:", path.display());
        for f in &failures {
            eprintln!("[gate]   {f}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let _ = bench::init_jobs_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    bench::header(
        "Bench",
        "hot-path throughput: calibration kernel, online detector, simulator loop",
    );
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) as u64;

    // Quick keeps the calibration trial count high enough that the
    // timed regions span several milliseconds — below that, scheduler
    // noise dominates the speedup ratio and the gate flakes.
    let (trials, det_samples, det_trials, sim_labels, sim_reps) = if quick {
        (8_000u64, 200_000u64, 500, "A", 8u32)
    } else {
        (20_000u64, 2_000_000u64, 2000, "AB", 16u32)
    };

    println!("[calibration: {trials} trials per kernel, single-threaded]");
    let (opt_tps, ref_tps, speedup) = bench_calibration(trials);
    println!("[detector: {det_samples} samples through a warm change-point detector]");
    let (fed, samples_per_sec) = bench_detector(det_samples, det_trials);
    println!("[simulator: untraced mp3:{sim_labels} ×{sim_reps}, change-point + break-even DPM]");
    // Scope cache accounting to the simulator phase: the detector bench
    // above used a distinct calibration key (its own one-off miss), and
    // folding that in would misreport the simulator's caching as ~0.33.
    let cache_before = detect::cache::cache_stats_detailed();
    let (events, events_per_sec) = bench_simulator(sim_labels, sim_reps);
    let cache = detect::cache::cache_stats_detailed().since(&cache_before);
    let report = HotpathReport {
        quick,
        cores,
        calibration_trials: trials,
        optimized_trials_per_sec: opt_tps,
        reference_trials_per_sec: ref_tps,
        calibration_speedup: speedup,
        detector_samples: fed,
        detector_samples_per_sec: samples_per_sec,
        simulator_events: events,
        simulator_events_per_sec: events_per_sec,
        threshold_cache_hits: cache.hits,
        threshold_cache_misses: cache.misses,
        threshold_cache_hit_ratio: cache.hit_ratio(),
    };

    println!();
    println!("{:<28} {:>14} {:>14}", "loop", "throughput", "vs pre-PR");
    println!(
        "{:<28} {:>10.0}/s {:>13.2}x",
        "calibration (optimized)", report.optimized_trials_per_sec, report.calibration_speedup
    );
    println!(
        "{:<28} {:>10.0}/s {:>13}",
        "calibration (reference)", report.reference_trials_per_sec, "1.00x"
    );
    println!(
        "{:<28} {:>10.0}/s {:>14}",
        "detector samples", report.detector_samples_per_sec, "-"
    );
    println!(
        "{:<28} {:>10.0}/s {:>14}",
        "simulator events", report.simulator_events_per_sec, "-"
    );
    println!(
        "[threshold cache, simulator phase: {} hits / {} misses, hit ratio {:.2}]",
        report.threshold_cache_hits,
        report.threshold_cache_misses,
        report.threshold_cache_hit_ratio
    );

    let path = bench::json_path_from_args()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_hotpath.json"));
    bench::write_json(&path, &report);

    if check {
        let baseline = bench::flag_value("--baseline")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("BENCH_hotpath_baseline.json"));
        check_against_baseline(&report, &baseline);
    }
}
