//! Tracing overhead guard: the observability layer must be free when
//! off and cheap when on.
//!
//! Runs the same MP3 scenario four ways — untraced, null sink, ring
//! sink, in-memory JSONL sink — timing each with a min-of-N loop, and
//!
//! * asserts all four produce byte-identical reports (tracing never
//!   perturbs the simulation), and
//! * fails (exit code 1) if the null-sink run is more than 10 % slower
//!   than the untraced run beyond a small absolute epsilon, so a
//!   regression on the disabled-tracing hot path fails CI.
//!
//! A fifth variant runs the ring sink with the streaming assertion
//! monitor attached (paper-default invariants) and holds it to the same
//! shape of budget against the plain ring-sink run: monitoring a traced
//! run must cost no more than 10 % + 2 ms on top of tracing alone, and
//! the report must stay byte-identical once its `assertions` verdict is
//! stripped.
//!
//! The Ideal governor is used on purpose: it involves no threshold
//! calibration, so the timed region is the pure simulation loop the
//! tracing hooks live in.

use bench::EXPERIMENT_SEED;
use powermgr::config::{DpmKind, GovernorKind, SystemConfig};
use powermgr::scenario;
use powermgr::SimReport;
use simcore::json::ToJson;
use std::process::ExitCode;
use std::time::{Duration, Instant};
use trace::{JsonlSink, NullSink, RingSink, TraceSink};

const ROUNDS: usize = 7;

fn config() -> SystemConfig {
    SystemConfig {
        governor: GovernorKind::Ideal,
        dpm: DpmKind::BreakEven {
            state: dpm::policy::SleepState::Standby,
        },
        ..SystemConfig::default()
    }
}

/// Minimum wall time over `ROUNDS` runs of `f` — the usual estimator
/// for "how fast can this go", robust to scheduler noise.
fn min_time<F: FnMut() -> SimReport>(mut f: F) -> (Duration, SimReport) {
    let mut best = Duration::MAX;
    let mut report = None;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed());
        report = Some(r);
    }
    (best, report.expect("at least one round"))
}

fn main() -> ExitCode {
    let cfg = config();
    let seed = EXPERIMENT_SEED;
    bench::header(
        "trace-overhead",
        "tracing hot-path cost vs untraced baseline",
    );

    let (t_off, r_off) =
        min_time(|| scenario::run_mp3_sequence("AB", &cfg, seed).expect("untraced run"));
    let (t_null, r_null) = min_time(|| {
        let mut sink = NullSink;
        scenario::run_mp3_sequence_traced("AB", &cfg, seed, &mut sink).expect("null-sink run")
    });
    let (t_ring, r_ring) = min_time(|| {
        let mut sink = RingSink::new(1 << 16);
        scenario::run_mp3_sequence_traced("AB", &cfg, seed, &mut sink).expect("ring-sink run")
    });
    let (t_jsonl, r_jsonl) = min_time(|| {
        let mut sink = JsonlSink::new(Vec::with_capacity(1 << 20));
        let r = scenario::run_mp3_sequence_traced("AB", &cfg, seed, &mut sink).expect("jsonl run");
        sink.finish().expect("in-memory write");
        r
    });
    let workload = scenario::Workload::Mp3("AB".to_owned());
    let shared = powermgr::SharedResources::default();
    let (t_mon, mut r_mon) = min_time(|| {
        let mut sink = RingSink::new(1 << 16);
        let mut monitor =
            trace::AssertionMonitor::new(&trace::AssertionConfig::paper()).expect("valid config");
        workload
            .run_observed(&cfg, seed, &shared, Some(&mut sink), Some(&mut monitor))
            .expect("monitored run")
    });

    assert!(
        r_mon.assertions.is_some(),
        "monitored run must carry a verdict"
    );
    r_mon.assertions = None; // the verdict is the only permitted delta
    let baseline = r_off.to_json().dump();
    for (label, r) in [
        ("null", &r_null),
        ("ring", &r_ring),
        ("jsonl", &r_jsonl),
        ("ring+mon", &r_mon),
    ] {
        assert_eq!(
            baseline,
            r.to_json().dump(),
            "{label}-sink report diverged from untraced baseline"
        );
    }

    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    println!("{:<10} {:>10}", "sink", "min_ms");
    println!("{:<10} {:>10.3}", "off", ms(t_off));
    println!("{:<10} {:>10.3}", "null", ms(t_null));
    println!("{:<10} {:>10.3}", "ring", ms(t_ring));
    println!("{:<10} {:>10.3}", "jsonl", ms(t_jsonl));
    println!("{:<10} {:>10.3}", "ring+mon", ms(t_mon));

    // Budget: disabled-or-null tracing within 10 % of untraced, plus a
    // 2 ms absolute epsilon so sub-millisecond jitter cannot flake.
    let budget = Duration::from_secs_f64(t_off.as_secs_f64() * 1.10) + Duration::from_millis(2);
    if t_null > budget {
        eprintln!(
            "FAIL: null-sink run {:.3} ms exceeds budget {:.3} ms (untraced {:.3} ms + 10% + 2 ms)",
            ms(t_null),
            ms(budget),
            ms(t_off)
        );
        return ExitCode::FAILURE;
    }
    println!(
        "\nnull-sink overhead {:+.1}% (budget +10% + 2 ms) — OK",
        (t_null.as_secs_f64() / t_off.as_secs_f64() - 1.0) * 100.0
    );

    // Same shape of budget for the assertion monitor, measured against
    // tracing alone: the invariant state machines are fixed-size and
    // allocation-free, so they must stay in the noise of a traced run.
    let mon_budget =
        Duration::from_secs_f64(t_ring.as_secs_f64() * 1.10) + Duration::from_millis(2);
    if t_mon > mon_budget {
        eprintln!(
            "FAIL: monitored run {:.3} ms exceeds budget {:.3} ms (ring-sink {:.3} ms + 10% + 2 ms)",
            ms(t_mon),
            ms(mon_budget),
            ms(t_ring)
        );
        return ExitCode::FAILURE;
    }
    println!(
        "monitor overhead {:+.1}% over ring sink (budget +10% + 2 ms) — OK",
        (t_mon.as_secs_f64() / t_ring.as_secs_f64() - 1.0) * 100.0
    );
    ExitCode::SUCCESS
}
