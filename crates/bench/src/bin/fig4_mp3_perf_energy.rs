//! Regenerates **Figure 4**: normalized performance and energy vs CPU
//! frequency for MP3 audio decode (memory bound on SRAM — performance
//! saturates at high frequency).

use bench::perf_energy;
use hardware::perf::PerformanceCurve;
use hardware::SmartBadge;
use workload::MediaKind;

fn main() {
    bench::header(
        "Figure 4",
        "performance and energy vs frequency, MP3 audio (SRAM, memory bound)",
    );
    let badge = SmartBadge::new();
    let curve = PerformanceCurve::mp3_on_sram(badge.cpu());
    let rows = perf_energy::rows(&badge, &curve, MediaKind::Mp3Audio);
    perf_energy::print(&rows);
    let perf_at_half = curve.performance_at(110.6);
    println!(
        "\nShape check: memory bound — performance at ~half clock is {:.2} (>> 0.5): {}",
        perf_at_half,
        if perf_at_half > 0.6 { "yes" } else { "NO" }
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
