//! Regenerates the substance of **Figure 8**: the expansion of the
//! single active state into a family of (frequency, voltage) sub-states.
//! The figure is a state diagram; its content — that the power manager
//! actually *occupies* many active sub-states at run time — is printed
//! here as the decode-time residency per operating point for each
//! governor on the ACEFBD audio sequence.

use powermgr::scenario;

struct Row {
    governor: String,
    freq_mhz: f64,
    decode_secs: f64,
}

simcore::impl_to_json!(Row {
    governor,
    freq_mhz,
    decode_secs,
});

fn main() {
    bench::header(
        "Figure 8",
        "active-state expansion: decode-time residency per (f, V) sub-state",
    );
    let cpu = hardware::CpuModel::sa1100();
    let mut rows = Vec::new();

    print!("{:>9}", "f (MHz)");
    let governors = bench::table_governors();
    for (name, _) in &governors {
        print!(" {name:>13}");
    }
    println!();

    let mut residency: Vec<Vec<f64>> = Vec::new();
    let mut distinct_states = Vec::new();
    for (name, governor) in &governors {
        let config = bench::dvs_only(governor.clone());
        let report = scenario::run_mp3_sequence("ACEFBD", &config, bench::EXPERIMENT_SEED)
            .expect("figure 8 scenario runs");
        let col: Vec<f64> = cpu
            .operating_points()
            .iter()
            .map(|op| report.freq_secs(op.freq_mhz))
            .collect();
        distinct_states.push(col.iter().filter(|&&s| s > 0.5).count());
        for op in cpu.operating_points() {
            rows.push(Row {
                governor: (*name).to_owned(),
                freq_mhz: op.freq_mhz,
                decode_secs: report.freq_secs(op.freq_mhz),
            });
        }
        residency.push(col);
    }
    for (i, op) in cpu.operating_points().iter().enumerate() {
        print!("{:>9.1}", op.freq_mhz);
        for col in &residency {
            print!(" {:>12.1}s", col[i]);
        }
        println!();
    }

    println!("\ndistinct active sub-states occupied (>0.5 s):");
    for ((name, _), n) in governors.iter().zip(&distinct_states) {
        println!("  {name:<13} {n}");
    }
    let ideal_states = distinct_states[0];
    let max_states = distinct_states[3];
    println!(
        "\nShape check: DVS governors occupy multiple sub-states while max uses one: {}",
        if ideal_states >= 3 && max_states == 1 {
            "yes"
        } else {
            "NO"
        }
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
