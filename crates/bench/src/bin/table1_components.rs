//! Regenerates **Table 1**: SmartBadge components, per-state power and
//! wake-up latencies, plus the derived break-even times the DPM policies
//! reason with.

use dpm::costs::DpmCosts;
use dpm::policy::SleepState;
use hardware::{PowerState, SmartBadge};

struct Row {
    component: String,
    active_mw: f64,
    idle_mw: f64,
    standby_mw: f64,
    t_standby_ms: f64,
    t_off_ms: f64,
}

simcore::impl_to_json!(Row {
    component,
    active_mw,
    idle_mw,
    standby_mw,
    t_standby_ms,
    t_off_ms,
});

fn main() {
    bench::header(
        "Table 1",
        "SmartBadge components (reconstructed values; scan is OCR-garbled)",
    );
    let badge = SmartBadge::new();
    println!(
        "{:<10} {:>9} {:>9} {:>11} {:>9} {:>9}",
        "Component", "P_act mW", "P_idle mW", "P_stdby mW", "t_sby ms", "t_off ms"
    );
    let mut rows = Vec::new();
    for spec in badge.components() {
        println!(
            "{:<10} {:>9.1} {:>9.1} {:>11.3} {:>9.1} {:>9.1}",
            spec.id.to_string(),
            spec.active_mw,
            spec.idle_mw,
            spec.standby_mw,
            spec.t_standby.as_secs_f64() * 1e3,
            spec.t_off.as_secs_f64() * 1e3
        );
        rows.push(Row {
            component: spec.id.to_string(),
            active_mw: spec.active_mw,
            idle_mw: spec.idle_mw,
            standby_mw: spec.standby_mw,
            t_standby_ms: spec.t_standby.as_secs_f64() * 1e3,
            t_off_ms: spec.t_off.as_secs_f64() * 1e3,
        });
    }
    println!(
        "{:<10} {:>9.1} {:>9.1} {:>11.3}",
        "Total",
        badge.total_active_mw(),
        badge.uniform_power_mw(PowerState::Idle),
        badge.uniform_power_mw(PowerState::Standby)
    );

    let managed = DpmCosts::managed_subsystem(&badge);
    println!("\nManaged subsystem (CPU + memories), the DVS/DPM-metered rail:");
    println!(
        "  active {:.0} mW / idle {:.0} mW / standby {:.2} mW / off {:.0} mW",
        managed.active_mw, managed.idle_mw, managed.standby_mw, managed.off_mw
    );
    for state in [SleepState::Standby, SleepState::Off] {
        if let Some(be) = managed.break_even(state) {
            println!(
                "  break-even({state:?}) = {:.1} ms (wake {:.1} ms)",
                be.as_secs_f64() * 1e3,
                managed.wake_latency(state).as_secs_f64() * 1e3
            );
        }
    }

    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
