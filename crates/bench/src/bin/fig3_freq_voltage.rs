//! Regenerates **Figure 3**: SA-1100 clock frequency vs minimum supply
//! voltage, plus the resulting relative CPU power at each operating
//! point (`f·V²` scaling).

use hardware::CpuModel;

struct Row {
    freq_mhz: f64,
    voltage_v: f64,
    power_ratio: f64,
    active_mw: f64,
}

simcore::impl_to_json!(Row {
    freq_mhz,
    voltage_v,
    power_ratio,
    active_mw,
});

fn main() {
    bench::header("Figure 3", "frequency vs voltage for the SA-1100");
    let cpu = CpuModel::sa1100();
    let max = cpu.max_operating_point();
    println!(
        "{:>9} {:>9} {:>12} {:>10}",
        "f (MHz)", "V_min (V)", "P/P_max", "P (mW)"
    );
    let mut rows = Vec::new();
    for op in cpu.operating_points() {
        let ratio = op.power_ratio_vs(&max);
        println!(
            "{:>9.1} {:>9.3} {:>12.3} {:>10.1}",
            op.freq_mhz,
            op.voltage_v,
            ratio,
            cpu.active_power_mw(*op)
        );
        rows.push(Row {
            freq_mhz: op.freq_mhz,
            voltage_v: op.voltage_v,
            power_ratio: ratio,
            active_mw: cpu.active_power_mw(*op),
        });
    }
    println!(
        "\nShape check: convex voltage curve, >5x power reduction at the lowest step: {}",
        if rows[0].power_ratio < 0.2 {
            "yes"
        } else {
            "NO"
        }
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
