//! Ablation: detection confidence level.
//!
//! The paper selects 99.5 % likelihood for its thresholds. This bench
//! sweeps the confidence and reports the false-alarm rate under a stable
//! rate against the detection latency after a real step — the classic
//! ROC trade-off the 99.5 % point sits on.
//!
//! Trials run on the deterministic parallel engine (`--jobs N`); the
//! printed table is bit-identical at any job count.

use detect::changepoint::{ChangePointConfig, ChangePointDetector};
use detect::estimator::RateEstimator;
use simcore::dist::{Exponential, Sample};
use simcore::par::{par_map_range, Jobs};
use simcore::rng::SimRng;

struct Row {
    confidence: f64,
    false_alarms_per_1k: f64,
    mean_latency_frames: f64,
    missed: usize,
}

simcore::impl_to_json!(Row {
    confidence,
    false_alarms_per_1k,
    mean_latency_frames,
    missed,
});

struct Trial {
    false_alarms: usize,
    flat_samples: usize,
    latency: Option<f64>,
}

fn main() {
    bench::init_jobs_from_args();
    bench::header("Ablation", "detection confidence (false alarms vs latency)");
    let confidences = [0.90, 0.95, 0.99, 0.995, 0.999];
    let trials = 60;
    println!(
        "{:>11} {:>18} {:>16} {:>8}",
        "confidence", "false alarms /1k", "latency (frames)", "missed"
    );
    let mut rows = Vec::new();
    for &confidence in &confidences {
        let config = ChangePointConfig {
            confidence,
            calibration_trials: 2000,
            ..ChangePointConfig::default()
        };
        let template =
            ChangePointDetector::new(20.0, config.clone()).expect("valid ablation config");
        let table = template.shared_table();
        let flat = Exponential::new(20.0).expect("static rate");
        let fast = Exponential::new(60.0).expect("static rate");

        let outcomes = par_map_range(Jobs::Auto, trials, |trial| {
            let mut rng = SimRng::seed_from(bench::EXPERIMENT_SEED).fork_indexed(
                "ablation-confidence",
                (trial as u64) * 1000 + (confidence * 1000.0) as u64,
            );
            let mut det =
                ChangePointDetector::with_shared_table(20.0, table.clone(), config.check_interval)
                    .expect("valid detector");
            let mut out = Trial {
                false_alarms: 0,
                flat_samples: 0,
                latency: None,
            };
            for _ in 0..500 {
                if det.observe(flat.sample(&mut rng)).is_some() {
                    out.false_alarms += 1;
                    det.reset(20.0);
                }
                out.flat_samples += 1;
            }
            det.reset(20.0);
            for _ in 0..200 {
                det.observe(flat.sample(&mut rng));
            }
            for i in 0..600 {
                if det.observe(fast.sample(&mut rng)).is_some() {
                    out.latency = Some(f64::from(i));
                    break;
                }
            }
            out
        });

        let false_alarms: usize = outcomes.iter().map(|t| t.false_alarms).sum();
        let flat_samples: usize = outcomes.iter().map(|t| t.flat_samples).sum();
        let latencies: Vec<f64> = outcomes.iter().filter_map(|t| t.latency).collect();
        let missed = outcomes.len() - latencies.len();
        let fa = 1000.0 * false_alarms as f64 / flat_samples as f64;
        let latency = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
        println!("{confidence:>11.3} {fa:>18.2} {latency:>16.1} {missed:>8}");
        rows.push(Row {
            confidence,
            false_alarms_per_1k: fa,
            mean_latency_frames: latency,
            missed,
        });
    }
    println!("\nExpected: false alarms fall monotonically with confidence while the");
    println!("post-step detection latency stays in the same ballpark (spurious early");
    println!("resets at low confidence can even slow real detections down) — the");
    println!("paper's 99.5 % point buys near-zero false alarms essentially for free.");
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
