//! Regenerates **Table 5**: combined DVS + DPM on the mixed audio/video
//! session with idle gaps — energy for {no PM, DVS only, DPM only,
//! both}, with the savings factor relative to no PM.
//!
//! Expected shape (paper): "savings of a factor of three in energy
//! consumption for combined DVS and DPM approaches", with each technique
//! alone contributing a smaller factor.

use powermgr::config::{DpmKind, GovernorKind, SystemConfig};
use powermgr::scenario;
use simcore::par::{par_map_indexed, Jobs};

struct Row {
    algorithm: String,
    energy_kj: f64,
    factor: f64,
    frame_delay_s: f64,
    sleeps: u64,
}

simcore::impl_to_json!(Row {
    algorithm,
    energy_kj,
    factor,
    frame_delay_s,
    sleeps,
});

fn main() {
    bench::init_jobs_from_args();
    bench::header(
        "Table 5",
        "DPM and DVS combined on the mixed session (energy kJ / factor)",
    );
    let dvs = bench::paper_change_point();
    let dpm = DpmKind::Tismdp { delay_weight: 2.0 };
    let cells: Vec<(&str, GovernorKind, DpmKind)> = vec![
        ("None", GovernorKind::MaxPerformance, DpmKind::None),
        ("DVS", dvs.clone(), DpmKind::None),
        ("DPM", GovernorKind::MaxPerformance, dpm.clone()),
        ("Both", dvs, dpm),
    ];

    println!(
        "{:<6} {:>11} {:>8} {:>12} {:>8}",
        "alg", "energy kJ", "factor", "delay s", "sleeps"
    );
    // The four cells are independent simulations; run them concurrently
    // and derive savings factors from the "None" baseline afterwards.
    let reports = par_map_indexed(Jobs::Auto, &cells, |_, (_, governor, dpm)| {
        let config = SystemConfig {
            governor: governor.clone(),
            dpm: dpm.clone(),
            ..SystemConfig::default()
        };
        scenario::run_session(&config, bench::EXPERIMENT_SEED).expect("table 5 runs")
    });
    let baseline = reports[0].total_energy_kj();
    let mut rows: Vec<Row> = Vec::new();
    for ((name, _, _), report) in cells.iter().zip(&reports) {
        let energy = report.total_energy_kj();
        let row = Row {
            algorithm: (*name).to_owned(),
            energy_kj: energy,
            factor: baseline / energy,
            frame_delay_s: report.mean_frame_delay_s(),
            sleeps: report.sleeps,
        };
        println!(
            "{:<6} {:>11.3} {:>8.2} {:>12.3} {:>8}",
            row.algorithm, row.energy_kj, row.factor, row.frame_delay_s, row.sleeps
        );
        rows.push(row);
    }

    let factor = |alg: &str| {
        rows.iter()
            .find(|r| r.algorithm == alg)
            .map_or(0.0, |r| r.factor)
    };
    println!(
        "\nShape check: DVS alone saves (>1.1x; its leverage is only the active fraction): {}",
        if factor("DVS") > 1.1 { "yes" } else { "NO" }
    );
    println!(
        "Shape check: DPM alone > 1.5x: {}",
        if factor("DPM") > 1.5 { "yes" } else { "NO" }
    );
    println!(
        "Shape check: combined ≈ 3x (>2.2x): {}",
        if factor("Both") > 2.2 { "yes" } else { "NO" }
    );
    println!(
        "Shape check: combined beats each alone: {}",
        if factor("Both") > factor("DVS") && factor("Both") > factor("DPM") {
            "yes"
        } else {
            "NO"
        }
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
