//! Regenerates **Figure 5**: normalized performance and energy vs CPU
//! frequency for MPEG video decode (near-linear on SDRAM).

use bench::perf_energy;
use hardware::perf::PerformanceCurve;
use hardware::SmartBadge;
use workload::MediaKind;

fn main() {
    bench::header(
        "Figure 5",
        "performance and energy vs frequency, MPEG video (SDRAM, ~linear)",
    );
    let badge = SmartBadge::new();
    let curve = PerformanceCurve::mpeg_on_sdram(badge.cpu());
    let rows = perf_energy::rows(&badge, &curve, MediaKind::MpegVideo);
    perf_energy::print(&rows);
    let perf_at_half = curve.performance_at(110.6);
    println!(
        "\nShape check: ~linear — performance at ~half clock is {:.2} (≈ 0.5): {}",
        perf_at_half,
        if (perf_at_half - 0.5).abs() < 0.06 {
            "yes"
        } else {
            "NO"
        }
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
