//! Chaos sweep: randomized fault plans against the full stack.
//!
//! Each seed draws a randomized fault plan, runs the change-point
//! governor with the graceful-degradation supervisor and a bounded frame
//! buffer over an MP3 sequence, and checks the harness invariants: the
//! run terminates, every generated frame is accounted for (completed,
//! lost on the network, or shed by the buffer), failure ratios stay in
//! [0, 1], and a replay with the same seed reproduces the report
//! byte-for-byte.
//!
//! Seeds run concurrently on the deterministic parallel engine; the
//! output is bit-identical for every `--jobs` value.
//!
//! Usage: `chaos_sweep [N_SEEDS] [--jobs N] [--json PATH]`
//! (default 25 seeds, all cores).

use bench::chaos;
use simcore::par::Jobs;

fn main() {
    let jobs = bench::init_jobs_from_args();
    bench::header(
        "Chaos",
        "randomized fault sweeps: termination, accounting, reproducibility",
    );
    let n_seeds: u64 = bench::positional_arg(0)
        .and_then(|a| a.parse().ok())
        .unwrap_or(25);
    println!("[{n_seeds} seeds, {jobs} jobs]");

    let results = chaos::sweep(n_seeds, Jobs::Auto);

    println!(
        "{:>5} {:>10} {:>7} {:>9} {:>9} {:>7} {:>8} {:>8} {:>9} {:>7} {:>8} {:>5}",
        "seed",
        "energy kJ",
        "done",
        "net-drop",
        "buf-drop",
        "miss%",
        "retries",
        "aborts",
        "rejected",
        "degr#",
        "degr s",
        "viol"
    );

    let mut rows = Vec::new();
    let mut total_violations = 0u64;
    for (seed, result) in results.into_iter().enumerate() {
        match result {
            Err(e) => {
                println!("{seed:>5} RUN FAILED: {e}");
                total_violations += 1;
            }
            Ok(row) => {
                println!(
                    "{:>5} {:>10.3} {:>7} {:>9} {:>9} {:>6.1}% {:>8} {:>8} {:>9} {:>7} {:>8.1} {:>5}",
                    row.seed,
                    row.energy_kj,
                    row.frames_completed,
                    row.arrivals_dropped,
                    row.frames_dropped,
                    100.0 * row.deadline_miss_ratio,
                    row.switch_retries,
                    row.switch_failures,
                    row.samples_rejected,
                    row.degraded_entries,
                    row.degraded_secs,
                    row.violations,
                );
                total_violations += row.violations;
                rows.push(row);
            }
        }
    }

    println!("\nExpected: 0 violations on every seed; faulted seeds show dropped");
    println!("frames/misses while the supervisor bounds degraded residency.");
    println!("Total violations: {total_violations}");
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
    if total_violations > 0 {
        std::process::exit(1);
    }
}
