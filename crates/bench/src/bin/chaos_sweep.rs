//! Chaos sweep: randomized fault plans against the full stack.
//!
//! Each seed draws a randomized [`FaultSpec`], runs the change-point
//! governor with the graceful-degradation supervisor and a bounded frame
//! buffer over an MP3 sequence, and checks the harness invariants: the
//! run terminates, every generated frame is accounted for (completed,
//! lost on the network, or shed by the buffer), failure ratios stay in
//! [0, 1], and a replay with the same seed reproduces the report
//! byte-for-byte.
//!
//! Usage: `chaos_sweep [N_SEEDS] [--json PATH]` (default 25 seeds).

use faults::FaultSpec;
use powermgr::config::{DpmKind, GovernorKind, SupervisorConfig, SystemConfig};
use powermgr::metrics::ModeKey;
use powermgr::scenario;
use simcore::json::ToJson;
use simcore::rng::SimRng;

const LABELS: &str = "ACE";

struct Row {
    seed: u64,
    energy_kj: f64,
    frames_completed: u64,
    arrivals_dropped: u64,
    frames_dropped: u64,
    deadline_miss_ratio: f64,
    switch_retries: u64,
    switch_failures: u64,
    samples_rejected: u64,
    degraded_entries: u64,
    degraded_secs: f64,
    violations: u64,
}

simcore::impl_to_json!(Row {
    seed,
    energy_kj,
    frames_completed,
    arrivals_dropped,
    frames_dropped,
    deadline_miss_ratio,
    switch_retries,
    switch_failures,
    samples_rejected,
    degraded_entries,
    degraded_secs,
    violations,
});

fn chaos_config(spec: FaultSpec) -> SystemConfig {
    SystemConfig {
        governor: GovernorKind::quick_change_point(),
        dpm: DpmKind::None,
        faults: Some(spec),
        supervisor: Some(SupervisorConfig::default()),
        buffer_capacity: Some(64),
        ..SystemConfig::default()
    }
}

fn main() {
    bench::header(
        "Chaos",
        "randomized fault sweeps: termination, accounting, reproducibility",
    );
    let n_seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(25);

    println!(
        "{:>5} {:>10} {:>7} {:>9} {:>9} {:>7} {:>8} {:>8} {:>9} {:>7} {:>8} {:>5}",
        "seed",
        "energy kJ",
        "done",
        "net-drop",
        "buf-drop",
        "miss%",
        "retries",
        "aborts",
        "rejected",
        "degr#",
        "degr s",
        "viol"
    );

    let mut rows = Vec::new();
    let mut total_violations = 0u64;
    for seed in 0..n_seeds {
        let mut rng = SimRng::seed_from(seed).fork("chaos-spec");
        let spec = FaultSpec::randomized(&mut rng);
        let report = match scenario::run_mp3_sequence(LABELS, &chaos_config(spec.clone()), seed) {
            Ok(r) => r,
            Err(e) => {
                println!("{seed:>5} RUN FAILED: {e}");
                total_violations += 1;
                continue;
            }
        };

        // Invariant checks (mirrors tests/chaos.rs, but reported not
        // asserted, so one bad seed doesn't hide the rest).
        let mut violations = 0u64;
        let mut trace_rng = SimRng::seed_from(seed).fork("mp3-sequence");
        let generated = workload::mp3::sequence(LABELS, &mut trace_rng)
            .expect("known labels")
            .frames()
            .len() as u64;
        let r = report.robustness.clone();
        if report.frames_completed + r.arrivals_dropped + r.frames_dropped != generated {
            violations += 1;
        }
        let mode_secs: f64 = ModeKey::ALL.iter().map(|&m| report.mode_secs(m)).sum();
        if (mode_secs - report.duration_secs).abs() >= 1.0 {
            violations += 1;
        }
        if !report.total_energy_j().is_finite() || report.total_energy_j() < 0.0 {
            violations += 1;
        }
        if !(0.0..=1.0).contains(&r.deadline_miss_ratio()) {
            violations += 1;
        }
        let replay = scenario::run_mp3_sequence(LABELS, &chaos_config(spec), seed);
        match replay {
            Ok(b) if b.to_json().dump() == report.to_json().dump() => {}
            _ => violations += 1,
        }
        total_violations += violations;

        println!(
            "{:>5} {:>10.3} {:>7} {:>9} {:>9} {:>6.1}% {:>8} {:>8} {:>9} {:>7} {:>8.1} {:>5}",
            seed,
            report.total_energy_kj(),
            report.frames_completed,
            r.arrivals_dropped,
            r.frames_dropped,
            100.0 * r.deadline_miss_ratio(),
            r.switch_retries,
            r.switch_failures,
            r.samples_rejected,
            r.degraded_entries,
            r.degraded_secs,
            violations,
        );
        rows.push(Row {
            seed,
            energy_kj: report.total_energy_kj(),
            frames_completed: report.frames_completed,
            arrivals_dropped: r.arrivals_dropped,
            frames_dropped: r.frames_dropped,
            deadline_miss_ratio: r.deadline_miss_ratio(),
            switch_retries: r.switch_retries,
            switch_failures: r.switch_failures,
            samples_rejected: r.samples_rejected,
            degraded_entries: r.degraded_entries,
            degraded_secs: r.degraded_secs,
            violations,
        });
    }

    println!("\nExpected: 0 violations on every seed; faulted seeds show dropped");
    println!("frames/misses while the supervisor bounds degraded residency.");
    println!("Total violations: {total_violations}");
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
    if total_violations > 0 {
        std::process::exit(1);
    }
}
