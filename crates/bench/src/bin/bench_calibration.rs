//! Calibration & chaos-sweep throughput benchmark.
//!
//! Times the two workloads the deterministic parallel engine was built
//! for — Monte-Carlo threshold calibration and the chaos sweep — once
//! sequentially (`jobs = 1`, the pre-engine baseline) and once at the
//! requested parallelism, verifies the results are bit-identical, and
//! writes the timings to `BENCH_calibration.json` (override with
//! `--json PATH`).
//!
//! Usage: `bench_calibration [--jobs N] [--json PATH]`

use detect::calibrate::{default_ratios, CalibrationConfig, ThresholdTable};
use simcore::par::Jobs;
use simcore::rng::SimRng;
use std::time::Instant;

struct Row {
    workload: String,
    jobs: u64,
    cores: u64,
    /// `true` when `jobs > cores`: the row's threads time-share the
    /// available cores, so its speedup measures scheduling overhead,
    /// not parallel scaling.
    oversubscribed: bool,
    wall_ms: f64,
    speedup: f64,
}

simcore::impl_to_json!(Row {
    workload,
    jobs,
    cores,
    oversubscribed,
    wall_ms,
    speedup,
});

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let jobs = bench::init_jobs_from_args();
    bench::header(
        "Bench",
        "parallel engine speedup: threshold calibration and chaos sweep",
    );
    // Hardware parallelism straight from the OS, not from any process
    // default that --jobs may have overridden.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) as u64;
    println!("[measuring jobs=1 baseline vs jobs={jobs} on {cores} core(s)]");
    if jobs as u64 > cores {
        println!(
            "[warning: jobs={jobs} oversubscribes {cores} core(s); \
             expect speedup ≈ 1.0 or below — the rows are annotated]"
        );
    }
    let mut rows = Vec::new();

    // Threshold calibration: the paper's offline characterization at the
    // full experiment parameters (10 ratios x 2000 trials).
    let config = CalibrationConfig::default();
    let ratios = default_ratios();
    let calibrate = |n: usize| {
        ThresholdTable::calibrate_jobs(
            &ratios,
            config,
            &mut SimRng::seed_from(bench::EXPERIMENT_SEED),
            Jobs::Count(n),
        )
        .expect("default calibration is valid")
    };
    let (seq_table, seq_ms) = time(|| calibrate(1));
    let (par_table, par_ms) = time(|| calibrate(jobs));
    assert_eq!(
        seq_table, par_table,
        "parallel calibration must be bit-identical"
    );
    rows.push(Row {
        workload: "calibration".to_owned(),
        jobs: 1,
        cores,
        oversubscribed: false,
        wall_ms: seq_ms,
        speedup: 1.0,
    });
    rows.push(Row {
        workload: "calibration".to_owned(),
        jobs: jobs as u64,
        cores,
        oversubscribed: jobs as u64 > cores,
        wall_ms: par_ms,
        speedup: seq_ms / par_ms,
    });

    // Chaos sweep: whole-stack simulations, one per seed.
    let n_seeds = 8;
    let (seq_rows, seq_ms) = time(|| bench::chaos::sweep(n_seeds, Jobs::Count(1)));
    let (par_rows, par_ms) = time(|| bench::chaos::sweep(n_seeds, Jobs::Count(jobs)));
    assert_eq!(
        seq_rows, par_rows,
        "parallel chaos sweep must be bit-identical"
    );
    rows.push(Row {
        workload: "chaos_sweep".to_owned(),
        jobs: 1,
        cores,
        oversubscribed: false,
        wall_ms: seq_ms,
        speedup: 1.0,
    });
    rows.push(Row {
        workload: "chaos_sweep".to_owned(),
        jobs: jobs as u64,
        cores,
        oversubscribed: jobs as u64 > cores,
        wall_ms: par_ms,
        speedup: seq_ms / par_ms,
    });

    println!(
        "{:<14} {:>5} {:>12} {:>9}",
        "workload", "jobs", "wall (ms)", "speedup"
    );
    for r in &rows {
        println!(
            "{:<14} {:>5} {:>12.1} {:>8.2}x",
            r.workload, r.jobs, r.wall_ms, r.speedup
        );
    }
    println!("\nResults verified bit-identical between jobs=1 and jobs={jobs}.");

    let path = bench::json_path_from_args()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_calibration.json"));
    bench::write_json(&path, &rows);
}
