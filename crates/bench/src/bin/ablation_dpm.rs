//! Ablation: DPM policy family on the Table 5 session.
//!
//! The paper classifies DPM policies into deterministic (timeout,
//! predictive) and stochastic (renewal, TISMDP) and argues the
//! stochastic, time-indexed policies exploit non-exponential idle tails.
//! This bench runs every family on the same mixed session under the same
//! change-point DVS governor.

use dpm::policy::SleepState;
use powermgr::config::{DpmKind, SystemConfig};
use powermgr::scenario;

struct Row {
    policy: String,
    energy_kj: f64,
    frame_delay_s: f64,
    sleeps: u64,
    wakes: u64,
    standby_secs: f64,
    off_secs: f64,
}

simcore::impl_to_json!(Row {
    policy,
    energy_kj,
    frame_delay_s,
    sleeps,
    wakes,
    standby_secs,
    off_secs,
});

fn main() {
    bench::header(
        "Ablation",
        "DPM policy families on the mixed session (with change-point DVS)",
    );
    let policies: Vec<(&str, DpmKind)> = vec![
        ("none", DpmKind::None),
        (
            "fixed-timeout 1s",
            DpmKind::FixedTimeout {
                timeout_s: 1.0,
                state: SleepState::Standby,
            },
        ),
        (
            "break-even",
            DpmKind::BreakEven {
                state: SleepState::Standby,
            },
        ),
        (
            "adaptive",
            DpmKind::Adaptive {
                state: SleepState::Standby,
            },
        ),
        (
            "predictive g=0.3",
            DpmKind::Predictive {
                state: SleepState::Standby,
                gain: 0.3,
            },
        ),
        (
            "renewal (50ms budget)",
            DpmKind::Renewal {
                state: SleepState::Standby,
                delay_budget_s: 0.05,
            },
        ),
        ("tismdp η=2", DpmKind::Tismdp { delay_weight: 2.0 }),
        (
            "tismdp η=0 (energy-only)",
            DpmKind::Tismdp { delay_weight: 0.0 },
        ),
    ];

    println!(
        "{:<26} {:>11} {:>10} {:>8} {:>7} {:>11} {:>9}",
        "policy", "energy kJ", "delay s", "sleeps", "wakes", "standby s", "off s"
    );
    let mut rows = Vec::new();
    for (name, dpm) in policies {
        let config = SystemConfig {
            governor: bench::paper_change_point(),
            dpm,
            ..SystemConfig::default()
        };
        let report = scenario::run_session(&config, bench::EXPERIMENT_SEED).expect("ablation runs");
        println!(
            "{:<26} {:>11.3} {:>10.3} {:>8} {:>7} {:>11.0} {:>9.0}",
            name,
            report.total_energy_kj(),
            report.mean_frame_delay_s(),
            report.sleeps,
            report.wakes,
            report.mode_secs(powermgr::metrics::ModeKey::Standby),
            report.mode_secs(powermgr::metrics::ModeKey::Off),
        );
        rows.push(Row {
            policy: name.to_owned(),
            energy_kj: report.total_energy_kj(),
            frame_delay_s: report.mean_frame_delay_s(),
            sleeps: report.sleeps,
            wakes: report.wakes,
            standby_secs: report.mode_secs(powermgr::metrics::ModeKey::Standby),
            off_secs: report.mode_secs(powermgr::metrics::ModeKey::Off),
        });
    }
    println!("\nExpected: every policy beats none; tismdp reaches off during long gaps");
    println!("and η trades delay for energy; naive timeouts churn on short gaps.");
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &rows);
    }
}
