//! The chaos sweep must be bit-identical at any job count: each seed's
//! randomness derives from the seed alone, and the parallel engine
//! assembles results by index.

use simcore::json::ToJson;
use simcore::par::Jobs;

#[test]
fn chaos_sweep_is_bit_identical_across_job_counts() {
    let n_seeds = 3;
    let sequential = bench::chaos::sweep(n_seeds, Jobs::Count(1));
    for jobs in [2, 4] {
        let parallel = bench::chaos::sweep(n_seeds, Jobs::Count(jobs));
        assert_eq!(sequential, parallel, "jobs={jobs}");
    }
    // And the emitted JSON rows (what --json writes) match byte-for-byte.
    let rows = |results: &[Result<bench::chaos::ChaosRow, String>]| {
        results
            .iter()
            .filter_map(|r| r.as_ref().ok().cloned())
            .collect::<Vec<_>>()
            .to_json()
            .dump()
    };
    assert_eq!(
        rows(&sequential),
        rows(&bench::chaos::sweep(n_seeds, Jobs::Count(8)))
    );
}

#[test]
fn chaos_rows_are_healthy_on_clean_seeds() {
    for result in bench::chaos::sweep(2, Jobs::Count(2)) {
        let row = result.expect("chaos seeds run to completion");
        assert_eq!(row.violations, 0, "seed {}", row.seed);
        assert!(row.energy_kj > 0.0);
    }
}
