//! The common DPM policy interface.
//!
//! The simulator's contract with a policy is simple: on entry to the idle
//! state the policy produces an [`IdlePlan`] — a schedule of sleep-state
//! transitions to command if the idle period lasts long enough — and is
//! told afterwards how the idle period actually went, so adaptive
//! policies can learn.

use simcore::rng::SimRng;
use simcore::time::SimDuration;

/// The sleep states a DPM policy can command (active and idle are not
/// commanded: requests wake the device, inactivity idles it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SleepState {
    /// Standby: low power, fast wake-up.
    Standby,
    /// Off: minimal power, slow wake-up.
    Off,
}

impl SleepState {
    /// The corresponding hardware power state.
    #[must_use]
    pub fn to_power_state(self) -> hardware::PowerState {
        match self {
            SleepState::Standby => hardware::PowerState::Standby,
            SleepState::Off => hardware::PowerState::Off,
        }
    }

    /// Stable lowercase label, identical to the simulator report's mode
    /// keys and the trace layer's sleep-state wire names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SleepState::Standby => "standby",
            SleepState::Off => "off",
        }
    }
}

/// A schedule of sleep transitions for one idle period: command
/// `state` once the idle period has lasted `after`.
///
/// Transitions must be sorted by time and strictly deepening
/// (standby before off).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IdlePlan {
    /// `(time since idle entry, state to command)`.
    pub transitions: Vec<(SimDuration, SleepState)>,
}

impl IdlePlan {
    /// A plan that never sleeps.
    #[must_use]
    pub fn stay_idle() -> Self {
        IdlePlan {
            transitions: Vec::new(),
        }
    }

    /// A plan with a single transition.
    #[must_use]
    pub fn single(after: SimDuration, state: SleepState) -> Self {
        IdlePlan {
            transitions: vec![(after, state)],
        }
    }

    /// Checks the plan invariants: sorted times, strictly deepening
    /// states.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        self.transitions
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1)
    }

    /// The deepest state this plan would reach for an idle period of
    /// length `idle_len`, if any.
    #[must_use]
    pub fn deepest_reached(&self, idle_len: SimDuration) -> Option<SleepState> {
        self.transitions
            .iter()
            .filter(|(after, _)| *after <= idle_len)
            .map(|&(_, s)| s)
            .max()
    }
}

/// A dynamic power management policy.
///
/// Object safe: experiment configurations hold `Box<dyn DpmPolicy>`.
pub trait DpmPolicy {
    /// Called when the device enters the idle state; returns the sleep
    /// schedule for this idle period.
    fn plan_idle(&mut self, rng: &mut SimRng) -> IdlePlan;

    /// Called when the idle period ends (a request arrived), with its
    /// total length and the deepest sleep state actually reached.
    /// Default: no adaptation.
    fn on_idle_end(&mut self, idle_len: SimDuration, deepest: Option<SleepState>) {
        let _ = (idle_len, deepest);
    }

    /// A short name for experiment tables.
    fn name(&self) -> &'static str;
}

/// The "no power management" baseline: the device only ever idles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoSleep;

impl NoSleep {
    /// Creates the baseline policy.
    #[must_use]
    pub fn new() -> Self {
        NoSleep
    }
}

impl DpmPolicy for NoSleep {
    fn plan_idle(&mut self, _rng: &mut SimRng) -> IdlePlan {
        IdlePlan::stay_idle()
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_state_ordering_and_mapping() {
        assert!(SleepState::Standby < SleepState::Off);
        assert_eq!(
            SleepState::Standby.to_power_state(),
            hardware::PowerState::Standby
        );
        assert_eq!(SleepState::Off.to_power_state(), hardware::PowerState::Off);
    }

    #[test]
    fn plan_well_formedness() {
        let good = IdlePlan {
            transitions: vec![
                (SimDuration::from_secs(1), SleepState::Standby),
                (SimDuration::from_secs(10), SleepState::Off),
            ],
        };
        assert!(good.is_well_formed());
        let bad_order = IdlePlan {
            transitions: vec![
                (SimDuration::from_secs(10), SleepState::Standby),
                (SimDuration::from_secs(1), SleepState::Off),
            ],
        };
        assert!(!bad_order.is_well_formed());
        let bad_depth = IdlePlan {
            transitions: vec![
                (SimDuration::from_secs(1), SleepState::Off),
                (SimDuration::from_secs(10), SleepState::Standby),
            ],
        };
        assert!(!bad_depth.is_well_formed());
        assert!(IdlePlan::stay_idle().is_well_formed());
    }

    #[test]
    fn deepest_reached() {
        let plan = IdlePlan {
            transitions: vec![
                (SimDuration::from_secs(1), SleepState::Standby),
                (SimDuration::from_secs(10), SleepState::Off),
            ],
        };
        assert_eq!(plan.deepest_reached(SimDuration::from_millis(500)), None);
        assert_eq!(
            plan.deepest_reached(SimDuration::from_secs(5)),
            Some(SleepState::Standby)
        );
        assert_eq!(
            plan.deepest_reached(SimDuration::from_secs(20)),
            Some(SleepState::Off)
        );
    }

    #[test]
    fn no_sleep_baseline() {
        let mut p = NoSleep::new();
        let plan = p.plan_idle(&mut SimRng::seed_from(0));
        assert!(plan.transitions.is_empty());
        assert_eq!(p.name(), "none");
        p.on_idle_end(SimDuration::from_secs(100), None); // default no-op
    }

    #[test]
    fn trait_is_object_safe() {
        let mut p: Box<dyn DpmPolicy> = Box::new(NoSleep::new());
        let _ = p.plan_idle(&mut SimRng::seed_from(0));
    }

    #[test]
    fn sleep_state_labels_match_report_mode_keys() {
        // The contract the trace wire format and the report's mode map
        // both rely on: one lowercase name per sleep state, forever.
        assert_eq!(SleepState::Standby.label(), "standby");
        assert_eq!(SleepState::Off.label(), "off");
    }
}
