//! Idle-period models.
//!
//! The paper's DPM sections build on the authors' observation that real
//! idle-time distributions have heavier-than-exponential tails, which is
//! precisely why the time elapsed in idle carries information and why the
//! renewal / TISMDP formulations index their states by it. This module
//! collects observed idle lengths, fits candidate models, and says which
//! fits better.

use crate::DpmError;
use simcore::dist::{fit, Continuous, Exponential, Pareto, Sample};
use simcore::rng::SimRng;
use simcore::SimError;

/// The idle-period model of a streaming device: a mixture of **short**
/// intra-stream gaps (exponential — the lull between one frame's decode
/// completing and the next frame arriving) and **long** session gaps
/// (Pareto — the user walked away), in proportion `short_weight`.
///
/// This mixture is exactly why time-indexed DPM works: the longer an
/// idle period has already lasted, the more likely it is a session gap,
/// and the more confidently the policy can power down. A memoryless
/// model cannot express that.
///
/// # Example
///
/// ```
/// use dpm::idle::IdleMixture;
/// use simcore::dist::Continuous;
///
/// # fn main() -> Result<(), dpm::DpmError> {
/// let model = IdleMixture::streaming_default()?;
/// // Most idle periods are short…
/// assert!(model.cdf(0.5) > 0.8);
/// // …but a period that has survived one second is almost surely a
/// // session gap, far more persistent than an exponential tail would be.
/// let s = |t: f64| 1.0 - model.cdf(t);
/// assert!(s(10.0) / s(1.0) > 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleMixture {
    short_weight: f64,
    short: Exponential,
    long: Pareto,
}

impl IdleMixture {
    /// Builds a mixture: `short_weight` of Exp(`short_rate`) plus the
    /// complement of Pareto(`long_scale`, `long_shape`).
    ///
    /// # Errors
    ///
    /// Returns an error if the weight is outside `(0, 1)` or a component
    /// parameter is invalid.
    pub fn new(
        short_weight: f64,
        short_rate: f64,
        long_scale: f64,
        long_shape: f64,
    ) -> Result<Self, DpmError> {
        if !(short_weight.is_finite() && short_weight > 0.0 && short_weight < 1.0) {
            return Err(DpmError::InvalidParameter {
                name: "short_weight",
                value: short_weight,
            });
        }
        let short = Exponential::new(short_rate).map_err(|_| DpmError::InvalidParameter {
            name: "short_rate",
            value: short_rate,
        })?;
        let long = Pareto::new(long_scale, long_shape).map_err(|_| DpmError::InvalidParameter {
            name: "long_scale/long_shape",
            value: long_shape,
        })?;
        Ok(IdleMixture {
            short_weight,
            short,
            long,
        })
    }

    /// The default model for SmartBadge streaming workloads: 95 % short
    /// gaps with mean 40 ms, 5 % heavy-tailed session gaps
    /// (Pareto scale 2 s, shape 1.5).
    ///
    /// # Errors
    ///
    /// Infallible with the built-in constants; kept fallible for
    /// signature consistency.
    pub fn streaming_default() -> Result<Self, DpmError> {
        IdleMixture::new(0.95, 25.0, 2.0, 1.5)
    }

    /// The fraction of idle periods that are short intra-stream gaps.
    #[must_use]
    pub fn short_weight(&self) -> f64 {
        self.short_weight
    }
}

impl Sample for IdleMixture {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        if rng.next_f64() < self.short_weight {
            self.short.sample(rng)
        } else {
            self.long.sample(rng)
        }
    }
}

impl Continuous for IdleMixture {
    fn cdf(&self, x: f64) -> f64 {
        self.short_weight * self.short.cdf(x) + (1.0 - self.short_weight) * self.long.cdf(x)
    }

    fn mean(&self) -> f64 {
        self.short_weight * self.short.mean() + (1.0 - self.short_weight) * self.long.mean()
    }

    fn variance(&self) -> f64 {
        // Var = E[X²] − (E[X])² with E[X²] mixed from the components.
        let ex2_short = self.short.variance() + self.short.mean() * self.short.mean();
        let ex2_long = self.long.variance() + self.long.mean() * self.long.mean();
        let ex2 = self.short_weight * ex2_short + (1.0 - self.short_weight) * ex2_long;
        let m = self.mean();
        ex2 - m * m
    }
}

/// An accumulating record of observed idle-period lengths with model
/// fitting.
///
/// # Example
///
/// ```
/// use dpm::idle::IdleHistory;
/// use simcore::dist::{Pareto, Sample};
/// use simcore::rng::SimRng;
///
/// # fn main() -> Result<(), simcore::SimError> {
/// let truth = Pareto::new(1.0, 1.6)?;
/// let mut rng = SimRng::seed_from(2);
/// let mut hist = IdleHistory::new();
/// for _ in 0..5000 {
///     hist.record(truth.sample(&mut rng));
/// }
/// // The heavy tail is visible: Pareto fits better than exponential.
/// assert!(hist.pareto_fits_better()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdleHistory {
    lengths: Vec<f64>,
}

impl IdleHistory {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> Self {
        IdleHistory::default()
    }

    /// Records one idle-period length in seconds; non-positive or
    /// non-finite lengths are ignored.
    pub fn record(&mut self, secs: f64) {
        if secs.is_finite() && secs > 0.0 {
            self.lengths.push(secs);
        }
    }

    /// The recorded lengths.
    #[must_use]
    pub fn lengths(&self) -> &[f64] {
        &self.lengths
    }

    /// Number of recorded periods.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lengths.len()
    }

    /// `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lengths.is_empty()
    }

    /// Mean idle length, seconds; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.lengths.is_empty() {
            0.0
        } else {
            self.lengths.iter().sum::<f64>() / self.lengths.len() as f64
        }
    }

    /// Maximum-likelihood exponential fit.
    ///
    /// # Errors
    ///
    /// Returns an error if the history is empty.
    pub fn fit_exponential(&self) -> Result<Exponential, SimError> {
        Exponential::fit_mle(&self.lengths)
    }

    /// Maximum-likelihood Pareto fit.
    ///
    /// # Errors
    ///
    /// Returns an error if the history is empty.
    pub fn fit_pareto(&self) -> Result<Pareto, SimError> {
        Pareto::fit_mle(&self.lengths)
    }

    /// `true` when the Pareto model has a lower Kolmogorov–Smirnov
    /// distance to the empirical distribution than the exponential — the
    /// paper's "idle tails are not exponential" observation as a test.
    ///
    /// # Errors
    ///
    /// Returns an error if the history is empty.
    pub fn pareto_fits_better(&self) -> Result<bool, SimError> {
        let exp = self.fit_exponential()?;
        let par = self.fit_pareto()?;
        Ok(self.ks_distance(&par) < self.ks_distance(&exp))
    }

    /// Kolmogorov–Smirnov distance of the history to a candidate model.
    ///
    /// # Panics
    ///
    /// Panics if the history is empty.
    #[must_use]
    pub fn ks_distance<D: Continuous>(&self, model: &D) -> f64 {
        fit::ks_statistic(&self.lengths, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixture_cdf_blends_components() {
        let m = IdleMixture::new(0.5, 10.0, 1.0, 2.0).unwrap();
        let e = Exponential::new(10.0).unwrap();
        let p = Pareto::new(1.0, 2.0).unwrap();
        for x in [0.05, 0.5, 2.0, 10.0] {
            let expected = 0.5 * e.cdf(x) + 0.5 * p.cdf(x);
            assert!((m.cdf(x) - expected).abs() < 1e-12);
        }
        assert!((m.mean() - 0.5 * (0.1 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn mixture_residual_life_grows_with_elapsed_time() {
        let m = IdleMixture::streaming_default().unwrap();
        let s = |t: f64| 1.0 - m.cdf(t);
        // P(survive one more second | alive at t).
        let cond = |t: f64| s(t + 1.0) / s(t);
        assert!(
            cond(5.0) > cond(0.05),
            "aging should predict longer remaining idle"
        );
    }

    #[test]
    fn mixture_sampling_matches_weights() {
        let m = IdleMixture::new(0.9, 25.0, 2.0, 1.5).unwrap();
        let mut rng = SimRng::seed_from(3);
        let n = 20_000;
        let long = (0..n).filter(|_| m.sample(&mut rng) >= 2.0).count();
        let frac = long as f64 / n as f64;
        // All Pareto draws are >= 2.0; a small tail of the exponential too.
        assert!((0.08..0.16).contains(&frac), "long fraction {frac}");
        assert!((m.short_weight() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn mixture_validates() {
        assert!(IdleMixture::new(0.0, 10.0, 1.0, 2.0).is_err());
        assert!(IdleMixture::new(1.0, 10.0, 1.0, 2.0).is_err());
        assert!(IdleMixture::new(0.5, 0.0, 1.0, 2.0).is_err());
        assert!(IdleMixture::new(0.5, 10.0, -1.0, 2.0).is_err());
    }

    #[test]
    fn mixture_variance_is_positive_and_finite_for_light_tail() {
        let m = IdleMixture::new(0.5, 10.0, 1.0, 3.0).unwrap();
        assert!(m.variance() > 0.0);
        assert!(m.variance().is_finite());
    }

    #[test]
    fn records_and_filters() {
        let mut h = IdleHistory::new();
        h.record(1.0);
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(2.0);
        assert_eq!(h.len(), 2);
        assert!((h.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn exponential_data_prefers_exponential() {
        let truth = Exponential::new(0.5).unwrap();
        let mut rng = SimRng::seed_from(1);
        let mut h = IdleHistory::new();
        for _ in 0..5000 {
            h.record(truth.sample(&mut rng));
        }
        assert!(!h.pareto_fits_better().unwrap());
        let fitted = h.fit_exponential().unwrap();
        assert!((fitted.rate() - 0.5).abs() < 0.05);
    }

    #[test]
    fn pareto_data_prefers_pareto() {
        let truth = Pareto::new(2.0, 1.4).unwrap();
        let mut rng = SimRng::seed_from(2);
        let mut h = IdleHistory::new();
        for _ in 0..5000 {
            h.record(truth.sample(&mut rng));
        }
        assert!(h.pareto_fits_better().unwrap());
    }

    #[test]
    fn empty_history_errors() {
        let h = IdleHistory::new();
        assert!(h.is_empty());
        assert!(h.fit_exponential().is_err());
        assert!(h.fit_pareto().is_err());
        assert!(h.pareto_fits_better().is_err());
        assert_eq!(h.mean(), 0.0);
    }
}
