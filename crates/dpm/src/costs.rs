//! Device-level costs that DPM policies optimize against.
//!
//! Policies reason about the *system as a whole*: the power drawn while
//! idle / in standby / off, and the latency and energy of waking back up.
//! [`DpmCosts`] collapses the SmartBadge component table into those
//! numbers.

use crate::policy::SleepState;
use hardware::{PowerState, SmartBadge};
use simcore::time::SimDuration;

/// System-level power and wake-up costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpmCosts {
    /// System power while idle, milliwatts.
    pub idle_mw: f64,
    /// System power in standby, milliwatts.
    pub standby_mw: f64,
    /// System power when off, milliwatts.
    pub off_mw: f64,
    /// System power while active (used to cost wake-up transitions),
    /// milliwatts.
    pub active_mw: f64,
    /// Nominal wake-up latency from standby.
    pub wake_standby: SimDuration,
    /// Nominal wake-up latency from off.
    pub wake_off: SimDuration,
}

impl DpmCosts {
    /// Derives costs from the full SmartBadge component table: per-state
    /// powers are the sums over all six components, wake-up latency is
    /// the slowest component's.
    #[must_use]
    pub fn from_smartbadge(badge: &SmartBadge) -> Self {
        DpmCosts {
            idle_mw: badge.uniform_power_mw(PowerState::Idle),
            standby_mw: badge.uniform_power_mw(PowerState::Standby),
            off_mw: badge.uniform_power_mw(PowerState::Off),
            active_mw: badge.uniform_power_mw(PowerState::Active),
            wake_standby: badge.system_wakeup(PowerState::Standby),
            wake_off: badge.system_wakeup(PowerState::Off),
        }
    }

    /// Derives costs for the **managed subsystem** — processor plus the
    /// three memories — which is what the paper's power manager actually
    /// controls and meters. The display and WLAN radio have their own
    /// activity-driven management (the display shows whatever is on
    /// screen regardless of decode speed; the radio duty-cycles with
    /// traffic), and including their constant draw would make the
    /// paper's reported DVS savings arithmetically impossible (see
    /// `DESIGN.md`).
    #[must_use]
    pub fn managed_subsystem(badge: &SmartBadge) -> Self {
        use hardware::component::ComponentId;
        const MANAGED: [ComponentId; 4] = [
            ComponentId::Cpu,
            ComponentId::Flash,
            ComponentId::Sram,
            ComponentId::Dram,
        ];
        let sum = |state: PowerState| -> f64 {
            MANAGED
                .iter()
                .map(|&id| badge.component(id).power_mw(state))
                .sum()
        };
        let wake = |state: PowerState| {
            MANAGED
                .iter()
                .map(|&id| badge.component(id).nominal_wakeup(state))
                .max()
                .unwrap_or(SimDuration::ZERO)
        };
        DpmCosts {
            idle_mw: sum(PowerState::Idle),
            standby_mw: sum(PowerState::Standby),
            off_mw: sum(PowerState::Off),
            active_mw: sum(PowerState::Active),
            wake_standby: wake(PowerState::Standby),
            wake_off: wake(PowerState::Off),
        }
    }

    /// Power in a sleep state, milliwatts.
    #[must_use]
    pub fn sleep_power_mw(&self, state: SleepState) -> f64 {
        match state {
            SleepState::Standby => self.standby_mw,
            SleepState::Off => self.off_mw,
        }
    }

    /// Nominal wake-up latency from a sleep state.
    #[must_use]
    pub fn wake_latency(&self, state: SleepState) -> SimDuration {
        match state {
            SleepState::Standby => self.wake_standby,
            SleepState::Off => self.wake_off,
        }
    }

    /// Energy burned by a wake-up transition (active power for the wake
    /// latency), joules.
    #[must_use]
    pub fn wake_energy_j(&self, state: SleepState) -> f64 {
        self.active_mw * 1e-3 * self.wake_latency(state).as_secs_f64()
    }

    /// The break-even idle length for a sleep state: the idle duration at
    /// which sleeping (and paying the wake-up energy) matches idling.
    ///
    /// Returns `None` if the sleep state never pays off.
    #[must_use]
    pub fn break_even(&self, state: SleepState) -> Option<SimDuration> {
        let p_sleep = self.sleep_power_mw(state);
        if p_sleep >= self.idle_mw {
            return None;
        }
        let t = (self.wake_energy_j(state)
            - p_sleep * 1e-3 * self.wake_latency(state).as_secs_f64())
            / ((self.idle_mw - p_sleep) * 1e-3);
        Some(SimDuration::from_secs_f64(t.max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> DpmCosts {
        DpmCosts::from_smartbadge(&SmartBadge::new())
    }

    #[test]
    fn powers_ordered() {
        let c = costs();
        assert!(c.active_mw > c.idle_mw);
        assert!(c.idle_mw > c.standby_mw);
        assert!(c.standby_mw > c.off_mw);
        assert_eq!(c.off_mw, 0.0);
    }

    #[test]
    fn wake_latencies_ordered() {
        let c = costs();
        assert!(c.wake_off > c.wake_standby);
        assert!(c.wake_standby > SimDuration::ZERO);
        assert_eq!(c.wake_latency(SleepState::Standby), c.wake_standby);
    }

    #[test]
    fn wake_energy_positive_and_ordered() {
        let c = costs();
        assert!(c.wake_energy_j(SleepState::Off) > c.wake_energy_j(SleepState::Standby));
        assert!(c.wake_energy_j(SleepState::Standby) > 0.0);
    }

    #[test]
    fn break_even_exists_and_deeper_is_longer() {
        let c = costs();
        let sby = c.break_even(SleepState::Standby).expect("standby pays off");
        let off = c.break_even(SleepState::Off).expect("off pays off");
        assert!(off > sby);
        // Sanity: break-even should be sub-second for this hardware —
        // sleeping is worthwhile for most inter-clip gaps.
        assert!(sby.as_secs_f64() < 1.0, "standby break-even {sby}");
    }

    #[test]
    fn break_even_none_when_sleep_is_not_cheaper() {
        let mut c = costs();
        c.standby_mw = c.idle_mw + 1.0;
        assert_eq!(c.break_even(SleepState::Standby), None);
    }

    #[test]
    fn managed_subsystem_excludes_display_and_wlan() {
        let badge = SmartBadge::new();
        let full = DpmCosts::from_smartbadge(&badge);
        let managed = DpmCosts::managed_subsystem(&badge);
        // CPU 400 + FLASH 75 + SRAM 115 + DRAM 400 = 990 mW active.
        assert!((managed.active_mw - 990.0).abs() < 1e-9);
        assert!((managed.idle_mw - 202.0).abs() < 1e-9);
        assert!(managed.active_mw < full.active_mw - 2000.0);
        // Wake-up dominated by the CPU, not the display.
        assert_eq!(managed.wake_standby, SimDuration::from_millis(10));
        assert_eq!(managed.wake_off, SimDuration::from_millis(35));
    }

    #[test]
    fn managed_subsystem_break_even_is_tens_of_milliseconds() {
        let managed = DpmCosts::managed_subsystem(&SmartBadge::new());
        let be = managed
            .break_even(SleepState::Standby)
            .unwrap()
            .as_secs_f64();
        assert!(
            (0.01..0.2).contains(&be),
            "subsystem break-even {be}s should be tens of ms"
        );
    }
}
