//! Predictive shutdown (the second deterministic baseline family).
//!
//! Predicts the length of the upcoming idle period as an exponential
//! moving average of past idle periods; if the prediction exceeds the
//! break-even time of the target sleep state, the device sleeps
//! immediately at idle entry, otherwise it waits out a guard timeout
//! before sleeping (so badly under-predicted long idles are not lost
//! entirely).

use crate::costs::DpmCosts;
use crate::policy::{DpmPolicy, IdlePlan, SleepState};
use crate::DpmError;
use simcore::rng::SimRng;
use simcore::time::SimDuration;

/// Exponential-average idle-length prediction with immediate shutdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictiveShutdown {
    predicted_secs: f64,
    gain: f64,
    break_even: SimDuration,
    guard: SimDuration,
    state: SleepState,
}

impl PredictiveShutdown {
    /// Creates the policy. The initial prediction starts at the
    /// break-even time (neutral); `gain` is the EMA weight of the newest
    /// observation; the guard timeout is 3× break-even.
    ///
    /// # Errors
    ///
    /// Returns an error if the gain is outside `(0, 1]` or the sleep
    /// state never pays off for these costs.
    pub fn new(costs: &DpmCosts, state: SleepState, gain: f64) -> Result<Self, DpmError> {
        if !(gain.is_finite() && gain > 0.0 && gain <= 1.0) {
            return Err(DpmError::InvalidParameter {
                name: "gain",
                value: gain,
            });
        }
        let break_even = costs.break_even(state).ok_or(DpmError::InvalidParameter {
            name: "costs (sleep state never pays off)",
            value: costs.sleep_power_mw(state),
        })?;
        Ok(PredictiveShutdown {
            predicted_secs: break_even.as_secs_f64(),
            gain,
            break_even,
            guard: SimDuration::from_secs_f64(break_even.as_secs_f64() * 3.0),
            state,
        })
    }

    /// The current idle-length prediction, seconds.
    #[must_use]
    pub fn predicted_secs(&self) -> f64 {
        self.predicted_secs
    }
}

impl DpmPolicy for PredictiveShutdown {
    fn plan_idle(&mut self, _rng: &mut SimRng) -> IdlePlan {
        if self.predicted_secs >= self.break_even.as_secs_f64() {
            // Predicted long enough: sleep right away.
            IdlePlan::single(SimDuration::ZERO, self.state)
        } else {
            // Predicted short: hedge with a guard timeout.
            IdlePlan::single(self.guard, self.state)
        }
    }

    fn on_idle_end(&mut self, idle_len: SimDuration, _deepest: Option<SleepState>) {
        self.predicted_secs =
            (1.0 - self.gain) * self.predicted_secs + self.gain * idle_len.as_secs_f64();
    }

    fn name(&self) -> &'static str {
        "predictive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardware::SmartBadge;

    fn costs() -> DpmCosts {
        DpmCosts::from_smartbadge(&SmartBadge::new())
    }

    #[test]
    fn long_history_predicts_immediate_sleep() {
        let mut p = PredictiveShutdown::new(&costs(), SleepState::Standby, 0.3).unwrap();
        for _ in 0..10 {
            p.on_idle_end(SimDuration::from_secs(60), Some(SleepState::Standby));
        }
        let plan = p.plan_idle(&mut SimRng::seed_from(0));
        assert_eq!(plan.transitions[0].0, SimDuration::ZERO);
    }

    #[test]
    fn short_history_waits_for_guard() {
        let mut p = PredictiveShutdown::new(&costs(), SleepState::Standby, 0.5).unwrap();
        for _ in 0..10 {
            p.on_idle_end(SimDuration::from_millis(10), None);
        }
        assert!(
            p.predicted_secs()
                < costs()
                    .break_even(SleepState::Standby)
                    .unwrap()
                    .as_secs_f64()
        );
        let plan = p.plan_idle(&mut SimRng::seed_from(0));
        assert!(plan.transitions[0].0 > SimDuration::ZERO);
    }

    #[test]
    fn prediction_tracks_history() {
        let mut p = PredictiveShutdown::new(&costs(), SleepState::Standby, 1.0).unwrap();
        p.on_idle_end(SimDuration::from_secs(5), None);
        assert!(
            (p.predicted_secs() - 5.0).abs() < 1e-9,
            "gain 1.0 copies the last idle"
        );
    }

    #[test]
    fn validates_gain() {
        let c = costs();
        assert!(PredictiveShutdown::new(&c, SleepState::Standby, 0.0).is_err());
        assert!(PredictiveShutdown::new(&c, SleepState::Standby, 1.5).is_err());
        assert!(PredictiveShutdown::new(&c, SleepState::Standby, f64::NAN).is_err());
    }

    #[test]
    fn name_is_stable() {
        let p = PredictiveShutdown::new(&costs(), SleepState::Off, 0.3).unwrap();
        assert_eq!(p.name(), "predictive");
    }
}
