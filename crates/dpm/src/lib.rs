#![warn(missing_docs)]
//! Dynamic power management policies.
//!
//! While DVS saves energy during the *active* state, DPM saves it during
//! *idle* periods by moving components into standby or off (paper
//! Sections 1 and 3). This crate provides the policy families the paper
//! discusses:
//!
//! * [`timeout`] — deterministic fixed and adaptive timeouts (the classic
//!   baselines),
//! * [`predictive`] — exponential-average idle-length prediction with
//!   immediate shutdown when the prediction exceeds break-even,
//! * [`renewal`] — the renewal-theory stochastic policy of the authors'
//!   earlier work \[2\]: a (possibly randomized) optimal timeout computed
//!   from the idle-length distribution under a performance constraint,
//! * [`tismdp`] — the Time-Indexed Semi-Markov Decision Process model
//!   \[3\]: backward induction over time-indexed idle states that may
//!   command standby **or** off from any index, exploiting
//!   non-exponential (heavy-tailed) idle-time distributions,
//! * [`policy`] — the common [`DpmPolicy`] trait and the [`NoSleep`]
//!   baseline,
//! * [`costs`] — the device-level power/latency numbers policies
//!   optimize against, derived from the [`hardware`] crate,
//! * [`idle`] — idle-period distribution models and fitting.
//!
//! # Example
//!
//! ```
//! use dpm::costs::DpmCosts;
//! use dpm::policy::DpmPolicy;
//! use dpm::tismdp::{TismdpConfig, TismdpPolicy};
//! use hardware::SmartBadge;
//! use simcore::dist::Pareto;
//! use simcore::rng::SimRng;
//!
//! # fn main() -> Result<(), dpm::DpmError> {
//! let costs = DpmCosts::from_smartbadge(&SmartBadge::new());
//! let idle_model = Pareto::new(2.0, 1.5).map_err(|_| dpm::DpmError::Empty { name: "x" })?;
//! let mut policy = TismdpPolicy::solve(&costs, &idle_model, TismdpConfig::default())?;
//! let plan = policy.plan_idle(&mut SimRng::seed_from(1));
//! // Heavy-tailed idle times: the policy eventually commands a sleep state.
//! assert!(!plan.transitions.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod costs;
pub mod idle;
pub mod policy;
pub mod predictive;
pub mod renewal;
pub mod timeout;
pub mod tismdp;

pub use costs::DpmCosts;
pub use policy::{DpmPolicy, IdlePlan, NoSleep, SleepState};

use std::error::Error;
use std::fmt;

/// Errors from DPM policy construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum DpmError {
    /// A numeric parameter was out of its legal domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A required collection was empty.
    Empty {
        /// Name of the offending argument.
        name: &'static str,
    },
    /// The optimizer could not satisfy the performance constraint.
    Infeasible {
        /// The requested constraint value.
        constraint: f64,
    },
}

impl fmt::Display for DpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpmError::InvalidParameter { name, value } => {
                write!(f, "invalid DPM parameter `{name}` = {value}")
            }
            DpmError::Empty { name } => write!(f, "`{name}` must not be empty"),
            DpmError::Infeasible { constraint } => {
                write!(f, "performance constraint {constraint} cannot be met")
            }
        }
    }
}

impl Error for DpmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DpmError>();
        assert!(DpmError::Infeasible { constraint: 0.01 }
            .to_string()
            .contains("0.01"));
    }
}
