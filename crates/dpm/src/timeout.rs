//! Deterministic timeout policies (the classic DPM baselines).
//!
//! The simplest deterministic scheme sleeps after a fixed timeout; its
//! adaptive cousin grows the timeout after a wasted shutdown (the idle
//! period ended during or right after the transition) and shrinks it
//! after a missed opportunity, in the style of the adaptive schemes the
//! paper classifies as "deterministic" DPM.

use crate::costs::DpmCosts;
use crate::policy::{DpmPolicy, IdlePlan, SleepState};
use crate::DpmError;
use simcore::rng::SimRng;
use simcore::time::SimDuration;

/// Sleep to a fixed state after a fixed timeout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedTimeout {
    timeout: SimDuration,
    state: SleepState,
}

impl FixedTimeout {
    /// Creates the policy.
    ///
    /// # Errors
    ///
    /// Returns an error if `timeout` is zero (sleep-on-entry is spelled
    /// explicitly through [`FixedTimeout::immediate`] to avoid
    /// accidents).
    pub fn new(timeout: SimDuration, state: SleepState) -> Result<Self, DpmError> {
        if timeout.is_zero() {
            return Err(DpmError::InvalidParameter {
                name: "timeout",
                value: 0.0,
            });
        }
        Ok(FixedTimeout { timeout, state })
    }

    /// Sleep immediately on idle entry.
    #[must_use]
    pub fn immediate(state: SleepState) -> Self {
        FixedTimeout {
            timeout: SimDuration::ZERO,
            state,
        }
    }

    /// The break-even timeout for `state` given `costs` — the textbook
    /// "2-competitive" choice.
    ///
    /// # Errors
    ///
    /// Returns an error if the sleep state never pays off for these
    /// costs.
    pub fn break_even(costs: &DpmCosts, state: SleepState) -> Result<Self, DpmError> {
        let t = costs.break_even(state).ok_or(DpmError::InvalidParameter {
            name: "costs (sleep state never pays off)",
            value: costs.sleep_power_mw(state),
        })?;
        if t.is_zero() {
            Ok(FixedTimeout::immediate(state))
        } else {
            FixedTimeout::new(t, state)
        }
    }

    /// The timeout value.
    #[must_use]
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }
}

impl DpmPolicy for FixedTimeout {
    fn plan_idle(&mut self, _rng: &mut SimRng) -> IdlePlan {
        IdlePlan::single(self.timeout, self.state)
    }

    fn name(&self) -> &'static str {
        "fixed-timeout"
    }
}

/// Adaptive timeout: multiplicative increase after a shutdown that did
/// not pay off, multiplicative decrease after an idle period long enough
/// that sleeping earlier would have saved more.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveTimeout {
    timeout: SimDuration,
    min: SimDuration,
    max: SimDuration,
    state: SleepState,
    break_even: SimDuration,
}

impl AdaptiveTimeout {
    /// Creates the policy with the timeout starting (and clamped) in
    /// `[min, max]`, adapting around the break-even time of `state`.
    ///
    /// # Errors
    ///
    /// Returns an error if `min` is zero, `min > max`, or the sleep state
    /// never pays off.
    pub fn new(
        costs: &DpmCosts,
        state: SleepState,
        min: SimDuration,
        max: SimDuration,
    ) -> Result<Self, DpmError> {
        if min.is_zero() || min > max {
            return Err(DpmError::InvalidParameter {
                name: "min/max",
                value: min.as_secs_f64(),
            });
        }
        let break_even = costs.break_even(state).ok_or(DpmError::InvalidParameter {
            name: "costs (sleep state never pays off)",
            value: costs.sleep_power_mw(state),
        })?;
        Ok(AdaptiveTimeout {
            timeout: break_even.max(min).min(max),
            min,
            max,
            state,
            break_even,
        })
    }

    /// The current (adapted) timeout.
    #[must_use]
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }
}

impl DpmPolicy for AdaptiveTimeout {
    fn plan_idle(&mut self, _rng: &mut SimRng) -> IdlePlan {
        IdlePlan::single(self.timeout, self.state)
    }

    fn on_idle_end(&mut self, idle_len: SimDuration, deepest: Option<SleepState>) {
        let slept = deepest.is_some();
        let new_secs = if slept && idle_len < self.timeout.saturating_add(self.break_even) {
            // The shutdown barely (or never) paid off: back off.
            self.timeout.as_secs_f64() * 2.0
        } else if idle_len > self.timeout * 2 {
            // Plenty of sleepable time was wasted waiting: be bolder.
            self.timeout.as_secs_f64() / 1.5
        } else {
            return;
        };
        self.timeout = SimDuration::from_secs_f64(
            new_secs.clamp(self.min.as_secs_f64(), self.max.as_secs_f64()),
        );
    }

    fn name(&self) -> &'static str {
        "adaptive-timeout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardware::SmartBadge;

    fn costs() -> DpmCosts {
        DpmCosts::from_smartbadge(&SmartBadge::new())
    }

    #[test]
    fn fixed_timeout_plans_single_transition() {
        let mut p = FixedTimeout::new(SimDuration::from_secs(2), SleepState::Standby).unwrap();
        let plan = p.plan_idle(&mut SimRng::seed_from(0));
        assert_eq!(
            plan.transitions,
            vec![(SimDuration::from_secs(2), SleepState::Standby)]
        );
        assert!(plan.is_well_formed());
    }

    #[test]
    fn immediate_sleeps_at_zero() {
        let mut p = FixedTimeout::immediate(SleepState::Off);
        let plan = p.plan_idle(&mut SimRng::seed_from(0));
        assert_eq!(plan.transitions[0].0, SimDuration::ZERO);
    }

    #[test]
    fn break_even_constructor_uses_costs() {
        let p = FixedTimeout::break_even(&costs(), SleepState::Standby).unwrap();
        assert_eq!(
            p.timeout(),
            costs().break_even(SleepState::Standby).unwrap()
        );
    }

    #[test]
    fn fixed_rejects_zero_timeout() {
        assert!(FixedTimeout::new(SimDuration::ZERO, SleepState::Standby).is_err());
    }

    #[test]
    fn adaptive_backs_off_after_wasted_shutdown() {
        let mut p = AdaptiveTimeout::new(
            &costs(),
            SleepState::Standby,
            SimDuration::from_millis(100),
            SimDuration::from_secs(60),
        )
        .unwrap();
        let before = p.timeout();
        // Idle ended just past the timeout: the sleep barely happened.
        p.on_idle_end(
            before + SimDuration::from_millis(1),
            Some(SleepState::Standby),
        );
        assert!(p.timeout() > before);
    }

    #[test]
    fn adaptive_leans_in_after_long_idle() {
        let mut p = AdaptiveTimeout::new(
            &costs(),
            SleepState::Standby,
            SimDuration::from_millis(100),
            SimDuration::from_secs(60),
        )
        .unwrap();
        let before = p.timeout();
        p.on_idle_end(before * 10, Some(SleepState::Standby));
        assert!(p.timeout() < before);
    }

    #[test]
    fn adaptive_respects_bounds() {
        let min = SimDuration::from_millis(200);
        let max = SimDuration::from_millis(400);
        let mut p = AdaptiveTimeout::new(&costs(), SleepState::Standby, min, max).unwrap();
        for _ in 0..20 {
            let t = p.timeout();
            p.on_idle_end(t + SimDuration::from_millis(1), Some(SleepState::Standby));
        }
        assert!(p.timeout() <= max);
        for _ in 0..20 {
            p.on_idle_end(SimDuration::from_secs(1000), Some(SleepState::Standby));
        }
        assert!(p.timeout() >= min);
    }

    #[test]
    fn adaptive_validates() {
        let c = costs();
        assert!(AdaptiveTimeout::new(
            &c,
            SleepState::Standby,
            SimDuration::ZERO,
            SimDuration::from_secs(1)
        )
        .is_err());
        assert!(AdaptiveTimeout::new(
            &c,
            SleepState::Standby,
            SimDuration::from_secs(2),
            SimDuration::from_secs(1)
        )
        .is_err());
    }
}
