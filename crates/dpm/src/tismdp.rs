//! Time-Indexed Semi-Markov Decision Process policy (the authors' model \[3\]).
//!
//! The TISMDP model expands the idle state with a **time index** — how
//! long the current idle period has already lasted (paper Figure 7) —
//! because for non-exponential idle distributions the elapsed time
//! changes the distribution of the remaining idle time. Unlike the
//! renewal model, a transition decision "can be made from any number of
//! states": at every time-indexed decision epoch the policy may stay,
//! enter standby, or enter off, and may later *deepen* standby → off.
//!
//! We solve the model by backward induction over the time buckets: for
//! bucket `i` and mode `m ∈ {idle, standby, off}` the optimal cost-to-go
//! is
//!
//! ```text
//! J_i(m) = min_{m' ⊒ m}  P_{m'} · E[min(L, t_{i+1}) − t_i | L > t_i]
//!          + p_i · (E_wake(m') + η · t_wake(m'))
//!          + (1 − p_i) · J_{i+1}(m')
//! ```
//!
//! where `p_i = P(L ≤ t_{i+1} | L > t_i)` comes from the (general) idle
//! distribution and `η` is the Lagrangian weight that trades performance
//! (wake-up delay) against energy — sweeping `η` traces the
//! energy/performance Pareto curve the stochastic-DPM papers report.

use crate::costs::DpmCosts;
use crate::policy::{DpmPolicy, IdlePlan, SleepState};
use crate::renewal::survival_integral;
use crate::DpmError;
use simcore::dist::Continuous;
use simcore::rng::SimRng;
use simcore::time::SimDuration;

/// The three modes a time-indexed state can be in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Mode {
    Idle,
    Standby,
    Off,
}

impl Mode {
    const ALL: [Mode; 3] = [Mode::Idle, Mode::Standby, Mode::Off];

    fn successors(self) -> &'static [Mode] {
        match self {
            Mode::Idle => &[Mode::Idle, Mode::Standby, Mode::Off],
            Mode::Standby => &[Mode::Standby, Mode::Off],
            Mode::Off => &[Mode::Off],
        }
    }

    fn index(self) -> usize {
        match self {
            Mode::Idle => 0,
            Mode::Standby => 1,
            Mode::Off => 2,
        }
    }
}

/// TISMDP solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TismdpConfig {
    /// Number of time buckets indexing the idle state.
    pub buckets: usize,
    /// First bucket edge, seconds (edges are log-spaced up to `horizon`).
    pub first_edge: f64,
    /// Last bucket edge, seconds; the terminal bucket integrates the
    /// residual tail beyond it.
    pub horizon: f64,
    /// Lagrangian weight on wake-up delay, joules per second of delay.
    /// `0` optimizes energy only; larger values buy responsiveness.
    pub delay_weight: f64,
    /// Trapezoid steps per bucket integral.
    pub steps: usize,
}

impl Default for TismdpConfig {
    fn default() -> Self {
        TismdpConfig {
            buckets: 48,
            first_edge: 0.02,
            horizon: 600.0,
            delay_weight: 2.0,
            steps: 64,
        }
    }
}

/// The solved time-indexed policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TismdpPolicy {
    /// Bucket edges `t_0 = 0 < t_1 < … < t_n`.
    edges: Vec<f64>,
    /// `choice[i][mode] = mode'` chosen at the start of bucket `i`.
    choice: Vec<[Mode; 3]>,
    /// Optimal expected cost from idle entry (energy + weighted delay).
    expected_cost: f64,
    plan: IdlePlan,
}

impl TismdpPolicy {
    /// Solves the TISMDP for the given costs and idle-length
    /// distribution.
    ///
    /// # Errors
    ///
    /// Returns an error for degenerate configurations.
    pub fn solve<D: Continuous + ?Sized>(
        costs: &DpmCosts,
        idle_dist: &D,
        config: TismdpConfig,
    ) -> Result<Self, DpmError> {
        if config.buckets < 2 {
            return Err(DpmError::InvalidParameter {
                name: "buckets",
                value: config.buckets as f64,
            });
        }
        if !(config.first_edge > 0.0 && config.horizon > config.first_edge) {
            return Err(DpmError::InvalidParameter {
                name: "first_edge/horizon",
                value: config.first_edge,
            });
        }
        if !(config.delay_weight.is_finite() && config.delay_weight >= 0.0) {
            return Err(DpmError::InvalidParameter {
                name: "delay_weight",
                value: config.delay_weight,
            });
        }
        if config.steps == 0 {
            return Err(DpmError::InvalidParameter {
                name: "steps",
                value: 0.0,
            });
        }

        // Edges: 0, then log-spaced from first_edge to horizon.
        let n = config.buckets;
        let ratio = (config.horizon / config.first_edge).powf(1.0 / (n - 1) as f64);
        let mut edges = Vec::with_capacity(n + 1);
        edges.push(0.0);
        for i in 0..n {
            edges.push(config.first_edge * ratio.powi(i as i32));
        }

        let power_w = |m: Mode| match m {
            Mode::Idle => costs.idle_mw * 1e-3,
            Mode::Standby => costs.standby_mw * 1e-3,
            Mode::Off => costs.off_mw * 1e-3,
        };
        let wake_cost = |m: Mode| match m {
            Mode::Idle => 0.0,
            Mode::Standby => {
                costs.wake_energy_j(SleepState::Standby)
                    + config.delay_weight * costs.wake_standby.as_secs_f64()
            }
            Mode::Off => {
                costs.wake_energy_j(SleepState::Off)
                    + config.delay_weight * costs.wake_off.as_secs_f64()
            }
        };

        // Terminal: expected residual beyond the horizon (truncated at 4x).
        let t_n = *edges.last().expect("edges non-empty");
        let s_n = (1.0 - idle_dist.cdf(t_n)).max(1e-300);
        let residual = survival_integral(idle_dist, t_n, 4.0 * t_n, config.steps * 8) / s_n;
        let mut next: [f64; 3] = [0.0; 3];
        for m in Mode::ALL {
            next[m.index()] = power_w(m) * residual + wake_cost(m);
        }

        let mut choice = vec![[Mode::Idle; 3]; n];
        // Backward induction over buckets n−1 .. 0.
        for i in (0..n).rev() {
            let (t_i, t_j) = (edges[i], edges[i + 1]);
            let s_i = (1.0 - idle_dist.cdf(t_i)).max(1e-300);
            let s_j = 1.0 - idle_dist.cdf(t_j);
            let p_end = (1.0 - s_j / s_i).clamp(0.0, 1.0);
            let expected_time = survival_integral(idle_dist, t_i, t_j, config.steps) / s_i;

            let mut current = [0.0f64; 3];
            for m in Mode::ALL {
                let mut best = f64::INFINITY;
                let mut best_mode = m;
                for &m2 in m.successors() {
                    let cost = power_w(m2) * expected_time
                        + p_end * wake_cost(m2)
                        + (1.0 - p_end) * next[m2.index()];
                    if cost < best {
                        best = cost;
                        best_mode = m2;
                    }
                }
                current[m.index()] = best;
                choice[i][m.index()] = best_mode;
            }
            next = current;
        }

        let expected_cost = next[Mode::Idle.index()];
        let plan = Self::extract_plan(&edges, &choice);
        Ok(TismdpPolicy {
            edges,
            choice,
            expected_cost,
            plan,
        })
    }

    fn extract_plan(edges: &[f64], choice: &[[Mode; 3]]) -> IdlePlan {
        let mut transitions = Vec::new();
        let mut mode = Mode::Idle;
        for (i, row) in choice.iter().enumerate() {
            let next_mode = row[mode.index()];
            if next_mode > mode {
                let state = match next_mode {
                    Mode::Standby => SleepState::Standby,
                    Mode::Off => SleepState::Off,
                    Mode::Idle => unreachable!("deepening only"),
                };
                transitions.push((SimDuration::from_secs_f64(edges[i]), state));
            }
            mode = next_mode;
        }
        IdlePlan { transitions }
    }

    /// The optimal expected cost per idle period
    /// (joules + delay_weight · delay-seconds).
    #[must_use]
    pub fn expected_cost(&self) -> f64 {
        self.expected_cost
    }

    /// The time-indexed plan the policy follows each idle period.
    #[must_use]
    pub fn plan(&self) -> &IdlePlan {
        &self.plan
    }

    /// Bucket edges used by the solver (seconds from idle entry).
    #[must_use]
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// `true` if the policy never commands any sleep state.
    #[must_use]
    pub fn never_sleeps(&self) -> bool {
        self.plan.transitions.is_empty()
    }

    /// The time (seconds from idle entry) at which the policy first
    /// commands `state`, if it ever does.
    #[must_use]
    pub fn first_command(&self, state: SleepState) -> Option<f64> {
        self.plan
            .transitions
            .iter()
            .find(|&&(_, s)| s == state)
            .map(|&(t, _)| t.as_secs_f64())
    }

    /// Internal invariant check used by tests: once a mode is left it is
    /// never re-entered (the time-indexed policy is monotone).
    #[must_use]
    pub fn is_monotone(&self) -> bool {
        self.plan.is_well_formed()
    }

    #[cfg(test)]
    fn chosen_mode_path(&self) -> Vec<usize> {
        let mut mode = Mode::Idle;
        let mut path = Vec::new();
        for row in &self.choice {
            mode = row[mode.index()];
            path.push(mode.index());
        }
        path
    }
}

impl DpmPolicy for TismdpPolicy {
    fn plan_idle(&mut self, _rng: &mut SimRng) -> IdlePlan {
        self.plan.clone()
    }

    fn name(&self) -> &'static str {
        "tismdp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardware::SmartBadge;
    use simcore::dist::{Exponential, Pareto};

    fn costs() -> DpmCosts {
        DpmCosts::from_smartbadge(&SmartBadge::new())
    }

    fn heavy_tail() -> Pareto {
        Pareto::new(2.0, 1.5).unwrap()
    }

    #[test]
    fn policy_is_monotone_and_well_formed() {
        let p = TismdpPolicy::solve(&costs(), &heavy_tail(), TismdpConfig::default()).unwrap();
        assert!(p.is_monotone());
        let path = p.chosen_mode_path();
        assert!(path.windows(2).all(|w| w[1] >= w[0]), "mode path {path:?}");
    }

    #[test]
    fn heavy_tail_policy_sleeps_and_eventually_powers_off() {
        let p = TismdpPolicy::solve(&costs(), &heavy_tail(), TismdpConfig::default()).unwrap();
        assert!(!p.never_sleeps());
        let sby = p.first_command(SleepState::Standby);
        let off = p.first_command(SleepState::Off);
        assert!(
            sby.is_some() || off.is_some(),
            "some sleep state must be commanded"
        );
        if let (Some(s), Some(o)) = (sby, off) {
            assert!(o > s, "off ({o}) should come after standby ({s})");
        }
    }

    #[test]
    fn beats_never_sleeping_on_heavy_tails() {
        let c = costs();
        let d = heavy_tail();
        let cfg = TismdpConfig {
            delay_weight: 0.0,
            ..TismdpConfig::default()
        };
        let p = TismdpPolicy::solve(&c, &d, cfg).unwrap();
        // Never-sleep cost: idle power for the (truncated) expected length.
        let never = c.idle_mw * 1e-3 * survival_integral(&d, 0.0, 600.0, 4000);
        assert!(
            p.expected_cost() < 0.7 * never,
            "tismdp {} vs never {never}",
            p.expected_cost()
        );
    }

    #[test]
    fn larger_delay_weight_postpones_sleep() {
        let c = costs();
        let d = heavy_tail();
        let eager = TismdpPolicy::solve(
            &c,
            &d,
            TismdpConfig {
                delay_weight: 0.0,
                ..TismdpConfig::default()
            },
        )
        .unwrap();
        let cautious = TismdpPolicy::solve(
            &c,
            &d,
            TismdpConfig {
                delay_weight: 50.0,
                ..TismdpConfig::default()
            },
        )
        .unwrap();
        let t_eager = eager
            .plan()
            .transitions
            .first()
            .map(|&(t, _)| t.as_secs_f64())
            .unwrap_or(f64::INFINITY);
        let t_cautious = cautious
            .plan()
            .transitions
            .first()
            .map(|&(t, _)| t.as_secs_f64())
            .unwrap_or(f64::INFINITY);
        assert!(
            t_cautious >= t_eager,
            "cautious ({t_cautious}) should sleep no earlier than eager ({t_eager})"
        );
    }

    #[test]
    fn huge_wake_cost_disables_sleeping() {
        let mut c = costs();
        c.wake_standby = SimDuration::from_secs(30);
        c.wake_off = SimDuration::from_secs(60);
        // Exponential with short mean: idle periods ~100 ms.
        let d = Exponential::new(10.0).unwrap();
        let p = TismdpPolicy::solve(&c, &d, TismdpConfig::default()).unwrap();
        assert!(p.never_sleeps(), "plan: {:?}", p.plan());
    }

    #[test]
    fn exponential_idle_gives_time_invariant_decision() {
        // With a memoryless distribution the optimal action cannot depend
        // on the time index: once sleeping is optimal it is optimal
        // immediately; the mode path jumps at the first bucket or never.
        let c = costs();
        let d = Exponential::new(0.2).unwrap(); // mean 5 s idle
        let p = TismdpPolicy::solve(
            &c,
            &d,
            TismdpConfig {
                delay_weight: 0.0,
                ..TismdpConfig::default()
            },
        )
        .unwrap();
        if let Some((t, _)) = p.plan().transitions.first() {
            assert!(
                t.as_secs_f64() <= p.edges()[1] + 1e-9,
                "memoryless ⇒ sleep immediately, got {t}"
            );
        }
    }

    #[test]
    fn validates_config() {
        let c = costs();
        let d = heavy_tail();
        for bad in [
            TismdpConfig {
                buckets: 1,
                ..TismdpConfig::default()
            },
            TismdpConfig {
                first_edge: 0.0,
                ..TismdpConfig::default()
            },
            TismdpConfig {
                horizon: 0.01,
                ..TismdpConfig::default()
            },
            TismdpConfig {
                delay_weight: -1.0,
                ..TismdpConfig::default()
            },
            TismdpConfig {
                steps: 0,
                ..TismdpConfig::default()
            },
        ] {
            assert!(TismdpPolicy::solve(&c, &d, bad).is_err());
        }
    }

    #[test]
    fn plan_idle_returns_the_solved_plan() {
        let mut p = TismdpPolicy::solve(&costs(), &heavy_tail(), TismdpConfig::default()).unwrap();
        let plan = p.plan_idle(&mut SimRng::seed_from(0));
        assert_eq!(&plan, p.plan());
        assert_eq!(p.name(), "tismdp");
    }
}
