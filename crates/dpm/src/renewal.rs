//! Renewal-theory DPM policy (the authors' model \[2\]).
//!
//! The renewal model treats each idle period as a renewal cycle and picks
//! the sleep timeout `τ` that minimizes the expected energy per cycle
//!
//! ```text
//! E[J(τ)] = P_idle · E[min(L, τ)] + P_sleep · E[(L − τ)⁺] + P(L > τ) · E_wake
//! ```
//!
//! subject to a performance constraint on the expected wake-up delay per
//! cycle, `P(L > τ) · t_wake ≤ D`. Here `L` is the idle-period length,
//! whose distribution is general (typically heavy-tailed — see
//! [`crate::idle`]).
//!
//! The delay decreases and is monotone in `τ`, so the feasible region is
//! `τ ≥ τ_min`; when the unconstrained minimizer is infeasible the
//! optimal policy sits exactly on the constraint, and because `τ` lives
//! on a grid the policy **randomizes between the two bracketing grid
//! points** — the classic structure of constrained-optimal stochastic
//! policies that the paper's references obtain via linear programming.

use crate::costs::DpmCosts;
use crate::policy::{DpmPolicy, IdlePlan, SleepState};
use crate::DpmError;
use simcore::dist::Continuous;
use simcore::rng::SimRng;
use simcore::time::SimDuration;

/// Numerically integrates the survival function `S(t) = 1 − F(t)` of
/// `dist` over `[a, b]`.
///
/// Uses the substitution `t = a + (b − a)·u³` (a graded mesh clustered
/// near `a`, where survival functions change fastest) with the trapezoid
/// rule in `u`. The grading is what keeps the integral accurate for
/// spiky distributions — e.g. millisecond-scale idle periods integrated
/// over a multi-minute horizon — where a uniform mesh would overshoot by
/// orders of magnitude.
///
/// # Panics
///
/// Panics if `a > b`, either bound is negative, or `steps == 0`.
#[must_use]
pub fn survival_integral<D: Continuous + ?Sized>(dist: &D, a: f64, b: f64, steps: usize) -> f64 {
    assert!(a >= 0.0 && b >= a, "invalid integration bounds [{a}, {b}]");
    assert!(steps > 0, "steps must be positive");
    if a == b {
        return 0.0;
    }
    let span = b - a;
    // ∫_a^b S(t) dt = ∫_0^1 S(a + span·u³) · 3u²·span du
    let h = 1.0 / steps as f64;
    let integrand = |u: f64| {
        let t = a + span * u * u * u;
        3.0 * u * u * span * (1.0 - dist.cdf(t))
    };
    let mut acc = 0.5 * (integrand(0.0) + integrand(1.0));
    for i in 1..steps {
        acc += integrand(h * i as f64);
    }
    acc * h
}

/// Configuration of the renewal optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenewalConfig {
    /// Number of candidate timeouts on the (log-spaced) grid.
    pub grid: usize,
    /// Shortest candidate timeout, seconds.
    pub tau_min: f64,
    /// Integration horizon as a multiple of the distribution's mean (the
    /// tail beyond it is truncated; heavy-tailed distributions with
    /// infinite mean fall back to `tau_max`).
    pub horizon_means: f64,
    /// Longest candidate timeout, seconds.
    pub tau_max: f64,
    /// Trapezoid steps per integral.
    pub steps: usize,
}

impl Default for RenewalConfig {
    fn default() -> Self {
        RenewalConfig {
            grid: 160,
            tau_min: 1e-3,
            horizon_means: 20.0,
            tau_max: 600.0,
            steps: 400,
        }
    }
}

/// The solved policy: a possibly randomized timeout into one sleep state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenewalPolicy {
    state: SleepState,
    tau_lo: f64,
    tau_hi: f64,
    /// Probability of using `tau_lo` on a given idle period.
    p_lo: f64,
    expected_energy_j: f64,
    expected_delay_s: f64,
}

impl RenewalPolicy {
    /// Solves for the optimal (possibly randomized) timeout into `state`
    /// for idle periods distributed as `dist`, with an expected per-cycle
    /// wake-delay budget of `delay_budget` seconds.
    ///
    /// # Errors
    ///
    /// Returns an error if the budget is negative/non-finite, the
    /// configuration is degenerate, or no timeout meets the budget (the
    /// budget is below the minimum achievable delay even when never
    /// sleeping — impossible here since `τ = ∞` gives zero delay, so
    /// infeasibility only occurs with a zero budget and mandatory sleep).
    pub fn solve<D: Continuous + ?Sized>(
        costs: &DpmCosts,
        dist: &D,
        state: SleepState,
        delay_budget: f64,
        config: RenewalConfig,
    ) -> Result<Self, DpmError> {
        if !(delay_budget.is_finite() && delay_budget >= 0.0) {
            return Err(DpmError::InvalidParameter {
                name: "delay_budget",
                value: delay_budget,
            });
        }
        if config.grid < 2 || config.tau_min <= 0.0 || config.tau_max <= config.tau_min {
            return Err(DpmError::InvalidParameter {
                name: "config",
                value: config.grid as f64,
            });
        }
        let mean = dist.mean();
        let horizon = if mean.is_finite() {
            f64::min(config.horizon_means * mean, config.tau_max)
        } else {
            config.tau_max
        }
        .max(config.tau_min * 4.0);

        // Log-spaced timeout grid, plus "never sleep" as τ = horizon-end
        // sentinel evaluated separately.
        let ratio = (horizon / config.tau_min).powf(1.0 / (config.grid - 1) as f64);
        let taus: Vec<f64> = (0..config.grid)
            .map(|i| f64::min(config.tau_min * ratio.powi(i as i32), horizon))
            .collect();

        let p_idle_w = costs.idle_mw * 1e-3;
        let p_sleep_w = costs.sleep_power_mw(state) * 1e-3;
        let t_wake = costs.wake_latency(state).as_secs_f64();
        let e_wake = costs.wake_energy_j(state);

        let evaluate = |tau: f64| -> (f64, f64) {
            let awake = survival_integral(dist, 0.0, tau, config.steps);
            let asleep = survival_integral(dist, tau, horizon, config.steps);
            let p_sleep_reached = 1.0 - dist.cdf(tau);
            let energy = p_idle_w * awake + p_sleep_w * asleep + p_sleep_reached * e_wake;
            let delay = p_sleep_reached * t_wake;
            (energy, delay)
        };

        let evals: Vec<(f64, f64)> = taus.iter().map(|&t| evaluate(t)).collect();
        // "Never sleep" option: energy = idle power over the full period.
        let never_energy = p_idle_w * survival_integral(dist, 0.0, horizon, config.steps);

        // Unconstrained energy minimizer over the grid.
        let (min_idx, min_eval) = evals
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite energies"))
            .expect("grid is non-empty");
        let (min_energy, min_delay) = *min_eval;

        if min_delay <= delay_budget + 1e-12 {
            // Unconstrained optimum is feasible: deterministic policy
            // (or never-sleep if idling is cheaper still).
            if min_energy <= never_energy {
                return Ok(RenewalPolicy {
                    state,
                    tau_lo: taus[min_idx],
                    tau_hi: taus[min_idx],
                    p_lo: 1.0,
                    expected_energy_j: min_energy,
                    expected_delay_s: min_delay,
                });
            }
            return Ok(Self::never(state, never_energy, horizon));
        }

        // The constraint binds. Delay is decreasing in τ, so the feasible
        // set is a suffix of the grid; the constrained-optimal randomized
        // policy mixes the last infeasible and first feasible grid points
        // so the *expected* delay sits exactly on the budget — the
        // randomized-timeout structure the LP formulations produce.
        let feasible_idx = evals.iter().position(|&(_, d)| d <= delay_budget + 1e-12);
        match feasible_idx {
            Some(j) if j > 0 => {
                let (e_hi, d_hi) = evals[j];
                let (e_lo, d_lo) = evals[j - 1];
                // Mix α on the aggressive (shorter-τ) point.
                let alpha = ((delay_budget - d_hi) / (d_lo - d_hi)).clamp(0.0, 1.0);
                let mixed_energy = alpha * e_lo + (1.0 - alpha) * e_hi;
                // Candidate deterministic fallback: the first feasible τ.
                let best = if mixed_energy <= e_hi {
                    (mixed_energy, true)
                } else {
                    (e_hi, false)
                };
                if best.0 < never_energy {
                    if best.1 && alpha > 0.0 {
                        Ok(RenewalPolicy {
                            state,
                            tau_lo: taus[j - 1],
                            tau_hi: taus[j],
                            p_lo: alpha,
                            expected_energy_j: mixed_energy,
                            expected_delay_s: delay_budget,
                        })
                    } else {
                        Ok(RenewalPolicy {
                            state,
                            tau_lo: taus[j],
                            tau_hi: taus[j],
                            p_lo: 1.0,
                            expected_energy_j: e_hi,
                            expected_delay_s: d_hi,
                        })
                    }
                } else {
                    Ok(Self::never(state, never_energy, horizon))
                }
            }
            _ => {
                // Nothing feasible (or only τ_0 is): stay idle — zero
                // delay, always feasible.
                Ok(Self::never(state, never_energy, horizon))
            }
        }
    }

    fn never(state: SleepState, energy: f64, horizon: f64) -> Self {
        RenewalPolicy {
            state,
            tau_lo: horizon,
            tau_hi: horizon,
            p_lo: 1.0,
            expected_energy_j: energy,
            expected_delay_s: 0.0,
        }
    }

    /// Expected energy per idle period under this policy, joules.
    #[must_use]
    pub fn expected_energy_j(&self) -> f64 {
        self.expected_energy_j
    }

    /// Expected wake-up delay per idle period, seconds.
    #[must_use]
    pub fn expected_delay_s(&self) -> f64 {
        self.expected_delay_s
    }

    /// The (lower, upper) timeout pair; equal when deterministic.
    #[must_use]
    pub fn timeouts(&self) -> (f64, f64) {
        (self.tau_lo, self.tau_hi)
    }

    /// Probability of using the lower timeout.
    #[must_use]
    pub fn randomization(&self) -> f64 {
        self.p_lo
    }
}

impl DpmPolicy for RenewalPolicy {
    fn plan_idle(&mut self, rng: &mut SimRng) -> IdlePlan {
        let tau = if rng.next_f64() < self.p_lo {
            self.tau_lo
        } else {
            self.tau_hi
        };
        IdlePlan::single(SimDuration::from_secs_f64(tau), self.state)
    }

    fn name(&self) -> &'static str {
        "renewal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardware::SmartBadge;
    use simcore::dist::{Exponential, Pareto};

    fn costs() -> DpmCosts {
        DpmCosts::from_smartbadge(&SmartBadge::new())
    }

    #[test]
    fn survival_integral_exponential_closed_form() {
        let d = Exponential::new(2.0).unwrap();
        // ∫₀^∞ e^{−2t} dt = 0.5
        let v = survival_integral(&d, 0.0, 20.0, 4000);
        assert!((v - 0.5).abs() < 1e-4, "{v}");
        // ∫₀^τ = (1 − e^{−2τ})/2
        let v = survival_integral(&d, 0.0, 1.0, 2000);
        assert!((v - (1.0 - (-2.0f64).exp()) / 2.0).abs() < 1e-5);
    }

    #[test]
    fn relaxed_budget_saves_energy_vs_idling() {
        let c = costs();
        let idle_dist = Pareto::new(2.0, 1.8).unwrap();
        let policy = RenewalPolicy::solve(
            &c,
            &idle_dist,
            SleepState::Standby,
            1.0,
            RenewalConfig::default(),
        )
        .unwrap();
        let never = c.idle_mw * 1e-3 * idle_dist.mean();
        assert!(
            policy.expected_energy_j() < 0.8 * never,
            "policy {} vs never-sleep {}",
            policy.expected_energy_j(),
            never
        );
    }

    #[test]
    fn tight_budget_increases_timeout_or_randomizes() {
        let c = costs();
        let idle_dist = Pareto::new(2.0, 1.8).unwrap();
        let loose = RenewalPolicy::solve(
            &c,
            &idle_dist,
            SleepState::Standby,
            1.0,
            RenewalConfig::default(),
        )
        .unwrap();
        let tight = RenewalPolicy::solve(
            &c,
            &idle_dist,
            SleepState::Standby,
            0.01,
            RenewalConfig::default(),
        )
        .unwrap();
        assert!(tight.expected_delay_s() <= 0.01 + 1e-9);
        assert!(tight.expected_energy_j() >= loose.expected_energy_j() - 1e-9);
        // The tight policy must sleep later (or not at all).
        assert!(tight.timeouts().1 >= loose.timeouts().1);
    }

    #[test]
    fn zero_budget_means_never_sleep() {
        let c = costs();
        let idle_dist = Pareto::new(2.0, 1.8).unwrap();
        let policy = RenewalPolicy::solve(
            &c,
            &idle_dist,
            SleepState::Standby,
            0.0,
            RenewalConfig::default(),
        )
        .unwrap();
        assert_eq!(policy.expected_delay_s(), 0.0);
        let mut p = policy;
        let plan = p.plan_idle(&mut SimRng::seed_from(1));
        // The "never" timeout is the horizon — effectively unreachable for
        // this distribution's realistic idle lengths.
        assert!(plan.transitions[0].0.as_secs_f64() >= 50.0);
    }

    #[test]
    fn randomized_policy_mixes_both_timeouts() {
        let c = costs();
        let idle_dist = Pareto::new(2.0, 1.8).unwrap();
        // Find a budget that lands strictly between two grid deltas by
        // scanning a few values.
        let mut found_mix = false;
        for budget in [0.02, 0.05, 0.08, 0.11] {
            let policy = RenewalPolicy::solve(
                &c,
                &idle_dist,
                SleepState::Off,
                budget,
                RenewalConfig::default(),
            )
            .unwrap();
            if policy.randomization() > 0.0 && policy.randomization() < 1.0 {
                found_mix = true;
                let mut p = policy;
                let mut rng = SimRng::seed_from(2);
                let (lo, hi) = p.timeouts();
                let mut saw_lo = false;
                let mut saw_hi = false;
                for _ in 0..500 {
                    let tau = p.plan_idle(&mut rng).transitions[0].0.as_secs_f64();
                    if (tau - lo).abs() < 1e-6 {
                        saw_lo = true;
                    }
                    if (tau - hi).abs() < 1e-6 {
                        saw_hi = true;
                    }
                }
                assert!(
                    saw_lo && saw_hi,
                    "randomization should use both grid points"
                );
                break;
            }
        }
        assert!(found_mix, "no budget produced a randomized policy");
    }

    #[test]
    fn deeper_state_with_short_idles_is_avoided() {
        let c = costs();
        // Idle periods of ~50 ms: far below off's break-even.
        let idle_dist = Exponential::new(20.0).unwrap();
        let policy = RenewalPolicy::solve(
            &c,
            &idle_dist,
            SleepState::Off,
            1.0,
            RenewalConfig::default(),
        )
        .unwrap();
        let never = c.idle_mw * 1e-3 * idle_dist.mean();
        // Best achievable should be (approximately) never-sleep.
        assert!(policy.expected_energy_j() <= never * 1.01);
        assert!(
            policy.timeouts().0 > 0.05,
            "should not sleep within typical idles"
        );
    }

    #[test]
    fn validates_input() {
        let c = costs();
        let d = Exponential::new(1.0).unwrap();
        assert!(
            RenewalPolicy::solve(&c, &d, SleepState::Standby, -1.0, RenewalConfig::default())
                .is_err()
        );
        let bad = RenewalConfig {
            grid: 1,
            ..RenewalConfig::default()
        };
        assert!(RenewalPolicy::solve(&c, &d, SleepState::Standby, 0.1, bad).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid integration bounds")]
    fn bad_integral_bounds_panic() {
        let d = Exponential::new(1.0).unwrap();
        let _ = survival_integral(&d, 2.0, 1.0, 10);
    }
}
