//! Cross-validation between the two stochastic DPM formulations.
//!
//! The renewal model and the TISMDP model answer the same question
//! ("when should an idle device sleep?") with different machinery; on
//! the single-sleep-state, energy-only setting they must agree. The
//! TISMDP's extra freedom (deepening into off, time-indexed decisions)
//! can only help.

use dpm::costs::DpmCosts;
use dpm::policy::SleepState;
use dpm::renewal::{RenewalConfig, RenewalPolicy};
use dpm::tismdp::{TismdpConfig, TismdpPolicy};
use hardware::SmartBadge;
use simcore::dist::{Continuous, Pareto};

fn costs() -> DpmCosts {
    DpmCosts::managed_subsystem(&SmartBadge::new())
}

/// Matching horizons so the truncated expectations are comparable.
const HORIZON: f64 = 600.0;

fn renewal_energy(costs: &DpmCosts, idle: &Pareto, state: SleepState) -> f64 {
    let config = RenewalConfig {
        horizon_means: 1e6, // force horizon = tau_max
        tau_max: HORIZON,
        ..RenewalConfig::default()
    };
    RenewalPolicy::solve(costs, idle, state, f64::MAX.sqrt(), config)
        .expect("solves")
        .expected_energy_j()
}

fn tismdp_cost(costs: &DpmCosts, idle: &Pareto, delay_weight: f64) -> f64 {
    let config = TismdpConfig {
        horizon: HORIZON,
        delay_weight,
        ..TismdpConfig::default()
    };
    TismdpPolicy::solve(costs, idle, config)
        .expect("solves")
        .expected_cost()
}

#[test]
fn tismdp_never_loses_to_renewal_on_energy() {
    let c = costs();
    for (scale, shape) in [(2.0, 1.5), (5.0, 1.3), (1.0, 2.5), (10.0, 1.8)] {
        let idle = Pareto::new(scale, shape).expect("valid");
        let renewal = renewal_energy(&c, &idle, SleepState::Standby);
        let tismdp = tismdp_cost(&c, &idle, 0.0);
        // TISMDP optimizes over a superset of policies (it may also use
        // off); discretization differences get a 5 % allowance.
        assert!(
            tismdp <= renewal * 1.05,
            "Pareto({scale},{shape}): tismdp {tismdp:.4} J vs renewal {renewal:.4} J"
        );
    }
}

#[test]
fn both_agree_sleeping_pays_for_long_idles() {
    let c = costs();
    let idle = Pareto::new(10.0, 1.5).expect("long idles: mean 30 s");
    let never = c.idle_mw * 1e-3 * dpm::renewal::survival_integral(&idle, 0.0, HORIZON, 4000);
    let renewal = renewal_energy(&c, &idle, SleepState::Standby);
    let tismdp = tismdp_cost(&c, &idle, 0.0);
    assert!(
        renewal < 0.2 * never,
        "renewal {renewal:.3} vs never {never:.3}"
    );
    assert!(
        tismdp < 0.2 * never,
        "tismdp {tismdp:.3} vs never {never:.3}"
    );
}

#[test]
fn both_agree_typical_tiny_idles_are_not_slept_through() {
    // Idle periods of a few ms: far below any break-even. A power-law
    // tail still leaves a sliver of genuine savings from sleeping during
    // the astronomically rare long idles, so the optimal energy can dip
    // a hair below never-sleep — but the chosen timeout must sit far
    // beyond any typical idle, and the energy must stay within a couple
    // of percent of the never-sleep cost.
    let c = costs();
    let idle = Pareto::new(0.001, 3.0).expect("tiny idles: mean 1.5 ms");
    let never = c.idle_mw * 1e-3 * dpm::renewal::survival_integral(&idle, 0.0, HORIZON, 4000);
    let config = RenewalConfig {
        horizon_means: 1e6,
        tau_max: HORIZON,
        ..RenewalConfig::default()
    };
    let policy =
        RenewalPolicy::solve(&c, &idle, SleepState::Off, f64::MAX.sqrt(), config).expect("solves");
    let (tau, _) = policy.timeouts();
    assert!(
        tau > 100.0 * idle.mean(),
        "timeout {tau:.4}s must dwarf the {:.4}s mean idle",
        idle.mean()
    );
    assert!(
        policy.expected_energy_j() >= never * 0.97,
        "renewal {} should be within 3% of never-sleep {never}",
        policy.expected_energy_j()
    );
    let tismdp = tismdp_cost(&c, &idle, 0.0);
    assert!(
        tismdp >= never * 0.90,
        "tismdp should be ≈ never-sleep: {tismdp} vs {never}"
    );
}
