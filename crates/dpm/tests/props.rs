//! Property-based tests for the DPM policy stack.

use dpm::costs::DpmCosts;
use dpm::idle::IdleMixture;
use dpm::policy::{DpmPolicy, SleepState};
use dpm::renewal::{survival_integral, RenewalConfig, RenewalPolicy};
use dpm::tismdp::{TismdpConfig, TismdpPolicy};
use hardware::SmartBadge;
use proptest::prelude::*;
use simcore::dist::{Continuous, Exponential, Pareto};
use simcore::rng::SimRng;
use simcore::time::SimDuration;

fn costs() -> DpmCosts {
    DpmCosts::managed_subsystem(&SmartBadge::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Survival integrals are additive over adjacent intervals and
    /// bounded by the interval length.
    #[test]
    fn survival_integral_additive(
        rate in 0.05f64..50.0,
        a in 0.0f64..5.0,
        d1 in 0.01f64..5.0,
        d2 in 0.01f64..5.0,
    ) {
        let dist = Exponential::new(rate).expect("valid");
        let b = a + d1;
        let c = b + d2;
        let whole = survival_integral(&dist, a, c, 2000);
        let parts = survival_integral(&dist, a, b, 1000) + survival_integral(&dist, b, c, 1000);
        prop_assert!((whole - parts).abs() < 1e-4 * (1.0 + whole));
        prop_assert!(whole <= (c - a) + 1e-12);
        prop_assert!(whole >= 0.0);
    }

    /// Renewal policies always respect their delay budget in expectation
    /// and never do worse than never-sleeping.
    #[test]
    fn renewal_respects_budget(
        scale in 0.5f64..10.0,
        shape in 1.1f64..3.0,
        budget in 0.0f64..0.2,
    ) {
        let idle = Pareto::new(scale, shape).expect("valid");
        let policy = RenewalPolicy::solve(
            &costs(),
            &idle,
            SleepState::Standby,
            budget,
            RenewalConfig::default(),
        )
        .expect("solves");
        prop_assert!(policy.expected_delay_s() <= budget + 1e-9);
        let never = costs().idle_mw * 1e-3
            * survival_integral(&idle, 0.0, f64::min(20.0 * idle.mean(), 600.0).max(0.004), 2000);
        prop_assert!(policy.expected_energy_j() <= never * 1.001);
    }

    /// TISMDP plans are always monotone (idle → standby → off) and the
    /// optimal cost never exceeds the stay-idle cost.
    #[test]
    fn tismdp_plans_monotone_and_no_worse_than_idle(
        short_weight in 0.5f64..0.99,
        short_rate in 5.0f64..100.0,
        long_scale in 0.5f64..20.0,
        long_shape in 1.1f64..3.0,
        delay_weight in 0.0f64..20.0,
    ) {
        let idle = IdleMixture::new(short_weight, short_rate, long_scale, long_shape)
            .expect("valid mixture");
        let config = TismdpConfig {
            delay_weight,
            ..TismdpConfig::default()
        };
        let policy = TismdpPolicy::solve(&costs(), &idle, config).expect("solves");
        prop_assert!(policy.is_monotone());
        // Stay-idle forever cost over the solver's horizon:
        let horizon = *policy.edges().last().expect("non-empty edges");
        let idle_cost = costs().idle_mw * 1e-3
            * (survival_integral(&idle, 0.0, horizon, 2000)
                + survival_integral(&idle, horizon, 4.0 * horizon, 2000));
        prop_assert!(
            policy.expected_cost() <= idle_cost * 1.01 + 1e-9,
            "cost {} vs idle {idle_cost}",
            policy.expected_cost()
        );
    }

    /// Increasing the delay weight never makes the policy sleep earlier.
    #[test]
    fn tismdp_delay_weight_monotone(
        w1 in 0.0f64..10.0,
        extra in 0.5f64..40.0,
    ) {
        let idle = IdleMixture::streaming_default().expect("static params");
        let solve = |weight| {
            TismdpPolicy::solve(
                &costs(),
                &idle,
                TismdpConfig {
                    delay_weight: weight,
                    ..TismdpConfig::default()
                },
            )
            .expect("solves")
        };
        let eager = solve(w1);
        let cautious = solve(w1 + extra);
        let first = |p: &TismdpPolicy| {
            p.plan()
                .transitions
                .first()
                .map(|&(t, _)| t.as_secs_f64())
                .unwrap_or(f64::INFINITY)
        };
        prop_assert!(first(&cautious) >= first(&eager) - 1e-9);
    }

    /// Mixture CDF equals the weighted component CDFs everywhere.
    #[test]
    fn mixture_cdf_is_convex_combination(
        w in 0.01f64..0.99,
        sr in 0.1f64..100.0,
        ls in 0.1f64..10.0,
        sh in 0.2f64..5.0,
        x in 0.0f64..100.0,
    ) {
        let m = IdleMixture::new(w, sr, ls, sh).expect("valid");
        let e = Exponential::new(sr).expect("valid");
        let p = Pareto::new(ls, sh).expect("valid");
        let expected = w * e.cdf(x) + (1.0 - w) * p.cdf(x);
        prop_assert!((m.cdf(x) - expected).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every policy's plan is well-formed for random RNG draws
    /// (randomized renewal timeouts included).
    #[test]
    fn all_plans_well_formed(seed in 0u64..10_000, budget in 0.0f64..0.1) {
        let idle = IdleMixture::streaming_default().expect("static params");
        let c = costs();
        let mut policies: Vec<Box<dyn DpmPolicy>> = vec![
            Box::new(dpm::NoSleep::new()),
            Box::new(
                dpm::timeout::FixedTimeout::break_even(&c, SleepState::Standby)
                    .expect("pays off"),
            ),
            Box::new(
                RenewalPolicy::solve(&c, &idle, SleepState::Off, budget, RenewalConfig::default())
                    .expect("solves"),
            ),
            Box::new(
                TismdpPolicy::solve(&c, &idle, TismdpConfig::default()).expect("solves"),
            ),
        ];
        let mut rng = SimRng::seed_from(seed);
        for p in &mut policies {
            let plan = p.plan_idle(&mut rng);
            prop_assert!(plan.is_well_formed(), "{}: {:?}", p.name(), plan);
            // Feedback must never panic.
            p.on_idle_end(SimDuration::from_secs(1), plan.deepest_reached(SimDuration::from_secs(1)));
        }
    }
}
