//! Negative-path coverage for the fault-model builder: every invalid
//! Gilbert–Elliott probability (below 0, above 1, NaN), magnitude, and
//! degenerate window must be rejected by `FaultPlan::new` — a bad spec
//! must never survive validation only to panic mid-run.

use faults::{
    BurstLossSpec, DegenerateSampleSpec, FaultError, FaultPlan, FaultPreset, FaultSpec,
    FaultWindow, JitterSpec, OverrunSpec, SwitchFaultSpec,
};
use simcore::rng::SimRng;
use simcore::time::SimTime;

fn burst(enter_prob: f64, exit_prob: f64, drop_prob: f64) -> FaultSpec {
    FaultSpec {
        burst_loss: Some(BurstLossSpec {
            enter_prob,
            exit_prob,
            drop_prob,
        }),
        ..FaultSpec::default()
    }
}

#[test]
fn gilbert_elliott_probabilities_outside_unit_interval_are_rejected() {
    // Every slot of the Gilbert–Elliott channel, each with every
    // representative bad value.
    for bad in [
        -0.1,
        -f64::EPSILON,
        1.0 + 1e-12,
        1.5,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
    ] {
        for spec in [
            burst(bad, 0.5, 0.5),
            burst(0.5, bad, 0.5),
            burst(0.5, 0.5, bad),
        ] {
            let err = FaultPlan::new(spec).expect_err(&format!("bad prob {bad} accepted"));
            let FaultError::InvalidParameter { name, .. } = err;
            assert!(name.starts_with("burst_loss."), "wrong parameter: {name}");
        }
    }
    // The boundary values themselves are legal.
    assert!(FaultPlan::new(burst(0.0, 1.0, 0.0)).is_ok());
    assert!(FaultPlan::new(burst(1.0, 0.0, 1.0)).is_ok());
}

#[test]
fn other_model_probabilities_are_checked_too() {
    for bad in [-0.5, 2.0, f64::NAN] {
        assert!(FaultPlan::new(FaultSpec {
            jitter: Some(JitterSpec {
                prob: bad,
                max_secs: 0.1,
            }),
            ..FaultSpec::default()
        })
        .is_err());
        assert!(FaultPlan::new(FaultSpec {
            overrun: Some(OverrunSpec {
                prob: bad,
                max_factor: 2.0,
            }),
            ..FaultSpec::default()
        })
        .is_err());
        assert!(FaultPlan::new(FaultSpec {
            switch_fault: Some(SwitchFaultSpec {
                fail_prob: bad,
                max_retries: 1,
            }),
            ..FaultSpec::default()
        })
        .is_err());
        assert!(FaultPlan::new(FaultSpec {
            degenerate_samples: Some(DegenerateSampleSpec { prob: bad }),
            ..FaultSpec::default()
        })
        .is_err());
    }
}

#[test]
fn zero_length_and_inverted_windows_are_rejected() {
    // A zero-length burst window `[s, s)` is empty: it would silently
    // schedule nothing. The builder must reject it, not let the run
    // proceed with a dead window.
    for (start_s, end_s) in [(5.0, 5.0), (0.0, 0.0), (5.0, 1.0)] {
        let spec = FaultSpec {
            jitter: Some(JitterSpec {
                prob: 1.0,
                max_secs: 0.1,
            }),
            windows: vec![FaultWindow { start_s, end_s }],
            ..FaultSpec::default()
        };
        let err = FaultPlan::new(spec).expect_err(&format!("window [{start_s}, {end_s}) accepted"));
        let FaultError::InvalidParameter { name, .. } = err;
        assert_eq!(name, "window.end_s");
    }
    // Windows with NaN or negative bounds die on the magnitude check.
    for (start_s, end_s) in [(f64::NAN, 10.0), (0.0, f64::NAN), (-1.0, 10.0)] {
        assert!(FaultPlan::new(FaultSpec {
            windows: vec![FaultWindow { start_s, end_s }],
            ..FaultSpec::default()
        })
        .is_err());
    }
    // A genuine window still validates and still gates injection.
    let plan = FaultPlan::new(FaultSpec {
        jitter: Some(JitterSpec {
            prob: 1.0,
            max_secs: 0.1,
        }),
        windows: vec![FaultWindow {
            start_s: 1.0,
            end_s: 2.0,
        }],
        ..FaultSpec::default()
    })
    .expect("non-empty window is valid");
    let mut inj = plan.injector(&SimRng::seed_from(1));
    assert_eq!(
        inj.arrival_jitter(SimTime::from_secs_f64(0.5)),
        simcore::time::SimDuration::ZERO
    );
    assert!(inj.arrival_jitter(SimTime::from_secs_f64(1.5)) > simcore::time::SimDuration::ZERO);
}

#[test]
fn error_messages_are_actionable() {
    let err = FaultPlan::new(burst(f64::NAN, 0.5, 0.5)).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("burst_loss.enter_prob"), "{text}");
    assert!(text.contains("[0, 1]"), "{text}");
    let err = FaultPlan::new(FaultSpec {
        windows: vec![FaultWindow {
            start_s: 3.0,
            end_s: 3.0,
        }],
        ..FaultSpec::default()
    })
    .unwrap_err();
    assert!(err.to_string().contains("non-empty"), "{err}");
}

#[test]
fn presets_parse_and_validate() {
    for name in ["off", "wlan", "decoder", "all", "random"] {
        let preset = FaultPreset::parse(name).expect("known preset");
        assert_eq!(preset.name(), name);
        // Every preset's spec must pass its own validation.
        if let Some(spec) = preset.spec(7) {
            assert!(FaultPlan::new(spec).is_ok(), "{name}");
        } else {
            assert_eq!(preset, FaultPreset::Off);
        }
    }
    assert!(FaultPreset::parse("gremlins").is_err());
    // The random preset is a pure function of the seed.
    assert_eq!(FaultPreset::Random.spec(9), FaultPreset::Random.spec(9));
    assert_ne!(FaultPreset::Random.spec(9), FaultPreset::Random.spec(10));
}

#[test]
fn chaos_presets_fail_validation_by_design() {
    // `poison` is the deliberate inversion of the contract above: its
    // spec must NEVER pass validation, for any seed — that is how the
    // fleet layer injects guaranteed per-device failures.
    let spec = FaultPreset::Poison.spec(7).expect("poison always specs");
    assert!(FaultPlan::new(spec).is_err());
    assert_eq!(FaultPreset::Poison.name(), "poison");

    // `flaky:<pct>` dooms a seed-determined subset the same way; the
    // doom roll is a pure function of the seed.
    let flaky = FaultPreset::parse("flaky:50").expect("parses");
    assert_eq!(flaky, FaultPreset::Flaky { percent: 50 });
    assert_eq!(flaky.name(), "flaky");
    assert_eq!(flaky.to_string(), "flaky:50", "Display keeps the percent");
    for seed in 0..64u64 {
        // The doomed spec contains NaN, so compare the doom decision
        // itself rather than the spec value.
        assert_eq!(flaky.spec(seed).is_some(), flaky.spec(seed).is_some());
        if let Some(spec) = flaky.spec(seed) {
            assert!(FaultPlan::new(spec).is_err(), "doomed seed {seed}");
        }
    }
    // The extremes are total: 0 never dooms, 100 always does.
    for seed in 0..32u64 {
        assert!(FaultPreset::Flaky { percent: 0 }.spec(seed).is_none());
        assert!(FaultPreset::Flaky { percent: 100 }.spec(seed).is_some());
    }
    assert!(FaultPreset::parse("flaky:101").is_err());
    assert!(FaultPreset::parse("flaky:").is_err());
    assert!(FaultPreset::parse("flaky:many").is_err());
}

#[test]
fn panic_preset_panics_with_a_recognizable_message() {
    assert_eq!(FaultPreset::parse("panic").unwrap(), FaultPreset::Panic);
    let caught = std::panic::catch_unwind(|| FaultPreset::Panic.spec(42)).expect_err("panics");
    let msg = caught
        .downcast_ref::<String>()
        .expect("panic payload is a String");
    assert!(msg.contains("injected panic"), "{msg}");
    assert!(msg.contains("seed 42"), "{msg}");
}
