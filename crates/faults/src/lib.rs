#![warn(missing_docs)]
//! Deterministic fault injection for the SmartBadge simulator.
//!
//! The paper's premise is a *non-stationary* workload: arrival and decode
//! rates jump, and the change-point governor must hold QoS while saving
//! power. A deployed SmartBadge additionally sees regimes no well-behaved
//! exponential trace exercises — WLAN dropouts, decode overruns, flaky
//! frequency–voltage transitions. This crate models those regimes as
//! **seeded, reproducible faults** so the rest of the workspace can prove
//! it degrades gracefully instead of panicking:
//!
//! * [`BurstLossSpec`] — WLAN burst loss on frame arrivals
//!   (a two-state Gilbert–Elliott channel),
//! * [`JitterSpec`] — arrival jitter spikes (late delivery),
//! * [`OverrunSpec`] — decode-time overruns,
//! * [`SwitchFaultSpec`] — failed frequency–voltage switches, retried
//!   with capped exponential backoff on top of the SA-1100's 150 µs
//!   transition,
//! * [`DegenerateSampleSpec`] — degenerate detector samples (zero/NaN
//!   interarrivals) that downstream estimators must reject.
//!
//! A [`FaultSpec`] bundles the models plus optional deterministic
//! [activity windows](FaultSpec::windows); [`FaultPlan::new`] validates it
//! once; [`FaultInjector`] executes it against forked
//! [`SimRng`](simcore::rng::SimRng) streams, so the same `(seed, spec)`
//! pair always produces the same fault schedule and adding one model does
//! not perturb the others.
//!
//! # Example
//!
//! ```
//! use faults::{FaultPlan, FaultSpec, JitterSpec};
//! use simcore::rng::SimRng;
//! use simcore::time::SimTime;
//!
//! let spec = FaultSpec {
//!     jitter: Some(JitterSpec { prob: 1.0, max_secs: 0.05 }),
//!     ..FaultSpec::default()
//! };
//! let plan = FaultPlan::new(spec)?;
//! let rng = SimRng::seed_from(7);
//! let mut inj = plan.injector(&rng);
//! let j = inj.arrival_jitter(SimTime::ZERO);
//! assert!(j.as_secs_f64() <= 0.05);
//! # Ok::<(), faults::FaultError>(())
//! ```

use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};
use std::fmt;

/// Error type for invalid fault-model parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A numeric parameter was outside its legal domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the legal domain.
        expected: &'static str,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "invalid fault parameter `{name}` = {value}; expected {expected}"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

fn check_prob(name: &'static str, value: f64) -> Result<f64, FaultError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(FaultError::InvalidParameter {
            name,
            value,
            expected: "a probability in [0, 1]",
        })
    }
}

fn check_non_negative(name: &'static str, value: f64) -> Result<f64, FaultError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(FaultError::InvalidParameter {
            name,
            value,
            expected: "a finite value >= 0",
        })
    }
}

/// WLAN burst loss on frame arrivals, modeled as a Gilbert–Elliott
/// channel: a good state that never drops and a bad (burst) state that
/// drops each frame with [`drop_prob`](Self::drop_prob).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstLossSpec {
    /// Per-arrival probability of entering a burst from the good state.
    pub enter_prob: f64,
    /// Per-arrival probability of leaving the burst state.
    pub exit_prob: f64,
    /// Per-arrival drop probability while inside a burst.
    pub drop_prob: f64,
}

/// Arrival jitter spikes: with probability [`prob`](Self::prob) a frame is
/// delivered late by a uniform delay in `[0, max_secs]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterSpec {
    /// Per-arrival probability of a jitter spike.
    pub prob: f64,
    /// Maximum extra delivery delay, seconds.
    pub max_secs: f64,
}

/// Decode-time overruns: with probability [`prob`](Self::prob) a frame's
/// decode work is inflated by a uniform factor in `[1, max_factor]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverrunSpec {
    /// Per-frame probability of an overrun.
    pub prob: f64,
    /// Maximum work-inflation factor (≥ 1).
    pub max_factor: f64,
}

/// Failed frequency–voltage switches. Each attempt fails with
/// [`fail_prob`](Self::fail_prob); failed attempts are retried with
/// exponential backoff starting at the transition cost itself and capped
/// at [`max_retries`](Self::max_retries), after which the switch is
/// abandoned and the CPU stays at its old operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchFaultSpec {
    /// Per-attempt failure probability.
    pub fail_prob: f64,
    /// Maximum retry attempts before the switch is abandoned.
    pub max_retries: u32,
}

/// Degenerate detector samples: with probability [`prob`](Self::prob) an
/// interarrival sample handed to the governor is replaced by `0.0` or NaN
/// (alternating by coin flip), which the estimator must reject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegenerateSampleSpec {
    /// Per-sample corruption probability.
    pub prob: f64,
}

/// A half-open activity window `[start_s, end_s)` in simulation seconds.
///
/// Windows make fault schedules provable: a chaos test can place a fault
/// burst in a known interval and assert the supervisor enters degraded
/// mode inside it and leaves after it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Window start, seconds.
    pub start_s: f64,
    /// Window end, seconds.
    pub end_s: f64,
}

impl FaultWindow {
    /// `true` if `t` lies inside the window.
    #[must_use]
    pub fn contains(&self, t: SimTime) -> bool {
        let s = t.as_secs_f64();
        s >= self.start_s && s < self.end_s
    }
}

/// Configuration of every fault model for one run. All models default to
/// `None` (no faults), so `FaultSpec::default()` is a no-op injector.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// WLAN burst loss on arrivals.
    pub burst_loss: Option<BurstLossSpec>,
    /// Arrival jitter spikes.
    pub jitter: Option<JitterSpec>,
    /// Decode-time overruns.
    pub overrun: Option<OverrunSpec>,
    /// Failed/retried frequency–voltage switches.
    pub switch_fault: Option<SwitchFaultSpec>,
    /// Degenerate detector samples.
    pub degenerate_samples: Option<DegenerateSampleSpec>,
    /// Activity windows; empty means faults are active for the whole run.
    pub windows: Vec<FaultWindow>,
}

impl FaultSpec {
    /// `true` if no fault model is configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.burst_loss.is_none()
            && self.jitter.is_none()
            && self.overrun.is_none()
            && self.switch_fault.is_none()
            && self.degenerate_samples.is_none()
    }

    /// Draws a randomized-but-reproducible spec for chaos sweeps: each
    /// model is enabled with probability ½ with parameters drawn from
    /// ranges wide enough to stress the stack but bounded so runs
    /// terminate.
    #[must_use]
    pub fn randomized(rng: &mut SimRng) -> FaultSpec {
        let coin = |rng: &mut SimRng| rng.next_f64() < 0.5;
        let burst_loss = coin(rng).then(|| BurstLossSpec {
            enter_prob: 0.01 + rng.next_f64() * 0.1,
            exit_prob: 0.05 + rng.next_f64() * 0.3,
            drop_prob: 0.2 + rng.next_f64() * 0.8,
        });
        let jitter = coin(rng).then(|| JitterSpec {
            prob: rng.next_f64() * 0.2,
            max_secs: rng.next_f64() * 0.2,
        });
        let overrun = coin(rng).then(|| OverrunSpec {
            prob: rng.next_f64() * 0.2,
            max_factor: 1.0 + rng.next_f64() * 4.0,
        });
        let switch_fault = coin(rng).then(|| SwitchFaultSpec {
            fail_prob: rng.next_f64() * 0.8,
            max_retries: 1 + (rng.next_u64() % 5) as u32,
        });
        let degenerate_samples = coin(rng).then(|| DegenerateSampleSpec {
            prob: rng.next_f64() * 0.1,
        });
        // Half the plans run faults over a window in the first 200 s, the
        // other half over the whole run.
        let windows = if coin(rng) {
            let start = rng.next_f64() * 100.0;
            vec![FaultWindow {
                start_s: start,
                end_s: start + 10.0 + rng.next_f64() * 90.0,
            }]
        } else {
            Vec::new()
        };
        FaultSpec {
            burst_loss,
            jitter,
            overrun,
            switch_fault,
            degenerate_samples,
            windows,
        }
    }
}

/// Named fault-injection presets — the `--faults` axis of the CLI and
/// the per-device fault choice of a fleet spec. Each name maps to a
/// canonical [`FaultSpec`]; `random` draws a seed-determined plan so
/// `--faults random --seed N` stays reproducible.
///
/// The last three presets are *chaos* presets: they do not model a
/// physical fault regime but instead break the run itself, so the
/// fleet engine's failure containment (typed-error capture, panic
/// isolation, retry ladders) can be exercised deterministically:
///
/// * `poison` always yields an invalid spec, so plan validation fails
///   with a typed [`FaultError`] on every seed;
/// * `flaky:P` dooms roughly `P` percent of seeds the same way (a pure
///   function of the seed, so the same device fails on every rerun but
///   a retry under a forked seed gets a fresh roll);
/// * `panic` panics inside spec construction, modeling the
///   unannounced crash a supervisor must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPreset {
    /// No faults (the paper's clean runs).
    Off,
    /// WLAN-flavoured faults: burst loss + arrival jitter.
    Wlan,
    /// Decoder-flavoured faults: overruns, flaky switches, degenerate
    /// samples.
    Decoder,
    /// Everything at once.
    All,
    /// A randomized-but-reproducible plan drawn from the run seed.
    Random,
    /// Chaos: an always-invalid spec (typed validation error, any seed).
    Poison,
    /// Chaos: the invalid spec on roughly `percent`% of seeds, clean
    /// otherwise.
    Flaky {
        /// Failure probability in whole percent, clamped to 0–100.
        percent: u8,
    },
    /// Chaos: panics during spec construction.
    Panic,
}

impl FaultPreset {
    /// Parses a preset name:
    /// `off|wlan|decoder|all|random|poison|flaky:<pct>|panic`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the expected forms.
    pub fn parse(s: &str) -> Result<FaultPreset, String> {
        if let Some(pct) = s.strip_prefix("flaky:") {
            let percent: u8 =
                pct.parse().ok().filter(|p| *p <= 100).ok_or_else(|| {
                    format!("flaky preset needs a percent in 0..=100, got `{pct}`")
                })?;
            return Ok(FaultPreset::Flaky { percent });
        }
        match s {
            "off" => Ok(FaultPreset::Off),
            "wlan" => Ok(FaultPreset::Wlan),
            "decoder" => Ok(FaultPreset::Decoder),
            "all" => Ok(FaultPreset::All),
            "random" => Ok(FaultPreset::Random),
            "poison" => Ok(FaultPreset::Poison),
            "panic" => Ok(FaultPreset::Panic),
            other => Err(format!(
                "unknown fault preset `{other}` (expected off|wlan|decoder|all|random|poison|flaky:<pct>|panic)"
            )),
        }
    }

    /// The preset family name, for labels and report columns. The
    /// parameterized `flaky:<pct>` form is recovered by the [`fmt::Display`]
    /// impl; `name` collapses it to `flaky`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultPreset::Off => "off",
            FaultPreset::Wlan => "wlan",
            FaultPreset::Decoder => "decoder",
            FaultPreset::All => "all",
            FaultPreset::Random => "random",
            FaultPreset::Poison => "poison",
            FaultPreset::Flaky { .. } => "flaky",
            FaultPreset::Panic => "panic",
        }
    }

    /// The spec a doomed seed gets from `poison`/`flaky`: every
    /// probability is out of domain, so [`FaultPlan::new`] rejects it
    /// with a typed error before any simulation state is built.
    fn poison_spec() -> FaultSpec {
        FaultSpec {
            burst_loss: Some(BurstLossSpec {
                enter_prob: 2.0,
                exit_prob: -1.0,
                drop_prob: f64::NAN,
            }),
            ..FaultSpec::default()
        }
    }

    /// Builds the fault spec for this preset; `seed` feeds the `random`
    /// and `flaky` presets so the same `(preset, seed)` pair always
    /// yields the same plan. `Off` yields `None`.
    ///
    /// # Panics
    ///
    /// The `panic` chaos preset panics unconditionally — that is its
    /// entire job. Every other preset returns normally.
    #[must_use]
    pub fn spec(self, seed: u64) -> Option<FaultSpec> {
        match self {
            FaultPreset::Off => None,
            FaultPreset::Poison => Some(Self::poison_spec()),
            FaultPreset::Flaky { percent } => {
                let doomed = SimRng::seed_from(seed).fork("faults/flaky").next_f64()
                    < f64::from(percent.min(100)) / 100.0;
                doomed.then(Self::poison_spec)
            }
            FaultPreset::Panic => panic!("injected panic: chaos preset `panic` (seed {seed})"),
            FaultPreset::Wlan => Some(FaultSpec {
                burst_loss: Some(BurstLossSpec {
                    enter_prob: 0.05,
                    exit_prob: 0.2,
                    drop_prob: 0.7,
                }),
                jitter: Some(JitterSpec {
                    prob: 0.1,
                    max_secs: 0.1,
                }),
                ..FaultSpec::default()
            }),
            FaultPreset::Decoder => Some(FaultSpec {
                overrun: Some(OverrunSpec {
                    prob: 0.2,
                    max_factor: 3.0,
                }),
                switch_fault: Some(SwitchFaultSpec {
                    fail_prob: 0.3,
                    max_retries: 2,
                }),
                degenerate_samples: Some(DegenerateSampleSpec { prob: 0.05 }),
                ..FaultSpec::default()
            }),
            FaultPreset::All => {
                let wlan = FaultPreset::Wlan.spec(seed).expect("wlan preset");
                let decoder = FaultPreset::Decoder.spec(seed).expect("decoder preset");
                Some(FaultSpec {
                    burst_loss: wlan.burst_loss,
                    jitter: wlan.jitter,
                    ..decoder
                })
            }
            FaultPreset::Random => {
                let mut rng = SimRng::seed_from(seed).fork("chaos-spec");
                Some(FaultSpec::randomized(&mut rng))
            }
        }
    }
}

impl fmt::Display for FaultPreset {
    /// Formats back to the parseable form, including the `flaky:<pct>`
    /// parameter, so `FaultPreset::parse(&p.to_string()) == Ok(p)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPreset::Flaky { percent } => write!(f, "flaky:{percent}"),
            other => f.write_str(other.name()),
        }
    }
}

/// A validated fault configuration, ready to spawn [`FaultInjector`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    spec: FaultSpec,
}

impl FaultPlan {
    /// Validates `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParameter`] for any probability
    /// outside `[0, 1]` (including NaN), negative/non-finite magnitude,
    /// an overrun factor below 1, or a window with `end_s <= start_s`
    /// (inverted *or* zero-length: `[s, s)` is empty, so such a window
    /// can only be a configuration mistake — it would silently disable
    /// the burst it was meant to schedule).
    pub fn new(spec: FaultSpec) -> Result<FaultPlan, FaultError> {
        if let Some(b) = &spec.burst_loss {
            check_prob("burst_loss.enter_prob", b.enter_prob)?;
            check_prob("burst_loss.exit_prob", b.exit_prob)?;
            check_prob("burst_loss.drop_prob", b.drop_prob)?;
        }
        if let Some(j) = &spec.jitter {
            check_prob("jitter.prob", j.prob)?;
            check_non_negative("jitter.max_secs", j.max_secs)?;
        }
        if let Some(o) = &spec.overrun {
            check_prob("overrun.prob", o.prob)?;
            if !(o.max_factor.is_finite() && o.max_factor >= 1.0) {
                return Err(FaultError::InvalidParameter {
                    name: "overrun.max_factor",
                    value: o.max_factor,
                    expected: "a finite factor >= 1",
                });
            }
        }
        if let Some(s) = &spec.switch_fault {
            check_prob("switch_fault.fail_prob", s.fail_prob)?;
        }
        if let Some(d) = &spec.degenerate_samples {
            check_prob("degenerate_samples.prob", d.prob)?;
        }
        for w in &spec.windows {
            check_non_negative("window.start_s", w.start_s)?;
            check_non_negative("window.end_s", w.end_s)?;
            if w.end_s <= w.start_s {
                return Err(FaultError::InvalidParameter {
                    name: "window.end_s",
                    value: w.end_s,
                    expected:
                        "end_s > start_s (the half-open window [start_s, end_s) must be non-empty)",
                });
            }
        }
        Ok(FaultPlan { spec })
    }

    /// The validated spec.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Builds an injector whose randomness is forked from `rng` by model
    /// label, so each fault model has an independent reproducible stream.
    #[must_use]
    pub fn injector(&self, rng: &SimRng) -> FaultInjector {
        FaultInjector {
            spec: self.spec.clone(),
            loss_rng: rng.fork("faults/burst-loss"),
            jitter_rng: rng.fork("faults/jitter"),
            overrun_rng: rng.fork("faults/overrun"),
            switch_rng: rng.fork("faults/switch"),
            sample_rng: rng.fork("faults/samples"),
            in_burst: false,
            counters: FaultCounters::default(),
        }
    }
}

/// Counts of faults actually injected by a [`FaultInjector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Arrivals dropped by burst loss.
    pub arrivals_dropped: u64,
    /// Arrivals delayed by a jitter spike.
    pub jitter_spikes: u64,
    /// Decode jobs inflated by an overrun.
    pub overruns: u64,
    /// Switch attempts that failed and were retried.
    pub switch_retries: u64,
    /// Switches abandoned after the retry budget.
    pub switch_failures: u64,
    /// Detector samples corrupted.
    pub samples_corrupted: u64,
}

/// The outcome of one (possibly faulty) frequency–voltage switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchOutcome {
    /// Retry attempts that failed before the outcome was decided.
    pub retries: u32,
    /// `true` if the switch was abandoned (the CPU keeps its old
    /// operating point).
    pub abandoned: bool,
    /// Total transition latency consumed, including backoff: the caller
    /// stalls the decoder for this long whether or not the switch landed.
    pub latency: SimDuration,
}

/// Executes a [`FaultPlan`] against forked RNG streams, answering the
/// simulator's per-event queries and counting what it injected.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
    loss_rng: SimRng,
    jitter_rng: SimRng,
    overrun_rng: SimRng,
    switch_rng: SimRng,
    sample_rng: SimRng,
    in_burst: bool,
    counters: FaultCounters,
}

impl FaultInjector {
    /// An injector that never injects anything (empty spec).
    #[must_use]
    pub fn disabled(rng: &SimRng) -> FaultInjector {
        FaultPlan::new(FaultSpec::default())
            .expect("empty spec is valid")
            .injector(rng)
    }

    /// `true` if faults are active at `t` (inside a window, or no windows
    /// are configured).
    #[must_use]
    pub fn active(&self, t: SimTime) -> bool {
        self.spec.windows.is_empty() || self.spec.windows.iter().any(|w| w.contains(t))
    }

    /// Counters of everything injected so far.
    #[must_use]
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Asks the WLAN channel whether the arrival at `t` is lost.
    ///
    /// The Gilbert–Elliott state advances on every arrival while active,
    /// so loss comes in bursts rather than independent coin flips.
    pub fn arrival_dropped(&mut self, t: SimTime) -> bool {
        let Some(b) = self.spec.burst_loss else {
            return false;
        };
        if !self.active(t) {
            self.in_burst = false;
            return false;
        }
        if self.in_burst {
            if self.loss_rng.next_f64() < b.exit_prob {
                self.in_burst = false;
            }
        } else if self.loss_rng.next_f64() < b.enter_prob {
            self.in_burst = true;
        }
        let dropped = self.in_burst && self.loss_rng.next_f64() < b.drop_prob;
        if dropped {
            self.counters.arrivals_dropped += 1;
        }
        dropped
    }

    /// Extra delivery delay for the arrival at `t`
    /// ([`SimDuration::ZERO`] when no spike fires).
    pub fn arrival_jitter(&mut self, t: SimTime) -> SimDuration {
        let Some(j) = self.spec.jitter else {
            return SimDuration::ZERO;
        };
        if !self.active(t) || self.jitter_rng.next_f64() >= j.prob {
            return SimDuration::ZERO;
        }
        self.counters.jitter_spikes += 1;
        SimDuration::from_secs_f64(self.jitter_rng.next_f64() * j.max_secs)
    }

    /// Work-inflation factor (≥ 1) for the decode starting at `t`;
    /// `1.0` when no overrun fires.
    pub fn decode_overrun_factor(&mut self, t: SimTime) -> f64 {
        let Some(o) = self.spec.overrun else {
            return 1.0;
        };
        if !self.active(t) || self.overrun_rng.next_f64() >= o.prob {
            return 1.0;
        }
        self.counters.overruns += 1;
        1.0 + self.overrun_rng.next_f64() * (o.max_factor - 1.0)
    }

    /// Resolves one frequency–voltage switch attempt at `t` with nominal
    /// transition cost `transition`.
    ///
    /// Without a switch-fault model (or outside a window) this returns a
    /// clean switch costing exactly `transition`. With one, each failed
    /// attempt consumes the transition cost again, doubled per retry
    /// (capped exponential backoff); after
    /// [`max_retries`](SwitchFaultSpec::max_retries) failures the switch
    /// is abandoned.
    pub fn switch_attempt(&mut self, t: SimTime, transition: SimDuration) -> SwitchOutcome {
        let Some(s) = self.spec.switch_fault else {
            return SwitchOutcome {
                retries: 0,
                abandoned: false,
                latency: transition,
            };
        };
        if !self.active(t) {
            return SwitchOutcome {
                retries: 0,
                abandoned: false,
                latency: transition,
            };
        }
        let mut latency = SimDuration::ZERO;
        let mut backoff = transition;
        for attempt in 0..=s.max_retries {
            latency = latency.saturating_add(backoff);
            if self.switch_rng.next_f64() >= s.fail_prob {
                return SwitchOutcome {
                    retries: attempt,
                    abandoned: false,
                    latency,
                };
            }
            if attempt < s.max_retries {
                self.counters.switch_retries += 1;
            }
            // Cap the exponential backoff at 8× the transition cost so an
            // unlucky streak cannot stall the decoder unboundedly.
            backoff = (backoff * 2).min(transition * 8);
        }
        self.counters.switch_failures += 1;
        SwitchOutcome {
            retries: s.max_retries,
            abandoned: true,
            latency,
        }
    }

    /// Possibly corrupts the interarrival `sample` observed at `t` into a
    /// degenerate value (`0.0` or NaN). The caller feeds the result to the
    /// governor, whose estimator must reject it.
    pub fn corrupt_sample(&mut self, t: SimTime, sample: f64) -> f64 {
        let Some(d) = self.spec.degenerate_samples else {
            return sample;
        };
        if !self.active(t) || self.sample_rng.next_f64() >= d.prob {
            return sample;
        }
        self.counters.samples_corrupted += 1;
        if self.sample_rng.next_f64() < 0.5 {
            0.0
        } else {
            f64::NAN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn always_window() -> Vec<FaultWindow> {
        Vec::new()
    }

    #[test]
    fn default_spec_is_empty_and_injects_nothing() {
        let spec = FaultSpec::default();
        assert!(spec.is_empty());
        let plan = FaultPlan::new(spec).unwrap();
        let mut inj = plan.injector(&SimRng::seed_from(1));
        let t = SimTime::from_secs_f64(1.0);
        assert!(!inj.arrival_dropped(t));
        assert_eq!(inj.arrival_jitter(t), SimDuration::ZERO);
        assert_eq!(inj.decode_overrun_factor(t), 1.0);
        let s = inj.switch_attempt(t, SimDuration::from_micros(150));
        assert_eq!(s.retries, 0);
        assert!(!s.abandoned);
        assert_eq!(s.latency, SimDuration::from_micros(150));
        assert_eq!(inj.corrupt_sample(t, 0.04), 0.04);
        assert_eq!(inj.counters(), FaultCounters::default());
    }

    #[test]
    fn plan_rejects_bad_parameters() {
        for spec in [
            FaultSpec {
                burst_loss: Some(BurstLossSpec {
                    enter_prob: 1.5,
                    exit_prob: 0.5,
                    drop_prob: 0.5,
                }),
                ..FaultSpec::default()
            },
            FaultSpec {
                jitter: Some(JitterSpec {
                    prob: 0.1,
                    max_secs: f64::NAN,
                }),
                ..FaultSpec::default()
            },
            FaultSpec {
                overrun: Some(OverrunSpec {
                    prob: 0.1,
                    max_factor: 0.5,
                }),
                ..FaultSpec::default()
            },
            FaultSpec {
                switch_fault: Some(SwitchFaultSpec {
                    fail_prob: -0.1,
                    max_retries: 3,
                }),
                ..FaultSpec::default()
            },
            FaultSpec {
                windows: vec![FaultWindow {
                    start_s: 5.0,
                    end_s: 1.0,
                }],
                ..FaultSpec::default()
            },
        ] {
            assert!(FaultPlan::new(spec).is_err());
        }
    }

    #[test]
    fn burst_loss_drops_in_bursts() {
        let plan = FaultPlan::new(FaultSpec {
            burst_loss: Some(BurstLossSpec {
                enter_prob: 0.2,
                exit_prob: 0.2,
                drop_prob: 1.0,
            }),
            windows: always_window(),
            ..FaultSpec::default()
        })
        .unwrap();
        let mut inj = plan.injector(&SimRng::seed_from(3));
        let mut drops = 0u64;
        for i in 0..10_000 {
            if inj.arrival_dropped(SimTime::from_secs_f64(i as f64 * 0.04)) {
                drops += 1;
            }
        }
        // Stationary burst occupancy ≈ enter/(enter+exit) = 0.5.
        assert!(drops > 2_000 && drops < 8_000, "drops = {drops}");
        assert_eq!(inj.counters().arrivals_dropped, drops);
    }

    #[test]
    fn windows_gate_injection() {
        let plan = FaultPlan::new(FaultSpec {
            jitter: Some(JitterSpec {
                prob: 1.0,
                max_secs: 0.1,
            }),
            windows: vec![FaultWindow {
                start_s: 10.0,
                end_s: 20.0,
            }],
            ..FaultSpec::default()
        })
        .unwrap();
        let mut inj = plan.injector(&SimRng::seed_from(4));
        assert_eq!(
            inj.arrival_jitter(SimTime::from_secs_f64(5.0)),
            SimDuration::ZERO
        );
        assert!(inj.arrival_jitter(SimTime::from_secs_f64(15.0)) > SimDuration::ZERO);
        assert_eq!(
            inj.arrival_jitter(SimTime::from_secs_f64(25.0)),
            SimDuration::ZERO
        );
        assert_eq!(inj.counters().jitter_spikes, 1);
    }

    #[test]
    fn overrun_factor_is_bounded() {
        let plan = FaultPlan::new(FaultSpec {
            overrun: Some(OverrunSpec {
                prob: 1.0,
                max_factor: 3.0,
            }),
            ..FaultSpec::default()
        })
        .unwrap();
        let mut inj = plan.injector(&SimRng::seed_from(5));
        for i in 0..1000 {
            let f = inj.decode_overrun_factor(SimTime::from_secs_f64(i as f64));
            assert!((1.0..=3.0).contains(&f), "factor {f}");
        }
        assert_eq!(inj.counters().overruns, 1000);
    }

    #[test]
    fn switch_always_fails_is_abandoned_with_capped_backoff() {
        let plan = FaultPlan::new(FaultSpec {
            switch_fault: Some(SwitchFaultSpec {
                fail_prob: 1.0,
                max_retries: 3,
            }),
            ..FaultSpec::default()
        })
        .unwrap();
        let mut inj = plan.injector(&SimRng::seed_from(6));
        let t = SimDuration::from_micros(150);
        let out = inj.switch_attempt(SimTime::ZERO, t);
        assert!(out.abandoned);
        assert_eq!(out.retries, 3);
        // 150 + 300 + 600 + 1200 µs: doubling, under the 8× cap.
        assert_eq!(
            out.latency,
            SimDuration::from_micros(150 + 300 + 600 + 1200)
        );
        assert_eq!(inj.counters().switch_retries, 3);
        assert_eq!(inj.counters().switch_failures, 1);
    }

    #[test]
    fn switch_never_fails_is_clean() {
        let plan = FaultPlan::new(FaultSpec {
            switch_fault: Some(SwitchFaultSpec {
                fail_prob: 0.0,
                max_retries: 3,
            }),
            ..FaultSpec::default()
        })
        .unwrap();
        let mut inj = plan.injector(&SimRng::seed_from(7));
        let out = inj.switch_attempt(SimTime::ZERO, SimDuration::from_micros(150));
        assert!(!out.abandoned);
        assert_eq!(out.retries, 0);
        assert_eq!(out.latency, SimDuration::from_micros(150));
    }

    #[test]
    fn corrupt_sample_produces_degenerate_values() {
        let plan = FaultPlan::new(FaultSpec {
            degenerate_samples: Some(DegenerateSampleSpec { prob: 1.0 }),
            ..FaultSpec::default()
        })
        .unwrap();
        let mut inj = plan.injector(&SimRng::seed_from(8));
        let mut zeros = 0;
        let mut nans = 0;
        for i in 0..100 {
            let s = inj.corrupt_sample(SimTime::from_secs_f64(i as f64), 0.04);
            if s == 0.0 {
                zeros += 1;
            } else if s.is_nan() {
                nans += 1;
            } else {
                panic!("sample {s} not degenerate");
            }
        }
        assert!(zeros > 0 && nans > 0);
        assert_eq!(inj.counters().samples_corrupted, 100);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let mut seed_rng = SimRng::seed_from(99);
        let spec = FaultSpec::randomized(&mut seed_rng);
        let plan = FaultPlan::new(spec).expect("randomized specs are valid");
        let run = |plan: &FaultPlan| {
            let mut inj = plan.injector(&SimRng::seed_from(42));
            let mut log = Vec::new();
            for i in 0..500 {
                let t = SimTime::from_secs_f64(i as f64 * 0.04);
                log.push((
                    inj.arrival_dropped(t),
                    inj.arrival_jitter(t).as_nanos(),
                    inj.decode_overrun_factor(t).to_bits(),
                ));
            }
            (log, inj.counters())
        };
        assert_eq!(run(&plan), run(&plan));
    }

    #[test]
    fn randomized_specs_always_validate() {
        let mut rng = SimRng::seed_from(1234);
        for _ in 0..200 {
            let spec = FaultSpec::randomized(&mut rng);
            assert!(FaultPlan::new(spec).is_ok());
        }
    }
}
