//! Differential tests: [`LaneQueue`] against the [`BinaryHeap`]-backed
//! [`EventQueue`] reference.
//!
//! The lane scheduler replaced the heap queue in the simulator hot loop;
//! its contract is *identical pop order for every push sequence* — FIFO
//! ties at equal timestamps included — with the lane index acting as a
//! placement hint only. These tests drive both queues with the same
//! randomized operation streams (tight time ranges to force collisions,
//! lane indices past `LANES` to force spills, pops interleaved with
//! pushes) and require the full observable state to match after every
//! step.
//!
//! [`BinaryHeap`]: std::collections::BinaryHeap

use proptest::prelude::*;
use simcore::event::{EventQueue, LaneQueue};
use simcore::time::SimDuration;

const LANES: usize = 4;

/// One randomized queue operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push at `now + dt` into `lane`; `lane ≥ LANES` exercises the
    /// explicit spill path, `dt = 0` a zero-delay event.
    Push { lane: usize, dt: u64 },
    /// Pop one event from both queues and compare.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // dt drawn from a tiny range so equal timestamps are common and
        // the FIFO tie-break carries real weight.
        3 => (0usize..LANES + 2, 0u64..4).prop_map(|(lane, dt)| Op::Push { lane, dt }),
        2 => Just(Op::Pop),
    ]
}

/// Applies `ops` to a lane queue and the heap reference in lockstep,
/// checking that pops, clocks, lengths, and peeks never diverge, then
/// drains both and compares the tails. Panics on any divergence.
fn run_differential(ops: &[Op]) {
    let mut lane_q: LaneQueue<usize, LANES> = LaneQueue::new();
    let mut heap_q: EventQueue<usize> = EventQueue::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Push { lane, dt } => {
                // The clocks advance in lockstep, so either `now` works
                // as the base for a future-or-present timestamp.
                let at = lane_q.now() + SimDuration::from_nanos(dt);
                lane_q.push(lane, at, i);
                heap_q.push(at, i);
            }
            Op::Pop => {
                let a = lane_q.pop().map(|s| (s.at, s.event));
                let b = heap_q.pop().map(|s| (s.at, s.event));
                assert_eq!(a, b, "pop diverged at op {i}");
            }
        }
        assert_eq!(lane_q.len(), heap_q.len());
        assert_eq!(lane_q.is_empty(), heap_q.is_empty());
        assert_eq!(lane_q.peek_time(), heap_q.peek_time());
        assert_eq!(lane_q.now(), heap_q.now());
    }
    loop {
        let a = lane_q.pop().map(|s| (s.at, s.event));
        let b = heap_q.pop().map(|s| (s.at, s.event));
        let done = a.is_none();
        assert_eq!(a, b, "drain diverged");
        if done {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any interleaving of pushes (colliding timestamps, spilling
    /// lanes) and pops produces identical `Scheduled` streams from the
    /// lane scheduler and the heap reference.
    #[test]
    fn lane_queue_matches_heap_reference(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_differential(&ops);
    }
}

/// Heavier sweep for the nightly `--include-ignored` pass: much longer
/// operation streams, seeded deterministically so a failure reproduces.
#[test]
#[ignore = "heavy differential sweep; covered nightly via --include-ignored"]
fn lane_queue_matches_heap_reference_heavy() {
    use simcore::rng::SimRng;
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from(0x1A9E_D1FF ^ seed);
        let ops: Vec<Op> = (0..5_000)
            .map(|_| {
                let r = rng.next_u64();
                if r % 5 < 3 {
                    Op::Push {
                        lane: ((r >> 8) % (LANES as u64 + 2)) as usize,
                        dt: (r >> 16) % 4,
                    }
                } else {
                    Op::Pop
                }
            })
            .collect();
        run_differential(&ops);
    }
}
